PYTHON ?= python
PYTHONPATH := src

.PHONY: test test-deep lint smoke-obs smoke-faults smoke-runner smoke-timeline smoke-rolling smoke-serve serve-baseline bench bench-smoke bench-smoke-baseline bench-baseline bench-pytest

test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q
	$(MAKE) bench-smoke
	$(MAKE) smoke-rolling
	$(MAKE) smoke-serve

# Nightly-style deep sweep of the hypothesis batteries: the ``deep``
# profile raises the per-test example budgets (see tests/conftest.py),
# and the selection runs everything tagged ``properties`` or ``slow``.
test-deep:
	REPRO_HYPOTHESIS_PROFILE=deep PYTHONPATH=$(PYTHONPATH) \
		$(PYTHON) -m pytest -q -m "properties or slow"

# Static checks.  Uses ruff (configured in pyproject.toml) when it is on
# PATH; otherwise falls back to the zero-dependency checker in
# tools/lint_fallback.py (syntax + unused/duplicate imports) so the
# target works in minimal containers too.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples tools; \
	else \
		echo "ruff not found; running tools/lint_fallback.py"; \
		$(PYTHON) tools/lint_fallback.py src tests benchmarks examples tools; \
	fi
	$(PYTHON) tools/check_docs.py

# Observability smoke: the obs-marked battery (trace replays, tracer /
# metrics / export units, tracing-purity properties) plus one CLI
# trace invocation end to end.
smoke-obs:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -q -m obs
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro trace --example min-min

# Fault-injection smoke: the fault plan/executor/study test batteries
# plus one end-to-end CLI run that injects failures and recovers (see
# docs/robustness.md).
smoke-faults:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -q \
		tests/sim/test_faults.py tests/analysis/test_fault_study.py \
		tests/core/test_iterative_edges.py
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro simulate --faults \
		--tasks 20 --machines 4 --failures 3 --recovery remap

# Resumable-runner smoke: the runner test batteries (including the
# kill-and-resume round trip) plus a tiny end-to-end CLI grid run that
# populates a throwaway cell cache and then resumes fully from it
# (see docs/runner.md).
smoke-runner:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -q \
		tests/analysis/test_runner.py tests/integration/test_runner_resume.py
	rm -rf .smoke-runner-cells
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro run-grid \
		--heuristics min-min,mct --tasks 10 --machines 4 --instances 2 \
		--heterogeneities hihi,lolo --cache-dir .smoke-runner-cells
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro run-grid \
		--heuristics min-min,mct --tasks 10 --machines 4 --instances 2 \
		--heterogeneities hihi,lolo --cache-dir .smoke-runner-cells \
		--resume | grep "2 cached"
	rm -rf .smoke-runner-cells

# Timeline smoke: the span/time-series/timeline test batteries, then a
# tiny sharded store-backed grid run that must produce one merged trace
# tree plus a repro-timeseries/1 log, the timeline renderer over that
# trace, and the tracing-overhead bench workload (its overhead budget
# gate lives inside the workload itself, so no baseline file is needed;
# see docs/observability.md).
smoke-timeline:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -q \
		tests/obs/test_spans.py tests/obs/test_timeseries.py \
		tests/obs/test_timeline.py
	rm -rf .smoke-timeline
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro run-grid \
		--heuristics min-min,mct --tasks 10 --machines 4 --instances 2 \
		--heterogeneities hihi,lolo --cache-dir .smoke-timeline/cells \
		--store .smoke-timeline/store \
		--trace-out .smoke-timeline/trace.jsonl \
		--timeseries .smoke-timeline/ts.jsonl
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro obs timeline \
		.smoke-timeline/trace.jsonl | grep "runner.grid"
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro bench --smoke --repeats 1 \
		--workloads tracing-overhead
	rm -rf .smoke-timeline

# Rolling-horizon smoke: the arrival/rolling/dynamic-batch test
# batteries plus one small fault-injected CLI serving run that must
# account for every task (completed + dropped == total) and publish a
# tasks_scheduled_per_s metric in the run ledger (see docs/rolling.md).
smoke-rolling:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -q \
		tests/sim/test_rolling.py tests/sim/test_dynamic_batch.py
	rm -rf .smoke-rolling
	mkdir -p .smoke-rolling
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro run-rolling \
		--tasks 400 --machines 4 --chunk-tasks 32 --batch-target 16 \
		--faults --failures 3 --recovery remap \
		--append-ledger --ledger-path .smoke-rolling/ledger.jsonl \
		| grep "tasks accounted   : 400/400"
	grep -q "tasks_scheduled_per_s" .smoke-rolling/ledger.jsonl
	rm -rf .smoke-rolling

# Scheduling-service smoke: the serve test batteries, the end-to-end
# subprocess driver (start `repro serve`, issue a mapped + a cached
# request, assert the cache-hit counter / ledger row / single
# serve.compute span, clean SIGTERM shutdown, then a serve-load run
# that writes SERVE_load_smoke.json — uploaded as a CI artifact), and
# the serve-load bench workload gated on its cached-vs-recompute
# speedup ratio against the checked-in SERVE_baseline_smoke.json
# (regenerate with `make serve-baseline`; tolerance is looser than
# bench-smoke because loopback HTTP timing is noisier than in-process
# kernels).  See docs/serving.md.
smoke-serve:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -q tests/serve
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) tools/smoke_serve.py
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro bench --smoke --repeats 2 \
		--workloads serve-load \
		--speedup-baseline SERVE_baseline_smoke.json \
		--speedup-tolerance 0.5

serve-baseline:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro bench --smoke --repeats 3 \
		--workloads serve-load -o SERVE_baseline_smoke.json

# Full benchmark harness: times the tracked 512x32 workloads (optimised
# and retained reference kernels), writes BENCH_current.json, and fails
# if any tracked workload regressed beyond tolerance vs the checked-in
# baseline.  Regenerate the baseline with `make bench-baseline`.
bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro bench \
		-o BENCH_current.json --baseline BENCH_baseline.json

bench-baseline:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro bench -o BENCH_baseline.json

# Shrunken smoke pass: proves the harness end to end in under a
# minute; wired into the default `make test` flow and run by CI, which
# uploads the written BENCH_current.json as a build artifact.  The gate
# compares *speedup ratios* (optimised vs reference), not wall-clock —
# ratios are self-normalising across machine speeds, so the checked-in
# smoke baseline stays meaningful on any host.  Regenerate it with
# `make bench-smoke-baseline` after a deliberate perf change.
bench-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro bench --smoke --repeats 2 \
		-o BENCH_current.json \
		--speedup-baseline BENCH_baseline_smoke.json \
		--speedup-tolerance 0.25

bench-smoke-baseline:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro bench --smoke --repeats 3 \
		-o BENCH_baseline_smoke.json

# The original pytest-benchmark suite (micro-benchmarks).
bench-pytest:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest benchmarks/ --benchmark-only -q

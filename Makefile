PYTHON ?= python
PYTHONPATH := src

.PHONY: test smoke-obs bench

test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

# Observability smoke: the obs-marked battery (trace replays, tracer /
# metrics / export units, tracing-purity properties) plus one CLI
# trace invocation end to end.
smoke-obs:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -q -m obs
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro trace --example min-min

bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest benchmarks/ --benchmark-only -q

#!/usr/bin/env python3
"""The paper's motivating scenario: an off-line production environment.

"Consider a production environment where a set of known tasks are to be
mapped to resources off-line before execution begins.  Minimizing the
finishing times of all the machines will provide the earliest available
times ready for these machines to execute tasks that were not initially
considered."  (paper Section 1)

This example makes that concrete:

1. A *planned batch* of 30 tasks is mapped off-line.
2. The iterative technique is applied (with the seeded wrapper from the
   paper's conclusion, so it can only help).
3. A *surprise batch* of 10 unplanned tasks arrives; it is mapped with
   machine ready times equal to the finishing times of step 2.
4. We measure how much earlier the surprise batch completes thanks to
   the iterative technique — the quantity the paper's motivation is
   about.

Run:  python examples/production_batch.py
"""

from repro import (
    Heterogeneity,
    IterativeScheduler,
    SeededIterativeScheduler,
    generate_range_based,
    get_heuristic,
)
from repro.analysis import render_comparison
from repro.core.metrics import compare_iterative


def surprise_batch_makespan(ready_times: dict[str, float], surprise_etc) -> float:
    """Map the surprise batch on machines with the given ready times."""
    heuristic = get_heuristic("min-min")
    mapping = heuristic.map_tasks(
        surprise_etc, [ready_times[m] for m in surprise_etc.machines]
    )
    return mapping.makespan()


def main() -> None:
    machines = 6
    planned = generate_range_based(30, machines, Heterogeneity.HILO, rng=12)
    surprise = generate_range_based(10, machines, Heterogeneity.HILO, rng=8)

    heuristic = get_heuristic("sufferage")

    # --- plan A: original mapping only -------------------------------
    original = heuristic.map_tasks(planned)
    ready_a = original.machine_finish_times()

    # --- plan B: iterative technique (seeded, monotone) --------------
    result = SeededIterativeScheduler(get_heuristic("sufferage")).run(planned)
    ready_b = result.final_finish_times

    print("Planned batch: 30 tasks on 6 machines (Sufferage)")
    print(render_comparison(compare_iterative(result)))

    span_a = surprise_batch_makespan(ready_a, surprise)
    span_b = surprise_batch_makespan(ready_b, surprise)
    print("\nSurprise batch of 10 unplanned tasks, mapped with Min-Min on")
    print("the machines' post-batch ready times:")
    print(f"  after original mapping only : finishes at {span_a:.6g}")
    print(f"  after iterative technique   : finishes at {span_b:.6g}")
    if span_b < span_a:
        print(f"  -> the surprise batch finishes {span_a - span_b:.6g} earlier "
              f"({100 * (span_a - span_b) / span_a:.1f}%)")
    else:
        print("  -> no improvement on this instance (the technique offers no "
              "guarantee for greedy heuristics — the paper's point)")

    # --- plain (unseeded) iterations for contrast ---------------------
    plain = IterativeScheduler(get_heuristic("sufferage")).run(planned)
    if plain.makespan_increased():
        print("\nNote: the *unseeded* iterative run increased its makespan on "
              "this instance,\nexactly the failure mode the paper documents "
              "for Sufferage (Section 3.7).")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Replay every worked example of the paper, table by table.

Walks through Sections 3.2–3.7: for each heuristic (Min-Min, MCT, MET,
SWA, K-percent Best, Sufferage) it prints the reconstructed ETC matrix,
the original mapping, the first iterative mapping, and the documented
makespan increase — the complete set of paper Tables 1–17 and the Gantt
charts of Figures 3–19.

Run:  python examples/paper_walkthrough.py
"""

from repro.analysis import (
    render_allocation_table,
    render_etc_table,
    render_gantt,
    render_kpb_table,
    render_sufferage_table,
    render_swa_table,
)
from repro.core import IterativeScheduler, ScriptedTieBreaker
from repro.etc import (
    KPB_EXAMPLE_PERCENT,
    SWA_EXAMPLE_HIGH_THRESHOLD,
    SWA_EXAMPLE_LOW_THRESHOLD,
    kpb_example_etc,
    mct_met_example_etc,
    minmin_example_etc,
    sufferage_example_etc,
    swa_example_etc,
)
from repro.heuristics import (
    MCT,
    MET,
    KPercentBest,
    MinMin,
    Sufferage,
    SwitchingAlgorithm,
)


def banner(text: str) -> None:
    print("\n" + "=" * 72)
    print(text)
    print("=" * 72)


def show(mapping, label: str) -> None:
    print(f"\n{label}")
    print(render_allocation_table(mapping))
    print()
    print(render_gantt(mapping))
    print(f"completion times: {mapping.machine_finish_times()}"
          f"  (makespan machine: {mapping.makespan_machine()})")


def minmin_example() -> None:
    banner("Section 3.2 — Min-Min (Tables 1-3, Figures 3-4)")
    etc = minmin_example_etc()
    print(render_etc_table(etc, "Table 1. ETC matrix"))
    show(MinMin().map_tasks(etc), "Table 2 / Figure 3 — original mapping")
    sub = etc.without_machine("m1", ["t4"])
    iterative = MinMin().map_tasks(sub, tie_breaker=ScriptedTieBreaker([1]))
    show(iterative, "Table 3 / Figure 4 — first iterative mapping "
                    "(t2's tie broken to m3 this time)")
    print("\n=> makespan increased 5 -> 6 under RANDOM tie-breaking.")


def mct_met_examples() -> None:
    etc = mct_met_example_etc()
    for cls, section, tables in (
        (MCT, "3.3", "Tables 5-6, Figures 6-7"),
        (MET, "3.4", "Tables 7-8, Figures 9-10"),
    ):
        banner(f"Section {section} — {cls.name.upper()} (Table 4, {tables})")
        print(render_etc_table(etc, "Table 4. ETC matrix"))
        show(cls().map_tasks(etc), "Original mapping")
        sub = etc.without_machine("m1", ["t1"])
        iterative = cls().map_tasks(sub, tie_breaker=ScriptedTieBreaker([1]))
        show(iterative, "First iterative mapping (t2's tie broken to m3)")
        print("\n=> makespan increased 4 -> 5 under RANDOM tie-breaking.")


def swa_example() -> None:
    banner("Section 3.5 — Switching Algorithm (Tables 9-11, Figures 11-12)")
    etc = swa_example_etc()
    print(render_etc_table(etc, "Table 9. ETC matrix"))
    swa = SwitchingAlgorithm(
        low=SWA_EXAMPLE_LOW_THRESHOLD, high=SWA_EXAMPLE_HIGH_THRESHOLD
    )
    result = IterativeScheduler(swa).run(etc)
    print("\nTable 10 — original mapping (BI / CTs / heuristic):")
    print(render_swa_table(result.original.trace, etc.machines))
    print(render_gantt(result.original.mapping))
    first = result.iterations[1]
    print("\nTable 11 — first iterative mapping:")
    print(render_swa_table(first.trace, first.etc.machines))
    print(render_gantt(first.mapping))
    print(f"\n=> makespan increased {result.makespans()[0]:g} -> "
          f"{result.makespans()[1]:g} with DETERMINISTIC ties.")


def kpb_example() -> None:
    banner("Section 3.6 — K-percent Best, k=70% (Tables 12-14, Figures 15-16)")
    etc = kpb_example_etc()
    print(render_etc_table(etc, "Table 12. ETC matrix"))
    result = IterativeScheduler(KPercentBest(percent=KPB_EXAMPLE_PERCENT)).run(etc)
    print("\nTable 13 — original mapping (best 2 of 3 machines per task):")
    print(render_kpb_table(result.original.trace, etc.machines))
    first = result.iterations[1]
    print("\nTable 14 — first iterative mapping (subset shrinks to 1 -> MET):")
    print(render_kpb_table(first.trace, first.etc.machines))
    print(f"\n=> makespan increased {result.makespans()[0]:g} -> "
          f"{result.makespans()[1]:g} with DETERMINISTIC ties.")


def sufferage_example() -> None:
    banner("Section 3.7 — Sufferage (Tables 15-17, Figures 18-19)")
    etc = sufferage_example_etc()
    print(render_etc_table(etc, "Table 15. ETC matrix"))
    result = IterativeScheduler(Sufferage()).run(etc)
    print("\nTable 16 — original mapping (per-pass sufferage trace):")
    print(render_sufferage_table(result.original.trace))
    print(render_gantt(result.original.mapping))
    first = result.iterations[1]
    print("\nTable 17 — first iterative mapping:")
    print(render_sufferage_table(first.trace))
    print(render_gantt(first.mapping))
    print(f"\n=> makespan increased {result.makespans()[0]:g} -> "
          f"{result.makespans()[1]:g} with DETERMINISTIC ties.")


def main() -> None:
    minmin_example()
    mct_met_examples()
    swa_example()
    kpb_example()
    sufferage_example()
    banner("Section 5 — conclusions reproduced")
    print("""\
* Min-Min, MCT, MET: iteration-invariant under deterministic ties
  (theorems; see tests/integration/test_paper_theorems.py), makespan
  can increase under random ties (examples above).
* SWA, K-percent Best, Sufferage: makespan can increase even under
  deterministic ties (examples above).
* Genitor / any seeded heuristic: improvement or no change, never worse
  (repro.core.seeding.SeededIterativeScheduler).""")


if __name__ == "__main__":
    main()

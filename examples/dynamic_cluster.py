#!/usr/bin/env python3
"""Dynamic HC cluster simulation (the SWA/KPB/Sufferage home turf).

The paper notes that SWA, K-percent Best and Sufferage come from
Maheswaran et al.'s *dynamic* mapping study.  This example runs the
discrete-event simulator in that regime: tasks arrive as a Poisson
stream and are mapped on-line (immediate mode) or in batches, and we
compare policies on makespan and mean queueing delay.

Run:  python examples/dynamic_cluster.py
"""

from repro.etc import Heterogeneity, generate_range_based
from repro.heuristics import get_heuristic
from repro.sim import (
    DynamicHCSimulation,
    KPBOnline,
    MCTOnline,
    METOnline,
    OLBOnline,
    SWAOnline,
    poisson_workload,
)


def main() -> None:
    etc = generate_range_based(120, 8, Heterogeneity.HIHI, rng=11)
    # arrival rate chosen so the system is moderately loaded
    workload = poisson_workload(etc, rate=1.0 / 40_000.0, rng=12)

    print(f"{etc.num_tasks} tasks arriving over "
          f"~{max(workload.arrivals):,.0f} time units on "
          f"{etc.num_machines} machines\n")

    rows = []
    for label, kwargs in [
        ("on-line MCT", dict(policy=MCTOnline())),
        ("on-line MET", dict(policy=METOnline())),
        ("on-line OLB", dict(policy=OLBOnline())),
        ("on-line KPB (k=50%)", dict(policy=KPBOnline(percent=50.0))),
        ("on-line SWA", dict(policy=SWAOnline())),
        ("batch Min-Min", dict(batch_heuristic=get_heuristic("min-min"),
                               batch_interval=25_000.0)),
        ("batch Sufferage", dict(batch_heuristic=get_heuristic("sufferage"),
                                 batch_interval=25_000.0)),
    ]:
        trace = DynamicHCSimulation(workload, **kwargs).run()
        rows.append((label, trace.makespan(), trace.mean_queue_wait()))

    print(f"{'policy':<22}{'makespan':>14}{'mean wait':>14}")
    print("-" * 50)
    best = min(r[1] for r in rows)
    for label, span, wait in sorted(rows, key=lambda r: r[1]):
        marker = "  <- best" if span == best else ""
        print(f"{label:<22}{span:>14,.0f}{wait:>14,.0f}{marker}")

    print("""
Notes: on-line MET ignores load and serialises everything onto each
task's fastest machine; OLB ignores heterogeneity; MCT/KPB/SWA balance
both, and the batch heuristics trade mapping latency for better
placement — the qualitative ordering Maheswaran et al. report.""")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Hunt for fresh makespan-increase witnesses with the search toolkit.

The paper proves the invariance theorems and exhibits one hand-crafted
counterexample per hybrid heuristic.  This example uses
``repro.analysis.counterexamples`` to mass-produce such witnesses:

1. random sampling finds deterministic-tie increase witnesses for
   Sufferage / SWA / K-percent Best;
2. the same search run against MCT comes back empty-handed (as the
   theorem demands);
3. switching to random tie-breaking over a tie-rich integer grid finds
   the MET/MCT/Min-Min random-tie witnesses;
4. a targeted hill-climb reconstructs an instance hitting *exact*
   completion-time targets — the procedure used to rebuild the paper's
   Sufferage example (Table 15).

Run:  python examples/witness_hunt.py
"""

import numpy as np

from repro.analysis import find_makespan_increase, search_counterexample
from repro.core import RandomTieBreaker
from repro.heuristics import KPercentBest, SwitchingAlgorithm


def main() -> None:
    print("=" * 72)
    print("1. Deterministic-tie witnesses for the hybrid heuristics")
    print("=" * 72)
    for label, heuristic in [
        ("sufferage", "sufferage"),
        ("switching-algorithm", SwitchingAlgorithm(low=0.40, high=0.49)),
        ("k-percent-best (70%)", KPercentBest(percent=70.0)),
    ]:
        witness = find_makespan_increase(
            heuristic, num_tasks=8, num_machines=3, trials=5000, rng=0
        )
        assert witness is not None
        print(f"\n{label}: {witness.describe()}")
        print(witness.etc.pretty())
        print(f"makespans per iteration: {witness.result.makespans()}")

    print()
    print("=" * 72)
    print("2. The same hunt against MCT (theorem says: impossible)")
    print("=" * 72)
    witness = find_makespan_increase(
        "mct", num_tasks=8, num_machines=3, trials=5000, rng=0
    )
    print(f"witness found: {witness}")
    assert witness is None

    print()
    print("=" * 72)
    print("3. Random-tie witnesses for the invariant trio")
    print("=" * 72)
    for name in ("met", "mct", "min-min"):
        rng = np.random.default_rng(99)
        witness = find_makespan_increase(
            name,
            num_tasks=5,
            num_machines=3,
            trials=5000,
            value_grid=[1.0, 2.0, 3.0],
            tie_breaker_factory=lambda: RandomTieBreaker(rng),
            rng=0,
        )
        assert witness is not None
        print(f"\n{name}: {witness.describe()}")
        print(witness.etc.pretty())

    print()
    print("=" * 72)
    print("4. Targeted reconstruction: Sufferage instance with original")
    print("   CTs (10, 9.5, 9.5) and first-iteration CTs (10.5, 8.5)")
    print("   — the exact numbers of paper Tables 16-17")
    print("=" * 72)
    witness = search_counterexample(
        "sufferage",
        num_tasks=9,
        num_machines=3,
        target_original=[10.0, 9.5, 9.5],
        target_first_iteration=[10.5, 8.5],
        restarts=60,
        steps=3000,
        rng=12345,
    )
    if witness is None:
        print("search did not converge within this budget "
              "(increase restarts/steps)")
    else:
        print(witness.etc.pretty())
        print(f"makespans per iteration: {witness.result.makespans()}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Robustness of mappings when the ETC estimates are wrong.

ETC values are *estimates* (paper Section 2).  This example asks the
follow-up question the group's companion papers study: if actual
execution times deviate from the estimates, which heuristic's mapping
degrades most gracefully — and does the iterative technique change the
answer?

1. map one instance with several heuristics;
2. compute each mapping's closed-form robustness radius against a
   shared deadline;
3. sample realised makespans under lognormal multiplicative error;
4. repeat for the seeded iterative technique's final configuration.

Run:  python examples/robustness_analysis.py
"""

from repro.analysis import (
    makespan_degradation,
    robustness_radius,
    sparkline,
)
from repro.core import SeededIterativeScheduler
from repro.core.seeding import replay_mapping
from repro.etc import Heterogeneity, generate_range_based
from repro.heuristics import get_heuristic

HEURISTICS = ("min-min", "mct", "sufferage", "k-percent-best", "met", "olb")


def main() -> None:
    etc = generate_range_based(40, 8, Heterogeneity.HIHI, rng=31)
    deadline = 1.3 * get_heuristic("min-min").map_tasks(etc).makespan()
    print(f"instance: 40 tasks x 8 machines, shared deadline {deadline:,.0f}\n")

    print(f"{'heuristic':<16}{'makespan':>12}{'radius':>9}{'mean deg':>10}"
          f"{'P(miss)':>9}   realised spread")
    print("-" * 75)
    for name in HEURISTICS:
        mapping = get_heuristic(name).map_tasks(etc)
        radius = robustness_radius(mapping, bound=deadline)
        summary = makespan_degradation(mapping, error_cv=0.2, samples=300, rng=7)
        samples = [
            summary.mean_realised * 0.9,
            summary.mean_realised,
            summary.worst_realised,
        ]
        print(
            f"{name:<16}{mapping.makespan():>12,.0f}{radius:>+9.3f}"
            f"x{summary.mean_degradation:>8.3f}{summary.violation_rate:>9.2f}"
            f"   min..mean..worst {sparkline(samples)}"
        )

    print("""
Reading: 'radius' is the largest uniform relative ETC error the mapping
tolerates before missing the shared deadline (negative = already over);
'P(miss)' is the Monte-Carlo probability of exceeding 1.2x the mapping's
own estimated makespan under CV=0.2 lognormal noise.""")

    # does the iterative technique change fragility?
    result = SeededIterativeScheduler(get_heuristic("sufferage")).run(etc)
    final_assignments = {}
    for rec in result.iterations:
        for task in rec.frozen_tasks:
            final_assignments[task] = rec.frozen_machine
    last = result.iterations[-1]
    for a in last.mapping.assignments:
        final_assignments.setdefault(a.task, a.machine)
    final = replay_mapping(etc, None, final_assignments)
    original = result.original.mapping
    deg_orig = makespan_degradation(original, error_cv=0.2, samples=300, rng=8)
    deg_final = makespan_degradation(final, error_cv=0.2, samples=300, rng=8)
    print("Seeded iterative technique (Sufferage):")
    print(f"  original mapping : mean realised {deg_orig.mean_realised:,.0f}")
    print(f"  final commitments: mean realised {deg_final.mean_realised:,.0f}")
    ratio = deg_final.mean_realised / deg_orig.mean_realised
    print(f"  ratio x{ratio:.4f} — the technique "
          f"{'hardens' if ratio < 1 else 'does not harden'} this instance "
          f"against estimation error")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Cross-heuristic tournament on the standard ETC classes.

Reproduces the Braun et al.-style comparison the paper's heuristic suite
comes from: mean original-mapping makespan for all eleven registered
heuristics across heterogeneity x consistency classes, followed by the
paper's own question — what does the iterative technique do to each of
them?

Run:  python examples/heuristic_tournament.py          (full, ~1 min)
      python examples/heuristic_tournament.py --quick  (small grid)
"""

import sys

from repro.analysis import (
    format_comparison_table,
    format_improvement_table,
    heuristic_comparison,
    improvement_study,
)
from repro.etc import Consistency, Heterogeneity


def main() -> None:
    quick = "--quick" in sys.argv
    tasks, machines, instances = (20, 5, 5) if quick else (40, 8, 12)

    print("=" * 72)
    print("Part 1 — mean makespan by heuristic (original mappings)")
    print("=" * 72)
    rows = heuristic_comparison(
        (
            "genitor", "min-min", "max-min", "duplex", "mct", "met",
            "sufferage", "k-percent-best", "switching-algorithm", "olb",
            "random",
        ),
        num_tasks=tasks,
        num_machines=machines,
        instances=instances,
        heterogeneities=(Heterogeneity.HIHI, Heterogeneity.LOLO),
        consistencies=(Consistency.CONSISTENT, Consistency.INCONSISTENT),
        seed=0,
        heuristic_kwargs={
            "genitor": {"iterations": 300 if quick else 1500,
                        "population_size": 30}
        },
    )
    print(format_comparison_table(rows))

    print()
    print("=" * 72)
    print("Part 2 — what the iterative technique does to each heuristic")
    print("         (deterministic ties; hihi / inconsistent)")
    print("=" * 72)
    study = improvement_study(
        heuristics=(
            "min-min", "mct", "met",
            "sufferage", "k-percent-best", "switching-algorithm",
        ),
        num_tasks=tasks,
        num_machines=machines,
        instances=instances,
        tie_policies=("deterministic",),
        seed=1,
    )
    print(format_improvement_table(study))
    print("""
Reading the table: the paper's invariant trio (min-min / mct / met)
shows 0% mapping changes — the technique is provably a no-op for them.
The hybrid heuristics change their mappings frequently; some machines
finish earlier (m-impr%), some later (m-wors%), and occasionally the
makespan itself increases (ms-inc%) even though every tie was broken
deterministically — the paper's central caveat.""")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""How far from optimal are the heuristics?  Ask the exact solver.

Braun et al. included an A* tree search among their eleven methods; the
library's branch-and-bound plays that role as an *optimality oracle*.
On brute-force-scale instances it proves the true minimum makespan, so
we can report exact optimality gaps — and watch the iterative searchers
close them when seeded with Min-Min.

Run:  python examples/exact_vs_heuristics.py
"""

import numpy as np

from repro.etc import Heterogeneity, generate_range_based
from repro.heuristics import BranchAndBound, get_heuristic

GREEDY = ("min-min", "max-min", "mct", "met", "sufferage",
          "k-percent-best", "switching-algorithm", "olb")
SEARCHERS = (
    ("genitor", {"iterations": 2000, "population_size": 30, "rng": 0}),
    ("simulated-annealing", {"steps": 10000, "rng": 0}),
    ("tabu-search", {"max_hops": 200, "rng": 0}),
    ("gsa", {"iterations": 2000, "rng": 0}),
)


def main() -> None:
    instances = [
        generate_range_based(10, 4, Heterogeneity.HIHI, rng=seed)
        for seed in range(8)
    ]
    optima = []
    total_nodes = 0
    for etc in instances:
        oracle = BranchAndBound()
        optima.append(oracle.map_tasks(etc).makespan())
        assert oracle.proven_optimal
        total_nodes += oracle.nodes_expanded
    print(f"exact optima for 8 instances (10 tasks x 4 machines) proven with "
          f"{total_nodes} B&B nodes total\n")

    rows = []
    for name in GREEDY:
        gaps = [
            get_heuristic(name).map_tasks(etc).makespan() / opt - 1.0
            for etc, opt in zip(instances, optima)
        ]
        rows.append((name, float(np.mean(gaps)), float(np.max(gaps))))
    for name, kwargs in SEARCHERS:
        gaps = []
        for etc, opt in zip(instances, optima):
            seed_map = get_heuristic("min-min").map_tasks(etc).to_dict()
            span = get_heuristic(name, **kwargs).map_tasks(
                etc, seed_mapping=seed_map
            ).makespan()
            gaps.append(span / opt - 1.0)
        rows.append((f"{name} (seeded)", float(np.mean(gaps)), float(np.max(gaps))))

    print(f"{'method':<28}{'mean gap':>10}{'worst gap':>11}")
    print("-" * 49)
    for name, mean, worst in sorted(rows, key=lambda r: r[1]):
        print(f"{name:<28}{100 * mean:>9.2f}%{100 * worst:>10.2f}%")

    print("""
The ordering mirrors Braun et al.: iterative searchers land within a
few percent of optimal, the Min-Min family sits mid-pack, and the
one-dimensional policies (MET ignores load, OLB ignores heterogeneity)
trail far behind.  On instances this small the exact solver itself is
cheap — it only becomes intractable at realistic scale, which is why
the field runs on heuristics at all.""")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Pre-loaded machines, freeze-policy variants and trajectories.

The paper's proofs take initial ready times of zero "without loss of
generality", but production machines are rarely idle: they are still
draining earlier work.  This example exercises the general machinery:

1. a batch is mapped onto machines with *non-zero initial ready times*
   (each machine pre-loaded with ~40% of a mean machine-load of work);
2. the invariance theorems still hold in this regime (demonstrated);
3. the iterative technique runs under all three freeze policies and we
   compare their finishing-time profiles;
4. the per-iteration makespan trajectory is rendered as an ASCII chart.

Run:  python examples/preloaded_cluster.py
"""

from repro.analysis import render_comparison, render_series, sparkline, trajectory_of
from repro.core import IterativeScheduler
from repro.core.freezing import FREEZE_POLICIES
from repro.core.metrics import compare_iterative
from repro.etc import Heterogeneity, busy_fraction_ready_times, generate_range_based
from repro.heuristics import get_heuristic


def main() -> None:
    etc = generate_range_based(36, 8, Heterogeneity.HILO, rng=21)
    ready = busy_fraction_ready_times(etc, fraction=0.4, rng=22)
    print("Initial ready times (machines pre-loaded ~40% of a mean load):")
    for machine, value in ready.items():
        print(f"  {machine}: {value:,.0f}")

    # 1-2. the invariance theorems survive non-zero ready times
    print("\nTheorem check with pre-loaded machines:")
    for name in ("min-min", "mct", "met"):
        result = IterativeScheduler(get_heuristic(name)).run(etc, ready_times=ready)
        status = "unchanged" if not result.mapping_changed() else "CHANGED (?)"
        print(f"  {name:<9} iterative mappings {status}")

    # 3. freeze-policy comparison under Sufferage
    print("\nFreeze-policy comparison (Sufferage):")
    for label, policy in FREEZE_POLICIES.items():
        scheduler = IterativeScheduler(
            get_heuristic("sufferage"), freeze_policy=policy
        )
        result = scheduler.run(etc, ready_times=ready)
        finishes = sorted(result.final_finish_times.values())
        print(
            f"  {label:<16} final makespan {max(finishes):>12,.0f}   "
            f"finish spread {sparkline(finishes)}"
        )

    # 4. trajectory of the paper's default policy
    result = IterativeScheduler(get_heuristic("sufferage")).run(
        etc, ready_times=ready
    )
    traj = trajectory_of(result)
    print("\nPer-iteration makespan trajectory (paper's makespan rule):")
    print(render_series(traj.makespans, width=40, height=8))
    print(f"monotone: {traj.monotone()}")

    print("\nOriginal vs iterative finishing times:")
    print(render_comparison(compare_iterative(result)))


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: map a batch of tasks, then run the iterative technique.

Demonstrates the core public API in ~40 lines:

1. generate a synthetic ETC matrix (Braun et al. range-based method);
2. map it with Min-Min;
3. run the paper's iterative non-makespan minimisation technique;
4. compare per-machine finishing times, original vs iterative.

Run:  python examples/quickstart.py
"""

from repro import (
    Heterogeneity,
    IterativeScheduler,
    compare_iterative,
    generate_range_based,
    get_heuristic,
)
from repro.analysis import render_comparison, render_gantt, render_iteration_overview


def main() -> None:
    # 1. A 12-task / 4-machine heterogeneous suite, reproducible by seed.
    etc = generate_range_based(
        num_tasks=12, num_machines=4, heterogeneity=Heterogeneity.HIHI, rng=42
    )
    print("ETC matrix (tasks x machines):")
    print(etc.pretty())

    # 2. The original mapping.
    heuristic = get_heuristic("min-min")
    mapping = heuristic.map_tasks(etc)
    print("\nOriginal Min-Min mapping:")
    print(render_gantt(mapping))
    print(f"\nmakespan = {mapping.makespan():.4g} "
          f"on machine {mapping.makespan_machine()}")

    # 3. The iterative technique: freeze the makespan machine, re-map the
    #    rest, repeat (paper Section 2).
    result = IterativeScheduler(heuristic).run(etc)
    print("\nIterative run:")
    print(render_iteration_overview(result))

    # 4. Did any machine finish earlier?  (For Min-Min with deterministic
    #    ties the paper proves the answer is always "no change".)
    print("\nOriginal vs iterative finishing times:")
    print(render_comparison(compare_iterative(result)))

    # Try the same with a heuristic the technique *does* reshuffle:
    result = IterativeScheduler(get_heuristic("sufferage")).run(etc)
    print("\nSame instance under Sufferage:")
    print(render_comparison(compare_iterative(result)))


if __name__ == "__main__":
    main()

"""Ablation benches for the design parameters DESIGN.md calls out.

These sweep the free parameters the paper (or its source literature)
fixes by fiat, showing how sensitive each result is:

* K-percent Best's ``k`` — interpolates MET (k = 100/M) .. MCT (k = 100)
  and drives the subset-shrink failure mode of Tables 12–14;
* SWA's (low, high) thresholds — the example's BI trace only pins
  low ∈ (4/13, 0.49);
* Genitor's search budget — the GA quality/time trade-off;
* Segmented Min-Min's segment count — Wu & Shu's design knob;
* the tie tolerance — witnesses rely on exact-decimal ties surviving
  float arithmetic.
"""

import numpy as np

from repro.core.iterative import IterativeScheduler
from repro.core.ties import tied_argmin
from repro.etc.generation import Consistency, generate_ensemble
from repro.etc.witness import (
    SWA_EXAMPLE_HIGH_THRESHOLD,
    swa_example_etc,
)
from repro.heuristics import (
    Genitor,
    KPercentBest,
    MinMin,
    SegmentedMinMin,
    SwitchingAlgorithm,
)


def test_bench_kpb_percent_sweep(benchmark, paper_output):
    """Mean makespan as k sweeps MET-like -> MCT-like."""
    instances = generate_ensemble(10, 40, 8, rng=0)
    percents = (12.5, 25.0, 50.0, 70.0, 100.0)

    def run():
        means = {}
        for percent in percents:
            spans = [
                KPercentBest(percent=percent).map_tasks(etc).makespan()
                for etc in instances
            ]
            means[percent] = float(np.mean(spans))
        return means

    means = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"k = {p:>5.1f}%  mean makespan {m:.6g}" for p, m in means.items()]
    paper_output("Ablation — KPB percent sweep (40x8 hihi/inconsistent)",
                 "\n".join(lines))
    # k=100 is exactly MCT and k=12.5 is MET; some intermediate k must
    # beat both extremes on inconsistent matrices (the reason KPB exists)
    best_middle = min(means[25.0], means[50.0], means[70.0])
    assert best_middle < means[100.0]
    assert best_middle < means[12.5]


def test_bench_swa_threshold_sweep(benchmark, paper_output):
    """The paper's SWA example across the admissible low-threshold
    interval — identical outcome everywhere inside (4/13, 0.49)."""
    etc = swa_example_etc()
    lows = (0.32, 0.36, 0.40, 0.44, 0.48)

    def run():
        outcomes = {}
        for low in lows:
            swa = SwitchingAlgorithm(low=low, high=SWA_EXAMPLE_HIGH_THRESHOLD)
            result = IterativeScheduler(swa).run(etc)
            outcomes[low] = result.makespans()[:2]
        return outcomes

    outcomes = benchmark(run)
    lines = [f"low = {low:.2f}: makespans {spans}" for low, spans in outcomes.items()]
    paper_output("Ablation — SWA low-threshold sweep on the paper example",
                 "\n".join(lines))
    assert all(spans == (6.0, 6.5) for spans in outcomes.values())
    # outside the interval the example changes character
    swa = SwitchingAlgorithm(low=0.05, high=SWA_EXAMPLE_HIGH_THRESHOLD)
    off = IterativeScheduler(swa).run(etc).makespans()[:2]
    assert off != (6.0, 6.5)


def test_bench_genitor_budget_sweep(benchmark, paper_output):
    """GA quality vs budget: more offspring => no worse mean makespan."""
    instances = generate_ensemble(5, 30, 6, rng=1)
    budgets = (0, 100, 500, 2000)

    def run():
        means = {}
        for budget in budgets:
            spans = []
            for i, etc in enumerate(instances):
                g = Genitor(iterations=budget, population_size=30, rng=i)
                spans.append(g.map_tasks(etc).makespan())
            means[budget] = float(np.mean(spans))
        return means

    means = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"iterations = {b:>5}  mean makespan {m:.6g}" for b, m in means.items()]
    paper_output("Ablation — Genitor budget sweep (30x6)", "\n".join(lines))
    assert means[2000] <= means[100] <= means[0]


def test_bench_segmented_minmin_segments(benchmark, paper_output):
    """Wu & Shu's knob: segment count on consistent matrices."""
    instances = generate_ensemble(
        8, 64, 8, consistency=Consistency.CONSISTENT, rng=2
    )
    counts = (1, 2, 4, 8)

    def run():
        means = {}
        for count in counts:
            spans = [
                SegmentedMinMin(segments=count).map_tasks(etc).makespan()
                for etc in instances
            ]
            means[count] = float(np.mean(spans))
        means["min-min"] = float(
            np.mean([MinMin().map_tasks(etc).makespan() for etc in instances])
        )
        return means

    means = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"segments = {k!s:>8}  mean makespan {m:.6g}" for k, m in means.items()]
    paper_output(
        "Ablation — Segmented Min-Min segment count (64x8 consistent)",
        "\n".join(lines),
    )
    # segmentation must beat plain Min-Min on this class (Wu & Shu)
    assert min(means[2], means[4], means[8]) < means["min-min"]


def test_bench_tie_tolerance(benchmark, paper_output):
    """Tie detection must group decimal ties despite float noise and
    must scale relatively at large magnitudes."""
    def run():
        checks = 0
        for scale in (1.0, 1e3, 1e9, 1e12):
            vals = np.array([2.0, 2.0, 5.0]) * scale
            noisy = vals + np.array([0.0, vals[1] * 1e-12, 0.0])
            assert tied_argmin(noisy).tolist() == [0, 1]
            checks += 1
        return checks

    checks = benchmark(run)
    paper_output(
        "Ablation — tie tolerance across magnitudes",
        f"{checks} magnitude scales verified: relative tolerance groups "
        "decimal ties at every scale",
    )
    assert checks == 4

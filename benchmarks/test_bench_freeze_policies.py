"""Ablation: alternative freeze policies for the iterative technique.

The paper freezes the makespan machine; Section 2 notes that minimising
"the average finishing time" is an equally valid reading of the goal.
This bench sweeps the three freeze policies and reports, per policy,
the average finishing time and the makespan-increase rate over a random
ensemble — quantifying whether the paper's choice is the right default.
"""

import numpy as np

from repro.core.freezing import FREEZE_POLICIES
from repro.core.iterative import IterativeScheduler
from repro.etc.generation import generate_ensemble
from repro.heuristics import Sufferage


def test_bench_freeze_policy_sweep(benchmark, paper_output):
    instances = generate_ensemble(15, 25, 6, rng=0)

    def run():
        outcomes = {}
        for name, policy in FREEZE_POLICIES.items():
            avg_finishes, increases, final_makespans = [], 0, []
            for etc in instances:
                scheduler = IterativeScheduler(Sufferage(), freeze_policy=policy)
                result = scheduler.run(etc)
                finishes = list(result.final_finish_times.values())
                avg_finishes.append(float(np.mean(finishes)))
                final_makespans.append(max(finishes))
                increases += result.makespan_increased()
            outcomes[name] = (
                float(np.mean(avg_finishes)),
                float(np.mean(final_makespans)),
                increases / len(instances),
            )
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"{name:<18} avg finish {avg:>12.6g}  final makespan {span:>12.6g}  "
        f"ms-increase {100 * rate:5.1f}%"
        for name, (avg, span, rate) in outcomes.items()
    ]
    paper_output("Ablation — freeze policy sweep (Sufferage, 25x6 x15)",
                 "\n".join(lines))

    # The paper's makespan rule must keep the final makespan no worse
    # than the dual policy: freezing the best machine first lets the
    # worst machine keep degrading.
    assert outcomes["makespan"][1] <= outcomes["earliest-finish"][1] * 1.05
    # with zero initial ready times most-loaded == makespan exactly
    assert outcomes["most-loaded"] == outcomes["makespan"]

"""E15–E17: regenerate paper Tables 15–17 and Figures 18–19 (Sufferage).

Paper-reported values (Section 3.7 prose; deterministic ties):

* Table 16 / Figure 18 — original mapping (multi-pass trace):
  m1 = 10, m2 = 9.5, m3 = 9.5; makespan machine m1;
* Table 17 / Figure 19 — first iterative mapping: m2 = 10.5, m3 = 8.5;
  makespan increases 10 -> 10.5.
"""

import pytest

from repro.analysis.gantt import render_gantt
from repro.analysis.tables import render_etc_table, render_sufferage_table
from repro.core.iterative import IterativeScheduler
from repro.etc.witness import sufferage_example_etc
from repro.heuristics import Sufferage


@pytest.fixture(scope="module")
def etc():
    return sufferage_example_etc()


def test_bench_table15_etc_matrix(benchmark, etc, paper_output):
    table = benchmark(
        render_etc_table, etc, "Table 15. ETC matrix for Sufferage example"
    )
    paper_output("E15 / Table 15", table)
    assert "t8" in table


def test_bench_table16_original_mapping(benchmark, etc, paper_output):
    def run():
        s = Sufferage()
        return s, s.map_tasks(etc)

    s, mapping = benchmark(run)
    paper_output(
        "E16 / Table 16 — Sufferage original mapping (per-pass trace)",
        render_sufferage_table(s.last_trace),
    )
    paper_output("Figure 18 — Gantt", render_gantt(mapping))
    assert mapping.machine_finish_times() == {"m1": 10.0, "m2": 9.5, "m3": 9.5}
    assert mapping.makespan_machine() == "m1"
    assert len(s.last_trace) >= 4


def test_bench_table17_first_iterative_mapping(benchmark, etc, paper_output):
    result = benchmark(lambda: IterativeScheduler(Sufferage()).run(etc))
    first = result.iterations[1]
    paper_output(
        "E17 / Table 17 — Sufferage first iterative mapping (per-pass trace)",
        render_sufferage_table(first.trace),
    )
    paper_output("Figure 19 — Gantt", render_gantt(first.mapping))
    assert first.finish_times() == {"m2": 10.5, "m3": 8.5}
    assert result.makespans()[:2] == (10.0, 10.5)
    assert result.makespan_increased()

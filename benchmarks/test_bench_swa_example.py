"""E9–E11: regenerate paper Tables 9–11 and Figures 11–12 (SWA).

Paper-reported values (Section 3.5 prose; deterministic tie-breaking):

* Table 10 / Figure 11 — original: BI trace x, 0, 0, 1/3, 2/3;
  heuristics MCT, MCT, MCT, MCT, MET; m1 = 6, m2 = 5, m3 = 5;
* Table 11 / Figure 12 — first iterative mapping: BI trace
  x, 0, 1/2, 4/13; heuristics MCT, MCT, MET, MCT; m2 = 4, m3 = 6.5;
  makespan increases 6 -> 6.5.
"""

import math

import pytest

from repro.analysis.gantt import render_gantt
from repro.analysis.tables import render_etc_table, render_swa_table
from repro.core.iterative import IterativeScheduler
from repro.etc.witness import (
    SWA_EXAMPLE_HIGH_THRESHOLD,
    SWA_EXAMPLE_LOW_THRESHOLD,
    swa_example_etc,
)
from repro.heuristics import SwitchingAlgorithm


@pytest.fixture(scope="module")
def etc():
    return swa_example_etc()


def _swa():
    return SwitchingAlgorithm(
        low=SWA_EXAMPLE_LOW_THRESHOLD, high=SWA_EXAMPLE_HIGH_THRESHOLD
    )


def test_bench_table9_etc_matrix(benchmark, etc, paper_output):
    table = benchmark(render_etc_table, etc, "Table 9. ETC matrix for SWA example")
    paper_output("E9 / Table 9", table)
    assert "t5" in table


def test_bench_table10_original_mapping(benchmark, etc, paper_output):
    def run():
        swa = _swa()
        return swa, swa.map_tasks(etc)

    swa, mapping = benchmark(run)
    paper_output(
        "E10 / Table 10 — SWA original mapping (BI / CTs / heuristic)",
        render_swa_table(swa.last_trace, etc.machines),
    )
    paper_output("Figure 11 — Gantt", render_gantt(mapping))
    assert mapping.machine_finish_times() == {"m1": 6.0, "m2": 5.0, "m3": 5.0}
    bis = [s.bi for s in swa.last_trace]
    assert math.isnan(bis[0])
    assert bis[1:] == pytest.approx([0.0, 0.0, 1 / 3, 2 / 3])
    assert [s.heuristic for s in swa.last_trace] == [
        "mct", "mct", "mct", "mct", "met",
    ]


def test_bench_table11_first_iterative_mapping(benchmark, etc, paper_output):
    def run():
        swa = _swa()
        return IterativeScheduler(swa).run(etc)

    result = benchmark(run)
    first = result.iterations[1]
    paper_output(
        "E11 / Table 11 — SWA first iterative mapping",
        render_swa_table(first.trace, first.etc.machines),
    )
    paper_output("Figure 12 — Gantt", render_gantt(first.mapping))
    assert first.finish_times() == {"m2": 4.0, "m3": 6.5}
    bis = [s.bi for s in first.trace]
    assert math.isnan(bis[0])
    assert bis[1:] == pytest.approx([0.0, 0.5, 4 / 13])
    assert [s.heuristic for s in first.trace] == ["mct", "mct", "met", "mct"]
    assert result.makespans()[:2] == (6.0, 6.5)
    assert result.makespan_increased()

"""E25: simulator cross-validation and throughput benches.

(a) For every heuristic, the discrete-event execution of its mapping
    measures exactly the analytic Eq. (1) finishing times.
(b) Raw scheduling throughput per heuristic (tasks mapped / second) —
    the performance envelope a downstream user cares about.
(c) Dynamic-mode sanity: on-line MCT beats on-line OLB on makespan.
"""

import pytest

from repro.etc.generation import generate_range_based
from repro.heuristics import get_heuristic, heuristic_names
from repro.sim.hcsystem import (
    DynamicHCSimulation,
    HCSystem,
    MCTOnline,
    OLBOnline,
    poisson_workload,
)


def test_bench_simulator_agrees_with_analytics(benchmark, paper_output):
    etc = generate_range_based(100, 10, rng=0)
    system = HCSystem(etc)
    mappings = {}
    for name in heuristic_names():
        kwargs = {}
        if name == "genitor":
            kwargs = {"iterations": 100, "rng": 0}
        elif name == "random":
            kwargs = {"rng": 0}
        mappings[name] = get_heuristic(name, **kwargs).map_tasks(etc)

    def run():
        deltas = {}
        for name, mapping in mappings.items():
            measured = system.measured_finish_times(mapping)
            analytic = mapping.machine_finish_times()
            deltas[name] = max(
                abs(measured[m] - analytic[m]) for m in etc.machines
            )
        return deltas

    deltas = benchmark(run)
    lines = [f"{name:<20} max |simulated - analytic| = {d:.3e}"
             for name, d in sorted(deltas.items())]
    paper_output("E25 — simulator vs Eq.(1) cross-validation (100x10)", "\n".join(lines))
    assert all(d < 1e-6 for d in deltas.values())


@pytest.mark.parametrize(
    "name", ["met", "mct", "olb", "min-min", "max-min", "sufferage",
             "k-percent-best", "switching-algorithm"]
)
def test_bench_heuristic_throughput(benchmark, name):
    """Mapping throughput on a 200x16 instance (the timing series)."""
    etc = generate_range_based(200, 16, rng=1)
    heuristic = get_heuristic(name)
    mapping = benchmark(heuristic.map_tasks, etc)
    assert mapping.is_complete()


def test_bench_genitor_throughput(benchmark):
    etc = generate_range_based(100, 8, rng=2)
    heuristic = get_heuristic("genitor", iterations=500, population_size=30, rng=0)
    mapping = benchmark.pedantic(heuristic.map_tasks, args=(etc,), rounds=3, iterations=1)
    assert mapping.is_complete()


def test_bench_dynamic_simulation(benchmark, paper_output):
    etc = generate_range_based(150, 8, rng=3)
    workload = poisson_workload(etc, rate=0.001, rng=4)

    def run():
        mct = DynamicHCSimulation(workload, policy=MCTOnline()).run()
        olb = DynamicHCSimulation(workload, policy=OLBOnline()).run()
        return mct, olb

    mct_trace, olb_trace = benchmark(run)
    paper_output(
        "E25 — dynamic mode (Poisson arrivals, 150 tasks / 8 machines)",
        f"on-line MCT makespan: {mct_trace.makespan():.6g}\n"
        f"on-line OLB makespan: {olb_trace.makespan():.6g}\n"
        f"on-line MCT mean queue wait: {mct_trace.mean_queue_wait():.6g}",
    )
    assert len(mct_trace) == etc.num_tasks
    assert mct_trace.makespan() <= olb_trace.makespan()

"""E21–E22: Genitor's seeded-iteration guarantee and the conclusion's
generalised seeding extension.

E21 (Section 3.1): "for Genitor the iterative technique will result in
either an improvement or no change" — validated over an ensemble.

E22 (Section 5): grafting Genitor-style seeding onto any heuristic
guarantees the makespan never increases across iterations — validated
for Sufferage/SWA/KPB, whose plain runs *do* increase on the paper's
witnesses.
"""

import pytest

from repro.core.iterative import IterativeScheduler
from repro.core.seeding import SeededIterativeScheduler
from repro.etc.generation import generate_ensemble
from repro.etc.witness import (
    KPB_EXAMPLE_PERCENT,
    SWA_EXAMPLE_HIGH_THRESHOLD,
    SWA_EXAMPLE_LOW_THRESHOLD,
    kpb_example_etc,
    sufferage_example_etc,
    swa_example_etc,
)
from repro.heuristics import (
    Genitor,
    KPercentBest,
    Sufferage,
    SwitchingAlgorithm,
)


def test_bench_genitor_seeded_iterations(benchmark, paper_output):
    instances = generate_ensemble(10, 20, 5, rng=0)

    def run():
        outcomes = []
        for i, etc in enumerate(instances):
            genitor = Genitor(iterations=150, population_size=20, rng=i)
            result = IterativeScheduler(genitor, seed_across_iterations=True).run(etc)
            outcomes.append(result.makespans())
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = []
    for i, spans in enumerate(outcomes):
        assert all(b <= a + 1e-9 for a, b in zip(spans, spans[1:])), spans
        lines.append(
            f"instance {i}: makespans " + " -> ".join(f"{s:.4g}" for s in spans)
        )
    paper_output("E21 — Genitor seeded iterations (improvement or no change)",
                 "\n".join(lines))


@pytest.mark.parametrize(
    "heuristic_factory,etc_factory",
    [
        (Sufferage, sufferage_example_etc),
        (
            lambda: SwitchingAlgorithm(
                low=SWA_EXAMPLE_LOW_THRESHOLD, high=SWA_EXAMPLE_HIGH_THRESHOLD
            ),
            swa_example_etc,
        ),
        (lambda: KPercentBest(percent=KPB_EXAMPLE_PERCENT), kpb_example_etc),
    ],
    ids=["sufferage", "swa", "kpb"],
)
def test_bench_seeded_iterative_cures_paper_witnesses(
    benchmark, paper_output, heuristic_factory, etc_factory
):
    etc = etc_factory()

    def run():
        plain = IterativeScheduler(heuristic_factory()).run(etc)
        seeded = SeededIterativeScheduler(heuristic_factory()).run(etc)
        return plain, seeded

    plain, seeded = benchmark(run)
    assert plain.makespan_increased()       # the paper's phenomenon
    assert not seeded.makespan_increased()  # the conclusion's cure
    paper_output(
        f"E22 — seeding cures {plain.heuristic_name}",
        f"plain makespans:  {plain.makespans()}\n"
        f"seeded makespans: {seeded.makespans()}",
    )


def test_bench_seeded_overhead_on_ensemble(benchmark, paper_output):
    """Ablation: the seeding wrapper's runtime overhead vs the plain
    scheduler on the same Sufferage workload."""
    instances = generate_ensemble(10, 25, 6, rng=1)

    def run():
        increases = 0
        for etc in instances:
            result = SeededIterativeScheduler(Sufferage()).run(etc)
            increases += result.makespan_increased()
        return increases

    increases = benchmark(run)
    assert increases == 0
    paper_output(
        "E22 ablation — seeded Sufferage over 10 random instances",
        "makespan increases observed: 0 (guaranteed by construction)",
    )

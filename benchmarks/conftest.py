"""Shared helpers for the benchmark harness.

Every bench both *regenerates* the paper artifact (printing the same
rows/series the paper reports — run with ``pytest benchmarks/
--benchmark-only -s`` to see them) and *asserts* the documented values,
so a silent regression cannot masquerade as a timing change.
"""

from __future__ import annotations

import pytest


def emit(title: str, body: str) -> None:
    """Print a regenerated paper artifact with a banner."""
    bar = "=" * 72
    print(f"\n{bar}\n{title}\n{bar}\n{body}")


@pytest.fixture
def paper_output():
    return emit

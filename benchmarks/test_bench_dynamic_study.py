"""Dynamic-environment policy study bench (Maheswaran et al. context).

Sweeps Poisson arrival rates over the full on-line/batch policy roster
and regenerates the qualitative regimes of the dynamic-mapping paper
SWA/KPB/Sufferage come from:

* completion-time-aware policies (MCT / KPB / SWA / batch modes) beat
  the heterogeneity-blind OLB at every load;
* load-blind MET degrades as load grows (everything queues on each
  task's fastest machine).
"""

from repro.analysis.dynamic_study import (
    default_policies,
    dynamic_policy_study,
    format_dynamic_table,
)


def test_bench_dynamic_rate_sweep(benchmark, paper_output):
    def run():
        return dynamic_policy_study(
            default_policies(batch_interval=10_000.0),
            rates=(5e-5, 5e-4),
            num_tasks=80,
            num_machines=8,
            instances=3,
            seed=0,
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    paper_output("Dynamic study — arrival-rate sweep", format_dynamic_table(rows))

    for rate in (5e-5, 5e-4):
        cell = {r.policy: r for r in rows if r.rate == rate}
        assert cell["mct-online"].mean_makespan <= cell["olb-online"].mean_makespan
        assert cell["mct-online"].mean_makespan <= cell["met-online"].mean_makespan

    # MET's relative penalty must grow (or at least not shrink a lot)
    # with load: compare MET/MCT ratios across rates
    low = {r.policy: r for r in rows if r.rate == 5e-5}
    high = {r.policy: r for r in rows if r.rate == 5e-4}
    ratio_low = low["met-online"].mean_makespan / low["mct-online"].mean_makespan
    ratio_high = high["met-online"].mean_makespan / high["mct-online"].mean_makespan
    assert ratio_high >= 0.8 * ratio_low  # sanity envelope, not strict monotone

"""E1–E3: regenerate paper Tables 1–3 and Figures 3–4 (Min-Min example).

Paper-reported values (Section 3.2 prose):

* Table 2 / Figure 3 — original mapping: m1 = 5, m2 = 2, m3 = 4;
  makespan machine m1;
* Table 3 / Figure 4 — first iterative mapping with the t2 tie broken
  to m3: m2 = 1, m3 = 6; makespan increases 5 -> 6.
"""

import pytest

from repro.analysis.gantt import render_gantt
from repro.analysis.tables import render_allocation_table, render_etc_table
from repro.core.ties import ScriptedTieBreaker
from repro.etc.witness import minmin_example_etc
from repro.heuristics import MinMin


@pytest.fixture(scope="module")
def etc():
    return minmin_example_etc()


def test_bench_table1_etc_matrix(benchmark, etc, paper_output):
    table = benchmark(render_etc_table, etc, "Table 1. ETC matrix for Min-Min example")
    paper_output("E1 / Table 1", table)
    assert "m3" in table


def test_bench_table2_original_mapping(benchmark, etc, paper_output):
    mapping = benchmark(lambda: MinMin().map_tasks(etc))
    paper_output(
        "E2 / Table 2 — Min-Min original mapping",
        render_allocation_table(mapping),
    )
    paper_output("E2 / Figure 3 — original mapping Gantt", render_gantt(mapping))
    assert mapping.machine_finish_times() == {"m1": 5.0, "m2": 2.0, "m3": 4.0}
    assert mapping.makespan_machine() == "m1"


def test_bench_table3_first_iterative_mapping(benchmark, etc, paper_output):
    sub = etc.without_machine("m1", ["t4"])

    def run():
        return MinMin().map_tasks(sub, tie_breaker=ScriptedTieBreaker([1]))

    mapping = benchmark(run)
    paper_output(
        "E3 / Table 3 — Min-Min first iterative mapping (tie to m3)",
        render_allocation_table(mapping),
    )
    paper_output("E3 / Figure 4 — first iterative mapping Gantt", render_gantt(mapping))
    assert mapping.machine_finish_times() == {"m2": 1.0, "m3": 6.0}
    assert mapping.makespan() == 6.0  # increased from 5.0
    assert mapping.makespan_machine() == "m3"

"""Capstone: the one-command reproduction report, benchmarked.

Runs `repro.analysis.report.build_report` (quick ensembles) and asserts
the complete paper-vs-measured verdict: all six worked examples match,
no MISMATCH anywhere, all theorem lines report zero changes.  This is
the single bench that certifies the whole reproduction end-to-end.
"""

from repro.analysis.report import build_report, paper_example_outcomes


def test_bench_paper_examples_certificate(benchmark, paper_output):
    outcomes = benchmark(paper_example_outcomes)
    lines = []
    for outcome in outcomes:
        lines.append(
            f"{outcome.label:<28} original "
            f"{'OK' if outcome.original_ok else 'MISMATCH'}   first-iteration "
            f"{'OK' if outcome.first_iteration_ok else 'MISMATCH'}"
        )
        assert outcome.ok, outcome.label
    paper_output("Reproduction certificate — all worked examples", "\n".join(lines))


def test_bench_full_report_generation(benchmark, paper_output):
    report = benchmark.pedantic(
        lambda: build_report(quick=True, seed=0), rounds=1, iterations=1
    )
    assert "MISMATCH" not in report
    assert report.count("| match |") == 6
    assert "0 mapping changes" in report
    paper_output(
        "Reproduction report (quick mode) — header",
        "\n".join(report.splitlines()[:18]),
    )

"""E4–E8: regenerate paper Tables 4–8 and Figures 6–7, 9–10 (MCT & MET).

Paper-reported values (Sections 3.3–3.4 prose):

* Tables 5, 7 / Figures 6, 9 — original mappings (both heuristics):
  m1 = 4, m2 = 3, m3 = 3; makespan machine m1;
* Tables 6, 8 / Figures 7, 10 — first iterative mappings with the t2
  tie broken to m3: m2 = 1, m3 = 5; makespan increases 4 -> 5.
"""

import pytest

from repro.analysis.gantt import render_gantt
from repro.analysis.tables import render_allocation_table, render_etc_table
from repro.core.ties import ScriptedTieBreaker
from repro.etc.witness import mct_met_example_etc
from repro.heuristics import MCT, MET


@pytest.fixture(scope="module")
def etc():
    return mct_met_example_etc()


def test_bench_table4_etc_matrix(benchmark, etc, paper_output):
    table = benchmark(
        render_etc_table, etc, "Table 4. ETC matrix for MCT and MET examples"
    )
    paper_output("E4 / Table 4", table)
    assert "t4" in table


@pytest.mark.parametrize(
    "cls,table_id,figure_id",
    [(MCT, "Table 5", "Figure 6"), (MET, "Table 7", "Figure 9")],
    ids=["mct", "met"],
)
def test_bench_original_mapping(benchmark, etc, paper_output, cls, table_id, figure_id):
    mapping = benchmark(lambda: cls().map_tasks(etc))
    paper_output(
        f"E5/E7 / {table_id} — {cls.name.upper()} original mapping",
        render_allocation_table(mapping),
    )
    paper_output(f"{figure_id} — Gantt", render_gantt(mapping))
    assert mapping.machine_finish_times() == {"m1": 4.0, "m2": 3.0, "m3": 3.0}
    assert mapping.makespan_machine() == "m1"


@pytest.mark.parametrize(
    "cls,table_id,figure_id",
    [(MCT, "Table 6", "Figure 7"), (MET, "Table 8", "Figure 10")],
    ids=["mct", "met"],
)
def test_bench_first_iterative_mapping(
    benchmark, etc, paper_output, cls, table_id, figure_id
):
    sub = etc.without_machine("m1", ["t1"])

    def run():
        return cls().map_tasks(sub, tie_breaker=ScriptedTieBreaker([1]))

    mapping = benchmark(run)
    paper_output(
        f"E6/E8 / {table_id} — {cls.name.upper()} first iterative mapping",
        render_allocation_table(mapping),
    )
    paper_output(f"{figure_id} — Gantt", render_gantt(mapping))
    assert mapping.machine_finish_times() == {"m2": 1.0, "m3": 5.0}
    assert mapping.makespan() == 5.0  # increased from 4.0
    assert mapping.makespan_machine() == "m3"

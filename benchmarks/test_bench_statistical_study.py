"""E23: the statistical study behind the paper's conclusions.

Regenerates, per heuristic × tie policy, the population statistics the
paper's Section 5 states qualitatively: mapping-change rate, makespan-
increase rate, and per-machine finishing-time improvement under the
iterative technique.

Expected shape (asserted):

* Min-Min/MCT/MET, deterministic ties — 0% changes, 0% increases;
* Sufferage/KPB/SWA, deterministic ties — substantial change rates,
  non-zero increase rates, *and* non-zero per-machine improvements
  (the technique does help sometimes — that is its point);
* random ties — Min-Min/MCT/MET change rates become non-zero.
"""

from repro.analysis.study import format_improvement_table, improvement_study

HEURISTICS = (
    "min-min",
    "mct",
    "met",
    "sufferage",
    "k-percent-best",
    "switching-algorithm",
)


def test_bench_improvement_study_deterministic(benchmark, paper_output):
    def run():
        return improvement_study(
            heuristics=HEURISTICS,
            num_tasks=30,
            num_machines=8,
            instances=20,
            tie_policies=("deterministic",),
            seed=0,
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    paper_output(
        "E23 — iterative improvement study (deterministic ties)",
        format_improvement_table(rows),
    )
    by_name = {r.heuristic: r for r in rows}
    for name in ("min-min", "mct", "met"):
        assert by_name[name].mapping_change_rate == 0.0
        assert by_name[name].makespan_increase_rate == 0.0
        assert by_name[name].machine_improved_rate == 0.0
    for name in ("sufferage", "k-percent-best", "switching-algorithm"):
        assert by_name[name].mapping_change_rate > 0.0
        assert by_name[name].machine_improved_rate > 0.0


def test_bench_improvement_study_random_ties(benchmark, paper_output):
    def run():
        return improvement_study(
            heuristics=("min-min", "mct", "met"),
            num_tasks=20,
            num_machines=6,
            instances=20,
            tie_policies=("random",),
            seed=1,
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    paper_output(
        "E23 — invariant heuristics under RANDOM ties "
        "(changes now possible; continuous ETCs keep genuine ties rare)",
        format_improvement_table(rows),
    )
    # With continuous-valued ETCs exact ties are measure-zero, so rates
    # stay ~0 here; the integer-grid witnesses in the theorem bench are
    # where the increase phenomenon lives.  Assert rates are bounded.
    for r in rows:
        assert 0.0 <= r.mapping_change_rate <= 1.0


def test_bench_improvement_study_with_seeding(benchmark, paper_output):
    """Ablation: the same study with the E22 seeding wrapper — increase
    rates must vanish while improvements survive."""
    def run():
        return improvement_study(
            heuristics=("sufferage", "k-percent-best", "switching-algorithm"),
            num_tasks=30,
            num_machines=8,
            instances=20,
            tie_policies=("deterministic",),
            seeded_iterations=True,
            seed=0,
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    paper_output(
        "E23 ablation — same study with Genitor-style seeding grafted on",
        format_improvement_table(rows),
    )
    for r in rows:
        # seeding guarantees makespans never grow across iterations;
        # individual machines may still trade places below the makespan
        assert r.makespan_increase_rate == 0.0
        assert r.machine_improved_rate >= 0.0

"""Scaling benches: empirical complexity of the heuristics and the
parallel experiment runner.

Verifies the complexity classes documented in docs/algorithms.md:
MCT/MET scale ~linearly in T, Min-Min ~quadratically; and demonstrates
the multiprocess grid runner's serial-equivalence at scale.
"""

import time

import pytest

from repro.analysis.experiments import ExperimentConfig, run_experiment
from repro.analysis.parallel import run_experiment_parallel
from repro.etc.generation import Heterogeneity, generate_range_based
from repro.heuristics import get_heuristic


@pytest.mark.parametrize("tasks", [100, 400])
@pytest.mark.parametrize("name", ["mct", "min-min"])
def test_bench_heuristic_scaling(benchmark, name, tasks):
    etc = generate_range_based(tasks, 12, rng=0)
    heuristic = get_heuristic(name)
    mapping = benchmark(heuristic.map_tasks, etc)
    assert mapping.is_complete()


def test_bench_complexity_classes(benchmark, paper_output):
    """Growth-factor sanity: quadrupling T should grow Min-Min's cost
    much faster than MCT's (quadratic vs linear, loose envelope)."""
    def timed(name, tasks, repeats=3):
        etc = generate_range_based(tasks, 12, rng=1)
        heuristic = get_heuristic(name)
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            heuristic.map_tasks(etc)
            best = min(best, time.perf_counter() - start)
        return best

    def run():
        return {
            name: (timed(name, 100), timed(name, 400))
            for name in ("mct", "min-min", "sufferage")
        }

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"{name:<12} T=100: {small * 1e3:8.2f} ms   T=400: {large * 1e3:8.2f} ms   "
        f"growth x{large / small:.1f}"
        for name, (small, large) in times.items()
    ]
    paper_output("Scaling — heuristic cost vs task count (M=12)", "\n".join(lines))
    mct_growth = times["mct"][1] / times["mct"][0]
    minmin_growth = times["min-min"][1] / times["min-min"][0]
    sufferage_growth = times["sufferage"][1] / times["sufferage"][0]
    # quadratic algorithms must grow faster than linear MCT; Min-Min's
    # vectorised rounds damp its constant, so only require a strict
    # ordering there, and a clear super-linear factor for Sufferage
    # (whose per-pass python loop exposes the T^2 term).
    assert minmin_growth > mct_growth
    assert sufferage_growth > 1.5 * mct_growth


def test_bench_parallel_grid_runner(benchmark, paper_output):
    config = ExperimentConfig(
        heuristics=("mct", "sufferage"),
        num_tasks=25,
        num_machines=6,
        heterogeneities=(Heterogeneity.HIHI, Heterogeneity.LOLO),
        instances_per_cell=6,
        seed=0,
    )

    def run():
        return run_experiment_parallel(config, max_workers=2)

    parallel = benchmark.pedantic(run, rounds=1, iterations=1)
    serial = run_experiment(config)
    assert [r.comparison for r in parallel] == [r.comparison for r in serial]
    paper_output(
        "Scaling — multiprocess experiment grid",
        f"{len(parallel)} records across 2 cells; parallel output "
        "bit-identical to the serial run",
    )

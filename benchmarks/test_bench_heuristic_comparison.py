"""E24: cross-heuristic makespan comparison (Braun et al. anchor).

The paper builds on the Braun et al. heuristic suite; this bench
anchors our implementations against that study's well-known ordering on
the standard ETC classes:

* Genitor (GA) <= Min-Min on mean makespan (GA was the best of the
  eleven heuristics in Braun et al.; Min-Min second);
* Min-Min beats MCT, MET and OLB on inconsistent hihi matrices;
* MET collapses on consistent matrices (everything piles onto the
  single globally-fastest machine), far worse than Min-Min.
"""

from repro.analysis.study import format_comparison_table, heuristic_comparison
from repro.etc.generation import Consistency, Heterogeneity

HEURISTICS = ("genitor", "min-min", "max-min", "duplex", "mct", "met",
              "k-percent-best", "sufferage", "switching-algorithm", "olb",
              "random")


def test_bench_comparison_inconsistent_hihi(benchmark, paper_output):
    def run():
        return heuristic_comparison(
            HEURISTICS,
            num_tasks=40,
            num_machines=8,
            instances=10,
            heterogeneities=(Heterogeneity.HIHI,),
            consistencies=(Consistency.INCONSISTENT,),
            seed=0,
            heuristic_kwargs={
                "genitor": {"iterations": 2000, "population_size": 40}
            },
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    paper_output(
        "E24 — mean makespan by heuristic (hihi / inconsistent)",
        format_comparison_table(rows),
    )
    by_name = {r.heuristic: r for r in rows}
    assert by_name["min-min"].mean_makespan < by_name["mct"].mean_makespan
    assert by_name["min-min"].mean_makespan < by_name["olb"].mean_makespan
    assert by_name["min-min"].mean_makespan < by_name["random"].mean_makespan
    # Genitor's population is seeded with Min-Min (Braun et al. GA
    # methodology), so its makespan can only match or beat Min-Min's.
    assert by_name["genitor"].mean_makespan <= by_name["min-min"].mean_makespan + 1e-9
    assert by_name["duplex"].mean_makespan <= by_name["min-min"].mean_makespan + 1e-9


def test_bench_comparison_consistent_hihi(benchmark, paper_output):
    def run():
        return heuristic_comparison(
            ("min-min", "max-min", "mct", "met", "olb"),
            num_tasks=40,
            num_machines=8,
            instances=10,
            heterogeneities=(Heterogeneity.HIHI,),
            consistencies=(Consistency.CONSISTENT,),
            seed=1,
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    paper_output(
        "E24 — mean makespan by heuristic (hihi / consistent)",
        format_comparison_table(rows),
    )
    by_name = {r.heuristic: r for r in rows}
    # on consistent matrices MET maps EVERY task to machine 0
    assert by_name["met"].mean_makespan > 2 * by_name["min-min"].mean_makespan


def test_bench_comparison_across_heterogeneity(benchmark, paper_output):
    def run():
        return heuristic_comparison(
            ("min-min", "mct", "sufferage"),
            num_tasks=30,
            num_machines=6,
            instances=8,
            heterogeneities=(Heterogeneity.HIHI, Heterogeneity.LOLO),
            consistencies=(Consistency.INCONSISTENT,),
            seed=2,
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    paper_output(
        "E24 — heterogeneity sweep (hihi vs lolo, inconsistent)",
        format_comparison_table(rows),
    )
    classes = {r.etc_class for r in rows}
    assert len(classes) == 2
    for cls in classes:
        sel = [r for r in rows if r.etc_class == cls]
        assert min(r.normalized for r in sel) == 1.0

"""E29: robustness of mappings to ETC estimation error.

The group's companion work (the robustness papers dominating the source
text's bibliography) asks how mappings behave when actual execution
times deviate from the ETC estimates.  This bench measures, per
heuristic, (a) the closed-form robustness radius against a shared
deadline and (b) the Monte-Carlo makespan degradation under lognormal
multiplicative noise — including whether the iterative technique's
final configuration is more or less fragile than the original mapping.
"""


from repro.analysis.robustness import makespan_degradation, robustness_radius
from repro.core.iterative import IterativeScheduler
from repro.core.seeding import replay_mapping
from repro.etc.generation import generate_range_based
from repro.heuristics import get_heuristic

HEURISTICS = ("min-min", "mct", "met", "sufferage", "olb")


def test_bench_robustness_by_heuristic(benchmark, paper_output):
    etc = generate_range_based(40, 8, rng=0)

    def run():
        rows = {}
        deadline = 1.3 * get_heuristic("min-min").map_tasks(etc).makespan()
        for name in HEURISTICS:
            mapping = get_heuristic(name).map_tasks(etc)
            radius = robustness_radius(mapping, bound=deadline)
            summary = makespan_degradation(
                mapping, error_cv=0.2, samples=200, rng=1
            )
            rows[name] = (radius, summary)
        return deadline, rows

    deadline, rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"shared deadline: {deadline:.6g}"]
    for name, (radius, summary) in sorted(
        rows.items(), key=lambda kv: -kv[1][0]
    ):
        lines.append(
            f"{name:<12} radius {radius:+7.3f}   mean degradation "
            f"x{summary.mean_degradation:.3f}   P(>1.2x) = "
            f"{summary.violation_rate:.2f}"
        )
    paper_output("E29 — robustness to ETC error (40x8, shared deadline)",
                 "\n".join(lines))
    # completion-time-aware mappings must tolerate more error than the
    # heterogeneity-blind OLB before breaking the shared deadline
    assert rows["min-min"][0] > rows["olb"][0]
    assert rows["mct"][0] > rows["olb"][0]
    # the deadline is anchored at 1.3x Min-Min's makespan, whose own
    # makespan machine binds exactly -> radius = 0.3 in closed form
    import pytest as _pytest
    assert rows["min-min"][0] == _pytest.approx(0.3)
    for name in HEURISTICS:
        assert rows[name][1].mean_degradation >= 0.99


def test_bench_iterative_vs_original_robustness(benchmark, paper_output):
    """Does the iterative technique change fragility?  Compare the
    realised-makespan distribution of the original mapping vs the final
    per-machine commitments of the iterative run."""
    instances = [generate_range_based(25, 6, rng=seed) for seed in range(8)]

    def run():
        deltas = []
        for etc in instances:
            result = IterativeScheduler(get_heuristic("sufferage")).run(etc)
            original = result.original.mapping
            final_assignments = {}
            for rec in result.iterations:
                for task in rec.frozen_tasks:
                    final_assignments[task] = rec.frozen_machine
                if rec is result.iterations[-1]:
                    for a in rec.mapping.assignments:
                        final_assignments.setdefault(a.task, a.machine)
            final = replay_mapping(etc, None, final_assignments)
            deg_orig = makespan_degradation(
                original, error_cv=0.2, samples=150, rng=2
            )
            deg_final = makespan_degradation(
                final, error_cv=0.2, samples=150, rng=2
            )
            deltas.append(
                deg_final.mean_realised / deg_orig.mean_realised
            )
        return deltas

    deltas = benchmark.pedantic(run, rounds=1, iterations=1)
    paper_output(
        "E29 — iterative vs original mean realised makespan (ratio per instance)",
        "\n".join(f"instance {i}: x{d:.4f}" for i, d in enumerate(deltas)),
    )
    # the iterative run can shift realised makespans either way but must
    # stay in a sane envelope on these instances
    assert all(0.7 < d < 1.4 for d in deltas)

"""E18–E20: the invariance theorems at ensemble scale, plus the dual
random-tie witnesses.

The paper proves (Sections 3.2–3.4) that Min-Min, MCT and MET produce
identical mappings across all iterations under deterministic
tie-breaking.  These benches validate each theorem over a 100-instance
random ensemble (and time the full iterative pipeline doing it), then
regenerate the random-tie counterexample row the paper argues by
example.
"""

import numpy as np
import pytest

from repro.analysis.counterexamples import find_makespan_increase
from repro.analysis.invariance import verify_invariance
from repro.core.ties import RandomTieBreaker


@pytest.mark.parametrize(
    "name,exp_id",
    [("min-min", "E18"), ("mct", "E19"), ("met", "E20")],
)
def test_bench_theorem_invariance(benchmark, paper_output, name, exp_id):
    def run():
        return verify_invariance(
            name, num_instances=100, num_tasks=30, num_machines=8, rng=0
        )

    report = benchmark(run)
    paper_output(
        f"{exp_id} / Theorem — {name} iteration-invariance (deterministic ties)",
        str(report),
    )
    assert report.invariant
    assert report.makespan_increases == 0
    assert report.instances_checked == 100


@pytest.mark.parametrize("name", ["min-min", "mct", "met"])
def test_bench_random_tie_counterexample(benchmark, paper_output, name):
    """'If ties are broken randomly, the makespan ... can actually
    increase' — time how quickly a witness is found on a tie-rich grid."""
    def run():
        rng = np.random.default_rng(7)
        return find_makespan_increase(
            name,
            num_tasks=5,
            num_machines=3,
            trials=5000,
            value_grid=[1.0, 2.0, 3.0],
            tie_breaker_factory=lambda: RandomTieBreaker(rng),
            rng=0,
        )

    witness = benchmark(run)
    assert witness is not None
    paper_output(
        f"Random-tie makespan-increase witness for {name}",
        witness.describe()
        + "\nETC matrix:\n"
        + witness.etc.pretty()
        + f"\nmakespans per iteration: {witness.result.makespans()}",
    )
    assert witness.result.makespan_increased()

"""E12–E14: regenerate paper Tables 12–14 and Figures 15–16 (KPB).

Paper-reported values (Section 3.6 prose; k = 70%, deterministic ties):

* Table 13 / Figure 15 — original (subset = best 2 of 3):
  m1 = 6, m2 = 5, m3 = 5.5; makespan machine m1;
* Table 14 / Figure 16 — first iterative mapping (subset shrinks to one
  machine, forcing MET behaviour): m2 = 7, m3 = 3; makespan 6 -> 7.
"""

import pytest

from repro.analysis.gantt import render_gantt
from repro.analysis.tables import render_etc_table, render_kpb_table
from repro.core.iterative import IterativeScheduler
from repro.etc.witness import KPB_EXAMPLE_PERCENT, kpb_example_etc
from repro.heuristics import KPercentBest


@pytest.fixture(scope="module")
def etc():
    return kpb_example_etc()


def test_bench_table12_etc_matrix(benchmark, etc, paper_output):
    table = benchmark(
        render_etc_table, etc, "Table 12. ETC matrix for the K-percent Best example"
    )
    paper_output("E12 / Table 12", table)
    assert "t5" in table


def test_bench_table13_original_mapping(benchmark, etc, paper_output):
    def run():
        kpb = KPercentBest(percent=KPB_EXAMPLE_PERCENT)
        return kpb, kpb.map_tasks(etc)

    kpb, mapping = benchmark(run)
    paper_output(
        "E13 / Table 13 — KPB original mapping (CTs / K-% subset)",
        render_kpb_table(kpb.last_trace, etc.machines),
    )
    paper_output("Figure 15 — Gantt", render_gantt(mapping))
    assert mapping.machine_finish_times() == {"m1": 6.0, "m2": 5.0, "m3": 5.5}
    assert all(len(step.subset) == 2 for step in kpb.last_trace)


def test_bench_table14_first_iterative_mapping(benchmark, etc, paper_output):
    def run():
        kpb = KPercentBest(percent=KPB_EXAMPLE_PERCENT)
        return IterativeScheduler(kpb).run(etc)

    result = benchmark(run)
    first = result.iterations[1]
    paper_output(
        "E14 / Table 14 — KPB first iterative mapping (single-machine subsets)",
        render_kpb_table(first.trace, first.etc.machines),
    )
    paper_output("Figure 16 — Gantt", render_gantt(first.mapping))
    assert first.finish_times() == {"m2": 7.0, "m3": 3.0}
    assert all(len(step.subset) == 1 for step in first.trace)
    assert result.makespans()[:2] == (6.0, 7.0)
    assert result.makespan_increased()

"""Optimality-gap bench: heuristics vs the exact branch-and-bound oracle.

Braun et al.'s eleventh method was an A* tree search; our equivalent
exact solver lets us report, on brute-force-scale instances, how far
each heuristic's makespan sits above the true optimum — the strongest
possible anchor for the heuristic implementations.
"""

import numpy as np

from repro.etc.generation import generate_ensemble
from repro.heuristics import BranchAndBound, get_heuristic

HEURISTICS = (
    "min-min",
    "max-min",
    "mct",
    "met",
    "olb",
    "sufferage",
    "k-percent-best",
    "switching-algorithm",
    "segmented-min-min",
)


def test_bench_optimality_gaps(benchmark, paper_output):
    instances = generate_ensemble(10, 10, 4, rng=0)

    def run():
        optima = []
        for etc in instances:
            bb = BranchAndBound()
            optima.append(bb.map_tasks(etc).makespan())
            assert bb.proven_optimal
        gaps = {}
        for name in HEURISTICS:
            ratios = [
                get_heuristic(name).map_tasks(etc).makespan() / opt
                for etc, opt in zip(instances, optima)
            ]
            gaps[name] = (float(np.mean(ratios)), float(np.max(ratios)))
        # iterative searchers with a generous budget, seeded with the
        # Min-Min solution (the Braun et al. GA methodology)
        for name, kwargs in (
            ("genitor", {"iterations": 2000, "population_size": 30, "rng": 0}),
            ("simulated-annealing", {"steps": 10000, "rng": 0}),
            ("gsa", {"iterations": 2000, "rng": 0}),
            ("tabu-search", {"max_hops": 200, "rng": 0}),
        ):
            ratios = []
            for etc, opt in zip(instances, optima):
                seed_map = get_heuristic("min-min").map_tasks(etc).to_dict()
                span = get_heuristic(name, **kwargs).map_tasks(
                    etc, seed_mapping=seed_map
                ).makespan()
                ratios.append(span / opt)
            gaps[name] = (float(np.mean(ratios)), float(np.max(ratios)))
        return gaps

    gaps = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"{name:<22} mean gap {100 * (mean - 1):6.2f}%   worst {100 * (worst - 1):6.2f}%"
        for name, (mean, worst) in sorted(gaps.items(), key=lambda kv: kv[1][0])
    ]
    paper_output(
        "Optimality gaps vs exact branch-and-bound (10 tasks x 4 machines, x10)",
        "\n".join(lines),
    )
    # sanity ordering: every heuristic >= optimum; the iterative
    # searchers get within a few percent; OLB is far off
    for name, (mean, worst) in gaps.items():
        assert mean >= 1.0 - 1e-9, name
    # seeded searchers strictly improve on their Min-Min seed
    assert gaps["genitor"][0] < gaps["min-min"][0]
    assert gaps["simulated-annealing"][0] < gaps["min-min"][0]
    # the strongest searchers land within a few percent of optimal
    assert gaps["tabu-search"][0] < 1.05
    assert gaps["gsa"][0] < 1.05
    assert gaps["min-min"][0] < gaps["olb"][0]


def test_bench_branch_and_bound_throughput(benchmark):
    instances = generate_ensemble(5, 12, 4, rng=1)

    def run():
        nodes = 0
        for etc in instances:
            bb = BranchAndBound()
            bb.map_tasks(etc)
            nodes += bb.nodes_expanded
        return nodes

    nodes = benchmark(run)
    assert nodes > 0

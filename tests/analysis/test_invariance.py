"""Unit tests for repro.analysis.invariance (E18–E20 machinery)."""

import pytest

from repro.analysis.invariance import (
    INVARIANT_HEURISTICS,
    is_iteration_invariant,
    makespans_monotone,
    verify_invariance,
)
from repro.core.iterative import IterativeScheduler
from repro.core.ties import RandomTieBreaker
from repro.etc.generation import Consistency, Heterogeneity, generate_ensemble
from repro.heuristics import MCT, Sufferage


class TestSingleResultCheckers:
    def test_invariant_result(self, square_etc):
        result = IterativeScheduler(MCT()).run(square_etc)
        assert is_iteration_invariant(result)
        assert makespans_monotone(result)

    def test_variant_result(self, sufferage_etc):
        result = IterativeScheduler(Sufferage()).run(sufferage_etc)
        assert not is_iteration_invariant(result)
        assert not makespans_monotone(result)


class TestEnsembleVerification:
    @pytest.mark.parametrize("name", INVARIANT_HEURISTICS)
    def test_theorem_holds_on_ensemble(self, name):
        report = verify_invariance(
            name, num_instances=30, num_tasks=20, num_machines=5, rng=0
        )
        assert report.invariant, str(report)
        assert report.makespan_increases == 0
        assert report.instances_checked == 30

    def test_sufferage_changes_on_ensemble(self):
        report = verify_invariance(
            "sufferage", num_instances=30, num_tasks=20, num_machines=5, rng=0
        )
        assert not report.invariant
        assert report.mapping_changes > 0
        assert 0 < report.change_rate <= 1.0

    def test_violations_captured_with_cap(self):
        report = verify_invariance(
            "sufferage",
            num_instances=30,
            num_tasks=20,
            num_machines=5,
            rng=0,
            keep_violations=2,
        )
        assert len(report.violations) == 2
        assert "sufferage" in report.violations[0].describe()

    def test_random_ties_break_minmin_invariance(self):
        """With random tie-breaking, Min-Min mappings *can* change —
        exercised on instances with integer-valued ETCs so ties occur."""
        instances = generate_ensemble(
            40, 12, 4, rng=1, heterogeneity=Heterogeneity.LOLO
        )
        # integerise values to force plenty of ties
        from repro.etc.matrix import ETCMatrix

        instances = [
            ETCMatrix(ins.values.round().clip(min=1.0)) for ins in instances
        ]
        report = verify_invariance(
            "min-min",
            instances=instances,
            tie_breaker=RandomTieBreaker(rng=0),
        )
        assert report.mapping_changes > 0

    def test_explicit_instances_override_generation(self, square_etc):
        report = verify_invariance("mct", instances=[square_etc])
        assert report.instances_checked == 1

    def test_accepts_heuristic_instance(self, square_etc):
        report = verify_invariance(MCT(), instances=[square_etc])
        assert report.heuristic == "mct"

    def test_report_str(self):
        report = verify_invariance(
            "mct", num_instances=5, num_tasks=10, num_machines=3, rng=0
        )
        assert "mct" in str(report)
        assert "5 instances" in str(report)

    def test_consistency_classes_pass_through(self):
        report = verify_invariance(
            "min-min",
            num_instances=10,
            num_tasks=15,
            num_machines=4,
            consistency=Consistency.CONSISTENT,
            rng=2,
        )
        assert report.invariant

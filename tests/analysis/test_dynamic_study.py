"""Unit tests for the dynamic-mode policy study."""

import pytest

from repro.analysis.dynamic_study import (
    DynamicPolicySpec,
    default_policies,
    dynamic_policy_study,
    format_dynamic_table,
)
from repro.exceptions import ConfigurationError
from repro.sim.hcsystem import MCTOnline, OLBOnline


@pytest.fixture(scope="module")
def small_rows():
    policies = (
        DynamicPolicySpec("mct-online", lambda: {"policy": MCTOnline()}),
        DynamicPolicySpec("olb-online", lambda: {"policy": OLBOnline()}),
    )
    return dynamic_policy_study(
        policies,
        rates=(1e-4, 1e-3),
        num_tasks=25,
        num_machines=4,
        instances=2,
        seed=0,
    )


class TestStudy:
    def test_row_grid(self, small_rows):
        assert len(small_rows) == 2 * 2  # policies x rates
        assert {r.policy for r in small_rows} == {"mct-online", "olb-online"}
        assert {r.rate for r in small_rows} == {1e-4, 1e-3}

    def test_mct_beats_olb(self, small_rows):
        for rate in (1e-4, 1e-3):
            cell = {r.policy: r for r in small_rows if r.rate == rate}
            assert (
                cell["mct-online"].mean_makespan
                <= cell["olb-online"].mean_makespan
            )

    def test_metrics_sane(self, small_rows):
        for r in small_rows:
            assert r.mean_makespan > 0
            assert r.mean_queue_wait >= 0
            assert 0 <= r.mean_utilisation <= 1

    def test_reproducible(self):
        policies = (DynamicPolicySpec("mct-online", lambda: {"policy": MCTOnline()}),)
        a = dynamic_policy_study(
            policies, rates=(1e-4,), num_tasks=15, num_machines=3,
            instances=2, seed=3,
        )
        b = dynamic_policy_study(
            policies, rates=(1e-4,), num_tasks=15, num_machines=3,
            instances=2, seed=3,
        )
        assert a == b

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            dynamic_policy_study(rates=(0.0,), instances=1)
        with pytest.raises(ConfigurationError):
            dynamic_policy_study(instances=0)

    def test_default_roster(self):
        names = [spec.name for spec in default_policies()]
        assert "swa-online" in names
        assert "batch-sufferage" in names
        assert len(names) == 7


class TestFormatting:
    def test_table_groups_by_rate(self, small_rows):
        text = format_dynamic_table(small_rows)
        assert text.count("arrival rate") == 2
        assert "mct-online" in text
        assert "util%" in text

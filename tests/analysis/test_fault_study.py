"""Unit tests for the fault-injection degradation study."""

import pytest

from repro.analysis.robustness import (
    fault_degradation_study,
    format_fault_table,
    non_makespan_mean,
)
from repro.exceptions import ConfigurationError


class TestNonMakespanMean:
    def test_drops_exactly_the_latest_machine(self):
        assert non_makespan_mean({"a": 1.0, "b": 2.0, "c": 9.0}) == 1.5

    def test_single_machine_returns_its_own_time(self):
        assert non_makespan_mean({"only": 4.0}) == 4.0


@pytest.fixture(scope="module")
def rows():
    return fault_degradation_study(
        "min-min",
        failure_rates=(1e-6, 5e-6),
        num_tasks=12,
        num_machines=4,
        instances=2,
        seed=0,
    )


class TestFaultDegradationStudy:
    def test_two_rows_per_rate(self, rows):
        assert len(rows) == 4
        assert {(r.failure_rate, r.mapping_kind) for r in rows} == {
            (1e-6, "original"), (1e-6, "iterative"),
            (5e-6, "original"), (5e-6, "iterative"),
        }

    def test_degradations_at_least_one(self, rows):
        for row in rows:
            assert row.makespan_degradation >= 1.0 - 1e-9
            assert row.non_makespan_degradation > 0.0
            assert row.mean_makespan >= row.fault_free_makespan - 1e-9

    def test_paired_design_shares_fault_free_baseline_shape(self, rows):
        # Same instances across rates: the fault-free numbers per mapping
        # kind are identical in every rate group.
        by_kind = {}
        for row in rows:
            by_kind.setdefault(row.mapping_kind, set()).add(
                (row.fault_free_makespan, row.fault_free_non_makespan)
            )
        assert all(len(values) == 1 for values in by_kind.values())

    def test_deterministic(self, rows):
        again = fault_degradation_study(
            "min-min",
            failure_rates=(1e-6, 5e-6),
            num_tasks=12,
            num_machines=4,
            instances=2,
            seed=0,
        )
        assert again == rows

    def test_format_table_groups_by_rate(self, rows):
        table = format_fault_table(rows)
        assert table.count("failure rate") == 2
        assert "min-min/original" in table
        assert "min-min/iterative" in table

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            fault_degradation_study(instances=0)
        with pytest.raises(ConfigurationError):
            fault_degradation_study(failure_rates=())
        with pytest.raises(ConfigurationError):
            fault_degradation_study(failure_rates=(-1.0,))
        with pytest.raises(ConfigurationError):
            fault_degradation_study(downtime_frac=0.0)

"""Unit tests for repro.analysis.trajectory."""

import pytest

from repro.analysis.trajectory import (
    render_series,
    sparkline,
    trajectory_of,
)
from repro.core.iterative import IterativeScheduler
from repro.etc.generation import generate_range_based
from repro.etc.witness import sufferage_example_etc
from repro.exceptions import ConfigurationError
from repro.heuristics import MCT, Sufferage


class TestTrajectory:
    def test_series_lengths_match(self):
        etc = generate_range_based(15, 4, rng=0)
        result = IterativeScheduler(Sufferage()).run(etc)
        traj = trajectory_of(result)
        n = traj.num_iterations
        assert n == result.num_iterations
        assert len(traj.average_finishes) == n
        assert len(traj.machines_remaining) == n
        assert len(traj.tasks_remaining) == n

    def test_machines_strictly_decreasing(self):
        etc = generate_range_based(20, 5, rng=1)
        traj = trajectory_of(IterativeScheduler(MCT()).run(etc))
        diffs = [
            b - a
            for a, b in zip(traj.machines_remaining, traj.machines_remaining[1:])
        ]
        assert all(d == -1 for d in diffs)

    def test_monotone_flags(self):
        etc = generate_range_based(15, 4, rng=2)
        assert trajectory_of(IterativeScheduler(MCT()).run(etc)).monotone()
        suff = trajectory_of(
            IterativeScheduler(Sufferage()).run(sufferage_example_etc())
        )
        assert not suff.monotone()

    def test_heuristic_label(self):
        etc = generate_range_based(8, 3, rng=3)
        traj = trajectory_of(IterativeScheduler(Sufferage()).run(etc))
        assert traj.heuristic == "sufferage"


class TestSparkline:
    def test_length_matches(self):
        assert len(sparkline([1, 2, 3])) == 3

    def test_constant_series(self):
        assert sparkline([5.0, 5.0]) == "▁▁"

    def test_extremes(self):
        line = sparkline([0.0, 10.0])
        assert line[0] == "▁" and line[1] == "█"

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            sparkline([])


class TestRenderSeries:
    def test_contains_all_columns(self):
        text = render_series([1, 5, 3, 2], label="demo")
        assert text.startswith("demo")
        body = [line for line in text.splitlines() if "|" in line]
        assert all(len(line.split("|", 1)[1]) <= 4 for line in body)
        assert text.count("*") == 4

    def test_resamples_long_series(self):
        text = render_series(list(range(200)), width=40)
        body = [line for line in text.splitlines() if "|" in line]
        assert all(len(line.split("|", 1)[1]) <= 40 for line in body)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            render_series([])
        with pytest.raises(ConfigurationError):
            render_series([1.0], width=1)

    def test_axis_labels_present(self):
        text = render_series([1.0, 2.0, 4.0])
        assert "4" in text  # max label rendered on the top row

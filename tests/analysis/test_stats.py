"""Unit tests for repro.analysis.stats."""

import numpy as np
import pytest

from repro.analysis.stats import (
    bootstrap_ci,
    proportion_ci,
    summarize,
    _normal_quantile,
)
from repro.exceptions import ConfigurationError


class TestSummarize:
    def test_basic(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.n == 3
        assert s.mean == 2.0
        assert s.minimum == 1.0
        assert s.maximum == 3.0
        assert s.ci_low < 2.0 < s.ci_high

    def test_singleton(self):
        s = summarize([5.0])
        assert s.std == 0.0
        assert s.ci_low == s.ci_high == 5.0

    def test_empty_raises(self):
        with pytest.raises(ConfigurationError):
            summarize([])

    def test_ci_shrinks_with_n(self):
        rng = np.random.default_rng(0)
        small = summarize(rng.normal(size=20))
        large = summarize(rng.normal(size=2000))
        assert (large.ci_high - large.ci_low) < (small.ci_high - small.ci_low)

    def test_str(self):
        assert "n=3" in str(summarize([1.0, 2.0, 3.0]))


class TestBootstrap:
    def test_contains_mean_usually(self):
        rng = np.random.default_rng(1)
        sample = rng.normal(loc=10.0, size=200)
        lo, hi = bootstrap_ci(sample, rng=0)
        assert lo < 10.0 < hi

    def test_degenerate_sample(self):
        lo, hi = bootstrap_ci([4.0, 4.0, 4.0], rng=0)
        assert lo == hi == 4.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            bootstrap_ci([])
        with pytest.raises(ConfigurationError):
            bootstrap_ci([1.0], level=1.5)

    def test_reproducible(self):
        sample = [1.0, 5.0, 2.0, 8.0]
        assert bootstrap_ci(sample, rng=3) == bootstrap_ci(sample, rng=3)


class TestProportion:
    def test_half(self):
        lo, hi = proportion_ci(50, 100)
        assert lo < 0.5 < hi
        assert 0.39 < lo < 0.45
        assert 0.55 < hi < 0.61

    def test_extremes_clamped(self):
        lo, hi = proportion_ci(0, 10)
        assert lo == 0.0
        lo2, hi2 = proportion_ci(10, 10)
        assert hi2 == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            proportion_ci(1, 0)
        with pytest.raises(ConfigurationError):
            proportion_ci(5, 3)
        with pytest.raises(ConfigurationError):
            proportion_ci(1, 10, level=2.0)

    def test_other_level(self):
        lo95, hi95 = proportion_ci(30, 100, level=0.95)
        lo99, hi99 = proportion_ci(30, 100, level=0.99)
        assert lo99 < lo95 and hi99 > hi95


class TestNormalQuantile:
    @pytest.mark.parametrize(
        "q,expected",
        [(0.5, 0.0), (0.975, 1.959964), (0.025, -1.959964), (0.995, 2.575829)],
    )
    def test_known_values(self, q, expected):
        assert _normal_quantile(q) == pytest.approx(expected, abs=1e-4)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            _normal_quantile(0.0)
        with pytest.raises(ConfigurationError):
            _normal_quantile(1.0)

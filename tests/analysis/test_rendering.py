"""Unit tests for the Gantt and table renderers."""

import pytest

from repro.analysis.gantt import GanttBar, gantt_bars, render_gantt
from repro.analysis.tables import (
    render_allocation_table,
    render_comparison,
    render_etc_table,
    render_finish_times,
    render_iteration_overview,
    render_kpb_table,
    render_sufferage_table,
    render_swa_table,
)
from repro.core.iterative import IterativeScheduler
from repro.core.metrics import compare_iterative
from repro.core.schedule import Mapping
from repro.etc.matrix import ETCMatrix
from repro.exceptions import ConfigurationError
from repro.heuristics import (
    KPercentBest,
    MCT,
    Sufferage,
    SwitchingAlgorithm,
)
from repro.sim.hcsystem import HCSystem


@pytest.fixture
def mapping(mct_met_etc):
    return MCT().map_tasks(mct_met_etc)


class TestGantt:
    def test_bars_from_mapping(self, mapping):
        bars = gantt_bars(mapping)
        assert len(bars) == 4
        assert all(isinstance(b, GanttBar) for b in bars)

    def test_bars_from_trace(self, mct_met_etc, mapping):
        trace = HCSystem(mct_met_etc).execute(mapping)
        bars = gantt_bars(trace)
        assert {b.task for b in bars} == set(mct_met_etc.tasks)

    def test_bars_reject_other_types(self):
        with pytest.raises(ConfigurationError):
            gantt_bars("nope")

    def test_render_contains_all_rows(self, mapping):
        text = render_gantt(mapping)
        for machine in mapping.machines:
            assert machine in text

    def test_render_labels_tasks(self, mapping):
        text = render_gantt(mapping, width=60)
        assert "t1" in text

    def test_render_scale_line(self, mapping):
        text = render_gantt(mapping, width=40)
        assert "+" + "-" * 40 in text
        assert text.strip().endswith("4")  # horizon = makespan 4

    def test_render_no_scale(self, mapping):
        text = render_gantt(mapping, show_scale=False)
        assert "+--" not in text

    def test_width_validation(self, mapping):
        with pytest.raises(ConfigurationError):
            render_gantt(mapping, width=3)

    def test_empty_mapping_renders_idle(self, tiny_etc):
        text = render_gantt(Mapping(tiny_etc))
        assert "(idle)" in text

    def test_bar_positions_scale(self):
        etc = ETCMatrix([[5.0, 9.0], [5.0, 9.0]])
        m = Mapping(etc)
        m.assign("t0", "m0")
        m.assign("t1", "m0")
        text = render_gantt(m, width=20, show_scale=False)
        row = next(line for line in text.splitlines() if line.startswith("m0"))
        # second bar starts at the midpoint of the row
        assert row.index("t1") > row.index("t0")


class TestTables:
    def test_etc_table(self, mct_met_etc):
        text = render_etc_table(mct_met_etc, title="Table 4")
        assert text.startswith("Table 4")
        assert "m3" in text

    def test_allocation_table_rows(self, mapping):
        text = render_allocation_table(mapping)
        lines = text.splitlines()
        assert len(lines) == 2 + 4  # header + rule + one row per task
        assert "m1 CT" in lines[0]

    def test_allocation_table_respects_initial_ready(self, mct_met_etc):
        m = Mapping(mct_met_etc, {"m1": 2.0})
        m.assign("t1", "m1")
        text = render_allocation_table(m)
        assert "6" in text  # 2 + 4

    def test_swa_table_renders_x_for_nan(self, swa_etc):
        swa = SwitchingAlgorithm(low=0.40, high=0.49)
        swa.map_tasks(swa_etc)
        text = render_swa_table(swa.last_trace, swa_etc.machines)
        first_row = text.splitlines()[2]
        assert " x" in first_row
        assert "MCT" in first_row

    def test_kpb_table_lists_subsets(self, kpb_etc):
        kpb = KPercentBest(percent=70.0)
        kpb.map_tasks(kpb_etc)
        text = render_kpb_table(kpb.last_trace, kpb_etc.machines)
        assert "{m1, m2}" in text

    def test_sufferage_table_outcomes(self, sufferage_etc):
        s = Sufferage()
        s.map_tasks(sufferage_etc)
        text = render_sufferage_table(s.last_trace)
        assert "claimed" in text
        assert "sufferage" in text.splitlines()[0]

    def test_finish_times_flags_makespan(self, mapping):
        text = render_finish_times(mapping)
        assert "<- makespan" in text

    def test_comparison_marks_increase(self, sufferage_etc):
        result = IterativeScheduler(Sufferage()).run(sufferage_etc)
        text = render_comparison(compare_iterative(result))
        assert "INCREASED" in text
        assert "10.5" in text

    def test_iteration_overview(self, sufferage_etc):
        result = IterativeScheduler(Sufferage()).run(sufferage_etc)
        text = render_iteration_overview(result)
        assert text.count("\n") >= result.num_iterations
        assert "frozen" in text

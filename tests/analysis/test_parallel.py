"""Unit tests for the parallel experiment runner."""

import pytest

from repro.analysis.experiments import ExperimentConfig, run_experiment
from repro.analysis.parallel import run_experiment_parallel, split_into_cells
from repro.etc.generation import Consistency, Heterogeneity
from repro.exceptions import ConfigurationError


@pytest.fixture(scope="module")
def grid_config():
    return ExperimentConfig(
        heuristics=("mct", "sufferage"),
        num_tasks=10,
        num_machines=3,
        heterogeneities=(Heterogeneity.HIHI, Heterogeneity.LOLO),
        consistencies=(Consistency.CONSISTENT, Consistency.INCONSISTENT),
        instances_per_cell=2,
        seed=0,
    )


class TestSplit:
    def test_one_subconfig_per_cell(self, grid_config):
        cells = split_into_cells(grid_config)
        assert len(cells) == 4
        seen = {(c.heterogeneities, c.consistencies) for c in cells}
        assert len(seen) == 4

    def test_cells_reproduce_their_slice(self, grid_config):
        """Each cell sub-config must yield exactly the records the full
        grid yields for that cell (stable per-cell seeding)."""
        full = run_experiment(grid_config)
        for cell in split_into_cells(grid_config):
            het = cell.heterogeneities[0]
            cons = cell.consistencies[0]
            expected = [
                r for r in full
                if r.heterogeneity == het and r.consistency == cons
            ]
            got = run_experiment(cell)
            assert [g.comparison for g in got] == [e.comparison for e in expected]


class TestParallel:
    def test_parallel_equals_serial(self, grid_config):
        serial = run_experiment(grid_config)
        parallel = run_experiment_parallel(grid_config, max_workers=2)
        assert len(parallel) == len(serial)
        assert [r.comparison for r in parallel] == [r.comparison for r in serial]
        assert [(r.heuristic, r.etc_class, r.instance_index) for r in parallel] == [
            (r.heuristic, r.etc_class, r.instance_index) for r in serial
        ]

    def test_single_cell_short_circuits(self):
        config = ExperimentConfig(
            heuristics=("mct",), num_tasks=6, num_machines=3,
            instances_per_cell=2, seed=1,
        )
        assert len(run_experiment_parallel(config, max_workers=4)) == 2

    def test_workers_validation(self, grid_config):
        with pytest.raises(ConfigurationError):
            run_experiment_parallel(grid_config, max_workers=0)

    def test_explicit_single_worker_runs_serially(self, grid_config):
        out = run_experiment_parallel(grid_config, max_workers=1)
        assert len(out) == len(run_experiment(grid_config))

"""Unit tests for the resumable cached experiment runner."""

import dataclasses
import io
import json

import pytest

from repro.analysis.experiments import (
    ExperimentConfig,
    config_to_dict,
    run_experiment,
    run_record_from_dict,
    run_record_to_dict,
)
from repro.analysis.parallel import split_into_cells
from repro.analysis.runner import (
    CellCache,
    cell_key,
    pack_same_shape_batches,
    run_grid,
    split_into_shards,
)
from repro.etc.generation import Consistency, Heterogeneity
from repro.exceptions import ConfigurationError
from repro.obs import ProgressReporter, build_span_tree, read_timeseries
from repro.obs.tracer import CollectingTracer, use_tracer


@pytest.fixture(scope="module")
def grid_config():
    return ExperimentConfig(
        heuristics=("mct", "sufferage"),
        num_tasks=8,
        num_machines=3,
        heterogeneities=(Heterogeneity.HIHI, Heterogeneity.LOLO),
        consistencies=(Consistency.CONSISTENT, Consistency.INCONSISTENT),
        instances_per_cell=2,
        seed=0,
    )


def _single_cell_config(**overrides):
    base = dict(
        heuristics=("mct",),
        num_tasks=6,
        num_machines=3,
        instances_per_cell=2,
        seed=3,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


# Module-level cell functions: pooled runs pickle them by reference.
def _failing_cell(config):
    raise ValueError(f"boom in {config.heterogeneities[0].value}")


class _FlakyOnce:
    """Fails on the first call per process, succeeds after."""

    calls = 0

    def __call__(self, config):
        type(self).calls += 1
        if type(self).calls == 1:
            raise ValueError("transient")
        return run_experiment(config)


class TestSplitEdgeCases:
    def test_empty_grid_yields_no_cells(self):
        config = dataclasses.replace(
            _single_cell_config(), heterogeneities=(), consistencies=()
        )
        assert split_into_cells(config) == []
        assert split_into_shards([], 4) == []

    def test_one_cell(self):
        cells = split_into_cells(_single_cell_config())
        assert len(cells) == 1
        assert split_into_shards(cells, 1) == [cells]

    def test_shards_exceed_cells(self, grid_config):
        cells = split_into_cells(grid_config)
        shards = split_into_shards(cells, len(cells) + 10)
        assert len(shards) == len(cells)
        assert all(len(s) == 1 for s in shards)

    def test_round_robin_partition(self):
        shards = split_into_shards(list(range(7)), 3)
        assert shards == [[0, 3, 6], [1, 4], [2, 5]]
        assert sorted(x for s in shards for x in s) == list(range(7))

    def test_no_empty_shards(self, grid_config):
        cells = split_into_cells(grid_config)
        for num in range(1, len(cells) + 3):
            assert all(split_into_shards(cells, num))

    def test_rejects_nonpositive_shards(self):
        with pytest.raises(ConfigurationError):
            split_into_shards([1, 2], 0)


class TestCellKey:
    def test_stable_across_calls(self):
        a = _single_cell_config()
        b = _single_cell_config()
        assert cell_key(a) == cell_key(b)

    def test_sensitive_to_science_parameters(self):
        base = _single_cell_config()
        assert cell_key(base) != cell_key(_single_cell_config(seed=4))
        assert cell_key(base) != cell_key(_single_cell_config(num_tasks=7))

    def test_same_cell_in_bigger_grid_hits_same_key(self, grid_config):
        solo = dataclasses.replace(
            grid_config,
            heterogeneities=(Heterogeneity.HIHI,),
            consistencies=(Consistency.CONSISTENT,),
        )
        from_grid = split_into_cells(grid_config)[0]
        assert cell_key(solo) == cell_key(from_grid)

    def test_config_dict_is_json_canonicalisable(self, grid_config):
        payload = config_to_dict(grid_config)
        assert json.loads(json.dumps(payload)) == payload


class TestRecordRoundTrip:
    def test_lossless(self):
        records = run_experiment(_single_cell_config())
        for record in records:
            assert run_record_from_dict(run_record_to_dict(record)) == record

    def test_survives_json(self):
        records = run_experiment(_single_cell_config())
        for record in records:
            payload = json.loads(json.dumps(run_record_to_dict(record)))
            assert run_record_from_dict(payload) == record


class TestCellCache:
    def test_store_load_round_trip(self, tmp_path):
        config = _single_cell_config()
        records = run_experiment(config)
        cache = CellCache(tmp_path)
        key = cell_key(config)
        cache.store(key, config, records, None)
        entry = cache.load(key)
        assert list(entry.records) == records
        assert entry.snapshot is None

    def test_miss_returns_none(self, tmp_path):
        assert CellCache(tmp_path).load("deadbeef" * 8) is None

    def test_traced_load_skips_obsless_entries(self, tmp_path):
        config = _single_cell_config()
        cache = CellCache(tmp_path)
        key = cell_key(config)
        cache.store(key, config, run_experiment(config), None)
        assert cache.load(key, need_obs=True) is None
        assert cache.load(key, need_obs=False) is not None

    def test_corrupt_entry_raises(self, tmp_path):
        config = _single_cell_config()
        cache = CellCache(tmp_path)
        key = cell_key(config)
        cache.path_for(key).parent.mkdir(parents=True, exist_ok=True)
        cache.path_for(key).write_text("{not json", encoding="utf-8")
        with pytest.raises(ConfigurationError):
            cache.load(key)

    def test_poison_lifecycle(self, tmp_path):
        config = _single_cell_config()
        cache = CellCache(tmp_path)
        key = cell_key(config)
        assert not cache.is_poisoned(key)
        cache.poison(key, config, "ValueError('x')", attempts=2)
        assert cache.is_poisoned(key)
        assert cache.keys() == []  # poison markers are not entries
        cache.clear_poison(key)
        assert not cache.is_poisoned(key)


class TestRunGrid:
    def test_matches_serial_run(self, grid_config, tmp_path):
        serial = run_experiment(grid_config)
        result = run_grid(grid_config, cache_dir=tmp_path, max_workers=2)
        assert list(result.records) == serial
        assert result.total_cells == 4
        assert result.computed_cells == 4
        assert result.cached_cells == 0
        assert result.ok

    def test_resume_serves_cache_and_is_identical(self, grid_config, tmp_path):
        first = run_grid(grid_config, cache_dir=tmp_path, max_workers=2)
        second = run_grid(
            grid_config, cache_dir=tmp_path, resume=True, max_workers=2
        )
        assert second.cached_cells == second.total_cells == 4
        assert second.computed_cells == 0
        assert list(second.records) == list(first.records)

    def test_resume_without_cache_dir_recomputes(self, grid_config):
        result = run_grid(grid_config, resume=True, max_workers=1)
        assert result.cached_cells == 0
        assert result.computed_cells == result.total_cells

    def test_empty_grid(self, tmp_path):
        config = dataclasses.replace(
            _single_cell_config(), heterogeneities=(), consistencies=()
        )
        result = run_grid(config, cache_dir=tmp_path)
        assert result.records == ()
        assert result.total_cells == 0
        assert result.ok

    def test_quarantine_continues_and_poisons(self, grid_config, tmp_path):
        result = run_grid(
            grid_config,
            cache_dir=tmp_path,
            max_workers=1,
            retries=0,
            cell_fn=_failing_cell,
        )
        assert not result.ok
        assert len(result.quarantined) == 4
        assert result.records == ()
        cache = CellCache(tmp_path)
        for cell in split_into_cells(grid_config):
            assert cache.is_poisoned(cell_key(cell))
        resumed = run_grid(
            grid_config,
            cache_dir=tmp_path,
            resume=True,
            retries=0,
            cell_fn=_failing_cell,
        )
        assert len(resumed.quarantined) == 4
        assert resumed.computed_cells == 0  # poison skipped, nothing re-run

    def test_on_error_raise_matches_legacy_contract(self, grid_config, tmp_path):
        with pytest.raises(ValueError, match="boom"):
            run_grid(
                grid_config,
                cache_dir=tmp_path,
                max_workers=1,
                retries=0,
                on_error="raise",
                cell_fn=_failing_cell,
            )

    def test_serial_retry_recovers(self, tmp_path):
        _FlakyOnce.calls = 0
        config = _single_cell_config()
        result = run_grid(
            config,
            cache_dir=tmp_path,
            max_workers=1,
            retries=1,
            cell_fn=_FlakyOnce(),
        )
        assert result.ok
        assert result.retried == 1
        assert list(result.records) == run_experiment(config)

    def test_pooled_quarantine(self, grid_config, tmp_path):
        result = run_grid(
            grid_config,
            cache_dir=tmp_path,
            max_workers=2,
            retries=0,
            cell_fn=_failing_cell,
        )
        assert len(result.quarantined) == 4

    def test_validation(self, grid_config):
        with pytest.raises(ConfigurationError):
            run_grid(grid_config, max_workers=0)
        with pytest.raises(ConfigurationError):
            run_grid(grid_config, retries=-1)
        with pytest.raises(ConfigurationError):
            run_grid(grid_config, timeout_s=0)
        with pytest.raises(ConfigurationError):
            run_grid(grid_config, on_error="explode")

    def test_shards_do_not_change_output(self, grid_config, tmp_path):
        serial = run_experiment(grid_config)
        for shards in (1, 2, 7):
            result = run_grid(
                grid_config,
                cache_dir=tmp_path / str(shards),
                max_workers=2,
                shards=shards,
            )
            assert list(result.records) == serial


@pytest.mark.obs
class TestRunGridTraced:
    def test_traced_resume_replays_cell_streams(self, grid_config, tmp_path):
        with use_tracer(CollectingTracer()) as fresh:
            run_grid(grid_config, cache_dir=tmp_path, max_workers=2)
        with use_tracer(CollectingTracer()) as resumed:
            result = run_grid(
                grid_config, cache_dir=tmp_path, resume=True, max_workers=2
            )
        assert result.cached_cells == 4
        assert resumed.counters.get("runner.cells.cached") == 4
        # Cell event streams replay from cache: same kinds/order/count
        # as the fresh run (tuple fields become lists through JSON, so
        # compare kinds, not full fields).
        assert [e.kind for e in resumed.events if not e.kind.startswith("runner")] \
            == [e.kind for e in fresh.events if not e.kind.startswith("runner")]
        resumed_counters = {
            k: v
            for k, v in resumed.counters.as_dict().items()
            if not k.startswith("runner.")
        }
        fresh_counters = {
            k: v
            for k, v in fresh.counters.as_dict().items()
            if not k.startswith("runner.")
        }
        assert resumed_counters == fresh_counters

    def test_sharded_run_builds_single_span_tree(self, grid_config, tmp_path):
        with use_tracer(CollectingTracer()) as tracer:
            run_grid(grid_config, cache_dir=tmp_path, max_workers=2)
        spans = tracer.spans
        assert spans
        assert all(s.trace_id == tracer.trace_id for s in spans)
        (root,) = build_span_tree(spans)
        assert root.kind == "runner.grid"
        cell_nodes = [c for c in root.children if c.kind == "runner.cell"]
        assert len(cell_nodes) == 4
        for cell in cell_nodes:
            kinds = {node.kind for _, node in cell.walk()}
            assert "experiment.cell" in kinds

    def test_uncached_run_records_no_runner_spans(self, grid_config):
        with use_tracer(CollectingTracer()) as tracer:
            run_grid(grid_config, max_workers=2)
        assert all(not s.kind.startswith("runner.") for s in tracer.spans)

    def test_counters_emitted_only_with_cache(self, grid_config, tmp_path):
        with use_tracer(CollectingTracer()) as uncached:
            run_grid(grid_config, max_workers=2)
        assert uncached.counters.get("runner.cells.computed") == 0
        with use_tracer(CollectingTracer()) as cached:
            run_grid(grid_config, cache_dir=tmp_path, max_workers=2)
        assert cached.counters.get("runner.cells.computed") == 4
        assert cached.histograms.get("runner.cell_wall_s").count == 4


class RecordingProgress:
    """Progress stub that records its lifecycle calls."""

    enabled = True

    def __init__(self):
        self.total = 0
        self.advances = 0
        self.started = False
        self.finished = False

    def start(self):
        self.started = True
        return self

    def advance(self, current="", n=1):
        self.advances += n

    def finish(self):
        self.finished = True


class TestProgressFinishOnError:
    """A worker raising mid-cell must not lose the final progress state."""

    def test_serial_raise_still_finishes_progress(self, grid_config, tmp_path):
        progress = RecordingProgress()
        with pytest.raises(ValueError, match="boom"):
            run_grid(
                grid_config,
                cache_dir=tmp_path,
                max_workers=1,
                retries=0,
                on_error="raise",
                cell_fn=_failing_cell,
                progress=progress,
            )
        assert progress.started
        assert progress.finished

    def test_pooled_raise_still_finishes_progress(self, grid_config, tmp_path):
        progress = RecordingProgress()
        with pytest.raises(ValueError, match="boom"):
            run_grid(
                grid_config,
                cache_dir=tmp_path,
                max_workers=2,
                retries=0,
                on_error="raise",
                cell_fn=_failing_cell,
                progress=progress,
            )
        assert progress.finished

    def test_stream_reporter_renders_final_line_on_error(
        self, grid_config, tmp_path
    ):
        stream = io.StringIO()
        with pytest.raises(ValueError, match="boom"):
            run_grid(
                grid_config,
                cache_dir=tmp_path,
                max_workers=2,
                retries=0,
                on_error="raise",
                cell_fn=_failing_cell,
                progress=ProgressReporter(stream=stream, label="cells"),
            )
        rendered = stream.getvalue()
        assert rendered.endswith("\n")
        assert "done" in rendered.splitlines()[-1]


class TestRunGridTimeseries:
    def test_summary_and_file(self, grid_config, tmp_path):
        path = tmp_path / "ts" / "run.jsonl"
        result = run_grid(
            grid_config,
            cache_dir=tmp_path / "cells",
            max_workers=2,
            timeseries=path,
            sample_interval_s=0.0,
        )
        summary = result.timeseries_summary
        assert summary is not None
        assert summary["path"] == str(path)
        assert summary["tasks_scheduled"] == (
            len(result.records) * grid_config.num_tasks
        )
        assert summary["tasks_per_s"] > 0
        header, samples = read_timeseries(path)
        assert header["label"] == "run-grid"
        assert samples
        assert samples[-1]["metrics"]["cells_done"] == result.total_cells

    def test_no_timeseries_means_no_summary(self, grid_config, tmp_path):
        result = run_grid(grid_config, cache_dir=tmp_path)
        assert result.timeseries_summary is None

    def test_log_closed_and_valid_after_error(self, grid_config, tmp_path):
        path = tmp_path / "ts.jsonl"
        with pytest.raises(ValueError, match="boom"):
            run_grid(
                grid_config,
                cache_dir=tmp_path / "cells",
                max_workers=1,
                retries=0,
                on_error="raise",
                cell_fn=_failing_cell,
                timeseries=path,
            )
        # the finally path forced a final sample and closed the file
        header, samples = read_timeseries(path)
        assert header["schema"] == "repro-timeseries/1"
        assert samples


class TestTimeouts:
    def test_timeout_quarantines_slow_cells(self, tmp_path):
        # Needs >= 2 pending cells: a single cell takes the serial
        # path, which cannot interrupt a running cell and ignores
        # timeout_s.
        config = _single_cell_config(
            heterogeneities=(Heterogeneity.HIHI, Heterogeneity.LOLO)
        )
        result = run_grid(
            config,
            cache_dir=tmp_path,
            max_workers=2,
            timeout_s=0.1,
            retries=0,
            cell_fn=_sleepy_cell,
        )
        assert not result.ok
        assert len(result.quarantined) == 2
        assert all("timeout" in q.error.lower() for q in result.quarantined)
        assert result.records == ()


def _sleepy_cell(config):
    import time

    time.sleep(1.0)
    return run_experiment(config)


class TestBatchPacking:
    def test_homogeneous_grid_chunks_in_order(self, grid_config):
        cells = split_into_cells(grid_config)
        batches = pack_same_shape_batches(cells, 3)
        assert [len(b) for b in batches] == [3, 1]
        assert [cell for batch in batches for cell in batch] == cells

    def test_mixed_shapes_never_share_a_batch(self):
        small = _single_cell_config(num_tasks=4)
        big = _single_cell_config(num_tasks=9)
        cells = [small, big, small, big, small]
        batches = pack_same_shape_batches(cells, 2)
        for batch in batches:
            shapes = {(c.num_tasks, c.num_machines) for c in batch}
            assert len(shapes) == 1
        assert sorted(len(b) for b in batches) == [1, 2, 2]

    def test_batch_size_one_is_singletons(self, grid_config):
        cells = split_into_cells(grid_config)
        assert pack_same_shape_batches(cells, 1) == [[c] for c in cells]

    def test_rejects_nonpositive_batch_size(self, grid_config):
        with pytest.raises(ConfigurationError):
            pack_same_shape_batches(split_into_cells(grid_config), 0)

    def test_custom_key(self):
        batches = pack_same_shape_batches(
            ["aa", "b", "cc"], 2, key=len
        )
        assert batches == [["aa", "cc"], ["b"]]


class TestRunGridBatched:
    def test_pooled_batched_matches_serial(self, grid_config, tmp_path):
        serial = run_experiment(grid_config)
        result = run_grid(
            grid_config, cache_dir=tmp_path, max_workers=2, batch_size=3
        )
        assert list(result.records) == serial
        assert result.computed_cells == result.total_cells == 4

    def test_serial_batched_matches_serial(self, grid_config, tmp_path):
        serial = run_experiment(grid_config)
        result = run_grid(
            grid_config, cache_dir=tmp_path, max_workers=1, batch_size=2
        )
        assert list(result.records) == serial

    def test_batched_cache_entries_resume_unbatched(self, grid_config, tmp_path):
        first = run_grid(
            grid_config, cache_dir=tmp_path, max_workers=2, batch_size=4
        )
        resumed = run_grid(grid_config, cache_dir=tmp_path, resume=True)
        assert resumed.cached_cells == resumed.total_cells
        assert resumed.records == first.records

    def test_batch_counters_emitted(self, grid_config, tmp_path):
        tracer = CollectingTracer()
        with use_tracer(tracer):
            run_grid(grid_config, cache_dir=tmp_path, max_workers=1, batch_size=3)
        counters = tracer.counters.as_dict()
        assert counters.get("runner.batch.submitted") == 2
        histograms = tracer.histograms.as_dict()
        assert histograms.get("runner.batch.size").count == 2
        assert histograms.get("runner.batch.fill_pct").count == 2

    def test_batched_failure_quarantines_every_cell(self, grid_config, tmp_path):
        result = run_grid(
            grid_config,
            cache_dir=tmp_path,
            max_workers=2,
            batch_size=4,
            retries=0,
            cell_fn=_failing_cell,
        )
        assert len(result.quarantined) == 4
        assert result.records == ()

    def test_rejects_nonpositive_batch_size(self, grid_config):
        with pytest.raises(ConfigurationError):
            run_grid(grid_config, batch_size=0)


class TestBackendConfigIdentity:
    def test_default_backend_keeps_legacy_cache_keys(self):
        config = _single_cell_config()
        assert "backend" not in config_to_dict(config)
        assert cell_key(config) == cell_key(
            dataclasses.replace(config, backend="incremental")
        )

    def test_non_default_backend_is_recorded(self):
        config = _single_cell_config(backend="batched")
        assert config_to_dict(config)["backend"] == "batched"
        assert cell_key(config) != cell_key(_single_cell_config())

    def test_unknown_backend_rejected_at_config_time(self):
        from repro.exceptions import UnknownBackendError

        with pytest.raises(UnknownBackendError):
            _single_cell_config(backend="compiled")

    def test_backend_does_not_change_records(self, grid_config):
        base = run_experiment(grid_config)
        for backend in ("reference", "batched"):
            assert (
                run_experiment(dataclasses.replace(grid_config, backend=backend))
                == base
            )

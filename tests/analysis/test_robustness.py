"""Unit tests for the ETC-uncertainty robustness analysis."""

import numpy as np
import pytest

from repro.analysis.robustness import (
    makespan_degradation,
    perturbed_finish_times,
    robustness_radius,
)
from repro.core.schedule import Mapping
from repro.etc.generation import generate_range_based
from repro.etc.matrix import ETCMatrix
from repro.exceptions import ConfigurationError
from repro.heuristics import MCT, MinMin


@pytest.fixture
def mapping(square_etc):
    return MCT().map_tasks(square_etc)


class TestPerturbedFinishTimes:
    def test_zero_error_reproduces_estimates(self, mapping):
        finish = perturbed_finish_times(mapping, np.zeros(4))
        assert np.allclose(finish, mapping.finish_time_vector())

    def test_uniform_inflation_scales_loads(self, square_etc):
        mapping = MCT().map_tasks(square_etc)
        finish = perturbed_finish_times(mapping, np.full(4, 0.5))
        assert np.allclose(finish, 1.5 * mapping.finish_time_vector())

    def test_single_task_error_hits_only_its_machine(self, square_etc):
        mapping = MCT().map_tasks(square_etc)
        errors = np.zeros(4)
        errors[0] = 1.0  # t0 doubles
        finish = perturbed_finish_times(mapping, errors)
        target = square_etc.machine_index(mapping.machine_of("t0"))
        baseline = mapping.finish_time_vector()
        for j in range(4):
            if j == target:
                assert finish[j] > baseline[j]
            else:
                assert finish[j] == pytest.approx(baseline[j])

    def test_respects_initial_ready(self):
        etc = ETCMatrix([[2.0, 9.0]])
        m = Mapping(etc, {"m0": 5.0})
        m.assign("t0", "m0")
        finish = perturbed_finish_times(m, np.array([1.0]))
        assert finish[0] == pytest.approx(5.0 + 4.0)

    def test_validation(self, mapping):
        with pytest.raises(ConfigurationError):
            perturbed_finish_times(mapping, np.zeros(3))
        with pytest.raises(ConfigurationError):
            perturbed_finish_times(mapping, np.full(4, -1.0))


class TestRobustnessRadius:
    def test_closed_form_matches_definition(self, square_etc):
        """The radius is exactly the error level at which the binding
        machine hits the tolerance bound."""
        mapping = MinMin().map_tasks(square_etc)
        radius = robustness_radius(mapping, tolerance=1.2)
        worst = perturbed_finish_times(mapping, np.full(4, radius)).max()
        assert worst == pytest.approx(1.2 * mapping.makespan())
        slightly_more = perturbed_finish_times(
            mapping, np.full(4, radius + 1e-6)
        ).max()
        assert slightly_more > 1.2 * mapping.makespan()

    def test_larger_tolerance_gives_larger_radius(self, mapping):
        assert robustness_radius(mapping, 1.5) > robustness_radius(mapping, 1.1)

    def test_own_makespan_radius_is_tolerance_slack_at_zero_ready(self):
        """Against its own makespan every zero-ready mapping's binding
        machine is the makespan machine, so the radius is tolerance-1."""
        etc = ETCMatrix([[1.0, 1.1], [1.0, 1.1], [1.0, 1.1], [1.0, 1.1]])
        mapping = MCT().map_tasks(etc)
        assert robustness_radius(mapping, 1.2) == pytest.approx(0.2)

    def test_balanced_mapping_more_robust_against_shared_deadline(self):
        etc = ETCMatrix([[1.0, 1.1], [1.0, 1.1], [1.0, 1.1], [1.0, 1.1]])
        balanced = MCT().map_tasks(etc)
        lopsided = Mapping(etc)
        for t in etc.tasks:
            lopsided.assign(t, "m0")
        deadline = 4.2  # common absolute bound
        assert robustness_radius(balanced, bound=deadline) > robustness_radius(
            lopsided, bound=deadline
        )

    def test_bound_already_violated_gives_negative_radius(self):
        etc = ETCMatrix([[4.0, 9.0]])
        m = Mapping(etc)
        m.assign("t0", "m0")
        assert robustness_radius(m, bound=2.0) < 0.0

    def test_bound_validation(self, mapping):
        with pytest.raises(ConfigurationError):
            robustness_radius(mapping, bound=0.0)

    def test_validation(self, mapping, square_etc):
        with pytest.raises(ConfigurationError):
            robustness_radius(mapping, tolerance=1.0)
        with pytest.raises(ConfigurationError):
            robustness_radius(Mapping(square_etc))  # incomplete

    def test_idle_machines_ignored(self):
        etc = ETCMatrix([[1.0, 50.0]])
        m = Mapping(etc)
        m.assign("t0", "m0")
        assert np.isfinite(robustness_radius(m))


class TestDegradation:
    def test_summary_fields(self):
        etc = generate_range_based(20, 5, rng=0)
        mapping = MinMin().map_tasks(etc)
        summary = makespan_degradation(mapping, error_cv=0.2, samples=100, rng=1)
        assert summary.estimated_makespan == pytest.approx(mapping.makespan())
        assert summary.worst_realised >= summary.mean_realised
        assert 0.0 <= summary.violation_rate <= 1.0
        assert summary.mean_degradation > 0.9

    def test_reproducible(self, mapping):
        a = makespan_degradation(mapping, samples=50, rng=7)
        b = makespan_degradation(mapping, samples=50, rng=7)
        assert a == b

    def test_more_noise_more_degradation(self):
        etc = generate_range_based(20, 5, rng=2)
        mapping = MinMin().map_tasks(etc)
        calm = makespan_degradation(mapping, error_cv=0.05, samples=150, rng=3)
        wild = makespan_degradation(mapping, error_cv=0.5, samples=150, rng=3)
        assert wild.worst_realised > calm.worst_realised

    def test_validation(self, mapping):
        with pytest.raises(ConfigurationError):
            makespan_degradation(mapping, error_cv=0.0)
        with pytest.raises(ConfigurationError):
            makespan_degradation(mapping, samples=0)

"""Unit tests for the reproduction report generator."""

import pytest

from repro.analysis.report import (
    build_report,
    paper_example_outcomes,
)
from repro.cli import main as cli_main


@pytest.fixture(scope="module")
def outcomes():
    return paper_example_outcomes()


@pytest.fixture(scope="module")
def quick_report():
    return build_report(quick=True, seed=0)


class TestExampleOutcomes:
    def test_six_examples(self, outcomes):
        assert len(outcomes) == 6
        labels = [o.label for o in outcomes]
        assert any("Min-Min" in label for label in labels)
        assert any("Sufferage" in label for label in labels)

    def test_all_match_paper(self, outcomes):
        for outcome in outcomes:
            assert outcome.original_ok, outcome.label
            assert outcome.first_iteration_ok, outcome.label
            assert outcome.ok, outcome.label

    def test_invariant_examples_have_no_iter_expectation(self, outcomes):
        by_label = {o.label: o for o in outcomes}
        assert by_label["MCT (§3.3)"].expected_first_iteration is None
        assert by_label["SWA (§3.5)"].expected_first_iteration is not None

    def test_mismatch_detection(self, outcomes):
        """A deliberately wrong expectation must flip the verdict."""
        import dataclasses

        broken = dataclasses.replace(
            outcomes[0], expected_original={"m1": 99.0, "m2": 2.0, "m3": 4.0}
        )
        assert not broken.original_ok
        assert not broken.ok


class TestReport:
    def test_no_mismatches(self, quick_report):
        assert "MISMATCH" not in quick_report
        assert quick_report.count("| match |") == 6

    def test_sections_present(self, quick_report):
        for heading in (
            "# Reproduction report",
            "## Worked examples",
            "## Invariance theorems",
            "## Improvement study",
            "## Seeding extension",
            "## Cross-heuristic comparison",
            "## Appendix — witness matrices",
        ):
            assert heading in quick_report

    def test_theorem_lines_report_zero_changes(self, quick_report):
        for name in ("min-min", "mct", "met"):
            assert f"{name}: 5 instances, 0 mapping changes" in quick_report

    def test_seeding_lines_show_cure(self, quick_report):
        assert "sufferage: plain makespans (10.0, 10.5, 8.5)" in quick_report

    def test_deterministic_across_builds(self):
        assert build_report(quick=True, seed=3) == build_report(quick=True, seed=3)


class TestReportCLI:
    def test_writes_file(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        assert cli_main(["report", "--quick", "-o", str(out)]) == 0
        text = out.read_text()
        assert "# Reproduction report" in text
        assert "MISMATCH" not in text

    def test_stdout_mode(self, capsys):
        assert cli_main(["report", "--quick"]) == 0
        assert "# Reproduction report" in capsys.readouterr().out

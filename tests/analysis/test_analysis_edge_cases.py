"""Edge-case coverage across the analysis stack."""

import math

import numpy as np

from repro.analysis.gantt import render_gantt
from repro.analysis.invariance import verify_invariance
from repro.analysis.report import build_report
from repro.analysis.tables import render_iteration_overview
from repro.analysis.trajectory import sparkline, trajectory_of
from repro.core.iterative import IterativeScheduler
from repro.core.schedule import Mapping
from repro.core.ties import RandomTieBreaker
from repro.etc.generation import Consistency, generate_range_based
from repro.etc.matrix import ETCMatrix
from repro.heuristics import MCT, Sufferage, get_heuristic


class TestInvarianceEdgeCases:
    def test_cvb_method_does_not_matter_for_theorems(self):
        from repro.etc.generation import generate_ensemble

        instances = generate_ensemble(10, 12, 4, method="cvb", rng=5)
        report = verify_invariance("mct", instances=instances)
        assert report.invariant

    def test_semi_consistent_class(self):
        report = verify_invariance(
            "min-min",
            num_instances=10,
            num_tasks=12,
            num_machines=4,
            consistency=Consistency.SEMI_CONSISTENT,
            rng=6,
        )
        assert report.invariant

    def test_random_ties_on_continuous_values_rarely_change(self):
        """Continuous ETCs have measure-zero ties: random policies act
        deterministically and the theorems' conclusion still shows."""
        report = verify_invariance(
            "mct",
            num_instances=15,
            num_tasks=15,
            num_machines=5,
            tie_breaker=RandomTieBreaker(rng=0),
            rng=7,
        )
        assert report.mapping_changes == 0

    def test_violation_cap_zero(self):
        report = verify_invariance(
            "sufferage",
            num_instances=15,
            num_tasks=15,
            num_machines=5,
            rng=8,
            keep_violations=0,
        )
        assert report.mapping_changes > 0
        assert report.violations == []


class TestRenderingEdgeCases:
    def test_gantt_single_bar_fills_row(self):
        etc = ETCMatrix([[5.0]])
        m = Mapping(etc)
        m.assign("t0", "m0")
        text = render_gantt(m, width=20)
        assert "t0" in text

    def test_gantt_many_machines_aligned(self):
        etc = generate_range_based(12, 9, rng=9)
        mapping = MCT().map_tasks(etc)
        text = render_gantt(mapping, width=40, show_scale=False)
        rows = text.splitlines()
        assert len(rows) == 9
        assert len({row.index("|") for row in rows}) == 1  # aligned gutters

    def test_iteration_overview_with_task_exhaustion(self):
        etc = ETCMatrix([[5.0, 1.0, 2.0]])  # 1 task, 3 machines
        result = IterativeScheduler(MCT()).run(etc)
        text = render_iteration_overview(result)
        assert "-" in text  # the no-frozen-tasks placeholder never shows
        assert f"{result.num_iterations - 1}" in text

    def test_sparkline_handles_negatives(self):
        line = sparkline([-5.0, 0.0, 5.0])
        assert line[0] == "▁" and line[-1] == "█"

    def test_trajectory_single_iteration(self):
        etc = ETCMatrix([[2.0], [3.0]])
        traj = trajectory_of(IterativeScheduler(MCT()).run(etc))
        assert traj.num_iterations == 1
        assert traj.monotone()


class TestReportEdgeCases:
    def test_report_seed_changes_study_numbers_not_examples(self):
        a = build_report(quick=True, seed=0)
        b = build_report(quick=True, seed=99)
        # worked-example section identical (deterministic replays)...
        assert a.split("## Invariance")[0] == b.split("## Invariance")[0]
        # ...while the ensemble sections may differ
        assert "| match |" in a and "| match |" in b


class TestNumericalStability:
    def test_iterative_with_extreme_scale_instances(self):
        """Values spanning 9 orders of magnitude must not break the
        bookkeeping or the validators."""
        from repro.core.validation import validate_iterative_result

        rng = np.random.default_rng(10)
        values = 10.0 ** rng.uniform(-3, 6, size=(12, 4))
        etc = ETCMatrix(values)
        for name in ("mct", "min-min", "sufferage"):
            result = IterativeScheduler(get_heuristic(name)).run(etc)
            validate_iterative_result(result)
            assert all(
                math.isfinite(v) for v in result.final_finish_times.values()
            )

    def test_sufferage_fast_path_with_huge_values(self):
        values = np.full((8, 3), 1e12)
        values[np.arange(8), np.arange(8) % 3] = 1e12 * (1 - 1e-6)
        etc = ETCMatrix(values)
        mapping = Sufferage().map_tasks(etc)
        assert mapping.is_complete()

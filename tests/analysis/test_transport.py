"""Zero-copy transport tests: shared-memory fan-out and the store-backed
grid runner.

The contract under test (docs/architecture.md, "Transport & storage"):
store/shm transport changes *how bytes move*, never *what is computed* —
records, cache entries and traced event streams must be byte-identical
to the in-memory path, transport-only parent-side counters excepted —
and no run, including aborted ones, may leak ``/dev/shm`` segments,
store locks, or parent-side mmap handles.
"""

import os
import pickle

import numpy as np
import pytest

from repro.analysis.experiments import ExperimentConfig, run_experiment
from repro.analysis.parallel import (
    SHM_PREFIX,
    SharedMemoryArena,
    ShmDescriptor,
    attach_shared,
    detach_shared,
)
from repro.analysis.runner import (
    _WORKER_STORES,
    CellCache,
    cell_key,
    run_grid,
    store_entry_key,
)
from repro.etc.generation import Consistency, Heterogeneity
from repro.etc.store import ETCStore
from repro.exceptions import ConfigurationError
from repro.obs.tracer import CollectingTracer, use_tracer

#: Counter/histogram prefixes the transport is allowed to add on the
#: parent tracer (the documented byte-identity carve-out).
TRANSPORT_PREFIXES = ("store.", "runner.ipc.")


def shm_leftovers():
    try:
        return [n for n in os.listdir("/dev/shm") if n.startswith(SHM_PREFIX)]
    except FileNotFoundError:  # pragma: no cover - non-tmpfs platforms
        return []


@pytest.fixture(scope="module")
def grid_config():
    return ExperimentConfig(
        heuristics=("mct", "min-min"),
        num_tasks=10,
        num_machines=3,
        heterogeneities=(Heterogeneity.HIHI, Heterogeneity.LOLO),
        consistencies=(Consistency.CONSISTENT, Consistency.INCONSISTENT),
        instances_per_cell=2,
        seed=3,
    )


class TestSharedMemoryArena:
    def test_publish_attach_round_trip(self):
        values = np.arange(24.0).reshape(2, 3, 4) + 1.0
        with SharedMemoryArena() as arena:
            descriptor = arena.publish(values)
            assert descriptor.nbytes == values.nbytes
            view = attach_shared(descriptor)
            assert np.array_equal(view, values)
            assert not view.flags.writeable
            # Cached: a second attach is the same view object.
            assert attach_shared(descriptor) is view
            detach_shared(descriptor.name)
        assert not shm_leftovers()

    def test_descriptor_is_tiny_and_picklable(self):
        values = np.ones((64, 128, 16))
        with SharedMemoryArena() as arena:
            descriptor = arena.publish(values)
            payload = pickle.dumps(descriptor)
            assert len(payload) < 512 < values.nbytes
            assert pickle.loads(payload) == descriptor
            detach_shared()

    def test_close_unlinks_all_segments(self):
        arena = SharedMemoryArena()
        names = [arena.publish(np.ones((4, 4))).name for _ in range(3)]
        assert len(arena) == 3
        arena.close()
        assert len(arena) == 0
        for name in names:
            assert not os.path.exists(f"/dev/shm/{name}")
        arena.close()  # idempotent

    def test_abnormal_exit_cleans_up(self):
        with pytest.raises(RuntimeError):
            with SharedMemoryArena() as arena:
                arena.publish(np.ones((8, 8)))
                raise RuntimeError("simulated crash mid-fan-out")
        assert not shm_leftovers()

    def test_empty_publish_rejected(self):
        with SharedMemoryArena() as arena:
            with pytest.raises(ConfigurationError):
                arena.publish(np.empty((0, 4)))

    def test_detach_unknown_name_is_noop(self):
        detach_shared("never-attached")

    def test_descriptor_nbytes(self):
        d = ShmDescriptor(name="x", shape=(3, 4, 5), dtype="<f8")
        assert d.nbytes == 3 * 4 * 5 * 8


class TestStoreTransportIdentity:
    def test_records_match_serial_in_memory_run(self, grid_config, tmp_path):
        serial = run_experiment(grid_config)
        result = run_grid(
            grid_config,
            cache_dir=tmp_path / "cells",
            store_dir=tmp_path / "store",
            stream_chunk=1,
        )
        assert list(result.records) == serial
        assert result.store_published == result.total_cells == 4

    def test_cache_entries_byte_identical_to_non_store_run(
        self, grid_config, tmp_path
    ):
        run_grid(grid_config, cache_dir=tmp_path / "plain")
        run_grid(
            grid_config, cache_dir=tmp_path / "via-store",
            store_dir=tmp_path / "store",
        )
        plain = CellCache(tmp_path / "plain")
        via_store = CellCache(tmp_path / "via-store")
        assert plain.keys() == via_store.keys() != []
        for key in plain.keys():
            assert (
                plain.path_for(key).read_bytes()
                == via_store.path_for(key).read_bytes()
            )

    def test_traced_run_identical_modulo_transport_counters(
        self, grid_config, tmp_path
    ):
        with use_tracer(CollectingTracer()) as plain:
            run_grid(grid_config, cache_dir=tmp_path / "plain")
        with use_tracer(CollectingTracer()) as stored:
            run_grid(
                grid_config, cache_dir=tmp_path / "via-store",
                store_dir=tmp_path / "store",
            )
        assert [(e.kind, e.fields) for e in stored.events] == [
            (e.kind, e.fields) for e in plain.events
        ]

        def non_transport(counters):
            return {
                k: v
                for k, v in counters.as_dict().items()
                if not k.startswith(TRANSPORT_PREFIXES)
            }

        assert non_transport(stored.counters) == non_transport(plain.counters)
        assert stored.counters.get("store.cells_published") == 4
        assert stored.counters.get("store.bytes_written") == sum(
            e.nbytes
            for e in map(
                ETCStore(tmp_path / "store", create=False).entry,
                ETCStore(tmp_path / "store", create=False).keys(),
            )
        )
        histograms = stored.histograms.as_dict()
        assert "runner.ipc.descriptor_bytes" in histograms
        assert "runner.ipc.payload_bytes" in histograms

    def test_pooled_store_run_matches_serial(self, grid_config, tmp_path):
        serial = run_experiment(grid_config)
        result = run_grid(
            grid_config,
            cache_dir=tmp_path / "cells",
            store_dir=tmp_path / "store",
            max_workers=2,
        )
        assert list(result.records) == serial
        assert result.ok

    def test_resume_reuses_published_ensembles(self, grid_config, tmp_path):
        first = run_grid(
            grid_config, cache_dir=tmp_path / "a", store_dir=tmp_path / "store"
        )
        assert first.store_published == 4 and first.store_reused == 0
        # Fresh cache, same store: every ensemble is served from disk.
        second = run_grid(
            grid_config, cache_dir=tmp_path / "b", store_dir=tmp_path / "store"
        )
        assert second.store_published == 0 and second.store_reused == 4
        assert list(second.records) == list(first.records)
        # Cached resume never touches the publish path at all.
        third = run_grid(
            grid_config, cache_dir=tmp_path / "a",
            store_dir=tmp_path / "store", resume=True,
        )
        assert third.cached_cells == 4
        assert third.store_published == third.store_reused == 0

    def test_entries_shared_across_heuristic_variants(self, tmp_path):
        base = ExperimentConfig(
            heuristics=("mct",), num_tasks=6, num_machines=3,
            instances_per_cell=2, seed=5,
        )
        other = ExperimentConfig(
            heuristics=("min-min", "met"), num_tasks=6, num_machines=3,
            instances_per_cell=2, seed=5,
        )
        run_grid(base, cache_dir=tmp_path / "a", store_dir=tmp_path / "store")
        result = run_grid(
            other, cache_dir=tmp_path / "b", store_dir=tmp_path / "store"
        )
        assert result.store_reused == 1 and result.store_published == 0
        het = base.heterogeneities[0]
        cons = base.consistencies[0]
        assert store_entry_key(base, het, cons) == store_entry_key(
            other, het, cons
        )
        assert store_entry_key(base, het, cons) != cell_key(base)


class TestStoreTransportValidation:
    def test_stream_chunk_requires_store(self, grid_config):
        with pytest.raises(ConfigurationError, match="requires store_dir"):
            run_grid(grid_config, stream_chunk=4)

    def test_stream_chunk_must_be_positive(self, grid_config, tmp_path):
        with pytest.raises(ConfigurationError, match="stream_chunk"):
            run_grid(grid_config, store_dir=tmp_path / "s", stream_chunk=0)

    def test_store_rejects_custom_cell_fn(self, grid_config, tmp_path):
        with pytest.raises(ConfigurationError, match="cell_fn"):
            run_grid(
                grid_config,
                store_dir=tmp_path / "s",
                cell_fn=lambda config: [],
            )


class TestStoreTransportCleanup:
    def test_serial_run_releases_all_parent_handles(self, grid_config, tmp_path):
        store_root = tmp_path / "store"
        run_grid(grid_config, cache_dir=tmp_path / "cells", store_dir=store_root)
        assert str(store_root) not in _WORKER_STORES
        assert not (store_root / "store.lock").exists()
        assert not shm_leftovers()

    def test_quarantined_store_cells_release_handles(self, grid_config, tmp_path):
        """A store whose payload is corrupted after publish fails every
        cell; the run must quarantine them all and still release the
        parent's store handles, lock and mmaps."""
        store_root = tmp_path / "store"
        # Publish by running once, then truncate the data file so every
        # memmap attach in the compute phase fails.
        run_grid(grid_config, cache_dir=tmp_path / "warm", store_dir=store_root)
        (store_root / "data.bin").write_bytes(b"")
        result = run_grid(
            grid_config,
            cache_dir=tmp_path / "cold",
            store_dir=store_root,
            retries=0,
        )
        assert len(result.quarantined) == result.total_cells == 4
        assert not result.records
        assert str(store_root) not in _WORKER_STORES
        assert not (store_root / "store.lock").exists()

    def test_timed_out_store_cells_release_handles(self, tmp_path):
        """Pooled store run where every attempt exceeds the per-cell
        timeout: cells are quarantined and the parent leaves no lock,
        no cached handle, and no shm segments behind."""
        config = ExperimentConfig(
            heuristics=("min-min",),
            num_tasks=256,
            num_machines=8,
            heterogeneities=(Heterogeneity.HIHI, Heterogeneity.LOLO),
            instances_per_cell=24,
            seed=9,
        )
        store_root = tmp_path / "store"
        result = run_grid(
            config,
            cache_dir=tmp_path / "cells",
            store_dir=store_root,
            max_workers=2,
            timeout_s=0.05,
            retries=0,
        )
        assert len(result.quarantined) == result.total_cells == 2
        assert str(store_root) not in _WORKER_STORES
        assert not (store_root / "store.lock").exists()
        assert not shm_leftovers()

    def test_interrupted_publish_releases_lock_and_handles(
        self, grid_config, tmp_path, monkeypatch
    ):
        """A crash mid-publish (first ensemble streamed, then death)
        must leave no lock and no parent handle; the next run publishes
        the remainder and completes byte-identically."""
        import repro.analysis.runner as runner_mod

        store_root = tmp_path / "store"
        calls = {"n": 0}
        real = runner_mod.generate_ensemble_into

        def dying(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 2:
                raise KeyboardInterrupt("simulated kill mid-publish")
            return real(*args, **kwargs)

        monkeypatch.setattr(runner_mod, "generate_ensemble_into", dying)
        with pytest.raises(KeyboardInterrupt):
            run_grid(
                grid_config, cache_dir=tmp_path / "cells", store_dir=store_root
            )
        monkeypatch.setattr(runner_mod, "generate_ensemble_into", real)
        assert not (store_root / "store.lock").exists()
        assert str(store_root) not in _WORKER_STORES
        assert len(ETCStore(store_root, create=False).keys()) == 1

        resumed = run_grid(
            grid_config,
            cache_dir=tmp_path / "cells",
            store_dir=store_root,
            resume=True,
        )
        assert list(resumed.records) == run_experiment(grid_config)
        assert resumed.store_reused == 1
        assert resumed.store_published == 3

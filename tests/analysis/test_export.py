"""Unit tests for repro.analysis.export."""

import csv
import json

import pytest

from repro.analysis.experiments import ExperimentConfig, run_experiment
from repro.analysis.export import (
    comparison_rows_to_rows,
    improvement_rows_to_rows,
    iterative_result_to_dict,
    run_records_to_rows,
    write_csv,
    write_json,
)
from repro.analysis.study import heuristic_comparison, improvement_study
from repro.core.iterative import IterativeScheduler
from repro.etc.witness import sufferage_example_etc
from repro.exceptions import ConfigurationError
from repro.heuristics import Sufferage


@pytest.fixture(scope="module")
def records():
    config = ExperimentConfig(
        heuristics=("mct", "sufferage"),
        num_tasks=10,
        num_machines=3,
        instances_per_cell=3,
        seed=0,
    )
    return run_experiment(config)


class TestRowFlattening:
    def test_run_records(self, records):
        rows = run_records_to_rows(records)
        assert len(rows) == len(records)
        assert {"heuristic", "final_makespan", "mapping_changed"} <= set(rows[0])

    def test_improvement_rows(self):
        rows = improvement_study(
            heuristics=("mct",), num_tasks=8, num_machines=3, instances=2,
            tie_policies=("deterministic",), seed=0,
        )
        flat = improvement_rows_to_rows(rows)
        assert flat[0]["heuristic"] == "mct"
        assert flat[0]["mapping_change_rate"] == 0.0
        assert flat[0]["mean_improvement_ci_low"] <= flat[0]["mean_improvement"]

    def test_comparison_rows(self):
        rows = heuristic_comparison(
            ("mct", "olb"), num_tasks=8, num_machines=3, instances=2, seed=0,
        )
        flat = comparison_rows_to_rows(rows)
        assert {r["heuristic"] for r in flat} == {"mct", "olb"}
        assert all(r["normalized"] >= 1.0 for r in flat)


class TestIterativeResultDump:
    def test_full_dump_roundtrips_json(self, tmp_path):
        result = IterativeScheduler(Sufferage()).run(sufferage_example_etc())
        doc = iterative_result_to_dict(result)
        path = tmp_path / "run.json"
        write_json(doc, path)
        loaded = json.loads(path.read_text())
        assert loaded["heuristic"] == "sufferage"
        assert loaded["makespan_increased"] is True
        assert loaded["makespans"][:2] == [10.0, 10.5]
        assert len(loaded["iterations"]) == result.num_iterations
        first = loaded["iterations"][0]
        assert set(first["assignments"]) == set(loaded["tasks"])

    def test_dump_contains_frozen_chain(self):
        result = IterativeScheduler(Sufferage()).run(sufferage_example_etc())
        doc = iterative_result_to_dict(result)
        frozen = [it["frozen_machine"] for it in doc["iterations"]]
        assert frozen == list(doc["removal_order"])[: len(frozen)]


class TestWriters:
    def test_csv_roundtrip(self, tmp_path, records):
        rows = run_records_to_rows(records)
        path = tmp_path / "records.csv"
        write_csv(rows, path)
        with open(path) as handle:
            back = list(csv.DictReader(handle))
        assert len(back) == len(rows)
        assert back[0]["heuristic"] == rows[0]["heuristic"]

    def test_csv_union_of_columns(self, tmp_path):
        path = tmp_path / "x.csv"
        write_csv([{"a": 1}, {"a": 2, "b": 3}], path)
        with open(path) as handle:
            back = list(csv.DictReader(handle))
        assert back[1]["b"] == "3"

    def test_csv_empty_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            write_csv([], tmp_path / "x.csv")

    def test_json_writer(self, tmp_path):
        path = tmp_path / "x.json"
        write_json({"k": [1, 2]}, path)
        assert json.loads(path.read_text()) == {"k": [1, 2]}

"""Unit tests for the experiment runner and the studies."""

import pytest

from repro.analysis.experiments import ExperimentConfig, run_experiment
from repro.analysis.study import (
    format_comparison_table,
    format_improvement_table,
    heuristic_comparison,
    improvement_study,
)
from repro.etc.generation import Consistency, Heterogeneity
from repro.exceptions import ConfigurationError


class TestExperimentConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(tie_policy="coin")
        with pytest.raises(ConfigurationError):
            ExperimentConfig(instances_per_cell=0)


class TestRunExperiment:
    def test_record_count(self):
        config = ExperimentConfig(
            heuristics=("mct", "met"),
            num_tasks=10,
            num_machines=3,
            instances_per_cell=4,
            seed=0,
        )
        records = run_experiment(config)
        assert len(records) == 2 * 4

    def test_reproducible_by_seed(self):
        config = ExperimentConfig(
            heuristics=("sufferage",),
            num_tasks=12,
            num_machines=4,
            instances_per_cell=3,
            seed=7,
        )
        a = run_experiment(config)
        b = run_experiment(config)
        assert [r.comparison.final_makespan for r in a] == [
            r.comparison.final_makespan for r in b
        ]

    def test_invariant_heuristics_never_change(self):
        config = ExperimentConfig(
            heuristics=("min-min", "mct", "met"),
            num_tasks=15,
            num_machines=4,
            instances_per_cell=5,
            tie_policy="deterministic",
            seed=1,
        )
        for record in run_experiment(config):
            assert not record.comparison.mapping_changed
            assert not record.comparison.makespan_increased

    def test_grid_covers_all_cells(self):
        config = ExperimentConfig(
            heuristics=("mct",),
            num_tasks=8,
            num_machines=3,
            heterogeneities=(Heterogeneity.HIHI, Heterogeneity.LOLO),
            consistencies=(Consistency.CONSISTENT, Consistency.INCONSISTENT),
            instances_per_cell=2,
            seed=2,
        )
        records = run_experiment(config)
        cells = {(r.heterogeneity, r.consistency) for r in records}
        assert len(cells) == 4
        assert len(records) == 8

    def test_heuristic_kwargs_forwarded(self):
        config = ExperimentConfig(
            heuristics=("k-percent-best",),
            num_tasks=8,
            num_machines=4,
            instances_per_cell=2,
            heuristic_kwargs={"k-percent-best": {"percent": 100.0}},
            seed=3,
        )
        # percent=100 -> KPB == MCT -> invariant under deterministic ties
        for record in run_experiment(config):
            assert not record.comparison.mapping_changed

    def test_seeded_iterations_flag(self):
        config = ExperimentConfig(
            heuristics=("sufferage",),
            num_tasks=15,
            num_machines=4,
            instances_per_cell=8,
            seeded_iterations=True,
            seed=4,
        )
        for record in run_experiment(config):
            assert not record.comparison.makespan_increased

    def test_etc_class_label(self):
        config = ExperimentConfig(
            heuristics=("mct",), num_tasks=6, num_machines=3,
            instances_per_cell=1, seed=0,
        )
        rec = run_experiment(config)[0]
        assert rec.etc_class == "hihi/inconsistent"


class TestImprovementStudy:
    def test_rows_cover_grid(self):
        rows = improvement_study(
            heuristics=("mct", "sufferage"),
            num_tasks=12,
            num_machines=4,
            instances=5,
            tie_policies=("deterministic",),
            seed=0,
        )
        assert {(r.heuristic, r.tie_policy) for r in rows} == {
            ("mct", "deterministic"),
            ("sufferage", "deterministic"),
        }

    def test_paper_dichotomy_visible(self):
        rows = improvement_study(
            heuristics=("min-min", "sufferage"),
            num_tasks=15,
            num_machines=5,
            instances=10,
            tie_policies=("deterministic",),
            seed=1,
        )
        by_name = {r.heuristic: r for r in rows}
        assert by_name["min-min"].mapping_change_rate == 0.0
        assert by_name["sufferage"].mapping_change_rate > 0.0

    def test_rate_bounds(self):
        rows = improvement_study(
            heuristics=("sufferage",),
            num_tasks=10,
            num_machines=3,
            instances=5,
            tie_policies=("deterministic",),
            seed=2,
        )
        r = rows[0]
        for value in (
            r.mapping_change_rate,
            r.makespan_increase_rate,
            r.machine_improved_rate,
            r.machine_worsened_rate,
        ):
            assert 0.0 <= value <= 1.0

    def test_format_table(self):
        rows = improvement_study(
            heuristics=("mct",),
            num_tasks=8,
            num_machines=3,
            instances=3,
            tie_policies=("deterministic",),
            seed=0,
        )
        text = format_improvement_table(rows)
        assert "mct" in text and "chg%" in text


class TestHeuristicComparison:
    def test_normalisation_anchored_at_one(self):
        rows = heuristic_comparison(
            ("min-min", "mct", "olb"),
            num_tasks=20,
            num_machines=4,
            instances=5,
            heterogeneities=(Heterogeneity.HIHI,),
            consistencies=(Consistency.INCONSISTENT,),
            seed=0,
        )
        best = min(r.normalized for r in rows)
        assert best == pytest.approx(1.0)

    def test_minmin_beats_olb(self):
        rows = heuristic_comparison(
            ("min-min", "olb"),
            num_tasks=30,
            num_machines=5,
            instances=8,
            heterogeneities=(Heterogeneity.HIHI,),
            consistencies=(Consistency.INCONSISTENT,),
            seed=1,
        )
        by_name = {r.heuristic: r for r in rows}
        assert by_name["min-min"].mean_makespan < by_name["olb"].mean_makespan

    def test_empty_heuristics_rejected(self):
        with pytest.raises(ConfigurationError):
            heuristic_comparison(())

    def test_format_table(self):
        rows = heuristic_comparison(
            ("mct", "met"),
            num_tasks=10,
            num_machines=3,
            instances=3,
            seed=2,
        )
        text = format_comparison_table(rows)
        assert "ETC class" in text and "mct" in text

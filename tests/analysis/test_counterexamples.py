"""Unit tests for repro.analysis.counterexamples."""

import numpy as np
import pytest

from repro.analysis.counterexamples import (
    Counterexample,
    find_makespan_increase,
    half_integer_grid,
    search_counterexample,
)
from repro.core.iterative import IterativeScheduler
from repro.core.ties import RandomTieBreaker
from repro.exceptions import ConfigurationError
from repro.heuristics import Sufferage


class TestGrid:
    def test_half_integers(self):
        grid = half_integer_grid(0.5, 2.0)
        assert grid.tolist() == [0.5, 1.0, 1.5, 2.0]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            half_integer_grid(0.0, 1.0)
        with pytest.raises(ConfigurationError):
            half_integer_grid(2.0, 1.0)


class TestFindIncrease:
    def test_finds_sufferage_witness(self):
        witness = find_makespan_increase(
            "sufferage", num_tasks=8, num_machines=3, trials=2500, rng=0
        )
        assert witness is not None
        assert witness.result.makespan_increased()
        assert witness.increase > 0
        assert "sufferage" in witness.describe()

    def test_finds_random_tie_witness_for_mct(self):
        rng = np.random.default_rng(7)
        witness = find_makespan_increase(
            "mct",
            num_tasks=5,
            num_machines=3,
            trials=800,
            value_grid=[1.0, 2.0, 3.0],  # coarse grid -> many ties
            tie_breaker_factory=lambda: RandomTieBreaker(rng),
            rng=1,
        )
        assert witness is not None
        assert witness.result.makespan_increased()

    def test_deterministic_mct_yields_none(self):
        """The theorem says no witness can exist: the search must fail."""
        witness = find_makespan_increase(
            "mct", num_tasks=6, num_machines=3, trials=300, rng=2
        )
        assert witness is None

    def test_counterexample_properties(self, sufferage_etc):
        result = IterativeScheduler(Sufferage()).run(sufferage_etc)
        ce = Counterexample(etc=sufferage_etc, result=result)
        assert ce.original_makespan == pytest.approx(10.0)
        assert ce.peak_makespan == pytest.approx(10.5)
        assert ce.increase == pytest.approx(0.5)


class TestTargetedSearch:
    def test_reconstructs_paper_ct_targets(self):
        """The targeted search re-derives an instance hitting the exact
        completion-time vectors of the paper's Sufferage example
        (Tables 16-17) — the procedure that produced the frozen witness
        in repro.etc.witness."""
        witness = search_counterexample(
            "sufferage",
            num_tasks=9,
            num_machines=3,
            target_original=[10.0, 9.5, 9.5],
            target_first_iteration=[10.5, 8.5],
            restarts=20,
            steps=3000,
            rng=12345,
        )
        assert witness is not None
        orig = sorted(witness.result.original.mapping.finish_time_vector())
        assert orig == pytest.approx([9.5, 9.5, 10.0])
        first = witness.result.iterations[1].mapping.finish_time_vector()
        assert sorted(first) == pytest.approx([8.5, 10.5])
        assert witness.result.makespan_increased()

    def test_two_machine_iterative_mapping_cannot_change(self):
        """Structural impossibility: with two machines, the first
        iterative mapping re-maps the surviving machine's own tasks onto
        itself — its finishing time cannot change, so no 2-machine
        makespan-increase witness exists for any batch heuristic."""
        witness = find_makespan_increase(
            "sufferage", num_tasks=6, num_machines=2, trials=1500, rng=0
        )
        assert witness is None

    def test_untargeted_search_finds_increase(self):
        witness = search_counterexample(
            "sufferage",
            num_tasks=8,
            num_machines=3,
            restarts=10,
            steps=300,
            rng=3,
        )
        assert witness is not None
        assert witness.result.makespan_increased()

    def test_impossible_target_returns_none(self):
        witness = search_counterexample(
            "mct",
            num_tasks=3,
            num_machines=2,
            # a first-iteration vector with the wrong dimensionality can
            # never match: machines after one removal = 1, target has 3
            target_first_iteration=[1.0, 2.0, 3.0],
            restarts=2,
            steps=50,
            rng=0,
        )
        assert witness is None

"""Transport-agnostic service core: handle → status/envelope contracts.

Everything here drives ``await service.handle(payload)`` directly (no
sockets), covering the compute/cache/error/overload paths, the traced
span shape the smoke gate asserts, and the ledger summary.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.exceptions import ConfigurationError, ReproError
from repro.obs import CollectingTracer, use_tracer
from repro.serve.models import RESPONSE_SCHEMA
from repro.serve.service import STATS_SCHEMA, SchedulingService, execute_request

pytestmark = pytest.mark.serve

VALUES = [[4.0, 5.0, 5.0], [6.0, 2.0, 2.0], [5.0, 6.0, 3.0], [4.0, 1.0, 3.0]]
MAP_PAYLOAD = {"kind": "map", "etc": {"values": VALUES}}


def run(coro):
    return asyncio.run(coro)


def make_service(tmp_path, **kwargs) -> SchedulingService:
    return SchedulingService(str(tmp_path / "responses"), **kwargs)


def test_map_request_computes(tmp_path):
    service = make_service(tmp_path)
    try:
        status, response = run(service.handle(MAP_PAYLOAD))
    finally:
        service.close()
    assert status == 200
    assert response["schema"] == RESPONSE_SCHEMA
    assert response["cached"] is False
    result = response["result"]
    assert result["kind"] == "map"
    assert result["tasks"] == 4 and result["machines"] == 3
    assert set(result["assignments"]) == {"t0", "t1", "t2", "t3"}
    assert result["makespan"] == pytest.approx(
        max(result["finish_times"].values())
    )


def test_repeat_request_served_from_cache(tmp_path):
    service = make_service(tmp_path)
    try:
        status1, first = run(service.handle(MAP_PAYLOAD))
        status2, second = run(service.handle(MAP_PAYLOAD))
    finally:
        service.close()
    assert (status1, status2) == (200, 200)
    assert first["cached"] is False and second["cached"] is True
    assert first["key"] == second["key"]
    assert first["result"] == second["result"]
    assert service.counts["requests"] == 2
    assert service.counts["computed"] == 1
    assert service.counts["cache_hits"] == 1


def test_trace_verbosity_shares_the_cache_entry(tmp_path):
    """Non-identity fields must hit the entry the base request filled."""
    service = make_service(tmp_path)
    try:
        _, first = run(service.handle(MAP_PAYLOAD))
        _, second = run(
            service.handle({**MAP_PAYLOAD, "trace": True, "request_id": "r-1"})
        )
    finally:
        service.close()
    assert second["cached"] is True
    assert second["key"] == first["key"]
    assert second["request_id"] == "r-1"
    assert "request_id" not in first


def test_cache_disabled_recomputes(tmp_path):
    service = SchedulingService(None)
    try:
        _, first = run(service.handle(MAP_PAYLOAD))
        _, second = run(service.handle(MAP_PAYLOAD))
    finally:
        service.close()
    assert first["cached"] is False and second["cached"] is False
    assert service.counts["computed"] == 2
    assert service.counts["cache_hits"] == 0


def test_validation_error_is_400(tmp_path):
    service = make_service(tmp_path)
    try:
        status, body = run(service.handle({"kind": "nonsense"}))
    finally:
        service.close()
    assert status == 400
    assert body["error"]["type"] == "validation"
    assert "kind" in body["error"]["message"]
    assert service.counts["validation_errors"] == 1
    assert service.counts["computed"] == 0


def test_execution_error_is_500(tmp_path, monkeypatch):
    def explode(request):
        raise ReproError("synthetic compute failure")

    monkeypatch.setattr("repro.serve.service.execute_request", explode)
    service = make_service(tmp_path)
    try:
        status, body = run(service.handle(MAP_PAYLOAD))
    finally:
        service.close()
    assert status == 500
    assert body["error"]["type"] == "execution"
    assert "synthetic compute failure" in body["error"]["message"]
    assert service.counts["execution_errors"] == 1
    # A failed computation must not poison the cache.
    assert len(service.cache) == 0


def test_overload_sheds_with_503(tmp_path, monkeypatch):
    def slow(request):
        time.sleep(0.05)
        return execute_request(request)

    monkeypatch.setattr("repro.serve.service.execute_request", slow)
    service = make_service(tmp_path, max_pending=1)

    async def burst():
        return await asyncio.gather(
            *(service.handle({**MAP_PAYLOAD, "seed": i}) for i in range(3))
        )

    try:
        responses = run(burst())
    finally:
        service.close()
    statuses = sorted(status for status, _ in responses)
    assert statuses == [200, 503, 503]
    shed = [body for status, body in responses if status == 503]
    assert all(body["error"]["type"] == "overload" for body in shed)
    assert service.counts["shed"] == 2
    # Shed requests never count as handled traffic beyond the shed bucket.
    assert service.counts["requests"] == 1


def test_iterate_and_study_kinds(tmp_path):
    service = make_service(tmp_path)
    try:
        _, iterate = run(
            service.handle({"kind": "iterate", "etc": {"values": VALUES}})
        )
        _, study = run(
            service.handle(
                {
                    "kind": "study",
                    "ensemble": {"tasks": 6, "machines": 3, "instances": 2},
                }
            )
        )
    finally:
        service.close()
    result = iterate["result"]
    assert result["kind"] == "iterate"
    assert result["iterations"] >= 1
    assert len(result["makespans"]) == result["iterations"]
    # makespans() tracks the shrinking frozen-submatrix makespan per
    # iteration; the comparison carries the full-schedule before/after.
    assert result["original_makespan"] == result["makespans"][0]
    assert result["final_makespan"] >= result["original_makespan"] or not (
        result["makespan_increased"]
    )
    assert len(result["machines"]) == 3
    rows = study["result"]["rows"]
    assert len(rows) == 1
    assert rows[0]["heuristic"] == "min-min"
    assert rows[0]["runs"] == 2


def test_traced_hit_has_no_compute_span(tmp_path):
    """The acceptance property: a cache hit must not re-enter compute."""
    tracer = CollectingTracer()
    service = make_service(tmp_path)
    try:
        with use_tracer(tracer):
            run(service.handle(MAP_PAYLOAD))
            run(service.handle(MAP_PAYLOAD))
    finally:
        service.close()
    kinds = [span.kind for span in tracer.spans]
    assert kinds.count("serve.request") == 2
    assert kinds.count("serve.compute") == 1
    counters = tracer.counters.as_dict()
    assert counters["serve.requests"] == 2
    assert counters["serve.cache_hits"] == 1
    assert counters["serve.computed"] == 1


def test_stats_snapshot(tmp_path):
    service = make_service(tmp_path)
    try:
        run(service.handle(MAP_PAYLOAD))
        run(service.handle({"kind": "nonsense"}))
        stats = service.stats()
    finally:
        service.close()
    assert stats["schema"] == STATS_SCHEMA
    assert stats["counts"]["requests"] == 2
    assert stats["by_kind"] == {"map": 1}
    assert stats["latency_ms"]["count"] == 2
    assert stats["latency_ms"]["p95"] >= stats["latency_ms"]["p50"] >= 0.0
    assert stats["cache_dir"].endswith("responses")


def test_ledger_record_summarises_and_deduplicates(tmp_path):
    service = make_service(tmp_path)
    try:
        run(service.handle(MAP_PAYLOAD))
        run(service.handle(MAP_PAYLOAD))
        record = service.ledger_record(config={"port": 0})
    finally:
        service.close()
    assert record is not None
    assert record["schema"] == "repro-ledger/1"
    assert record["command"] == "serve"
    assert record["metrics"]["serve.requests"] == 2
    assert record["metrics"]["serve.cache_hits"] == 1
    assert record["metrics"]["serve.computed"] == 1
    assert record["extra"]["stats"]["schema"] == STATS_SCHEMA
    # No new traffic since the last record: nothing to log.
    assert service.ledger_record(config={"port": 0}) is None


def test_invalid_limits_rejected(tmp_path):
    with pytest.raises(ConfigurationError):
        SchedulingService(str(tmp_path), max_workers=0)
    with pytest.raises(ConfigurationError):
        SchedulingService(str(tmp_path), max_pending=0)

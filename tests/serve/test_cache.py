"""Atomic persistence contracts of the content-addressed response cache.

Mirrors the runner's cell-cache guarantees: entries land via temp file
+ ``os.replace`` so a crashed or concurrent writer can never leave a
torn entry, and corrupt/foreign files fail loudly instead of serving
garbage.
"""

from __future__ import annotations

import json
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.exceptions import ConfigurationError
from repro.serve.cache import RESPONSE_CACHE_SCHEMA, ResponseCache

pytestmark = pytest.mark.serve

IDENTITY = {"kind": "map", "heuristic": "min-min"}
RESULT = {"kind": "map", "makespan": 9.0}


def test_round_trip(tmp_path):
    cache = ResponseCache(tmp_path / "responses")
    assert cache.load("k0") is None
    assert "k0" not in cache
    path = cache.store("k0", IDENTITY, RESULT)
    assert path == cache.path_for("k0")
    assert "k0" in cache
    assert len(cache) == 1
    assert cache.load("k0") == RESULT


def test_entry_is_self_describing(tmp_path):
    cache = ResponseCache(tmp_path)
    payload = json.loads(cache.store("k0", IDENTITY, RESULT).read_text())
    assert payload["schema"] == RESPONSE_CACHE_SCHEMA
    assert payload["key"] == "k0"
    assert payload["identity"] == IDENTITY
    assert payload["result"] == RESULT


def test_store_overwrites_atomically(tmp_path):
    cache = ResponseCache(tmp_path)
    cache.store("k0", IDENTITY, {"v": 1})
    cache.store("k0", IDENTITY, {"v": 2})
    assert cache.load("k0") == {"v": 2}
    assert len(cache) == 1


def test_no_temp_files_left_behind(tmp_path):
    cache = ResponseCache(tmp_path)
    for i in range(5):
        cache.store(f"k{i}", IDENTITY, RESULT)
    assert not list(tmp_path.glob("*.tmp"))


def test_corrupt_entry_fails_loudly(tmp_path):
    cache = ResponseCache(tmp_path)
    cache.path_for("k0").parent.mkdir(parents=True, exist_ok=True)
    cache.path_for("k0").write_text("{not json")
    with pytest.raises(ConfigurationError, match="unreadable"):
        cache.load("k0")


def test_wrong_schema_entry_fails_loudly(tmp_path):
    cache = ResponseCache(tmp_path)
    cache.store("k0", IDENTITY, RESULT)
    payload = json.loads(cache.path_for("k0").read_text())
    payload["schema"] = "something-else/1"
    cache.path_for("k0").write_text(json.dumps(payload))
    with pytest.raises(ConfigurationError, match="delete it to recompute"):
        cache.load("k0")


def test_key_mismatch_fails_loudly(tmp_path):
    cache = ResponseCache(tmp_path)
    source = cache.store("k0", IDENTITY, RESULT)
    # A file renamed to a different address must be rejected.
    source.rename(cache.path_for("k1"))
    with pytest.raises(ConfigurationError):
        cache.load("k1")


def test_concurrent_same_key_writes_never_tear(tmp_path):
    """The acceptance race: N writers persisting the same key at once.

    The key is a content address, so every writer carries an identical
    payload — the last ``os.replace`` wins and *every* interleaving
    must leave one valid, complete entry plus zero temp files.
    """
    cache = ResponseCache(tmp_path)
    writers = 16

    def write_and_read(i: int) -> dict | None:
        cache.store("hot", IDENTITY, RESULT)
        return cache.load("hot")

    with ThreadPoolExecutor(max_workers=8) as pool:
        seen = list(pool.map(write_and_read, range(writers)))

    # Every read that hit the file saw a complete entry, never a torn one.
    assert all(result == RESULT for result in seen)
    assert cache.load("hot") == RESULT
    assert len(cache) == 1
    assert not list(tmp_path.glob("*.tmp"))


def test_concurrent_distinct_keys(tmp_path):
    cache = ResponseCache(tmp_path)

    def write(i: int):
        cache.store(f"k{i}", IDENTITY, {"v": i})

    with ThreadPoolExecutor(max_workers=8) as pool:
        list(pool.map(write, range(32)))

    assert len(cache) == 32
    assert all(cache.load(f"k{i}") == {"v": i} for i in range(32))
    assert not list(tmp_path.glob("*.tmp"))

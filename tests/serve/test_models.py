"""Request parsing, canonicalisation and cache-key identity.

The load-bearing contract is :func:`repro.serve.models.request_key`:
it must ignore *presentation-only* fields (``trace``, ``request_id``)
and react to every *result-determining* one (ETC payload, heuristic,
tie policy, seed, backend, iteration cap, ensemble spec).  The
hypothesis battery at the bottom pins that down as a property rather
than a handful of examples.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.models import (
    REQUEST_SCHEMA,
    RequestValidationError,
    ServeError,
    parse_request,
    request_identity,
    request_key,
)

pytestmark = pytest.mark.serve

VALUES = [[4.0, 5.0, 5.0], [6.0, 2.0, 2.0], [5.0, 6.0, 3.0], [4.0, 1.0, 3.0]]


def map_payload(**overrides) -> dict:
    payload = {"kind": "map", "etc": {"values": VALUES}}
    payload.update(overrides)
    return payload


# ----------------------------------------------------------------------
# Parsing and validation
# ----------------------------------------------------------------------


def test_parse_map_defaults():
    request = parse_request(map_payload())
    assert request.kind == "map"
    assert request.heuristic == "min-min"
    assert request.ties == "deterministic"
    assert request.seed == 0
    assert request.seeded is False
    assert request.backend == "incremental"
    assert request.max_iterations is None
    assert request.trace is False
    assert request.etc_values == tuple(tuple(row) for row in VALUES)
    assert request.etc_tasks == ("t0", "t1", "t2", "t3")
    assert request.ensemble is None


def test_etc_matrix_round_trips():
    request = parse_request(map_payload())
    etc = request.etc_matrix()
    assert etc.num_tasks == 4
    assert etc.num_machines == 3
    assert etc.values.tolist() == VALUES


def test_study_has_no_inline_etc():
    request = parse_request(
        {"kind": "study", "ensemble": {"tasks": 4, "machines": 2, "instances": 1}}
    )
    with pytest.raises(ServeError):
        request.etc_matrix()


@pytest.mark.parametrize(
    "payload, fragment",
    [
        ("not a dict", "JSON object"),
        ({}, "'kind'"),
        (map_payload(kind="nonsense"), "'kind'"),
        (map_payload(schema="repro-serve-request/9"), "unsupported request schema"),
        (map_payload(bogus=1), "unknown request field"),
        (map_payload(heuristic="does-not-exist"), "unknown heuristic"),
        (map_payload(ties="coin-flip"), "unknown tie policy"),
        (map_payload(backend="quantum"), "unknown backend"),
        (map_payload(seed="zero"), "'seed'"),
        (map_payload(seed=True), "'seed'"),
        (map_payload(seeded="yes"), "'seeded'"),
        (map_payload(trace=1), "'trace'"),
        (map_payload(max_iterations=0), "'max_iterations'"),
        (map_payload(max_iterations=True), "'max_iterations'"),
        (map_payload(request_id=7), "'request_id'"),
        (map_payload(scenarios="all"), "'scenarios' must be a list"),
        ({"kind": "map"}, "need an inline 'etc'"),
        ({"kind": "map", "etc": {"values": VALUES}, "ensemble": {}},
         "not 'ensemble'"),
        ({"kind": "study"}, "need an 'ensemble'"),
        ({"kind": "study", "ensemble": {"tasks": 4}, "etc": {"values": VALUES}},
         "not 'etc'"),
    ],
)
def test_malformed_payloads_rejected(payload, fragment):
    with pytest.raises(RequestValidationError) as excinfo:
        parse_request(payload)
    assert fragment in str(excinfo.value)


@pytest.mark.parametrize(
    "etc",
    [
        "csv-as-string",
        {},
        {"csv": "a,b\n1,2", "values": VALUES},
        {"values": VALUES, "bogus": 1},
        {"csv": "t,m0\nt0,1", "tasks": ["t0"]},
        {"values": [[1.0, -2.0]]},
        {"values": [[1.0], [1.0, 2.0]]},
        {"values": []},
        {"csv": 42},
    ],
)
def test_malformed_etc_rejected(etc):
    with pytest.raises(RequestValidationError):
        parse_request({"kind": "map", "etc": etc})


@pytest.mark.parametrize(
    "ensemble",
    [
        "spec",
        {"tasks": 0},
        {"machines": -1},
        {"instances": 0},
        {"tasks": 4.5},
        {"heterogeneity": "medium"},
        {"consistency": "mostly"},
        {"method": "magic"},
        {"bogus": 1},
    ],
)
def test_malformed_ensemble_rejected(ensemble):
    with pytest.raises(RequestValidationError):
        parse_request({"kind": "study", "ensemble": ensemble})


def test_scenarios_reserved_but_unimplemented():
    with pytest.raises(RequestValidationError, match="reserved"):
        parse_request(map_payload(scenarios=[{"name": "s0"}]))
    # The empty list (the default) is fine.
    assert parse_request(map_payload(scenarios=[])).scenarios == ()


def test_ensemble_defaults_canonicalised():
    request = parse_request({"kind": "study", "ensemble": {}})
    assert request.ensemble == {
        "tasks": 40,
        "machines": 8,
        "instances": 10,
        "heterogeneity": "hihi",
        "consistency": "inconsistent",
        "method": "range",
    }


# ----------------------------------------------------------------------
# Identity and cache keys
# ----------------------------------------------------------------------


def test_csv_and_values_forms_share_a_key():
    csv_text = "task,m0,m1,m2\n" + "\n".join(
        f"t{i}," + ",".join(str(v) for v in row) for i, row in enumerate(VALUES)
    )
    from_values = parse_request(map_payload())
    from_csv = parse_request({"kind": "map", "etc": {"csv": csv_text}})
    assert request_identity(from_values) == request_identity(from_csv)
    assert request_key(from_values) == request_key(from_csv)


def test_identity_excludes_presentation_fields():
    identity = request_identity(parse_request(map_payload()))
    assert "trace" not in identity
    assert "request_id" not in identity
    assert identity["schema"] == REQUEST_SCHEMA


@pytest.mark.parametrize(
    "change",
    [
        {"heuristic": "mct"},
        {"ties": "random"},
        {"seed": 7},
        {"seeded": True},
        {"backend": "reference"},
        {"max_iterations": 2},
        {"etc": {"values": [[4.0, 5.0, 5.0], [6.0, 2.0, 2.0],
                            [5.0, 6.0, 3.0], [4.0, 1.0, 3.5]]}},
        {"kind": "iterate"},
    ],
)
def test_result_determining_changes_miss(change):
    base = request_key(parse_request(map_payload()))
    assert request_key(parse_request(map_payload(**change))) != base


def test_ensemble_changes_miss():
    base = {"kind": "study", "ensemble": {"tasks": 8, "machines": 4}}
    key = request_key(parse_request(base))
    for change in ({"tasks": 9}, {"machines": 5}, {"instances": 3},
                   {"heterogeneity": "lolo"}, {"consistency": "consistent"},
                   {"method": "cvb"}):
        payload = {"kind": "study", "ensemble": {**base["ensemble"], **change}}
        assert request_key(parse_request(payload)) != key


# ----------------------------------------------------------------------
# Property battery: non-identity fields never change the key; every
# identity field does.
# ----------------------------------------------------------------------

small_etcs = st.lists(
    st.lists(st.floats(min_value=0.5, max_value=50.0), min_size=2, max_size=4),
    min_size=1,
    max_size=5,
).filter(lambda rows: len({len(r) for r in rows}) == 1)

configs = st.fixed_dictionaries(
    {
        "heuristic": st.sampled_from(["min-min", "max-min", "mct", "olb"]),
        "ties": st.sampled_from(["deterministic", "random"]),
        "seed": st.integers(0, 2**16),
        "seeded": st.booleans(),
    }
)

presentation = st.fixed_dictionaries(
    {
        "trace": st.booleans(),
        "request_id": st.one_of(st.none(), st.text(max_size=12)),
    }
)


@pytest.mark.properties
@settings(max_examples=50, deadline=None)
@given(values=small_etcs, config=configs, first=presentation, second=presentation)
def test_property_presentation_fields_share_a_cache_entry(
    values, config, first, second
):
    base = {"kind": "map", "etc": {"values": values}, **config}
    key_first = request_key(parse_request({**base, **first}))
    key_second = request_key(parse_request({**base, **second}))
    assert key_first == key_second


@pytest.mark.properties
@settings(max_examples=50, deadline=None)
@given(
    values=small_etcs,
    config=configs,
    mutation=st.sampled_from(["etc", "heuristic", "ties", "seed", "seeded"]),
    data=st.data(),
)
def test_property_identity_changes_always_miss(values, config, mutation, data):
    base = {"kind": "map", "etc": {"values": values}, **config}
    mutated = dict(base)
    if mutation == "etc":
        bumped = [list(row) for row in values]
        bumped[0][0] += 1.0
        mutated["etc"] = {"values": bumped}
    elif mutation == "heuristic":
        mutated["heuristic"] = data.draw(
            st.sampled_from(["min-min", "max-min", "mct", "olb"]).filter(
                lambda h: h != config["heuristic"]
            )
        )
    elif mutation == "ties":
        mutated["ties"] = (
            "random" if config["ties"] == "deterministic" else "deterministic"
        )
    elif mutation == "seed":
        mutated["seed"] = config["seed"] + 1
    else:
        mutated["seeded"] = not config["seeded"]
    assert request_key(parse_request(mutated)) != request_key(parse_request(base))

"""HTTP front end: routing, error catalogue and the load harness.

Every test binds a real server on an ephemeral loopback port and talks
raw HTTP/1.1 over ``asyncio.open_connection`` — the same wire the
``repro serve-load`` harness uses — so the routing table, the error
envelopes and the one-request-per-connection contract are all exercised
end to end without subprocesses.
"""

from __future__ import annotations

import asyncio
import json
import threading

import pytest

from repro import __version__
from repro.serve.http import MAX_BODY_BYTES, start_server
from repro.serve.load import format_load_report, run_load
from repro.serve.service import SchedulingService

pytestmark = pytest.mark.serve

VALUES = [[4.0, 5.0, 5.0], [6.0, 2.0, 2.0], [5.0, 6.0, 3.0], [4.0, 1.0, 3.0]]
MAP_BODY = {"etc": {"values": VALUES}}


async def _request(
    port: int,
    method: str,
    path: str,
    payload=None,
    *,
    raw: bytes | None = None,
    headers: dict | None = None,
) -> tuple[int, dict]:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    body = raw if raw is not None else (
        json.dumps(payload).encode() if payload is not None else b""
    )
    lines = [f"{method} {path} HTTP/1.1", "Host: 127.0.0.1"]
    for name, value in (headers or {"Content-Length": len(body)}).items():
        lines.append(f"{name}: {value}")
    writer.write("\r\n".join(lines).encode() + b"\r\n\r\n" + body)
    await writer.drain()
    response = await reader.read()
    writer.close()
    await writer.wait_closed()
    head, _, payload_bytes = response.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    return status, json.loads(payload_bytes)


async def _with_server(work, **service_kwargs):
    """Run ``await work(port)`` against a live ephemeral server."""
    service = SchedulingService(None, **service_kwargs)
    server = await start_server(service)
    port = server.sockets[0].getsockname()[1]
    try:
        return await work(port), service
    finally:
        server.close()
        await server.wait_closed()
        service.close()


def serve(work, **service_kwargs):
    return asyncio.run(_with_server(work, **service_kwargs))


def test_healthz_and_stats():
    async def work(port):
        status, health = await _request(port, "GET", "/healthz")
        assert status == 200
        assert health == {"status": "ok", "version": __version__}
        status, stats = await _request(port, "GET", "/v1/stats")
        assert status == 200
        assert stats["schema"] == "repro-serve-stats/1"
        return stats

    stats, _service = serve(work)
    assert stats["counts"]["requests"] == 0


def test_kind_alias_routes():
    async def work(port):
        results = {}
        status, results["map"] = await _request(port, "POST", "/v1/map", MAP_BODY)
        assert status == 200
        status, results["iterate"] = await _request(
            port, "POST", "/v1/iterate", MAP_BODY
        )
        assert status == 200
        status, results["schedule"] = await _request(
            port, "POST", "/v1/schedule", {"kind": "map", **MAP_BODY}
        )
        assert status == 200
        return results

    results, service = serve(work)
    assert results["map"]["result"]["kind"] == "map"
    assert results["iterate"]["result"]["kind"] == "iterate"
    # /v1/map and an explicit kind=map /v1/schedule are the same request.
    assert results["schedule"]["key"] == results["map"]["key"]
    assert service.by_kind == {"map": 2, "iterate": 1}


def test_kind_conflict_is_400():
    async def work(port):
        return await _request(
            port, "POST", "/v1/map", {"kind": "iterate", **MAP_BODY}
        )

    (status, body), _service = serve(work)
    assert status == 400
    assert body["error"]["type"] == "validation"
    assert "serves kind 'map'" in body["error"]["message"]


def test_invalid_json_is_400():
    async def work(port):
        return await _request(
            port, "POST", "/v1/schedule", raw=b"{not json"
        )

    (status, body), _service = serve(work)
    assert status == 400
    assert body["error"]["type"] == "invalid_json"


def test_unknown_route_is_404_and_wrong_method_is_405():
    async def work(port):
        miss = await _request(port, "GET", "/v2/schedule")
        get_post = await _request(port, "GET", "/v1/schedule")
        post_get = await _request(port, "POST", "/healthz", {})
        return miss, get_post, post_get

    (miss, get_post, post_get), _service = serve(work)
    assert miss[0] == 404 and miss[1]["error"]["type"] == "not_found"
    assert get_post[0] == 405
    assert get_post[1]["error"]["type"] == "method_not_allowed"
    assert post_get[0] == 405


def test_oversized_body_is_413():
    async def work(port):
        return await _request(
            port,
            "POST",
            "/v1/schedule",
            headers={"Content-Length": MAX_BODY_BYTES + 1},
        )

    (status, body), _service = serve(work)
    assert status == 413
    assert body["error"]["type"] == "payload_too_large"


def test_validation_and_overload_pass_through():
    async def work(port):
        return await _request(port, "POST", "/v1/schedule", {"kind": "bogus"})

    (status, body), _service = serve(work)
    assert status == 400
    assert body["error"]["type"] == "validation"


def test_run_load_end_to_end(tmp_path):
    """Drive the synchronous load harness against a live cached server."""
    service = SchedulingService(str(tmp_path / "responses"), max_workers=2)
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    try:
        server = asyncio.run_coroutine_threadsafe(
            start_server(service), loop
        ).result(timeout=10)
        port = server.sockets[0].getsockname()[1]
        url = f"http://127.0.0.1:{port}/v1/schedule"
        payload = {"kind": "map", **MAP_BODY}
        report = run_load(url, payload, requests=12, concurrency=3)

        async def _close():
            server.close()
            await server.wait_closed()
            stragglers = asyncio.all_tasks(loop) - {asyncio.current_task()}
            for task in stragglers:
                task.cancel()
            await asyncio.gather(*stragglers, return_exceptions=True)

        asyncio.run_coroutine_threadsafe(_close(), loop).result(timeout=10)
    finally:
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10)
        loop.close()
        service.close()

    assert report["schema"] == "repro-serve-load/1"
    assert report["requests"] == 12
    assert report["ok"] == 12 and report["errors"] == 0
    # Identical requests: everything after the first wave is a cache hit
    # (at most one benign miss per concurrent worker).
    assert report["cached"] >= 12 - 3
    assert report["cached"] + report["computed"] == 12
    assert report["requests_per_s"] > 0
    text = format_load_report(report)
    assert "requests/s" in text

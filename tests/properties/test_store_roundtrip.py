"""Property battery for the memory-mapped ETC store.

Two laws, enforced over adversarial random ensembles:

* **Round-trip exactness** — any ensemble written to an
  :class:`~repro.etc.store.ETCStore` reads back value- and dtype-exact
  (bit-identical float64, not approximately equal), as read-only
  memmapped views, and passes the store's own checksum verification.
* **Decision transparency** — every registered kernel backend produces
  byte-identical scheduling decisions whether its heuristic reads a
  store-backed instance view or the original in-memory matrix.  This
  is the property the zero-copy grid transport rests on: if it holds,
  swapping the transport can never change a result.

The ensembles include an integer-grid mode (tolerance ties become the
norm), duplicated rows and instances, custom labels, and the degenerate
shape corners (one instance, one task, one machine).
"""

import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st
import numpy as np

from repro.core.ties import DeterministicTieBreaker
from repro.etc.matrix import ETCMatrix
from repro.etc.store import ETCStore
from repro.heuristics import backend_names, get_backend
from tests.conftest import BATCH_MAX_EXAMPLES

#: Heuristics exercised by the decision-transparency law — the paper's
#: kerneled family, covering row-min, column-scan and sufferage-style
#: access patterns over the memmapped values.
HEURISTICS = ("mct", "min-min", "max-min", "sufferage")


@st.composite
def ensembles(draw):
    """A small adversarial ensemble of same-shape ETC matrices."""
    count = draw(st.integers(1, 4))
    num_tasks = draw(st.integers(1, 6))
    num_machines = draw(st.integers(1, 5))
    if draw(st.booleans()):
        # Integer grid: ties everywhere, so decision identity has to
        # hold through the tie-breaking logic, not despite it.
        cell = st.integers(1, 4).map(float)
    else:
        cell = st.floats(0.5, 50.0, allow_nan=False, allow_infinity=False)
    row = st.lists(cell, min_size=num_machines, max_size=num_machines)

    if draw(st.booleans()):
        tasks = tuple(f"job-{i}" for i in range(num_tasks))
        machines = tuple(f"host-{i}" for i in range(num_machines))
    else:
        tasks = machines = None

    matrices = []
    for index in range(count):
        if index and draw(st.integers(0, 3)) == 0:
            matrices.append(matrices[draw(st.integers(0, index - 1))])
            continue
        values = draw(st.lists(row, min_size=num_tasks, max_size=num_tasks))
        if num_tasks > 1 and draw(st.integers(0, 2)) == 0:
            src = draw(st.integers(0, num_tasks - 1))
            dst = draw(st.integers(0, num_tasks - 1))
            values[dst] = list(values[src])
        matrices.append(ETCMatrix(values, tasks=tasks, machines=machines))
    return matrices


class TestStoreRoundTripProperties:
    @given(matrices=ensembles())
    @settings(max_examples=BATCH_MAX_EXAMPLES)
    def test_round_trip_is_value_and_dtype_exact(self, matrices):
        with tempfile.TemporaryDirectory() as root:
            with ETCStore(root) as store:
                entry = store.put_matrices("k", matrices)
                assert entry.count == len(matrices)
                assert store.verify("k")

                values = store.batch("k").values
                assert values.dtype == np.float64
                assert not values.flags.writeable
                for i, matrix in enumerate(matrices):
                    assert np.array_equal(values[i], matrix.values)
                    view = store.instance("k", i)
                    assert view.values.dtype == np.float64
                    assert np.array_equal(view.values, matrix.values)
                    assert view.tasks == matrix.tasks
                    assert view.machines == matrix.machines

    @given(matrices=ensembles())
    @settings(max_examples=BATCH_MAX_EXAMPLES)
    def test_reopened_store_reads_identical_bytes(self, matrices):
        with tempfile.TemporaryDirectory() as root:
            with ETCStore(root) as store:
                store.put_matrices("k", matrices)
                first = np.asarray(store.batch("k").values).copy()
            with ETCStore(root, create=False) as reopened:
                assert np.array_equal(reopened.batch("k").values, first)
                assert reopened.verify("k")


class TestStoreDecisionTransparency:
    @given(matrices=ensembles(), data=st.data())
    @settings(max_examples=BATCH_MAX_EXAMPLES)
    def test_store_backed_views_schedule_identically(self, matrices, data):
        heuristic_name = data.draw(st.sampled_from(HEURISTICS))
        with tempfile.TemporaryDirectory() as root:
            with ETCStore(root) as store:
                store.put_matrices("k", matrices)
                for backend_name in backend_names():
                    backend = get_backend(backend_name)
                    for i, matrix in enumerate(matrices):
                        stored_view = store.instance("k", i)
                        in_memory = backend.make(heuristic_name).map_tasks(
                            matrix, tie_breaker=DeterministicTieBreaker()
                        )
                        store_backed = backend.make(heuristic_name).map_tasks(
                            stored_view, tie_breaker=DeterministicTieBreaker()
                        )
                        assert (
                            store_backed.assignments == in_memory.assignments
                        ), f"{heuristic_name}/{backend_name} diverged on instance {i}"
                        assert store_backed.makespan() == in_memory.makespan()

"""Property-based tests for the scheduling core (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.schedule import Mapping, finish_times_for_vector
from repro.core.validation import validate_mapping
from repro.etc.matrix import ETCMatrix


@st.composite
def etc_matrices(draw, max_tasks=8, max_machines=5):
    """Random small ETC matrices with values in [0.5, 100]."""
    num_tasks = draw(st.integers(1, max_tasks))
    num_machines = draw(st.integers(1, max_machines))
    values = draw(
        st.lists(
            st.lists(
                st.floats(0.5, 100.0, allow_nan=False, allow_infinity=False),
                min_size=num_machines,
                max_size=num_machines,
            ),
            min_size=num_tasks,
            max_size=num_tasks,
        )
    )
    return ETCMatrix(values)


@st.composite
def etc_with_assignment(draw):
    etc = draw(etc_matrices())
    vec = draw(
        st.lists(
            st.integers(0, etc.num_machines - 1),
            min_size=etc.num_tasks,
            max_size=etc.num_tasks,
        )
    )
    return etc, vec


class TestEq1Properties:
    @given(etc_with_assignment())
    @settings(max_examples=80, deadline=None)
    def test_completion_equals_start_plus_etc(self, data):
        etc, vec = data
        mapping = Mapping(etc)
        for i, task in enumerate(etc.tasks):
            a = mapping.assign(task, etc.machines[vec[i]])
            assert a.completion == a.start + etc.etc(task, a.machine)
        validate_mapping(mapping)

    @given(etc_with_assignment())
    @settings(max_examples=80, deadline=None)
    def test_finish_is_ready_plus_load_sum(self, data):
        """Machine finish time == initial ready + sum of its tasks'
        ETCs, independent of assignment order."""
        etc, vec = data
        mapping = Mapping(etc)
        for i, task in enumerate(etc.tasks):
            mapping.assign(task, etc.machines[vec[i]])
        finish = mapping.finish_time_vector()
        expected = finish_times_for_vector(etc, np.array(vec))
        assert np.allclose(finish, expected)

    @given(etc_with_assignment())
    @settings(max_examples=50, deadline=None)
    def test_makespan_is_max_finish(self, data):
        etc, vec = data
        mapping = Mapping(etc)
        for i, task in enumerate(etc.tasks):
            mapping.assign(task, etc.machines[vec[i]])
        assert mapping.makespan() == max(mapping.machine_finish_times().values())

    @given(etc_with_assignment(), st.integers(0, 2**32 - 1))
    @settings(max_examples=50, deadline=None)
    def test_order_permutation_preserves_finish_times(self, data, seed):
        """Per-machine finishing times don't depend on global order."""
        etc, vec = data
        order = np.random.default_rng(seed).permutation(etc.num_tasks)
        forward = Mapping(etc)
        for i, task in enumerate(etc.tasks):
            forward.assign(task, etc.machines[vec[i]])
        shuffled = Mapping(etc)
        for i in order:
            shuffled.assign(etc.tasks[i], etc.machines[vec[i]])
        assert np.allclose(
            forward.finish_time_vector(), shuffled.finish_time_vector()
        )
        assert forward.same_assignments(shuffled)


class TestSubmatrixProperties:
    @given(etc_matrices(max_tasks=6, max_machines=4), st.data())
    @settings(max_examples=60, deadline=None)
    def test_submatrix_values_agree_with_parent(self, etc, data):
        tasks = data.draw(
            st.lists(
                st.sampled_from(list(etc.tasks)), min_size=1, unique=True
            )
        )
        machines = data.draw(
            st.lists(
                st.sampled_from(list(etc.machines)), min_size=1, unique=True
            )
        )
        sub = etc.submatrix(tasks=tasks, machines=machines)
        for t in tasks:
            for m in machines:
                assert sub.etc(t, m) == etc.etc(t, m)

    @given(etc_matrices(max_tasks=6, max_machines=4))
    @settings(max_examples=40, deadline=None)
    def test_full_submatrix_is_identity(self, etc):
        assert etc.submatrix() == etc

"""Property-based tests over all heuristics (hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ties import DeterministicTieBreaker, RandomTieBreaker
from repro.core.validation import validate_mapping
from repro.etc.matrix import ETCMatrix
from repro.heuristics import MCT, MET, KPercentBest, MinMin, get_heuristic


@st.composite
def etc_matrices(draw, min_tasks=1, max_tasks=10, min_machines=1, max_machines=5):
    num_tasks = draw(st.integers(min_tasks, max_tasks))
    num_machines = draw(st.integers(min_machines, max_machines))
    values = draw(
        st.lists(
            st.lists(
                st.floats(0.5, 50.0, allow_nan=False, allow_infinity=False),
                min_size=num_machines,
                max_size=num_machines,
            ),
            min_size=num_tasks,
            max_size=num_tasks,
        )
    )
    return ETCMatrix(values)


DETERMINISTIC_NAMES = [
    "met",
    "mct",
    "olb",
    "min-min",
    "max-min",
    "duplex",
    "sufferage",
    "k-percent-best",
    "switching-algorithm",
]


@pytest.mark.parametrize("name", DETERMINISTIC_NAMES)
@given(etc=etc_matrices())
@settings(max_examples=25, deadline=None)
def test_complete_and_valid(name, etc):
    mapping = get_heuristic(name).map_tasks(etc)
    assert mapping.is_complete()
    validate_mapping(mapping)


@pytest.mark.parametrize("name", DETERMINISTIC_NAMES)
@given(etc=etc_matrices())
@settings(max_examples=15, deadline=None)
def test_deterministic_idempotence(name, etc):
    a = get_heuristic(name).map_tasks(etc, tie_breaker=DeterministicTieBreaker())
    b = get_heuristic(name).map_tasks(etc, tie_breaker=DeterministicTieBreaker())
    assert a.to_dict() == b.to_dict()


@given(etc=etc_matrices(min_machines=2))
@settings(max_examples=25, deadline=None)
def test_met_lower_bounds_every_task(etc):
    """Each MET assignment achieves the task's row-minimum ETC."""
    mapping = MET().map_tasks(etc)
    for task in etc.tasks:
        best = etc.task_row(task).min()
        # values within the tie tolerance count as attaining the minimum
        assert etc.etc(task, mapping.machine_of(task)) <= best * (1 + 1e-9) + 1e-12


@given(etc=etc_matrices(min_machines=2))
@settings(max_examples=25, deadline=None)
def test_mct_never_worse_than_double_best(etc):
    """Greedy MCT is 2-competitive-ish sanity: makespan <= sum of row
    minima + max row minimum (loose, but must always hold since MCT's
    completion for each task <= placing it after everything on its best
    machine)."""
    mapping = MCT().map_tasks(etc)
    row_minima = etc.values.min(axis=1)
    assert mapping.makespan() <= row_minima.sum() + 1e-9


@given(etc=etc_matrices(min_machines=2))
@settings(max_examples=25, deadline=None)
def test_minmin_first_pick_is_global_minimum(etc):
    mapping = MinMin().map_tasks(etc)
    assert mapping.assignments[0].completion == pytest.approx(etc.values.min())


@given(etc=etc_matrices(min_machines=2), percent=st.floats(10.0, 100.0))
@settings(max_examples=25, deadline=None)
def test_kpb_assignment_within_subset(etc, percent):
    kpb = KPercentBest(percent=percent)
    mapping = kpb.map_tasks(etc)
    for step in kpb.last_trace:
        assert step.machine in step.subset
        assert mapping.machine_of(step.task) == step.machine


@given(etc=etc_matrices(min_machines=2), seed=st.integers(0, 2**16))
@settings(max_examples=20, deadline=None)
def test_random_ties_still_produce_valid_mappings(etc, seed):
    mapping = MCT().map_tasks(etc, tie_breaker=RandomTieBreaker(rng=seed))
    validate_mapping(mapping)
    assert mapping.is_complete()


@given(etc=etc_matrices(), seed=st.integers(0, 2**16))
@settings(max_examples=10, deadline=None)
def test_genitor_output_never_worse_than_its_seed(etc, seed):
    seed_mapping = MinMin().map_tasks(etc).to_dict()
    genitor = get_heuristic(
        "genitor", iterations=20, population_size=8, rng=seed
    )
    out = genitor.map_tasks(etc, seed_mapping=seed_mapping)
    seed_span = _span(etc, seed_mapping)
    assert out.makespan() <= seed_span + 1e-9


def _span(etc, assignment):
    from repro.core.schedule import Mapping

    m = Mapping(etc)
    for t in etc.tasks:
        m.assign(t, assignment[t])
    return m.makespan()

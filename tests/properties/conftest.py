"""Marker plumbing for the property batteries.

Everything under ``tests/properties/`` is hypothesis-driven, so the
whole directory is tagged ``properties`` automatically — CI can then
split the suite (``-m "not properties"`` for the quick job, ``make
test-deep`` for the deep-budget sweep) without per-test decoration.
"""

from __future__ import annotations

from pathlib import Path

import pytest

_HERE = Path(__file__).parent.resolve()


def pytest_collection_modifyitems(config, items):
    for item in items:
        path = Path(str(item.fspath)).resolve()
        if _HERE == path.parent or _HERE in path.parents:
            item.add_marker(pytest.mark.properties)

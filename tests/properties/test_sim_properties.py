"""Property-based tests for the simulator substrate (hypothesis).

The central cross-validation property (DESIGN.md E25): for any instance
and any heuristic, the discrete-event execution of a mapping measures
exactly the finishing times the analytic Eq. (1) bookkeeping predicts.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.etc.matrix import ETCMatrix
from repro.heuristics import get_heuristic
from repro.sim.hcsystem import (
    ArrivalWorkload,
    DynamicHCSimulation,
    HCSystem,
    MCTOnline,
)


@st.composite
def etc_matrices(draw, max_tasks=8, max_machines=4):
    num_tasks = draw(st.integers(1, max_tasks))
    num_machines = draw(st.integers(1, max_machines))
    values = draw(
        st.lists(
            st.lists(
                st.floats(0.5, 50.0, allow_nan=False, allow_infinity=False),
                min_size=num_machines,
                max_size=num_machines,
            ),
            min_size=num_tasks,
            max_size=num_tasks,
        )
    )
    return ETCMatrix(values)


@pytest.mark.parametrize("name", ["mct", "met", "min-min", "sufferage", "olb"])
@given(etc=etc_matrices())
@settings(max_examples=20, deadline=None)
def test_simulated_equals_analytic(name, etc):
    mapping = get_heuristic(name).map_tasks(etc)
    measured = HCSystem(etc).measured_finish_times(mapping)
    analytic = mapping.machine_finish_times()
    for machine in etc.machines:
        assert measured[machine] == pytest.approx(analytic[machine])


@given(etc=etc_matrices(), ready_seed=st.integers(0, 2**16))
@settings(max_examples=20, deadline=None)
def test_simulated_equals_analytic_with_ready_times(etc, ready_seed):
    import numpy as np

    ready = np.random.default_rng(ready_seed).uniform(0, 20, etc.num_machines)
    mapping = get_heuristic("mct").map_tasks(etc, ready.tolist())
    measured = HCSystem(etc, ready.tolist()).measured_finish_times(mapping)
    analytic = mapping.machine_finish_times()
    for machine in etc.machines:
        assert measured[machine] == pytest.approx(analytic[machine])


@given(etc=etc_matrices(max_tasks=6), data=st.data())
@settings(max_examples=20, deadline=None)
def test_dynamic_conservation_properties(etc, data):
    """Every arrived task executes exactly once, never before arrival,
    and machines never overlap — for arbitrary arrival patterns."""
    arrivals = data.draw(
        st.lists(
            st.floats(0.0, 100.0, allow_nan=False, allow_infinity=False),
            min_size=etc.num_tasks,
            max_size=etc.num_tasks,
        )
    )
    workload = ArrivalWorkload(etc=etc, arrivals=tuple(arrivals))
    trace = DynamicHCSimulation(workload, policy=MCTOnline()).run()
    assert len(trace) == etc.num_tasks
    assert {r.task for r in trace.records} == set(etc.tasks)
    for record in trace.records:
        assert record.start >= record.arrival - 1e-9
    for machine in etc.machines:
        recs = trace.machine_records(machine)
        for prev, cur in zip(recs, recs[1:]):
            assert cur.start >= prev.finish - 1e-9


@given(etc=etc_matrices(max_tasks=6), data=st.data())
@settings(max_examples=15, deadline=None)
def test_dynamic_batch_conservation(etc, data):
    arrivals = data.draw(
        st.lists(
            st.floats(0.0, 50.0, allow_nan=False, allow_infinity=False),
            min_size=etc.num_tasks,
            max_size=etc.num_tasks,
        )
    )
    workload = ArrivalWorkload(etc=etc, arrivals=tuple(arrivals))
    trace = DynamicHCSimulation(
        workload, batch_heuristic=get_heuristic("min-min"), batch_interval=10.0
    ).run()
    assert len(trace) == etc.num_tasks
    for record in trace.records:
        duration = etc.etc(record.task, record.machine)
        assert record.finish - record.start == pytest.approx(duration)

"""Property-based tests for the iterative technique (hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.iterative import IterativeScheduler
from repro.core.seeding import SeededIterativeScheduler
from repro.core.ties import RandomTieBreaker
from repro.core.validation import validate_iterative_result
from repro.etc.matrix import ETCMatrix
from repro.heuristics import get_heuristic


@st.composite
def etc_matrices(draw, max_tasks=9, max_machines=4):
    num_tasks = draw(st.integers(2, max_tasks))
    num_machines = draw(st.integers(2, max_machines))
    values = draw(
        st.lists(
            st.lists(
                st.floats(0.5, 50.0, allow_nan=False, allow_infinity=False),
                min_size=num_machines,
                max_size=num_machines,
            ),
            min_size=num_tasks,
            max_size=num_tasks,
        )
    )
    return ETCMatrix(values)


@pytest.mark.parametrize("name", ["mct", "met", "min-min"])
@given(etc=etc_matrices())
@settings(max_examples=25, deadline=None)
def test_theorem_invariance_property(name, etc):
    """The paper's theorems as a hypothesis property: deterministic ties
    => identical mappings across all iterations, for arbitrary ETCs."""
    result = IterativeScheduler(get_heuristic(name)).run(etc)
    assert not result.mapping_changed()
    assert not result.makespan_increased()
    validate_iterative_result(result)


@pytest.mark.parametrize("name", ["mct", "met", "min-min"])
@given(etc=etc_matrices())
@settings(max_examples=20, deadline=None)
def test_invariant_finish_times_equal_original(name, etc):
    """For invariant heuristics the technique is a no-op: final
    finishing times equal the original mapping's."""
    result = IterativeScheduler(get_heuristic(name)).run(etc)
    original = result.original_finish_times()
    for machine, finish in result.final_finish_times.items():
        assert finish == pytest.approx(original[machine])


@pytest.mark.parametrize("name", ["sufferage", "switching-algorithm", "k-percent-best"])
@given(etc=etc_matrices())
@settings(max_examples=20, deadline=None)
def test_structural_invariants_for_variant_heuristics(name, etc):
    result = IterativeScheduler(get_heuristic(name)).run(etc)
    validate_iterative_result(result)
    # the frozen machine's final CT is its CT at freeze time, always
    for rec in result.iterations:
        assert result.final_finish_times[rec.frozen_machine] == pytest.approx(
            rec.mapping.ready_time(rec.frozen_machine)
        )


@pytest.mark.parametrize("name", ["sufferage", "k-percent-best", "mct"])
@given(etc=etc_matrices(), seed=st.integers(0, 2**16))
@settings(max_examples=15, deadline=None)
def test_seeded_scheduler_monotone_property(name, etc, seed):
    """E22: with seeding, makespans never increase — any heuristic, any
    instance, any tie policy."""
    scheduler = SeededIterativeScheduler(
        get_heuristic(name), tie_breaker=RandomTieBreaker(rng=seed)
    )
    result = scheduler.run(etc)
    spans = result.makespans()
    assert all(b <= a + 1e-9 for a, b in zip(spans, spans[1:]))


@given(etc=etc_matrices())
@settings(max_examples=20, deadline=None)
def test_iteration_count_bounded_by_machines(etc):
    result = IterativeScheduler(get_heuristic("mct")).run(etc)
    assert 1 <= result.num_iterations <= etc.num_machines


@given(etc=etc_matrices())
@settings(max_examples=20, deadline=None)
def test_frozen_sets_partition_tasks(etc):
    """Every task is frozen exactly once across the whole run."""
    result = IterativeScheduler(get_heuristic("sufferage")).run(etc)
    frozen = [t for rec in result.iterations for t in rec.frozen_tasks]
    last = result.iterations[-1]
    # tasks remaining with the final machine set but not frozen are
    # those mapped in the last iteration to surviving machines
    leftovers = [
        a.task
        for a in last.mapping.assignments
        if a.machine != last.frozen_machine
    ]
    assert sorted(frozen + leftovers) == sorted(etc.tasks)


@pytest.mark.parametrize("name", ["mct", "met", "min-min"])
@given(etc=etc_matrices(), ready_seed=st.integers(0, 2**16))
@settings(max_examples=15, deadline=None)
def test_theorem_invariance_with_nonzero_ready_times(name, etc, ready_seed):
    """The paper proves the theorems for zero ready times 'without loss
    of generality'; the generalisation (ready times reset identically
    each iteration) must hold for arbitrary initial ready times."""
    import numpy as np

    ready = np.random.default_rng(ready_seed).uniform(0, 30, etc.num_machines)
    result = IterativeScheduler(get_heuristic(name)).run(
        etc, ready_times=ready.tolist()
    )
    assert not result.mapping_changed()
    assert not result.makespan_increased()


@given(etc=etc_matrices())
@settings(max_examples=15, deadline=None)
def test_freeze_policies_validate_on_random_instances(etc):
    from repro.core.freezing import FREEZE_POLICIES

    for policy in FREEZE_POLICIES.values():
        result = IterativeScheduler(
            get_heuristic("sufferage"), freeze_policy=policy
        ).run(etc)
        validate_iterative_result(result)

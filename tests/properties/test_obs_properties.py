"""Property tests for the observability subsystem (hypothesis).

The contract under test is the ISSUE's headline guarantee: tracing is
*pure observation*.  Enabling a collector must not change a single
mapping decision, and the counters a run produces must be derivable
from (and therefore consistent with) its event stream — whether the run
was serial or merged across worker processes.
"""

import io
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.experiments import ExperimentConfig, run_experiment
from repro.analysis.parallel import run_experiment_parallel
from repro.core.iterative import IterativeScheduler
from repro.core.ties import DeterministicTieBreaker, RandomTieBreaker
from repro.etc.generation import Consistency, Heterogeneity
from repro.etc.matrix import ETCMatrix
from repro.heuristics import get_heuristic
from repro.obs import (
    CollectingTracer,
    ProgressReporter,
    event_to_dict,
    records_to_snapshot,
    snapshot_to_jsonl,
    use_tracer,
)

pytestmark = pytest.mark.obs

TRACED_NAMES = [
    "min-min",
    "max-min",
    "mct",
    "met",
    "sufferage",
    "k-percent-best",
    "switching-algorithm",
]


@st.composite
def etc_matrices(draw, min_tasks=1, max_tasks=8, min_machines=2, max_machines=4):
    num_tasks = draw(st.integers(min_tasks, max_tasks))
    num_machines = draw(st.integers(min_machines, max_machines))
    values = draw(
        st.lists(
            st.lists(
                st.floats(0.5, 50.0, allow_nan=False, allow_infinity=False),
                min_size=num_machines,
                max_size=num_machines,
            ),
            min_size=num_tasks,
            max_size=num_tasks,
        )
    )
    return ETCMatrix(values)


def _iterative_result(etc, name, tie_breaker):
    return IterativeScheduler(
        get_heuristic(name), tie_breaker=tie_breaker
    ).run(etc)


def _result_fingerprint(result):
    return (
        tuple(rec.mapping.to_dict().items() for rec in result.iterations),
        result.makespans(),
        result.removal_order,
        tuple(sorted(result.final_finish_times.items())),
    )


@pytest.mark.parametrize("name", TRACED_NAMES)
@given(etc=etc_matrices())
@settings(max_examples=15, deadline=None)
def test_tracing_does_not_change_decisions(name, etc):
    """Enabled vs disabled tracing: bit-identical iterative runs."""
    untraced = _iterative_result(etc, name, DeterministicTieBreaker())
    with use_tracer(CollectingTracer()):
        traced = _iterative_result(etc, name, DeterministicTieBreaker())
    assert _result_fingerprint(traced) == _result_fingerprint(untraced)


@given(etc=etc_matrices(), seed=st.integers(0, 2**16))
@settings(max_examples=15, deadline=None)
def test_tracing_does_not_consume_randomness(etc, seed):
    """Same-seed random tie-breaking is unaffected by the collector —
    the instrumentation never draws from (or reorders draws of) the
    tie-breaker's RNG stream."""
    untraced = _iterative_result(etc, "min-min", RandomTieBreaker(seed))
    with use_tracer(CollectingTracer()):
        traced = _iterative_result(etc, "min-min", RandomTieBreaker(seed))
    assert _result_fingerprint(traced) == _result_fingerprint(untraced)


@pytest.mark.parametrize("name", TRACED_NAMES)
@given(etc=etc_matrices())
@settings(max_examples=15, deadline=None)
def test_counters_consistent_with_events(name, etc):
    """`decisions` equals the `.decision` event count; every
    `events.<kind>` counter equals the number of events of that kind."""
    with use_tracer(CollectingTracer()) as tracer:
        _iterative_result(etc, name, DeterministicTieBreaker())
    decision_events = [e for e in tracer.events if e.kind.endswith(".decision")]
    assert tracer.counters.get("decisions") == len(decision_events)
    assert len(decision_events) > 0
    kinds = {e.kind for e in tracer.events}
    for kind in kinds:
        assert tracer.counters.get(f"events.{kind}") == len(tracer.events_of(kind))
    assert tracer.counters.total("events.") == len(tracer.events)
    # every decision also landed in its per-kind event counter
    assert tracer.counters.get("iterations") == len(
        tracer.events_of("iterative.freeze")
    )


@pytest.fixture(scope="module")
def grid_config():
    return ExperimentConfig(
        heuristics=("mct", "switching-algorithm"),
        num_tasks=8,
        num_machines=3,
        heterogeneities=(Heterogeneity.HIHI, Heterogeneity.LOLO),
        consistencies=(Consistency.INCONSISTENT,),
        instances_per_cell=2,
        seed=7,
    )


class TestParallelMerge:
    """Worker-collected snapshots merge to the serial aggregates."""

    def _serial(self, config):
        with use_tracer(CollectingTracer()) as tracer:
            records = run_experiment(config)
        return records, tracer

    def _parallel(self, config, max_workers=2):
        with use_tracer(CollectingTracer()) as tracer:
            records = run_experiment_parallel(config, max_workers=max_workers)
        return records, tracer

    def test_merged_counters_equal_serial(self, grid_config):
        _, serial = self._serial(grid_config)
        _, parallel = self._parallel(grid_config)
        assert parallel.counters == serial.counters
        assert parallel.counters.get("experiment.runs") == 2 * 2 * 2

    def test_merged_event_stream_equals_serial(self, grid_config):
        serial_records, serial = self._serial(grid_config)
        parallel_records, parallel = self._parallel(grid_config)
        assert [r.comparison for r in parallel_records] == [
            r.comparison for r in serial_records
        ]
        # compare via the export form: NaN fields (e.g. undefined BI)
        # are identical-but-not-equal across the pickle boundary
        assert [event_to_dict(e) for e in parallel.events] == [
            event_to_dict(e) for e in serial.events
        ]

    def test_merged_timers_cover_serial_names(self, grid_config):
        _, serial = self._serial(grid_config)
        _, parallel = self._parallel(grid_config)
        # Durations are wall-clock and differ; the aggregation structure
        # (which timers exist, how many observations each has) must not.
        serial_timers = serial.timers.as_dict()
        parallel_timers = parallel.timers.as_dict()
        assert set(parallel_timers) == set(serial_timers)
        for name, stat in serial_timers.items():
            assert parallel_timers[name].count == stat.count

    def test_disabled_tracer_takes_untraced_path(self, grid_config):
        records = run_experiment_parallel(grid_config, max_workers=2)
        serial_records, _ = self._serial(grid_config)
        assert [r.comparison for r in records] == [
            r.comparison for r in serial_records
        ]

    def test_merged_histograms_equal_serial(self, grid_config):
        """Deterministic histograms merge byte-identically; wall-clock
        ``*_s`` histograms merge structurally (same buckets, same total
        observation count — the per-bucket spread depends on timings)."""
        _, serial = self._serial(grid_config)
        _, parallel = self._parallel(grid_config)
        serial_hists = serial.histograms.as_dict()
        parallel_hists = parallel.histograms.as_dict()
        assert set(parallel_hists) == set(serial_hists)
        assert "decision.tie_candidates" in serial_hists
        assert "experiment.cell_runtime_s" in serial_hists
        for name, stat in serial_hists.items():
            merged = parallel_hists[name]
            if name.endswith("_s"):
                assert merged.buckets == stat.buckets
                assert merged.count == stat.count
            else:
                assert merged == stat  # frozen dataclass: full bit equality

    def test_merged_gauges_equal_serial(self, grid_config):
        """Cell-order merging makes last-writer-wins deterministic: the
        merged gauge values equal the serial run's."""
        _, serial = self._serial(grid_config)
        _, parallel = self._parallel(grid_config)
        assert "experiment.last_original_makespan" in serial.gauges.as_dict()
        assert parallel.gauges.as_dict() == serial.gauges.as_dict()

    def test_progress_does_not_perturb_trace(self, grid_config):
        """The acceptance property: a sweep under a live progress
        reporter yields an event stream and merged histograms
        byte-identical to the serial run without one."""
        _, serial = self._serial(grid_config)
        stream = io.StringIO()
        with use_tracer(CollectingTracer()) as parallel:
            run_experiment_parallel(
                grid_config,
                max_workers=2,
                progress=ProgressReporter(stream=stream, label="cells"),
            )
        assert stream.getvalue()  # progress actually rendered
        assert [event_to_dict(e) for e in parallel.events] == [
            event_to_dict(e) for e in serial.events
        ]
        deterministic = {
            name: stat
            for name, stat in parallel.histograms.as_dict().items()
            if not name.endswith("_s")
        }
        assert deterministic == {
            name: stat
            for name, stat in serial.histograms.as_dict().items()
            if not name.endswith("_s")
        }
        assert parallel.gauges.as_dict() == serial.gauges.as_dict()


# ---------------------------------------------------------------------------
# Span trees: serial and sharded runs agree modulo wall-clock
# ---------------------------------------------------------------------------


@given(
    max_workers=st.integers(2, 3),
    shards=st.integers(1, 5),
    seed=st.integers(0, 2**8),
)
@settings(max_examples=4, deadline=None)
def test_serial_and_sharded_span_trees_have_equal_shape(
    tmp_path_factory, max_workers, shards, seed
):
    """The merged span tree of a sharded cached run has exactly the
    structure (kinds, fields, nesting, order) of the serial run over
    the same config — only ids and wall-clock values may differ."""
    from repro.analysis.runner import run_grid
    from repro.obs import tree_shape

    config = ExperimentConfig(
        heuristics=("mct",),
        num_tasks=6,
        num_machines=3,
        heterogeneities=(Heterogeneity.HIHI, Heterogeneity.LOLO),
        consistencies=(Consistency.INCONSISTENT,),
        instances_per_cell=1,
        seed=seed,
    )
    base = tmp_path_factory.mktemp("span-trees")
    with use_tracer(CollectingTracer()) as serial:
        run_grid(config, cache_dir=base / f"serial-{seed}", max_workers=1)
    with use_tracer(CollectingTracer()) as sharded:
        run_grid(
            config,
            cache_dir=base / f"sharded-{seed}-{max_workers}-{shards}",
            max_workers=max_workers,
            shards=shards,
        )
    assert serial.trace_id != sharded.trace_id
    assert tree_shape(sharded.spans) == tree_shape(serial.spans)


# ---------------------------------------------------------------------------
# JSONL round-trip: export -> parse -> records_to_snapshot is the identity
# ---------------------------------------------------------------------------

_NAMES = st.text("abcdefgh._", min_size=1, max_size=12)
_FINITE = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
_POSITIVE = st.floats(
    min_value=0.0, max_value=1e3, allow_nan=False, allow_infinity=False
)
_BUCKET_BOUNDS = st.lists(
    st.floats(0.1, 1e4, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=6,
    unique=True,
).map(lambda bounds: tuple(sorted(bounds)))


@st.composite
def collected_tracers(draw):
    """A CollectingTracer exercised with random metric traffic."""
    tracer = CollectingTracer()
    for kind in draw(st.lists(_NAMES, max_size=5)):
        tracer.event(kind, value=draw(_FINITE))
    for name in draw(st.lists(_NAMES, max_size=5)):
        tracer.count(name, draw(st.integers(0, 1000)))
    for name in draw(st.lists(_NAMES, max_size=4, unique=True)):
        buckets = draw(_BUCKET_BOUNDS)
        for value in draw(st.lists(_FINITE, min_size=1, max_size=6)):
            tracer.observe(name, value, buckets=buckets)
    for name in draw(st.lists(_NAMES, max_size=4)):
        tracer.gauge(name, draw(_FINITE))
    for name in draw(st.lists(_NAMES, max_size=4)):
        tracer.timers.record(name, draw(_POSITIVE))
    return tracer


@given(tracer=collected_tracers())
@settings(max_examples=50, deadline=None)
def test_jsonl_roundtrip_is_identity(tracer):
    """Parsing an export back recovers every metric aggregate exactly:
    counters, gauges, histograms (bucket bounds, per-bucket counts,
    sum/min/max) and timers, plus the event stream in sequence order."""
    original = tracer.snapshot()
    text = snapshot_to_jsonl(original)
    records = [json.loads(line) for line in text.splitlines()]
    recovered = records_to_snapshot(records)
    assert recovered.counters == original.counters
    assert recovered.gauges == original.gauges
    assert recovered.histograms == original.histograms
    assert recovered.timers == original.timers
    assert [event_to_dict(e) for e in recovered.events] == [
        event_to_dict(e) for e in original.events
    ]


@given(tracer=collected_tracers())
@settings(max_examples=25, deadline=None)
def test_jsonl_reexport_is_byte_stable(tracer):
    """Export -> import -> export reproduces the original bytes."""
    text = snapshot_to_jsonl(tracer.snapshot())
    records = [json.loads(line) for line in text.splitlines()]
    assert snapshot_to_jsonl(records_to_snapshot(records)) == text


@given(
    values=st.lists(
        st.integers(-1000, 1000).map(float), min_size=1, max_size=20
    ),
    split=st.integers(0, 20),
    buckets=_BUCKET_BOUNDS,
)
@settings(max_examples=50, deadline=None)
def test_histogram_merge_is_partition_independent(values, split, buckets):
    """Observing a value list serially or split across two tracers and
    merging yields the same HistogramStat — the property that makes
    worker merges trustworthy.

    Integer-valued observations only: float ``sum`` accumulation is not
    associative, which is exactly why the deterministic-merge contract
    covers the integer-valued decision histograms and treats wall-clock
    ``*_s`` histograms structurally instead.
    """
    split = min(split, len(values))
    serial = CollectingTracer()
    for value in values:
        serial.observe("h", value, buckets=buckets)
    left, right = CollectingTracer(), CollectingTracer()
    for value in values[:split]:
        left.observe("h", value, buckets=buckets)
    for value in values[split:]:
        right.observe("h", value, buckets=buckets)
    left.merge_snapshot(right.snapshot())
    assert left.histograms.get("h") == serial.histograms.get("h")

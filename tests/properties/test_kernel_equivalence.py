"""Decision-identity of the incremental kernels vs the reference paths.

The optimised kernels (``incremental=True``, the default) must be
decision-for-decision identical to the retained reference
implementations: same assignments (task, machine, start, completion,
order), same makespans (exact float equality, not approximate), same
tie-candidate sets and tie-breaker draw order, and byte-identical
``repro.obs`` event streams.  Random ETCs include an integer-grid mode
that makes genuine ties common, so the tolerance logic and the random
policy's draw-consumption discipline are both exercised hard.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.iterative import IterativeScheduler
from repro.core.ties import DeterministicTieBreaker, RandomTieBreaker
from repro.etc.matrix import ETCMatrix
from repro.etc.witness import (
    KPB_EXAMPLE_PERCENT,
    SWA_EXAMPLE_HIGH_THRESHOLD,
    SWA_EXAMPLE_LOW_THRESHOLD,
    kpb_example_etc,
    mct_met_example_etc,
    minmin_example_etc,
    sufferage_example_etc,
    swa_example_etc,
)
from repro.heuristics.kpb import KPercentBest
from repro.heuristics.mct import MCT
from repro.heuristics.minmin import Duplex, MaxMin, MinMin
from repro.heuristics.sufferage import Sufferage
from repro.obs.export import event_to_dict
from repro.obs.tracer import CollectingTracer, use_tracer

FACTORIES = {
    "min-min": MinMin,
    "max-min": MaxMin,
    "mct": MCT,
    "sufferage": Sufferage,
    "duplex": Duplex,
    "k-percent-best": lambda **kw: KPercentBest(70.0, **kw),
}

TIE_POLICIES = {
    "deterministic": DeterministicTieBreaker,
    # Same seed on both sides: identical draw sequences prove the
    # kernels consume random draws at exactly the same decisions.
    "random": lambda: RandomTieBreaker(1234),
}


@st.composite
def etc_and_ready(draw):
    num_tasks = draw(st.integers(1, 12))
    num_machines = draw(st.integers(1, 6))
    if draw(st.booleans()):
        # Integer grid: tolerance ties are the norm, not the exception.
        cell = st.integers(1, 4).map(float)
    else:
        cell = st.floats(0.5, 50.0, allow_nan=False, allow_infinity=False)
    values = draw(
        st.lists(
            st.lists(cell, min_size=num_machines, max_size=num_machines),
            min_size=num_tasks,
            max_size=num_tasks,
        )
    )
    ready = draw(
        st.lists(
            st.floats(0.0, 20.0, allow_nan=False, allow_infinity=False),
            min_size=num_machines,
            max_size=num_machines,
        )
    )
    return ETCMatrix(values), ready


def _traced_run(heuristic, etc, ready, tie_breaker):
    tracer = CollectingTracer()
    with use_tracer(tracer):
        mapping = heuristic.map_tasks(etc, list(ready), tie_breaker)
    return (
        [
            (a.task, a.machine, a.start, a.completion, a.order)
            for a in mapping.assignments
        ],
        mapping.makespan(),
        [event_to_dict(e) for e in tracer.events],
        getattr(heuristic, "last_trace", None),
    )


@pytest.mark.parametrize("name", sorted(FACTORIES))
@pytest.mark.parametrize("policy", sorted(TIE_POLICIES))
@given(data=etc_and_ready())
@settings(max_examples=40, deadline=None)
def test_kernel_matches_reference(name, policy, data):
    etc, ready = data
    runs = [
        _traced_run(
            FACTORIES[name](incremental=incremental),
            etc,
            ready,
            TIE_POLICIES[policy](),
        )
        for incremental in (True, False)
    ]
    assert runs[0] == runs[1]


@pytest.mark.parametrize("name", sorted(FACTORIES))
@given(data=etc_and_ready())
@settings(max_examples=20, deadline=None)
def test_kernel_matches_reference_untraced(name, data):
    """The no-tracer deterministic fast paths decide identically too."""
    etc, ready = data
    mappings = [
        FACTORIES[name](incremental=incremental).map_tasks(
            etc, list(ready), DeterministicTieBreaker()
        )
        for incremental in (True, False)
    ]
    assert [
        (a.task, a.machine, a.start, a.completion, a.order)
        for a in mappings[0].assignments
    ] == [
        (a.task, a.machine, a.start, a.completion, a.order)
        for a in mappings[1].assignments
    ]
    assert mappings[0].makespan() == mappings[1].makespan()


@pytest.mark.parametrize("policy", sorted(TIE_POLICIES))
@given(data=etc_and_ready())
@settings(max_examples=15, deadline=None)
def test_iterative_scheduler_equivalence(policy, data):
    """The full freeze/remap technique is invariant to the kernel choice."""
    etc, ready = data
    outcomes = []
    for incremental in (True, False):
        tracer = CollectingTracer()
        with use_tracer(tracer):
            result = IterativeScheduler(
                MinMin(incremental=incremental),
                tie_breaker=TIE_POLICIES[policy](),
            ).run(etc, dict(zip(etc.machines, ready)))
        outcomes.append(
            (
                result.makespans(),
                result.removal_order,
                result.final_finish_times,
                [event_to_dict(e) for e in tracer.events],
            )
        )
    assert outcomes[0] == outcomes[1]


def _paper_examples():
    from repro.heuristics import get_heuristic
    from repro.heuristics.swa import SwitchingAlgorithm

    return {
        "min-min": (lambda **kw: MinMin(**kw), minmin_example_etc()),
        "mct": (lambda **kw: MCT(**kw), mct_met_example_etc()),
        "met": (lambda **kw: get_heuristic("met"), mct_met_example_etc()),
        "swa": (
            lambda **kw: SwitchingAlgorithm(
                low=SWA_EXAMPLE_LOW_THRESHOLD, high=SWA_EXAMPLE_HIGH_THRESHOLD
            ),
            swa_example_etc(),
        ),
        "kpb": (
            lambda **kw: KPercentBest(percent=KPB_EXAMPLE_PERCENT, **kw),
            kpb_example_etc(),
        ),
        "sufferage": (lambda **kw: Sufferage(**kw), sufferage_example_etc()),
    }


@pytest.mark.parametrize("example", sorted(_paper_examples()))
def test_paper_witness_examples_replay_identically(example):
    """All six paper worked examples run the same under either kernel.

    MET and SWA take no ``incremental`` flag (they have a single
    implementation); for them this degenerates to an idempotence check,
    which keeps the example set complete.
    """
    make, etc = _paper_examples()[example]
    outcomes = []
    for incremental in (True, False):
        try:
            heuristic = make(incremental=incremental)
        except TypeError:
            heuristic = make()
        tracer = CollectingTracer()
        with use_tracer(tracer):
            result = IterativeScheduler(heuristic).run(etc)
        outcomes.append(
            (
                result.makespans(),
                result.removal_order,
                result.final_finish_times,
                [event_to_dict(e) for e in tracer.events],
            )
        )
    assert outcomes[0] == outcomes[1]


@given(data=etc_and_ready())
@settings(max_examples=20, deadline=None)
def test_sufferage_last_trace_identical(data):
    """Pass/decision traces (paper Tables 16–17) match across kernels."""
    etc, ready = data
    traces = []
    for incremental in (True, False):
        heuristic = Sufferage(incremental=incremental)
        heuristic.map_tasks(etc, list(ready), DeterministicTieBreaker())
        traces.append(heuristic.last_trace)
    assert traces[0] == traces[1]


# ----------------------------------------------------------------------
# Batch-vs-loop decision identity (the batched backend's contract).
#
# For every greedy-family heuristic and every registered backend, mapping
# a stacked batch must reproduce — byte for byte — the decision sequence
# of looping that backend's single-instance heuristic over the
# instances: same (task, machine, start, completion, order) tuples, same
# exact makespans.  The strategy stresses ties (integer grids, duplicate
# rows, duplicate instances) and degenerate shapes (batch of 1,
# tasks < machines, single machine).
# ----------------------------------------------------------------------
from tests.conftest import BATCH_MAX_EXAMPLES, stacked_batches  # noqa: E402

from repro.heuristics.backends import get_backend  # noqa: E402
from repro.heuristics.batched import (  # noqa: E402
    GREEDY_FAMILY,
    batch_ready_vector,
    map_batch,
)

BACKENDS = ("reference", "incremental", "batched")


def _batch_decisions(result):
    return [
        (result.assignment_tuples(index), result.makespans()[index])
        for index in range(len(result.batch))
    ]


def _looped_decisions(backend, name, batch, ready, breaker):
    """Ground truth: the backend's single-instance kernel, looped."""
    ready0 = batch_ready_vector(batch, ready)
    out = []
    for index in range(len(batch)):
        mapping = backend.make(name).map_tasks(
            batch.instance(index), list(ready0[index]), breaker
        )
        out.append(
            (
                [
                    (a.task, a.machine, a.start, a.completion, a.order)
                    for a in mapping.assignments
                ],
                mapping.makespan(),
            )
        )
    return out


@pytest.mark.parametrize("name", GREEDY_FAMILY)
@pytest.mark.parametrize("backend_name", BACKENDS)
@given(data=stacked_batches())
@settings(max_examples=BATCH_MAX_EXAMPLES, deadline=None)
def test_batch_matches_loop(name, backend_name, data):
    batch, ready = data
    backend = get_backend(backend_name)
    result = backend.map_batch(name, batch, ready)
    assert result.heuristic == name
    assert _batch_decisions(result) == _looped_decisions(
        backend, name, batch, ready, DeterministicTieBreaker()
    )


@pytest.mark.parametrize("name", GREEDY_FAMILY)
@given(data=stacked_batches())
@settings(max_examples=BATCH_MAX_EXAMPLES, deadline=None)
def test_batch_backends_agree(name, data):
    """All registered backends produce identical batch results."""
    batch, ready = data
    outcomes = [
        _batch_decisions(get_backend(backend_name).map_batch(name, batch, ready))
        for backend_name in BACKENDS
    ]
    assert outcomes[0] == outcomes[1] == outcomes[2]


@pytest.mark.parametrize("name", GREEDY_FAMILY)
@given(data=stacked_batches())
@settings(max_examples=BATCH_MAX_EXAMPLES, deadline=None)
def test_batch_mapping_replay(name, data):
    """BatchResult.mapping(i) rebuilds the exact single-instance Mapping."""
    batch, ready = data
    result = get_backend("batched").map_batch(name, batch, ready)
    for index in range(len(batch)):
        mapping = result.mapping(index)
        assert [
            (a.task, a.machine, a.start, a.completion, a.order)
            for a in mapping.assignments
        ] == result.assignment_tuples(index)
        assert mapping.makespan() == result.makespans()[index]


@given(data=stacked_batches())
@settings(max_examples=BATCH_MAX_EXAMPLES, deadline=None)
def test_batch_random_ties_fall_back_to_loop(data):
    """A non-deterministic breaker routes through the looped path with a
    single shared draw stream — identical to looping by hand."""
    batch, ready = data
    result = map_batch("min-min", batch, ready, RandomTieBreaker(99))
    ready0 = batch_ready_vector(batch, ready)
    breaker = RandomTieBreaker(99)
    heuristic = MinMin()
    expected = []
    for index in range(len(batch)):
        mapping = heuristic.map_tasks(
            batch.instance(index), list(ready0[index]), breaker
        )
        expected.append(
            (
                [
                    (a.task, a.machine, a.start, a.completion, a.order)
                    for a in mapping.assignments
                ],
                mapping.makespan(),
            )
        )
    assert _batch_decisions(result) == expected


@pytest.mark.parametrize("name", GREEDY_FAMILY)
@given(data=stacked_batches())
@settings(max_examples=BATCH_MAX_EXAMPLES // 2 or 1, deadline=None)
def test_batch_traced_fallback_identical(name, data):
    """Under a tracer the batched path falls back to the loop (so event
    streams keep their proven identity) yet decides identically, and the
    kernels.batch.* counters record the request."""
    batch, ready = data
    untraced = get_backend("batched").map_batch(name, batch, ready)
    tracer = CollectingTracer()
    with use_tracer(tracer):
        traced = get_backend("batched").map_batch(name, batch, ready)
    assert _batch_decisions(traced) == _batch_decisions(untraced)
    counters = tracer.counters.as_dict()
    assert counters.get("kernels.batch.requests") == 1
    assert counters.get("kernels.batch.instances") == len(batch)
    assert counters.get("kernels.batch.fallback") == 1

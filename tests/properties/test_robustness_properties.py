"""Property-based tests for the robustness analysis (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.robustness import (
    perturbed_finish_times,
    robustness_radius,
)
from repro.etc.matrix import ETCMatrix
from repro.heuristics import MCT


@st.composite
def mapped_instances(draw, max_tasks=8, max_machines=4):
    num_tasks = draw(st.integers(1, max_tasks))
    num_machines = draw(st.integers(1, max_machines))
    values = draw(
        st.lists(
            st.lists(
                st.floats(0.5, 50.0, allow_nan=False, allow_infinity=False),
                min_size=num_machines,
                max_size=num_machines,
            ),
            min_size=num_tasks,
            max_size=num_tasks,
        )
    )
    etc = ETCMatrix(values)
    return MCT().map_tasks(etc)


@given(mapping=mapped_instances())
@settings(max_examples=40, deadline=None)
def test_zero_error_is_identity(mapping):
    finish = perturbed_finish_times(mapping, np.zeros(mapping.etc.num_tasks))
    assert np.allclose(finish, mapping.finish_time_vector())


@given(mapping=mapped_instances(), scale=st.floats(-0.5, 2.0))
@settings(max_examples=40, deadline=None)
def test_uniform_error_scales_loads_exactly(mapping, scale):
    """Uniform relative error e multiplies every machine's *load* by
    (1+e) while leaving ready offsets fixed."""
    errors = np.full(mapping.etc.num_tasks, scale)
    finish = perturbed_finish_times(mapping, errors)
    ready = mapping.initial_ready_times()
    loads = mapping.finish_time_vector() - ready
    assert np.allclose(finish, ready + (1 + scale) * loads)


@given(mapping=mapped_instances(), seed=st.integers(0, 2**16))
@settings(max_examples=40, deadline=None)
def test_monotone_in_errors(mapping, seed):
    """Pointwise larger errors never decrease any finishing time."""
    rng = np.random.default_rng(seed)
    base = rng.uniform(-0.5, 0.5, mapping.etc.num_tasks)
    bigger = base + rng.uniform(0.0, 0.5, mapping.etc.num_tasks)
    f_base = perturbed_finish_times(mapping, base)
    f_bigger = perturbed_finish_times(mapping, bigger)
    assert np.all(f_bigger >= f_base - 1e-9)


@given(mapping=mapped_instances())
@settings(max_examples=40, deadline=None)
def test_radius_certificate_is_tight(mapping):
    """Errors at the radius keep the bound; a hair beyond may break it,
    and the bound holds for every |e| <= radius drawn at random."""
    radius = robustness_radius(mapping, tolerance=1.25)
    bound = 1.25 * mapping.makespan()
    if not np.isfinite(radius):
        return
    worst = perturbed_finish_times(
        mapping, np.full(mapping.etc.num_tasks, radius)
    ).max()
    assert worst <= bound + 1e-6 * bound
    rng = np.random.default_rng(0)
    inside = rng.uniform(-min(radius, 0.9), radius, mapping.etc.num_tasks)
    assert perturbed_finish_times(mapping, inside).max() <= bound + 1e-6 * bound


@given(mapping=mapped_instances(), t1=st.floats(1.05, 1.5), t2=st.floats(1.5, 3.0))
@settings(max_examples=30, deadline=None)
def test_radius_monotone_in_tolerance(mapping, t1, t2):
    assert robustness_radius(mapping, t2) >= robustness_radius(mapping, t1) - 1e-12

"""Property-based tests for the ETC substrate (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.etc.generation import (
    Consistency,
    Heterogeneity,
    RangeBasedParams,
    apply_consistency,
    generate_cvb,
    generate_range_based,
)
from repro.etc.io import from_csv, from_json, to_csv, to_json


@st.composite
def small_dims(draw):
    return draw(st.integers(1, 12)), draw(st.integers(1, 6))


@given(dims=small_dims(), seed=st.integers(0, 2**32 - 1))
@settings(max_examples=30, deadline=None)
def test_range_based_always_valid(dims, seed):
    tasks, machines = dims
    etc = generate_range_based(tasks, machines, rng=seed)
    assert etc.shape == (tasks, machines)
    assert np.all(etc.values > 0)
    assert np.all(np.isfinite(etc.values))


@given(dims=small_dims(), seed=st.integers(0, 2**32 - 1))
@settings(max_examples=30, deadline=None)
def test_cvb_always_valid(dims, seed):
    tasks, machines = dims
    etc = generate_cvb(tasks, machines, rng=seed)
    assert np.all(etc.values > 0)
    assert np.all(np.isfinite(etc.values))


@given(
    dims=small_dims(),
    seed=st.integers(0, 2**32 - 1),
    task_range=st.floats(2.0, 1000.0),
    machine_range=st.floats(2.0, 1000.0),
)
@settings(max_examples=30, deadline=None)
def test_range_based_respects_bounds(dims, seed, task_range, machine_range):
    tasks, machines = dims
    params = RangeBasedParams(task_range=task_range, machine_range=machine_range)
    etc = generate_range_based(tasks, machines, params, rng=seed)
    assert etc.values.min() >= 1.0
    assert etc.values.max() <= task_range * machine_range


@given(
    dims=small_dims(),
    seed=st.integers(0, 2**32 - 1),
    consistency=st.sampled_from(list(Consistency)),
)
@settings(max_examples=30, deadline=None)
def test_consistency_preserves_row_multisets(dims, seed, consistency):
    tasks, machines = dims
    raw = np.random.default_rng(seed).uniform(1, 100, size=(tasks, machines))
    out = apply_consistency(raw, consistency)
    assert np.allclose(np.sort(raw, axis=1), np.sort(out, axis=1))


@given(
    dims=small_dims(),
    seed=st.integers(0, 2**32 - 1),
    heterogeneity=st.sampled_from(list(Heterogeneity)),
)
@settings(max_examples=20, deadline=None)
def test_generation_deterministic_in_seed(dims, seed, heterogeneity):
    tasks, machines = dims
    a = generate_range_based(tasks, machines, heterogeneity, rng=seed)
    b = generate_range_based(tasks, machines, heterogeneity, rng=seed)
    assert a == b


@given(dims=small_dims(), seed=st.integers(0, 2**32 - 1))
@settings(max_examples=25, deadline=None)
def test_io_roundtrips_preserve_everything(dims, seed):
    tasks, machines = dims
    etc = generate_range_based(tasks, machines, rng=seed)
    assert from_csv(to_csv(etc)) == etc
    assert from_json(to_json(etc)) == etc


@given(dims=small_dims(), seed=st.integers(0, 2**32 - 1), data=st.data())
@settings(max_examples=25, deadline=None)
def test_restriction_then_restriction_composes(dims, seed, data):
    """Restricting twice equals restricting once with the intersection."""
    tasks, machines = dims
    etc = generate_range_based(tasks, machines, rng=seed)
    keep_tasks = data.draw(
        st.lists(st.sampled_from(list(etc.tasks)), min_size=1, unique=True)
    )
    sub = etc.submatrix(tasks=keep_tasks)
    if len(keep_tasks) > 1:
        nested = sub.submatrix(tasks=keep_tasks[:-1])
        direct = etc.submatrix(tasks=keep_tasks[:-1])
        assert nested == direct

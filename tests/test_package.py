"""Package-level contract tests: public API surface and metadata."""

import importlib

import pytest

import repro


class TestTopLevelAPI:
    def test_version(self):
        assert repro.__version__ == "1.8.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize(
        "module",
        [
            "repro.etc",
            "repro.core",
            "repro.heuristics",
            "repro.sim",
            "repro.analysis",
            "repro.cli",
            "repro.exceptions",
        ],
    )
    def test_subpackage_all_exports_resolve(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name}"

    def test_quickstart_from_docstring_runs(self):
        """The module docstring's quickstart must actually work."""
        from repro import (
            ETCMatrix,
            IterativeScheduler,
            compare_iterative,
            get_heuristic,
        )

        etc = ETCMatrix([[4, 5, 5], [6, 2, 2], [5, 6, 3], [4, 1, 3]])
        result = IterativeScheduler(get_heuristic("min-min")).run(etc)
        comp = compare_iterative(result)
        assert comp.heuristic == "min-min"

    def test_exceptions_hierarchy(self):
        from repro.exceptions import (
            ConfigurationError,
            ETCError,
            LabelError,
            MappingError,
            ReproError,
            SimulationError,
            UnknownHeuristicError,
        )

        for exc in (
            ETCError,
            MappingError,
            SimulationError,
            ConfigurationError,
            UnknownHeuristicError,
        ):
            assert issubclass(exc, ReproError)
        assert issubclass(LabelError, KeyError)
        assert issubclass(UnknownHeuristicError, KeyError)
        assert issubclass(ConfigurationError, ValueError)

    def test_paper_heuristics_constant(self):
        from repro import PAPER_HEURISTICS, get_heuristic

        assert len(PAPER_HEURISTICS) == 7
        for name in PAPER_HEURISTICS:
            assert get_heuristic(name).name == name

    def test_no_heavy_imports_at_package_import(self):
        """The core package must not drag in matplotlib/scipy/etc."""
        import sys

        assert "matplotlib" not in sys.modules
        assert "scipy" not in sys.modules

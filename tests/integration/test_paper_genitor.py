"""Integration tests for the paper's Genitor claims (Section 3.1, E21).

"For each iteration, the mapping found by Genitor in the previous
iteration, excluding the makespan machine and the tasks assigned to it,
is seeded into the population of the current iteration.  The ranking in
Genitor guarantees that the final mapping is either the seeded mapping
or a mapping with a smaller makespan ... Thus, for Genitor the
iterative technique will result in either an improvement or no change."
"""

import pytest

from repro.core.iterative import IterativeScheduler
from repro.core.validation import validate_iterative_result
from repro.etc.generation import generate_range_based
from repro.heuristics import Genitor


def _genitor(seed, iterations=200):
    return Genitor(iterations=iterations, population_size=20, rng=seed)


class TestSeededIterations:
    @pytest.mark.parametrize("seed", range(4))
    def test_never_increases_makespan(self, seed):
        etc = generate_range_based(20, 5, rng=seed)
        scheduler = IterativeScheduler(_genitor(seed), seed_across_iterations=True)
        result = scheduler.run(etc)
        spans = result.makespans()
        assert all(b <= a + 1e-9 for a, b in zip(spans, spans[1:])), spans
        validate_iterative_result(result)

    @pytest.mark.parametrize("seed", range(4))
    def test_improvement_or_no_change_per_machine(self, seed):
        """Each iteration's restricted makespan never exceeds what the
        previous mapping already achieved on the same machine set."""
        etc = generate_range_based(18, 4, rng=seed + 10)
        result = IterativeScheduler(
            _genitor(seed), seed_across_iterations=True
        ).run(etc)
        for prev, cur in zip(result.iterations, result.iterations[1:]):
            # the previous mapping, restricted to cur's machines, has
            # makespan = the second-largest finishing time of prev
            survivors = [
                prev.mapping.ready_time(m) for m in cur.etc.machines
            ]
            assert cur.makespan <= max(survivors) + 1e-9

    def test_unseeded_iterations_can_increase(self):
        """Dropping the seeding removes the guarantee: across fresh GA
        runs the makespan can grow from one iteration to the next (the
        conclusion's motivation for seeding)."""
        increases = 0
        for seed in range(12):
            etc = generate_range_based(15, 5, rng=seed + 100)
            result = IterativeScheduler(
                Genitor(iterations=15, population_size=6, rng=seed),
                seed_across_iterations=False,
            ).run(etc)
            if result.makespan_increased():
                increases += 1
        assert increases > 0

    def test_seed_restriction_excludes_frozen_tasks(self):
        """The seed passed to iteration i+1 must cover exactly the
        surviving task set (paper: 'excluding the makespan machine and
        the tasks assigned to it')."""
        etc = generate_range_based(12, 4, rng=3)
        captured = []

        class Spy(Genitor):
            def evolve(self, mapping, seed_mapping=None):
                captured.append(seed_mapping)
                return super().evolve(mapping, seed_mapping)

        spy = Spy(iterations=30, population_size=10, rng=0)
        spy.name = "genitor"
        result = IterativeScheduler(spy, seed_across_iterations=True).run(etc)
        assert captured[0] is None  # original mapping is unseeded
        for seed_map, rec in zip(captured[1:], result.iterations[1:]):
            assert seed_map is not None
            assert set(seed_map) == set(rec.etc.tasks)
            assert all(rec.etc.has_machine(m) for m in seed_map.values())

"""Integration replay of the paper's MCT and MET examples (3.3–3.4).

Tables 4–8, Figures 6–7 and 9–10.  Documented facts asserted:

* both heuristics produce original completion times m1 = 4, m2 = 3,
  m3 = 3 with makespan machine m1 (on the shared Table 4 matrix);
* both rely on a tie for t2 between m2 and m3; breaking it to m3 in the
  first iterative mapping yields m2 = 1, m3 = 5 — makespan increases
  from 4 to 5 and m3 becomes the makespan machine;
* with deterministic ties, the iterative mappings are identical to the
  original (Theorem 3.3 for MCT, the Section 3.4 proof for MET).
"""

import pytest

from repro.core.iterative import IterativeScheduler
from repro.core.ties import RandomTieBreaker, ScriptedTieBreaker
from repro.core.validation import validate_iterative_result
from repro.etc.witness import mct_met_example_etc
from repro.heuristics import MCT, MET


@pytest.fixture
def etc():
    return mct_met_example_etc()


@pytest.fixture(params=[MCT, MET], ids=["mct", "met"])
def heuristic_cls(request):
    return request.param


class TestSharedExample:
    def test_original_completion_times(self, etc, heuristic_cls):
        mapping = heuristic_cls().map_tasks(etc)
        assert mapping.machine_finish_times() == {"m1": 4.0, "m2": 3.0, "m3": 3.0}
        assert mapping.makespan_machine() == "m1"

    def test_original_assignments(self, etc, heuristic_cls):
        mapping = heuristic_cls().map_tasks(etc)
        assert mapping.to_dict() == {
            "t1": "m1",
            "t2": "m2",
            "t3": "m3",
            "t4": "m2",
        }

    def test_t2_tie_is_genuine(self, etc, heuristic_cls):
        script = ScriptedTieBreaker([2])  # machine index 2 == m3
        mapping = heuristic_cls().map_tasks(etc, tie_breaker=script)
        assert script.consumed == 1
        assert mapping.machine_of("t2") == "m3"

    def test_iterative_increase_with_alternate_tie(self, etc, heuristic_cls):
        sub = etc.without_machine("m1", ["t1"])
        mapping = heuristic_cls().map_tasks(sub, tie_breaker=ScriptedTieBreaker([1]))
        assert mapping.machine_finish_times() == {"m2": 1.0, "m3": 5.0}
        assert mapping.makespan() == 5.0 > 4.0
        assert mapping.makespan_machine() == "m3"

    def test_deterministic_invariance(self, etc, heuristic_cls):
        result = IterativeScheduler(heuristic_cls()).run(etc)
        assert not result.mapping_changed()
        assert not result.makespan_increased()
        assert result.final_finish_times == {"m1": 4.0, "m2": 3.0, "m3": 3.0}
        validate_iterative_result(result)

    def test_random_seed_reproduces_divergence(self, etc, heuristic_cls):
        for seed in range(64):
            scheduler = IterativeScheduler(
                heuristic_cls(), tie_breaker=RandomTieBreaker(rng=seed)
            )
            result = scheduler.run(etc)
            if (
                result.original.finish_times()
                == {"m1": 4.0, "m2": 3.0, "m3": 3.0}
                and result.final_finish_times.get("m3") == 5.0
                and result.final_finish_times.get("m2") == 1.0
            ):
                assert result.makespan_increased()
                return
        pytest.fail("no seed reproduced the documented divergence")


class TestHeuristicDifferences:
    def test_met_and_mct_agree_on_this_matrix(self, etc):
        """Table 4 was built so both heuristics map identically — the
        paper reuses it for both sections."""
        assert MCT().map_tasks(etc).to_dict() == MET().map_tasks(etc).to_dict()

    def test_met_ignores_load_mct_does_not(self, etc):
        busy = {"m1": 100.0}
        met_busy = MET().map_tasks(etc, busy)
        mct_busy = MCT().map_tasks(etc, busy)
        assert met_busy.machine_of("t1") == "m1"  # MET still picks fastest
        assert mct_busy.machine_of("t1") != "m1"  # MCT routes around load

"""Integration replay of the paper's Min-Min example (Section 3.2).

Tables 1–3, Figures 3–4.  Every number asserted below is stated in the
paper's prose:

* original mapping completion times: m1 = 5, m2 = 2, m3 = 4;
  makespan machine m1;
* first iterative mapping (random tie broken the other way):
  m1 = 5 (unchanged), m2 = 1, m3 = 6; new makespan machine m3;
* hence "the makespan can increase if the Min-Min heuristic is used"
  with random tie-breaking.
"""

import pytest

from repro.core.iterative import IterativeScheduler
from repro.core.ties import RandomTieBreaker, ScriptedTieBreaker
from repro.core.validation import validate_iterative_result
from repro.etc.witness import minmin_example_etc
from repro.heuristics import MinMin


@pytest.fixture
def etc():
    return minmin_example_etc()


class TestOriginalMapping:
    def test_completion_times(self, etc):
        mapping = MinMin().map_tasks(etc)
        assert mapping.machine_finish_times() == {"m1": 5.0, "m2": 2.0, "m3": 4.0}

    def test_makespan_machine(self, etc):
        mapping = MinMin().map_tasks(etc)
        assert mapping.makespan_machine() == "m1"
        assert mapping.makespan() == 5.0

    def test_tie_occurs_during_original(self, etc):
        """The documented t2 tie (m2 vs m3 at CT 2) is genuine: a
        scripted breaker must consume exactly one tie decision."""
        script = ScriptedTieBreaker([2])  # would pick m3 at the tie
        mapping = MinMin().map_tasks(etc, tie_breaker=script)
        assert script.consumed == 1
        # breaking the tie the other way reroutes t2 to m3
        assert mapping.machine_of("t2") == "m3"


class TestFirstIterativeMapping:
    def test_alternate_tie_break_increases_makespan(self, etc):
        sub = etc.without_machine("m1", ["t4"])
        mapping = MinMin().map_tasks(sub, tie_breaker=ScriptedTieBreaker([1]))
        assert mapping.machine_finish_times() == {"m2": 1.0, "m3": 6.0}
        assert mapping.makespan_machine() == "m3"
        assert mapping.makespan() == 6.0 > 5.0  # the documented increase

    def test_deterministic_iterations_identical(self, etc):
        """Theorem (Section 3.2): with deterministic ties the iterative
        mappings equal the original."""
        result = IterativeScheduler(MinMin()).run(etc)
        assert not result.mapping_changed()
        assert not result.makespan_increased()
        assert result.final_finish_times == {"m1": 5.0, "m2": 2.0, "m3": 4.0}
        validate_iterative_result(result)

    def test_random_ties_can_reproduce_the_paper_run(self, etc):
        """Some random seed must reproduce the documented divergence:
        original ties to m2, first iteration ties to m3."""
        for seed in range(64):
            scheduler = IterativeScheduler(
                MinMin(), tie_breaker=RandomTieBreaker(rng=seed)
            )
            result = scheduler.run(etc)
            finish = result.final_finish_times
            if (
                result.original.finish_times()
                == {"m1": 5.0, "m2": 2.0, "m3": 4.0}
                and finish["m2"] == 1.0
                and finish["m3"] == 6.0
            ):
                assert result.makespan_increased()
                return
        pytest.fail("no seed reproduced the paper's random-tie divergence")

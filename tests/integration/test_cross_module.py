"""Cross-module integration scenarios exercising the whole pipeline."""

import json

import numpy as np
import pytest

from repro.analysis.export import iterative_result_to_dict, write_json
from repro.cli import main as cli_main
from repro.core.iterative import IterativeScheduler
from repro.core.seeding import SeededIterativeScheduler
from repro.etc.generation import Heterogeneity, generate_range_based
from repro.etc.io import load_csv, save_csv
from repro.heuristics import get_heuristic
from repro.sim.hcsystem import HCSystem


class TestGenerateMapIterateRoundtrip:
    """generate -> file -> CLI iterate must match a direct library run."""

    def test_cli_matches_library(self, tmp_path, capsys):
        etc = generate_range_based(15, 4, Heterogeneity.HIHI, rng=5)
        path = tmp_path / "suite.csv"
        save_csv(etc, path)

        assert cli_main(["iterate", "--etc", str(path),
                         "--heuristic", "sufferage"]) == 0
        cli_out = capsys.readouterr().out

        result = IterativeScheduler(get_heuristic("sufferage")).run(load_csv(path))
        for span in result.makespans():
            assert f"{span:.6g}" in cli_out


class TestIterativeResultExecutesOnSimulator:
    """Every iteration's mapping must execute identically on the DES."""

    @pytest.mark.parametrize("name", ["sufferage", "mct", "k-percent-best"])
    def test_each_iteration_cross_validates(self, name):
        etc = generate_range_based(18, 5, rng=6)
        result = IterativeScheduler(get_heuristic(name)).run(etc)
        for rec in result.iterations:
            system = HCSystem(rec.etc)
            measured = system.measured_finish_times(rec.mapping)
            analytic = rec.mapping.machine_finish_times()
            for machine in rec.etc.machines:
                assert measured[machine] == pytest.approx(analytic[machine])


class TestExportAuditTrail:
    """A JSON dump of a run must contain enough to re-verify it."""

    def test_dump_replays_finishing_times(self, tmp_path):
        etc = generate_range_based(12, 4, rng=7)
        result = SeededIterativeScheduler(get_heuristic("sufferage")).run(etc)
        path = tmp_path / "audit.json"
        write_json(iterative_result_to_dict(result), path)
        doc = json.loads(path.read_text())

        # re-derive each iteration's finishing times from the dumped
        # assignments and the original ETC matrix
        for iteration in doc["iterations"]:
            finish = {
                m: doc["initial_ready_times"][m] for m in iteration["machines"]
            }
            for task, machine in iteration["assignments"].items():
                finish[machine] += etc.etc(task, machine)
            for machine, value in iteration["finish_times"].items():
                assert finish[machine] == pytest.approx(value)


class TestSeededVsPlainAtScale:
    """System-level property over a realistic batch: seeding never hurts
    the *latest-finishing* machine, and helps whenever plain iterations
    backfired."""

    def test_ensemble(self):
        rng = np.random.default_rng(0)
        for _ in range(8):
            seed = int(rng.integers(0, 2**31))
            etc = generate_range_based(25, 6, rng=seed)
            plain = IterativeScheduler(get_heuristic("sufferage")).run(etc)
            seeded = SeededIterativeScheduler(get_heuristic("sufferage")).run(etc)
            plain_worst = max(plain.final_finish_times.values())
            seeded_worst = max(seeded.final_finish_times.values())
            assert seeded_worst <= plain_worst + 1e-9


class TestPaperHeuristicsFullMatrix:
    """All seven paper heuristics run the full pipeline on one instance:
    map -> iterate -> validate -> simulate -> export."""

    def test_full_matrix(self, tmp_path):
        from repro.core.validation import validate_iterative_result
        from repro.heuristics import PAPER_HEURISTICS

        etc = generate_range_based(16, 4, rng=8)
        for name in PAPER_HEURISTICS:
            kwargs = (
                {"iterations": 100, "population_size": 12, "rng": 0}
                if name == "genitor"
                else {}
            )
            heuristic = get_heuristic(name, **kwargs)
            result = IterativeScheduler(heuristic).run(etc)
            validate_iterative_result(result)
            measured = HCSystem(etc).measured_finish_times(result.original.mapping)
            analytic = result.original.finish_times()
            for machine in etc.machines:
                assert measured[machine] == pytest.approx(analytic[machine]), name
            write_json(
                iterative_result_to_dict(result), tmp_path / f"{name}.json"
            )
            assert (tmp_path / f"{name}.json").exists()

"""Integration: dynamic simulation composed with the analysis stack."""

import pytest

from repro.analysis.gantt import render_gantt
from repro.analysis.trajectory import sparkline
from repro.etc.generation import generate_range_based
from repro.heuristics import get_heuristic
from repro.sim.hcsystem import (
    ArrivalWorkload,
    DynamicHCSimulation,
    MCTOnline,
    SWAOnline,
    poisson_workload,
)


@pytest.fixture(scope="module")
def etc():
    return generate_range_based(30, 5, rng=40)


@pytest.fixture(scope="module")
def workload(etc):
    return poisson_workload(etc, rate=1e-4, rng=41)


class TestTraceAnalysis:
    def test_gantt_renders_dynamic_trace(self, workload):
        trace = DynamicHCSimulation(workload, policy=MCTOnline()).run()
        text = render_gantt(trace, width=50)
        for machine in workload.etc.machines:
            assert machine in text

    def test_utilisation_profile_sparkline(self, workload):
        trace = DynamicHCSimulation(workload, policy=MCTOnline()).run()
        utils = [trace.utilisation(m) for m in workload.etc.machines]
        assert len(sparkline(utils)) == len(utils)

    def test_busy_time_conservation(self, workload):
        """Sum of per-machine busy time == sum of actual task times."""
        trace = DynamicHCSimulation(workload, policy=MCTOnline()).run()
        busy = sum(
            trace.machine_busy_time(m) for m in workload.etc.machines
        )
        actual = sum(
            workload.etc.etc(r.task, r.machine) for r in trace.records
        )
        assert busy == pytest.approx(actual)


class TestOnlineVsOffline:
    def test_offline_minmin_bounds_online_mct_with_hindsight(self, etc):
        """With all arrivals at time 0 the on-line problem reduces to
        the off-line one; batch Min-Min in one event must match plain
        Min-Min exactly."""
        workload = ArrivalWorkload(
            etc=etc, arrivals=tuple([0.0] * etc.num_tasks)
        )
        trace = DynamicHCSimulation(
            workload,
            batch_heuristic=get_heuristic("min-min"),
            batch_interval=1e-9,
        ).run()
        offline = get_heuristic("min-min").map_tasks(etc)
        assert trace.machine_finish_times() == pytest.approx(
            offline.machine_finish_times()
        )

    def test_online_mct_matches_offline_mct_when_arrivals_sparse(self, etc):
        """If each task arrives after the previous one finished
        everywhere, on-line MCT's *choices* equal off-line MCT's on the
        empty-system state: each task goes to its min-ETC machine."""
        horizon = float(etc.values.max()) + 1.0
        arrivals = tuple(i * horizon for i in range(etc.num_tasks))
        workload = ArrivalWorkload(etc=etc, arrivals=arrivals)
        trace = DynamicHCSimulation(workload, policy=MCTOnline()).run()
        for record in trace.records:
            row = etc.task_row(record.task)
            assert etc.etc(record.task, record.machine) == row.min()

    def test_swa_online_vs_offline_same_first_decision(self, etc):
        """The first task sees an idle system in both modes: on-line SWA
        and off-line SWA map it identically (MCT on idle machines)."""
        workload = ArrivalWorkload(
            etc=etc, arrivals=tuple(float(i) for i in range(etc.num_tasks))
        )
        trace = DynamicHCSimulation(workload, policy=SWAOnline()).run()
        offline = get_heuristic("switching-algorithm").map_tasks(etc)
        first_task = etc.tasks[0]
        assert trace.execution_of(first_task).machine == offline.machine_of(
            first_task
        )


class TestLoadRegimes:
    def test_low_load_tasks_barely_wait(self, etc):
        sparse = poisson_workload(etc, rate=1e-7, rng=42)
        trace = DynamicHCSimulation(sparse, policy=MCTOnline()).run()
        assert trace.mean_queue_wait() < 0.01 * trace.makespan()

    def test_high_load_queues_build(self, etc):
        dense = poisson_workload(etc, rate=1.0, rng=43)
        trace = DynamicHCSimulation(dense, policy=MCTOnline()).run()
        assert trace.mean_queue_wait() > 0.0

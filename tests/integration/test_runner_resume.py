"""Kill-and-resume round trip for the cached experiment runner.

The acceptance contract (docs/runner.md): interrupt a grid run partway,
re-run with ``resume=True``, and the resumed run must (a) produce
records identical to an uninterrupted run and (b) serve at least the
already-completed cells from cache, visible through the
``runner.cells.cached`` counter.
"""

import os

import pytest

from repro.analysis.experiments import ExperimentConfig, run_experiment
from repro.analysis.runner import _WORKER_STORES, CellCache, cell_key, run_grid
from repro.analysis.parallel import SHM_PREFIX, split_into_cells
from repro.etc.generation import Consistency, Heterogeneity
from repro.etc.store import LOCK_NAME, ETCStore
from repro.obs import build_span_tree
from repro.obs.tracer import CollectingTracer, use_tracer


def shm_leftovers():
    try:
        return [n for n in os.listdir("/dev/shm") if n.startswith(SHM_PREFIX)]
    except FileNotFoundError:  # pragma: no cover - non-tmpfs platforms
        return []


@pytest.fixture(scope="module")
def grid_config():
    return ExperimentConfig(
        heuristics=("mct", "sufferage"),
        num_tasks=8,
        num_machines=3,
        heterogeneities=(Heterogeneity.HIHI, Heterogeneity.LOLO),
        consistencies=(Consistency.CONSISTENT, Consistency.INCONSISTENT),
        instances_per_cell=2,
        seed=0,
    )


class KillAfter:
    """Progress reporter that dies after ``n`` completed cells.

    ``run_grid`` persists a finished cell *before* reporting progress,
    so raising from ``advance`` simulates a kill that leaves exactly
    the completed cells behind as whole cache entries.
    """

    enabled = True

    def __init__(self, n: int) -> None:
        self.n = n
        self.advances = 0
        self.total = 0

    def start(self):
        return self

    def advance(self, current: str = "", n: int = 1) -> None:
        self.advances += n
        if self.advances >= self.n:
            raise KeyboardInterrupt(f"simulated kill after {self.advances} cells")

    def finish(self) -> None:
        pass


class TestKillAndResume:
    def test_resumed_records_identical_and_served_from_cache(
        self, grid_config, tmp_path
    ):
        baseline = run_experiment(grid_config)
        kill = KillAfter(2)
        with pytest.raises(KeyboardInterrupt):
            run_grid(
                grid_config, cache_dir=tmp_path, max_workers=1, progress=kill
            )
        # The kill left exactly the completed cells behind, whole.
        cache = CellCache(tmp_path)
        assert len(cache.keys()) == kill.advances == 2

        resumed = run_grid(grid_config, cache_dir=tmp_path, resume=True)
        assert list(resumed.records) == baseline
        assert resumed.cached_cells == 2
        assert resumed.computed_cells == 2
        assert resumed.ok

    def test_traced_kill_and_resume_counts_cached_cells(
        self, grid_config, tmp_path
    ):
        # Interrupt under a tracer so cache entries carry their obs
        # snapshots (a traced resume refuses snapshot-less entries).
        with use_tracer(CollectingTracer()):
            with pytest.raises(KeyboardInterrupt):
                run_grid(
                    grid_config,
                    cache_dir=tmp_path,
                    max_workers=1,
                    progress=KillAfter(3),
                )
        completed = len(CellCache(tmp_path).keys())
        assert completed == 3

        with use_tracer(CollectingTracer()) as tracer:
            resumed = run_grid(grid_config, cache_dir=tmp_path, resume=True)
        assert tracer.counters.get("runner.cells.cached") >= completed
        assert resumed.cached_cells == completed
        assert list(resumed.records) == run_experiment(grid_config)

    def test_second_resume_is_fully_cached(self, grid_config, tmp_path):
        first = run_grid(grid_config, cache_dir=tmp_path, max_workers=2)
        second = run_grid(grid_config, cache_dir=tmp_path, resume=True)
        third = run_grid(grid_config, cache_dir=tmp_path, resume=True)
        assert list(first.records) == list(second.records) == list(third.records)
        assert third.cached_cells == third.total_cells
        assert third.computed_cells == 0

    def test_cache_entries_are_per_cell_addressable(self, grid_config, tmp_path):
        run_grid(grid_config, cache_dir=tmp_path, max_workers=1)
        cache = CellCache(tmp_path)
        for cell in split_into_cells(grid_config):
            entry = cache.load(cell_key(cell))
            assert entry is not None
            assert list(entry.records) == run_experiment(cell)

    def test_pooled_interrupt_then_pooled_resume(self, grid_config, tmp_path):
        kill = KillAfter(2)
        with pytest.raises(KeyboardInterrupt):
            run_grid(
                grid_config, cache_dir=tmp_path, max_workers=2, progress=kill
            )
        completed = len(CellCache(tmp_path).keys())
        assert completed >= 2  # in-flight cells may also have finished

        resumed = run_grid(
            grid_config, cache_dir=tmp_path, resume=True, max_workers=2
        )
        assert resumed.cached_cells >= completed
        assert resumed.cached_cells + resumed.computed_cells == resumed.total_cells
        assert list(resumed.records) == run_experiment(grid_config)


@pytest.mark.obs
class TestResumeSpanTree:
    """A resumed run's span tree re-parents under the *new* trace."""

    def test_resumed_cells_reparent_under_new_trace(
        self, grid_config, tmp_path
    ):
        with use_tracer(CollectingTracer()):
            with pytest.raises(KeyboardInterrupt):
                run_grid(
                    grid_config,
                    cache_dir=tmp_path,
                    max_workers=1,
                    progress=KillAfter(2),
                )
        with use_tracer(CollectingTracer()) as tracer:
            resumed = run_grid(grid_config, cache_dir=tmp_path, resume=True)
        assert resumed.cached_cells == 2
        spans = tracer.spans
        # nothing survives from the killed run's trace id
        assert spans
        assert all(s.trace_id == tracer.trace_id for s in spans)
        (root,) = build_span_tree(spans)
        assert root.kind == "runner.grid"
        kinds = sorted(child.kind for child in root.children)
        # cached cells re-enter the tree as synthetic markers, computed
        # cells as full worker subtrees — all under the one new root
        assert kinds.count("runner.cell.cached") == resumed.cached_cells
        assert kinds.count("runner.cell") == resumed.computed_cells


class TestStoreKillAndResume:
    """Kill-and-resume with the zero-copy store transport in play.

    Beyond record identity, an interrupted store run must leave no
    transport residue behind: no ``/dev/shm`` segments, no stale
    ``store.lock``, and no parent-side store handle still cached."""

    def test_killed_store_run_leaks_nothing_and_resumes(
        self, grid_config, tmp_path
    ):
        cache_dir = tmp_path / "cells"
        store_root = tmp_path / "store"
        baseline = run_experiment(grid_config)

        kill = KillAfter(2)
        with pytest.raises(KeyboardInterrupt):
            run_grid(
                grid_config,
                cache_dir=cache_dir,
                store_dir=store_root,
                max_workers=1,
                progress=kill,
            )
        # The kill hit mid-compute: nothing transport-side survives it.
        assert not shm_leftovers()
        assert not (store_root / LOCK_NAME).exists()
        assert str(store_root) not in _WORKER_STORES
        # Publish-all runs before any compute, so every ensemble is
        # already committed and the store passes verification whole.
        store = ETCStore(store_root, create=False)
        assert len(store.keys()) == 4
        assert all(store.verify(key) for key in store.keys())
        store.close()

        resumed = run_grid(
            grid_config,
            cache_dir=cache_dir,
            store_dir=store_root,
            resume=True,
        )
        assert list(resumed.records) == baseline
        assert resumed.cached_cells == 2
        # Cached cells skip the publish phase; the rest reuse the
        # ensembles the killed run already committed.
        assert resumed.store_published == 0
        assert resumed.store_reused == 2
        assert not shm_leftovers()
        assert not (store_root / LOCK_NAME).exists()

    def test_pooled_store_interrupt_then_resume(self, grid_config, tmp_path):
        cache_dir = tmp_path / "cells"
        store_root = tmp_path / "store"
        with pytest.raises(KeyboardInterrupt):
            run_grid(
                grid_config,
                cache_dir=cache_dir,
                store_dir=store_root,
                max_workers=2,
                progress=KillAfter(2),
            )
        assert not shm_leftovers()
        assert not (store_root / LOCK_NAME).exists()

        resumed = run_grid(
            grid_config,
            cache_dir=cache_dir,
            store_dir=store_root,
            resume=True,
            max_workers=2,
        )
        assert list(resumed.records) == run_experiment(grid_config)
        assert resumed.store_published == 0
        assert not shm_leftovers()
        assert not (store_root / LOCK_NAME).exists()

"""Golden-output snapshots of the paper-format renderers.

Pins the exact rendered text of the Min-Min example artefacts (Table 1,
Table 2, Figure 3) so that accidental format regressions — column
drift, rounding changes, Gantt scaling bugs — fail loudly.  Update the
expected strings deliberately if the format is intentionally changed.
"""

from repro.analysis import (
    render_allocation_table,
    render_etc_table,
    render_gantt,
)
from repro.etc.witness import minmin_example_etc
from repro.heuristics import MinMin

GOLDEN_TABLE_1 = (
    "              m1      m2      m3\n"
    "t1             3       1       3\n"
    "t2             4       1       2\n"
    "t3             6       6       4\n"
    "t4             5       6       6"
)

GOLDEN_TABLE_2 = (
    "step  task  machine          m1 CT        m2 CT        m3 CT\n"
    "------------------------------------------------------------\n"
    "1     t1    m2                   0            1            0\n"
    "2     t2    m2                   0            2            0\n"
    "3     t3    m3                   0            2            4\n"
    "4     t4    m1                   5            2            4"
)

GOLDEN_FIGURE_3 = (
    "m1 |[t4==========================]\n"
    "m2 |[t1==][t2==]\n"
    "m3 |[t3====================]\n"
    "   +------------------------------\n"
    "    0       1.25   2.5    3.75    5"
)


def test_table_1_snapshot():
    assert render_etc_table(minmin_example_etc()) == GOLDEN_TABLE_1


def test_table_2_snapshot():
    mapping = MinMin().map_tasks(minmin_example_etc())
    assert render_allocation_table(mapping) == GOLDEN_TABLE_2


def test_figure_3_snapshot():
    mapping = MinMin().map_tasks(minmin_example_etc())
    assert render_gantt(mapping, width=30) == GOLDEN_FIGURE_3


def test_titles_prepend_cleanly():
    text = render_etc_table(minmin_example_etc(), title="Table 1")
    assert text == "Table 1\n" + GOLDEN_TABLE_1

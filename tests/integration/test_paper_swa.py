"""Integration replay of the paper's SWA example (Section 3.5).

Tables 9–11, Figures 11–12.  Documented facts asserted (deterministic
tie-breaking throughout — this is the point of the example):

* original mapping: BI trace x, 0, 0, 1/3, 2/3; heuristics MCT x4 then
  MET; completion times m1 = 6, m2 = 5, m3 = 5; makespan machine m1;
* first iterative mapping: BI trace x, 0, 1/2, 4/13; heuristic trace
  MCT, MCT, MET, MCT; completion times m2 = 4, m3 = 6.5;
* t2 and t3 keep their machines, t4 moves because t3's allocation
  leaves a different balance index; makespan increases 6 -> 6.5.
"""

import math

import pytest

from repro.core.iterative import IterativeScheduler
from repro.core.validation import validate_iterative_result
from repro.etc.witness import (
    SWA_EXAMPLE_HIGH_THRESHOLD,
    SWA_EXAMPLE_LOW_THRESHOLD,
    swa_example_etc,
)
from repro.heuristics import SwitchingAlgorithm


@pytest.fixture
def etc():
    return swa_example_etc()


@pytest.fixture
def swa():
    return SwitchingAlgorithm(
        low=SWA_EXAMPLE_LOW_THRESHOLD, high=SWA_EXAMPLE_HIGH_THRESHOLD
    )


class TestOriginalMapping:
    def test_completion_times(self, etc, swa):
        mapping = swa.map_tasks(etc)
        assert mapping.machine_finish_times() == {"m1": 6.0, "m2": 5.0, "m3": 5.0}
        assert mapping.makespan_machine() == "m1"

    def test_bi_trace(self, etc, swa):
        swa.map_tasks(etc)
        bis = [s.bi for s in swa.last_trace]
        assert math.isnan(bis[0])
        assert bis[1:] == pytest.approx([0.0, 0.0, 1 / 3, 2 / 3])

    def test_heuristic_trace(self, etc, swa):
        swa.map_tasks(etc)
        assert [s.heuristic for s in swa.last_trace] == [
            "mct", "mct", "mct", "mct", "met",
        ]

    def test_assignments(self, etc, swa):
        mapping = swa.map_tasks(etc)
        assert mapping.to_dict() == {
            "t1": "m1", "t2": "m2", "t3": "m3", "t4": "m2", "t5": "m3",
        }


class TestIterativeMapping:
    def test_full_run(self, etc, swa):
        result = IterativeScheduler(swa).run(etc)
        validate_iterative_result(result)
        first = result.iterations[1]
        assert first.finish_times() == {"m2": 4.0, "m3": 6.5}
        assert first.frozen_machine == "m3"
        assert result.makespan_increased()
        assert result.makespans()[:2] == (6.0, 6.5)

    def test_iterative_bi_and_heuristic_trace(self, etc, swa):
        result = IterativeScheduler(swa).run(etc)
        trace = result.iterations[1].trace
        bis = [s.bi for s in trace]
        assert math.isnan(bis[0])
        assert bis[1:] == pytest.approx([0.0, 0.5, 4 / 13])
        assert [s.heuristic for s in trace] == ["mct", "mct", "met", "mct"]

    def test_documented_task_movements(self, etc, swa):
        result = IterativeScheduler(swa).run(etc)
        original = result.original.mapping.to_dict()
        first = result.iterations[1].mapping.to_dict()
        # t2 and t3 stay; t4 moves to m3 via MET; t5 moves to m2 via MCT
        assert first["t2"] == original["t2"] == "m2"
        assert first["t3"] == original["t3"] == "m3"
        assert original["t4"] == "m2" and first["t4"] == "m3"
        assert original["t5"] == "m3" and first["t5"] == "m2"

    def test_increase_happens_under_deterministic_ties(self, etc, swa):
        """No randomness anywhere: SWA increases makespan anyway."""
        assert swa.map_tasks(etc)  # deterministic default breaker
        result = IterativeScheduler(swa).run(etc)
        assert result.makespan_increased()

    def test_low_threshold_interval_is_what_matters(self, etc):
        """Any low threshold in (4/13, high) reproduces the example."""
        for low in (0.32, 0.40, 0.48):
            swa = SwitchingAlgorithm(low=low, high=SWA_EXAMPLE_HIGH_THRESHOLD)
            result = IterativeScheduler(swa).run(etc)
            assert result.iterations[1].finish_times() == {"m2": 4.0, "m3": 6.5}

"""Integration replay of the paper's K-Percent Best example (Section 3.6).

Tables 12–14, Figures 15–16.  Documented facts asserted (k = 70%,
deterministic ties):

* original mapping (subset = best 2 of 3 machines): completion times
  m1 = 6, m2 = 5, m3 = 5.5; makespan machine m1;
* first iterative mapping: with 2 machines the subset shrinks to one
  machine, "forcing the K-percent Best Algorithm to perform like the
  MET heuristic"; completion times m2 = 7, m3 = 3;
* makespan increases 6 -> 7 with deterministic tie-breaking; the new
  makespan machine is m2.
"""

import pytest

from repro.core.iterative import IterativeScheduler
from repro.core.validation import validate_iterative_result
from repro.etc.witness import KPB_EXAMPLE_PERCENT, kpb_example_etc
from repro.heuristics import MET, KPercentBest


@pytest.fixture
def etc():
    return kpb_example_etc()


@pytest.fixture
def kpb():
    return KPercentBest(percent=KPB_EXAMPLE_PERCENT)


class TestOriginalMapping:
    def test_completion_times(self, etc, kpb):
        mapping = kpb.map_tasks(etc)
        assert mapping.machine_finish_times() == {"m1": 6.0, "m2": 5.0, "m3": 5.5}
        assert mapping.makespan_machine() == "m1"

    def test_subsets_have_two_machines(self, etc, kpb):
        kpb.map_tasks(etc)
        assert all(len(step.subset) == 2 for step in kpb.last_trace)

    def test_assignments(self, etc, kpb):
        mapping = kpb.map_tasks(etc)
        assert mapping.to_dict() == {
            "t1": "m1", "t2": "m2", "t3": "m3", "t4": "m2", "t5": "m3",
        }


class TestIterativeMapping:
    def test_full_run(self, etc, kpb):
        result = IterativeScheduler(kpb).run(etc)
        validate_iterative_result(result)
        first = result.iterations[1]
        assert first.finish_times() == {"m2": 7.0, "m3": 3.0}
        assert first.frozen_machine == "m2"
        assert result.makespans()[:2] == (6.0, 7.0)
        assert result.makespan_increased()

    def test_subset_shrinks_to_met(self, etc, kpb):
        """With 2 machines and k=70% the subset is a single machine, so
        the first iterative mapping must equal MET's mapping."""
        sub = etc.without_machine("m1", ["t1"])
        kpb_mapping = kpb.map_tasks(sub)
        met_mapping = MET().map_tasks(sub)
        assert kpb_mapping.to_dict() == met_mapping.to_dict()
        kpb.map_tasks(sub)
        assert all(len(step.subset) == 1 for step in kpb.last_trace)

    def test_increase_happens_under_deterministic_ties(self, etc, kpb):
        result = IterativeScheduler(kpb).run(etc)
        assert result.makespan_increased()
        # final finishing times per the paper's prose
        assert result.final_finish_times["m1"] == 6.0
        assert result.final_finish_times["m2"] == 7.0
        assert result.final_finish_times["m3"] == 3.0

    def test_k100_restores_invariance_on_this_matrix(self, etc):
        """The increase is caused by the subset shrink: with k = 100%
        (KPB == MCT) the same matrix is iteration-invariant."""
        result = IterativeScheduler(KPercentBest(percent=100.0)).run(etc)
        assert not result.makespan_increased()

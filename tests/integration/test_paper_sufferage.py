"""Integration replay of the paper's Sufferage example (Section 3.7).

Tables 15–17, Figures 18–19.  Documented facts asserted (deterministic
tie-breaking; the paper stresses the Sufferage counterexample "is
considerably more complex" than SWA's/KPB's):

* original mapping completion times: m1 = 10, m2 = 9.5, m3 = 9.5;
  makespan machine m1; the mapping takes multiple sufferage passes;
* first iterative mapping completion times: m2 = 10.5, m3 = 8.5 — the
  makespan increases from 10 to 10.5; new makespan machine m2.
"""

import pytest

from repro.core.iterative import IterativeScheduler
from repro.core.validation import validate_iterative_result
from repro.etc.witness import sufferage_example_etc
from repro.heuristics import Sufferage


@pytest.fixture
def etc():
    return sufferage_example_etc()


class TestOriginalMapping:
    def test_completion_times(self, etc):
        mapping = Sufferage().map_tasks(etc)
        assert mapping.machine_finish_times() == {
            "m1": 10.0,
            "m2": 9.5,
            "m3": 9.5,
        }
        assert mapping.makespan_machine() == "m1"

    def test_multiple_passes_with_contests(self, etc):
        s = Sufferage()
        s.map_tasks(etc)
        assert len(s.last_trace) >= 4  # Table 16 shows a 6-pass run
        outcomes = {d.outcome for p in s.last_trace for d in p.decisions}
        # the example exercises the full contest machinery
        assert "displaced" in outcomes or "rejected" in outcomes


class TestIterativeMapping:
    def test_full_run(self, etc):
        result = IterativeScheduler(Sufferage()).run(etc)
        validate_iterative_result(result)
        first = result.iterations[1]
        assert first.finish_times() == {"m2": 10.5, "m3": 8.5}
        assert first.frozen_machine == "m2"
        assert result.makespans()[:2] == (10.0, 10.5)
        assert result.makespan_increased()

    def test_final_finish_times_match_prose(self, etc):
        result = IterativeScheduler(Sufferage()).run(etc)
        assert result.final_finish_times["m1"] == 10.0
        assert result.final_finish_times["m2"] == 10.5
        assert result.final_finish_times["m3"] == 8.5

    def test_mapping_actually_changes(self, etc):
        result = IterativeScheduler(Sufferage()).run(etc)
        assert result.mapping_changed()
        original = result.original.mapping.to_dict()
        first = result.iterations[1].mapping.to_dict()
        moved = [t for t in first if first[t] != original[t]]
        assert moved, "the increase must come from re-mapped tasks"

    def test_increase_is_deterministic(self, etc):
        """Replaying twice gives the identical (increased) outcome —
        the phenomenon does not depend on randomness."""
        r1 = IterativeScheduler(Sufferage()).run(etc)
        r2 = IterativeScheduler(Sufferage()).run(etc)
        assert r1.final_finish_times == r2.final_finish_times

    def test_machine_m3_improves_m2_worsens(self, etc):
        """The paper's point: some machines improve (m3: 9.5 -> 8.5),
        but others get worse (m2: 9.5 -> 10.5) — no guarantee."""
        result = IterativeScheduler(Sufferage()).run(etc)
        improvements = result.improvements()
        assert improvements["m3"] == pytest.approx(1.0)
        assert improvements["m2"] == pytest.approx(-1.0)
        assert improvements["m1"] == pytest.approx(0.0)

"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings as hypothesis_settings
from hypothesis import strategies as st

from repro.etc import (
    ETCMatrix,
    kpb_example_etc,
    mct_met_example_etc,
    minmin_example_etc,
    sufferage_example_etc,
    swa_example_etc,
)

# ----------------------------------------------------------------------
# Hypothesis example budgets.
#
# The default job runs the property batteries with a bounded budget so
# `make test` stays fast; `make test-deep` selects the ``deep`` profile
# via REPRO_HYPOTHESIS_PROFILE for a nightly-style deeper sweep.  Tests
# that want a profile-scaled budget use BATCH_MAX_EXAMPLES in their
# explicit ``@settings`` (explicit settings override the profile).
# ----------------------------------------------------------------------
HYPOTHESIS_PROFILE = os.environ.get("REPRO_HYPOTHESIS_PROFILE", "default")
hypothesis_settings.register_profile("default", deadline=None)
hypothesis_settings.register_profile("deep", deadline=None, max_examples=200)
hypothesis_settings.load_profile(HYPOTHESIS_PROFILE)

#: Per-test example budget for the batch-vs-loop battery (18 heuristic ×
#: backend combinations make even a small per-test budget a large sweep).
BATCH_MAX_EXAMPLES = 60 if HYPOTHESIS_PROFILE == "deep" else 8


@st.composite
def stacked_batches(draw):
    """A same-shape :class:`~repro.etc.ETCBatch` plus a ready-time spec.

    Deliberately adversarial for batch-vs-loop identity: an integer-grid
    mode makes tolerance ties the norm, instances and ETC rows are
    sometimes duplicated verbatim (maximal cross-batch and per-row tie
    pressure), shapes include the degenerate corners (batch of 1, one
    task, one machine, tasks < machines), and the ready times cycle
    through ``None`` / one shared vector / a per-instance ``(B, M)``
    array.
    """
    from repro.etc import ETCBatch

    size = draw(st.integers(1, 4))
    num_tasks = draw(st.integers(1, 6))
    num_machines = draw(st.integers(1, 5))
    if draw(st.booleans()):
        cell = st.integers(1, 4).map(float)
    else:
        cell = st.floats(0.5, 50.0, allow_nan=False, allow_infinity=False)
    row = st.lists(cell, min_size=num_machines, max_size=num_machines)

    matrices: list[ETCMatrix] = []
    for index in range(size):
        if index and draw(st.integers(0, 3)) == 0:
            matrices.append(matrices[draw(st.integers(0, index - 1))])
            continue
        values = draw(st.lists(row, min_size=num_tasks, max_size=num_tasks))
        if num_tasks > 1 and draw(st.integers(0, 2)) == 0:
            src = draw(st.integers(0, num_tasks - 1))
            dst = draw(st.integers(0, num_tasks - 1))
            values[dst] = list(values[src])
        matrices.append(ETCMatrix(values))
    batch = ETCBatch.from_matrices(matrices)

    ready_cell = st.floats(0.0, 20.0, allow_nan=False, allow_infinity=False)
    mode = draw(st.sampled_from(["none", "shared", "per-instance"]))
    if mode == "none":
        ready = None
    elif mode == "shared":
        ready = draw(
            st.lists(ready_cell, min_size=num_machines, max_size=num_machines)
        )
    else:
        ready = np.array(
            draw(
                st.lists(
                    st.lists(
                        ready_cell, min_size=num_machines, max_size=num_machines
                    ),
                    min_size=size,
                    max_size=size,
                )
            )
        )
    return batch, ready


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture
def tiny_etc() -> ETCMatrix:
    """2 tasks x 2 machines with no ties anywhere."""
    return ETCMatrix([[1.0, 4.0], [3.0, 2.0]], tasks=("a", "b"), machines=("x", "y"))


@pytest.fixture
def square_etc() -> ETCMatrix:
    """4x4 with distinct values; default labels t0..t3 / m0..m3."""
    return ETCMatrix(
        [
            [1.0, 2.0, 3.0, 4.0],
            [8.0, 7.0, 6.0, 5.0],
            [9.0, 12.0, 10.0, 11.0],
            [16.0, 13.0, 15.0, 14.0],
        ]
    )


@pytest.fixture
def minmin_etc() -> ETCMatrix:
    return minmin_example_etc()


@pytest.fixture
def mct_met_etc() -> ETCMatrix:
    return mct_met_example_etc()


@pytest.fixture
def swa_etc() -> ETCMatrix:
    return swa_example_etc()


@pytest.fixture
def kpb_etc() -> ETCMatrix:
    return kpb_example_etc()


@pytest.fixture
def sufferage_etc() -> ETCMatrix:
    return sufferage_example_etc()

"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.etc import (
    ETCMatrix,
    kpb_example_etc,
    mct_met_example_etc,
    minmin_example_etc,
    sufferage_example_etc,
    swa_example_etc,
)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture
def tiny_etc() -> ETCMatrix:
    """2 tasks x 2 machines with no ties anywhere."""
    return ETCMatrix([[1.0, 4.0], [3.0, 2.0]], tasks=("a", "b"), machines=("x", "y"))


@pytest.fixture
def square_etc() -> ETCMatrix:
    """4x4 with distinct values; default labels t0..t3 / m0..m3."""
    return ETCMatrix(
        [
            [1.0, 2.0, 3.0, 4.0],
            [8.0, 7.0, 6.0, 5.0],
            [9.0, 12.0, 10.0, 11.0],
            [16.0, 13.0, 15.0, 14.0],
        ]
    )


@pytest.fixture
def minmin_etc() -> ETCMatrix:
    return minmin_example_etc()


@pytest.fixture
def mct_met_etc() -> ETCMatrix:
    return mct_met_example_etc()


@pytest.fixture
def swa_etc() -> ETCMatrix:
    return swa_example_etc()


@pytest.fixture
def kpb_etc() -> ETCMatrix:
    return kpb_example_etc()


@pytest.fixture
def sufferage_etc() -> ETCMatrix:
    return sufferage_example_etc()

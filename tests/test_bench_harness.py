"""Tests for the benchmark-regression harness (repro.bench + CLI)."""

import copy
import json

import pytest

from repro.bench import (
    SCHEMA,
    WORKLOADS,
    compare_reports,
    format_report,
    load_report,
    run_bench,
    write_report,
)
from repro.cli import main
from repro.exceptions import ConfigurationError

FAST = ("mct-512x32",)


@pytest.fixture(scope="module")
def smoke_report():
    return run_bench(smoke=True, repeats=1, with_reference=True, only=FAST)


class TestRunBench:
    def test_report_shape(self, smoke_report):
        assert smoke_report["schema"] == SCHEMA
        assert smoke_report["smoke"] is True
        entry = smoke_report["results"]["mct-512x32"]
        assert entry["best_s"] > 0
        assert entry["median_s"] >= entry["best_s"]
        assert len(entry["samples"]) == 1
        assert entry["reference_best_s"] > 0
        assert entry["speedup"] == pytest.approx(
            entry["reference_best_s"] / entry["best_s"]
        )

    def test_no_reference_omits_speedup(self):
        report = run_bench(smoke=True, repeats=1, with_reference=False, only=FAST)
        entry = report["results"]["mct-512x32"]
        assert "speedup" not in entry
        assert "reference_best_s" not in entry

    def test_workload_registry_covers_paper_heuristics(self):
        names = {w.name for w in WORKLOADS}
        for fragment in ("minmin", "mct", "sufferage", "kpb", "iterative"):
            assert any(fragment in n for n in names), fragment

    def test_batched_greedy_workload_registered(self):
        assert "batched-greedy" in {w.name for w in WORKLOADS}

    def test_batched_greedy_smoke_matches_looped_reference(self):
        report = run_bench(
            smoke=True, repeats=1, with_reference=True, only=("batched-greedy",)
        )
        entry = report["results"]["batched-greedy"]
        assert entry["best_s"] > 0
        assert entry["reference_best_s"] > 0

    def test_rejects_bad_batch_size(self):
        with pytest.raises(ConfigurationError):
            run_bench(smoke=True, repeats=1, only=FAST, batch_size=0)

    def test_rejects_unknown_workload(self):
        with pytest.raises(ConfigurationError):
            run_bench(smoke=True, repeats=1, only=("no-such-workload",))

    def test_rejects_bad_repeats(self):
        with pytest.raises(ConfigurationError):
            run_bench(smoke=True, repeats=0, only=FAST)


class TestReportIO:
    def test_round_trip(self, smoke_report, tmp_path):
        path = tmp_path / "bench.json"
        write_report(smoke_report, path)
        assert load_report(path) == smoke_report
        # Deterministic serialisation: sorted keys, trailing newline.
        text = path.read_text()
        assert text.endswith("\n")
        assert json.loads(text) == smoke_report

    def test_load_rejects_foreign_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "other/9", "results": {}}))
        with pytest.raises(ConfigurationError):
            load_report(path)

    def test_format_report_mentions_workloads(self, smoke_report):
        text = format_report(smoke_report)
        assert "mct-512x32" in text


class TestCompareReports:
    def test_no_regression_against_self(self, smoke_report):
        assert compare_reports(smoke_report, smoke_report, tolerance=0.5) == []

    def test_detects_slowdown(self, smoke_report):
        slow = copy.deepcopy(smoke_report)
        entry = slow["results"]["mct-512x32"]
        entry["best_s"] = entry["best_s"] * 10.0
        regressions = compare_reports(slow, smoke_report, tolerance=0.5)
        assert len(regressions) == 1
        assert "mct-512x32" in regressions[0]

    def test_missing_workload_is_a_regression(self, smoke_report):
        empty = copy.deepcopy(smoke_report)
        empty["results"] = {}
        regressions = compare_reports(empty, smoke_report, tolerance=0.5)
        assert len(regressions) == 1

    def test_refuses_smoke_mismatch(self, smoke_report):
        full = copy.deepcopy(smoke_report)
        full["smoke"] = False
        with pytest.raises(ConfigurationError):
            compare_reports(full, smoke_report, tolerance=0.5)

    def test_rejects_negative_tolerance(self, smoke_report):
        with pytest.raises(ConfigurationError):
            compare_reports(smoke_report, smoke_report, tolerance=-0.1)


class TestBenchCLI:
    BASE = ["bench", "--smoke", "--repeats", "1", "--no-reference",
            "--workloads", "mct-512x32"]

    def test_writes_report_and_exits_zero(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert main(self.BASE + ["-o", str(out)]) == 0
        report = load_report(out)
        assert "mct-512x32" in report["results"]
        assert "mct-512x32" in capsys.readouterr().out

    def test_baseline_pass_and_regression_exit_codes(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert main(self.BASE + ["-o", str(baseline)]) == 0
        # Comparing a fresh run against itself (50% tolerance) passes.
        assert main(self.BASE + ["--baseline", str(baseline)]) == 0
        assert "no regressions" in capsys.readouterr().out
        # An absurdly fast fabricated baseline must trip the gate.
        report = load_report(baseline)
        report["results"]["mct-512x32"]["best_s"] = 1e-12
        write_report(report, baseline)
        assert main(self.BASE + ["--baseline", str(baseline)]) == 1
        assert "REGRESSION" in capsys.readouterr().err

    def test_list_prints_every_workload(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "batched-greedy" in out
        for workload in WORKLOADS:
            assert workload.name in out

    def test_backend_flag_accepted(self, tmp_path):
        out = tmp_path / "bench.json"
        assert main(
            ["bench", "--smoke", "--repeats", "1", "--no-reference",
             "--workloads", "batched-greedy", "--backend", "batched",
             "--batch-size", "4", "-o", str(out)]
        ) == 0
        assert "batched-greedy" in load_report(out)["results"]
"""Repository-consistency tests: documentation must match reality.

These keep DESIGN.md / EXPERIMENTS.md / README.md honest: every module
and bench file they reference must exist, and the examples they promise
must be runnable scripts.
"""

import re
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


def _read(name: str) -> str:
    return (REPO / name).read_text(encoding="utf-8")


class TestDesignDocument:
    def test_referenced_bench_files_exist(self):
        text = _read("DESIGN.md")
        for match in set(re.findall(r"benchmarks/(test_bench_\w+\.py)", text)):
            assert (REPO / "benchmarks" / match).exists(), match

    def test_referenced_modules_exist(self):
        text = _read("DESIGN.md")
        for match in set(re.findall(r"`repro/([\w/]+\.py)`", text)):
            assert (REPO / "src" / "repro" / match).exists(), match

    def test_paper_identity_check_present(self):
        assert "Paper identity check" in _read("DESIGN.md")

    def test_substitution_table_present(self):
        assert "Substitutions" in _read("DESIGN.md")


class TestExperimentsDocument:
    def test_references_real_benches(self):
        text = _read("EXPERIMENTS.md")
        for match in set(re.findall(r"(test_bench_\w+)\.py", text)):
            assert (REPO / "benchmarks" / f"{match}.py").exists(), match

    def test_every_worked_example_covered(self):
        text = _read("EXPERIMENTS.md")
        for token in ("Min-Min", "MCT", "MET", "SWA", "K-Percent Best",
                      "Sufferage", "Genitor"):
            assert token in text, token


class TestReadme:
    def test_examples_table_matches_directory(self):
        text = _read("README.md")
        for match in set(re.findall(r"examples/(\w+\.py)", text)):
            assert (REPO / "examples" / match).exists(), match

    def test_design_and_experiments_linked(self):
        text = _read("README.md")
        assert "DESIGN.md" in text
        assert "EXPERIMENTS.md" in text

    def test_quickstart_block_executes(self):
        """Extract the first python code block and run it."""
        text = _read("README.md")
        match = re.search(r"```python\n(.*?)```", text, re.DOTALL)
        assert match, "README must contain a python quickstart block"
        code = match.group(1)
        exec_globals: dict = {}
        exec(compile(code, "<README quickstart>", "exec"), exec_globals)


class TestExamplesRunnable:
    @pytest.mark.parametrize(
        "script",
        ["quickstart.py", "production_batch.py", "paper_walkthrough.py",
         "dynamic_cluster.py", "preloaded_cluster.py"],
    )
    def test_example_runs_clean(self, script):
        proc = subprocess.run(
            [sys.executable, str(REPO / "examples" / script)],
            capture_output=True,
            text=True,
            timeout=240,
        )
        assert proc.returncode == 0, proc.stderr[-2000:]
        assert proc.stdout.strip(), "example produced no output"

    def test_every_example_has_main_guard_and_docstring(self):
        for path in (REPO / "examples").glob("*.py"):
            text = path.read_text(encoding="utf-8")
            assert '__name__ == "__main__"' in text, path.name
            assert text.lstrip().startswith(("#!", '"""')), path.name

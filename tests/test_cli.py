"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.etc.io import load_csv, load_json, save_csv
from repro.etc.witness import minmin_example_etc


@pytest.fixture
def etc_file(tmp_path):
    path = tmp_path / "suite.csv"
    save_csv(minmin_example_etc(), path)
    return str(path)


class TestParser:
    def test_requires_subcommand(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_heuristic(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["map", "--etc", "x.csv",
                                       "--heuristic", "quantum"])

    def test_rejects_unknown_heterogeneity(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "--tasks", "3",
                                       "--machines", "2",
                                       "--heterogeneity", "wild"])


class TestGenerate:
    def test_writes_csv(self, tmp_path, capsys):
        out = tmp_path / "etc.csv"
        code = main(["generate", "--tasks", "6", "--machines", "3",
                     "--seed", "1", "-o", str(out)])
        assert code == 0
        etc = load_csv(out)
        assert etc.shape == (6, 3)

    def test_writes_json(self, tmp_path):
        out = tmp_path / "etc.json"
        assert main(["generate", "--tasks", "4", "--machines", "2",
                     "-o", str(out)]) == 0
        assert load_json(out).shape == (4, 2)

    def test_stdout_when_no_output(self, capsys):
        assert main(["generate", "--tasks", "2", "--machines", "2"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("task,")

    def test_seed_reproducible(self, tmp_path):
        a, b = tmp_path / "a.csv", tmp_path / "b.csv"
        main(["generate", "--tasks", "5", "--machines", "3", "--seed", "9",
              "-o", str(a)])
        main(["generate", "--tasks", "5", "--machines", "3", "--seed", "9",
              "-o", str(b)])
        assert a.read_text() == b.read_text()

    def test_cvb_method(self, tmp_path):
        out = tmp_path / "etc.csv"
        assert main(["generate", "--tasks", "4", "--machines", "2",
                     "--method", "cvb", "-o", str(out)]) == 0


class TestMap:
    def test_prints_allocation_and_finish(self, etc_file, capsys):
        assert main(["map", "--etc", etc_file, "--heuristic", "min-min"]) == 0
        out = capsys.readouterr().out
        assert "min-min mapping" in out
        assert "<- makespan" in out

    def test_gantt_flag(self, etc_file, capsys):
        main(["map", "--etc", etc_file, "--gantt"])
        out = capsys.readouterr().out
        assert "|[" in out or "|" in out

    def test_show_etc_flag(self, etc_file, capsys):
        main(["map", "--etc", etc_file, "--show-etc"])
        assert "ETC matrix" in capsys.readouterr().out

    def test_missing_file_is_clean_error(self, capsys):
        assert main(["map", "--etc", "/nope/missing.csv"]) == 1
        assert "error:" in capsys.readouterr().err


class TestIterate:
    def test_overview_and_comparison(self, etc_file, capsys):
        assert main(["iterate", "--etc", etc_file,
                     "--heuristic", "min-min"]) == 0
        out = capsys.readouterr().out
        assert "frozen" in out
        assert "original vs iterative" in out

    def test_warns_on_increase(self, tmp_path, capsys):
        from repro.etc.witness import sufferage_example_etc

        path = tmp_path / "suff.csv"
        save_csv(sufferage_example_etc(), path)
        assert main(["iterate", "--etc", str(path),
                     "--heuristic", "sufferage"]) == 0
        assert "INCREASED" in capsys.readouterr().out

    def test_seeded_flag_suppresses_increase(self, tmp_path, capsys):
        from repro.etc.witness import sufferage_example_etc

        path = tmp_path / "suff.csv"
        save_csv(sufferage_example_etc(), path)
        assert main(["iterate", "--etc", str(path),
                     "--heuristic", "sufferage", "--seeded"]) == 0
        assert "WARNING" not in capsys.readouterr().out


class TestStudyCompareSimulate:
    def test_study_small(self, capsys):
        assert main(["study", "--heuristics", "mct,sufferage",
                     "--tasks", "10", "--machines", "3",
                     "--instances", "3"]) == 0
        out = capsys.readouterr().out
        assert "sufferage" in out and "chg%" in out

    def test_compare_small(self, capsys):
        assert main(["compare", "--heuristics", "min-min,olb",
                     "--tasks", "10", "--machines", "3",
                     "--instances", "3"]) == 0
        out = capsys.readouterr().out
        assert "ETC class" in out

    def test_simulate_immediate(self, capsys):
        assert main(["simulate", "--tasks", "20", "--machines", "3",
                     "--policy", "mct", "--rate", "0.001"]) == 0
        out = capsys.readouterr().out
        assert "makespan" in out and "utilisation" in out

    def test_simulate_batch(self, capsys):
        assert main(["simulate", "--tasks", "15", "--machines", "3",
                     "--policy", "batch-min-min", "--rate", "0.001",
                     "--batch-interval", "100"]) == 0
        assert "tasks executed  : 15" in capsys.readouterr().out

    def test_simulate_unknown_policy(self, capsys):
        assert main(["simulate", "--policy", "wishful"]) == 2


class TestFaultCommands:
    FAULT_ARGS = ["simulate", "--faults", "--tasks", "12", "--machines", "3",
                  "--failures", "2", "--seed", "5"]

    def test_simulate_faults_recovers(self, capsys):
        assert main(self.FAULT_ARGS) == 0
        out = capsys.readouterr().out
        assert "plan signature" in out
        assert "tasks completed     : 12/12" in out

    def test_simulate_faults_remap_policy(self, capsys):
        assert main(self.FAULT_ARGS + ["--recovery", "remap"]) == 0
        assert "recovery policy     : remap" in capsys.readouterr().out

    def test_simulate_faults_ledger_records_plan_signature(
        self, tmp_path, capsys
    ):
        ledger = tmp_path / "ledger.jsonl"
        args = self.FAULT_ARGS + ["--append-ledger", "--ledger", str(ledger)]
        assert main(args) == 0
        assert main(args) == 0
        from repro.obs.ledger import RunLedger

        first, second = RunLedger(ledger).read()
        assert first["command"] == "simulate-faults"
        assert first["extra"]["plan_signature"] == (
            second["extra"]["plan_signature"]
        )
        assert first["metrics"] == second["metrics"]
        assert first["counters"]["sim.failures"] > 0

    def test_study_faults_reports_both_mappings(self, capsys):
        assert main(["study", "--faults", "--heuristics", "min-min",
                     "--tasks", "10", "--machines", "3", "--instances", "2",
                     "--failure-rates", "1e-6,5e-6,1e-5"]) == 0
        out = capsys.readouterr().out
        assert out.count("failure rate") == 3
        assert "min-min/original" in out
        assert "min-min/iterative" in out

    def test_study_faults_bad_rates_is_clean_error(self, capsys):
        assert main(["study", "--faults", "--failure-rates", "fast"]) == 2
        assert "--failure-rates" in capsys.readouterr().err


class TestPaper:
    def test_replays_all_examples(self, capsys):
        assert main(["paper"]) == 0
        out = capsys.readouterr().out
        assert out.count("MAKESPAN INCREASED") == 3  # SWA, KPB, Sufferage
        assert out.count("mapping unchanged") == 3   # Min-Min, MCT, MET


class TestWitness:
    def test_finds_sufferage_witness(self, capsys):
        assert main(["witness", "--heuristic", "sufferage",
                     "--trials", "3000", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "makespan" in out and "peak" in out

    def test_mct_deterministic_returns_3(self, capsys):
        assert main(["witness", "--heuristic", "mct", "--trials", "300"]) == 3
        assert "no makespan-increase witness" in capsys.readouterr().out

    def test_random_ties_with_grid(self, capsys):
        code = main(["witness", "--heuristic", "mct", "--ties", "random",
                     "--grid", "1,2,3", "--tasks", "5", "--trials", "3000"])
        assert code == 0

    def test_writes_witness_file(self, tmp_path, capsys):
        out = tmp_path / "witness.csv"
        assert main(["witness", "--heuristic", "sufferage",
                     "--trials", "3000", "--seed", "1",
                     "-o", str(out)]) == 0
        from repro.etc.io import load_csv

        assert load_csv(out).num_machines == 3


class TestExport:
    def test_writes_csv(self, tmp_path, capsys):
        out = tmp_path / "records.csv"
        assert main(["export", "--heuristics", "mct",
                     "--tasks", "8", "--machines", "3",
                     "--instances", "2", "-o", str(out)]) == 0
        text = out.read_text()
        assert "original_makespan" in text.splitlines()[0]
        assert len(text.splitlines()) == 3  # header + 2 records

    def test_writes_json(self, tmp_path):
        import json

        out = tmp_path / "records.json"
        assert main(["export", "--heuristics", "mct,sufferage",
                     "--tasks", "8", "--machines", "3",
                     "--instances", "2", "-o", str(out)]) == 0
        rows = json.loads(out.read_text())
        assert len(rows) == 4


class TestTrace:
    def test_paper_example_trace(self, capsys):
        assert main(["trace", "--example", "min-min"]) == 0
        out = capsys.readouterr().out
        assert "decision trace" in out
        assert "min-min.decision" in out
        assert "iterative.freeze" in out
        # deterministic ties: no divergence for Min-Min (paper theorem)
        assert "makespans per iteration : 5 -> 4 -> 2" in out
        assert "removal order           : m1 -> m3 -> m2" in out
        assert "decisions" in out  # counters block

    def test_kpb_example_shows_increase(self, capsys):
        assert main(["trace", "--example", "kpb"]) == 0
        out = capsys.readouterr().out
        assert "k-percent-best.decision" in out
        assert "makespan increased      : yes" in out

    def test_etc_file_trace(self, etc_file, capsys):
        assert main(["trace", "--etc", etc_file,
                     "--heuristic", "sufferage"]) == 0
        out = capsys.readouterr().out
        assert "sufferage.decision" in out
        assert "sufferage.pass" in out

    def test_jsonl_export(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        assert main(["trace", "--example", "kpb",
                     "--jsonl", str(out)]) == 0
        from repro.obs import read_jsonl

        records = read_jsonl(out)
        kinds = [r["kind"] for r in records if r["type"] == "event"]
        assert "k-percent-best.decision" in kinds
        assert any(r["type"] == "counter" for r in records)

    def test_needs_exactly_one_source(self, etc_file, capsys):
        assert main(["trace"]) == 2
        assert main(["trace", "--example", "mct", "--etc", etc_file]) == 2

    def test_all_examples_run(self, capsys):
        from repro.cli import TRACE_EXAMPLES

        for example in TRACE_EXAMPLES:
            assert main(["trace", "--example", example]) == 0
        out = capsys.readouterr().out
        assert out.count("decision trace") == len(TRACE_EXAMPLES)


class TestVersion:
    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert f"repro {__version__}" in capsys.readouterr().out


class TestLedgerEndToEnd:
    def _bench(self, ledger):
        return main(["bench", "--smoke", "--repeats", "1",
                     "--workloads", "minmin-512x32", "--no-reference",
                     "--append-ledger", "--ledger", str(ledger)])

    def test_bench_appends_then_obs_inspects(self, tmp_path, capsys):
        ledger = tmp_path / "ledger.jsonl"
        assert self._bench(ledger) == 0
        assert self._bench(ledger) == 0
        assert "ledger: appended run" in capsys.readouterr().out

        assert main(["obs", "tail", "--ledger", str(ledger)]) == 0
        tail = capsys.readouterr().out
        assert len(tail.splitlines()) == 2
        assert "bench" in tail

        assert main(["obs", "summary", "--ledger", str(ledger)]) == 0
        summary = capsys.readouterr().out
        assert "bench: 2 run(s)" in summary
        assert "bench.minmin-512x32.best_s" in summary

        # huge tolerance: the two runs' wall-clock timings legitimately
        # jitter, and this test is about the plumbing, not the verdict
        assert main(["obs", "diff", "-2", "-1", "--tolerance", "10",
                     "--ledger", str(ledger)]) == 0
        diff = capsys.readouterr().out
        assert "bench.minmin-512x32.best_s" in diff

    def test_study_appends_counters(self, tmp_path, capsys):
        ledger = tmp_path / "ledger.jsonl"
        assert main(["study", "--heuristics", "mct", "--tasks", "8",
                     "--machines", "3", "--instances", "2",
                     "--append-ledger", "--ledger", str(ledger)]) == 0
        from repro.obs.ledger import RunLedger

        (record,) = RunLedger(ledger).read()
        assert record["command"] == "study"
        assert record["counters"].get("decisions", 0) > 0
        assert "makespan_increase_rate_mean" in record["metrics"]

    def test_obs_tail_empty_ledger(self, tmp_path, capsys):
        assert main(["obs", "tail", "--ledger",
                     str(tmp_path / "none.jsonl")]) == 0
        assert "empty" in capsys.readouterr().out

    def test_obs_diff_regression_exits_1(self, tmp_path, capsys):
        from repro.obs.ledger import RunLedger, build_record

        ledger = tmp_path / "ledger.jsonl"
        store = RunLedger(ledger)
        store.append(build_record(
            "compare", metrics={"makespan_mean_overall": 100.0},
            timestamp="2026-01-01T00:00:00+00:00"))
        store.append(build_record(
            "compare", metrics={"makespan_mean_overall": 150.0},
            timestamp="2026-01-02T00:00:00+00:00"))
        assert main(["obs", "diff", "-2", "-1",
                     "--ledger", str(ledger)]) == 1
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.err
        assert "makespan_mean_overall" in captured.err

    def test_export_progress_renders_to_stderr(self, tmp_path, capsys):
        out = tmp_path / "records.csv"
        assert main(["export", "--heuristics", "mct", "--tasks", "8",
                     "--machines", "3", "--instances", "2",
                     "--progress", "-o", str(out)]) == 0
        captured = capsys.readouterr()
        assert "cells" in captured.err
        assert "cells" not in out.read_text()  # progress never hits data


class TestIterateChart:
    def test_chart_flag_renders_trajectory(self, tmp_path, capsys):
        from repro.etc.generation import generate_range_based
        from repro.etc.io import save_csv as _save

        path = tmp_path / "big.csv"
        _save(generate_range_based(12, 4, rng=0), path)
        assert main(["iterate", "--etc", str(path),
                     "--heuristic", "sufferage", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "per-iteration makespan" in out
        assert "*" in out


class TestRunGrid:
    def _argv(self, cache, extra=()):
        return ["run-grid", "--heuristics", "min-min,mct",
                "--tasks", "8", "--machines", "3", "--instances", "2",
                "--heterogeneities", "hihi,lolo",
                "--consistencies", "inconsistent",
                "--cache-dir", str(cache), *extra]

    def test_compute_then_resume_hits_cache(self, tmp_path, capsys):
        cache = tmp_path / "cells"
        assert main(self._argv(cache)) == 0
        out = capsys.readouterr().out
        assert "2 cell(s)" in out
        assert "0 cached, 2 computed" in out

        assert main(self._argv(cache, ["--resume"])) == 0
        out = capsys.readouterr().out
        assert "2 cached, 0 computed" in out

    def test_no_cache_with_resume_is_an_error(self, tmp_path, capsys):
        assert main(self._argv(tmp_path / "c",
                               ["--no-cache", "--resume"])) == 2
        assert "--no-cache" in capsys.readouterr().err

    def test_export_output_round_trips(self, tmp_path, capsys):
        cache = tmp_path / "cells"
        out_csv = tmp_path / "records.csv"
        assert main(self._argv(cache, ["-o", str(out_csv)])) == 0
        text = out_csv.read_text()
        assert "min-min" in text and "mct" in text
        capsys.readouterr()

    def test_append_ledger_records_cells_and_histograms(self, tmp_path, capsys):
        from repro.obs.ledger import RunLedger

        cache = tmp_path / "cells"
        ledger = tmp_path / "ledger.jsonl"
        assert main(self._argv(cache, ["--append-ledger",
                                       "--ledger-path", str(ledger)])) == 0
        capsys.readouterr()
        record = RunLedger(ledger).read()[-1]
        assert record["command"] == "run-grid"
        assert record["metrics"]["cells_computed"] == 2
        assert record["counters"]["runner.cells.computed"] == 2
        assert "runner.cell_wall_s" in record["extra"]["histograms"]

    def test_study_and_export_share_the_cell_cache(self, tmp_path, capsys):
        from repro.analysis.runner import CellCache

        cache = tmp_path / "cells"
        common = ["--heuristics", "mct", "--tasks", "8", "--machines", "3",
                  "--instances", "2", "--cache-dir", str(cache)]
        assert main(["study", *common]) == 0
        populated = CellCache(cache).keys()
        assert len(populated) == 1
        out_csv = tmp_path / "records.csv"
        assert main(["export", *common, "--resume", "-o", str(out_csv)]) == 0
        assert CellCache(cache).keys() == populated  # reused, not re-added
        capsys.readouterr()


class TestRunGridTelemetry:
    def _argv(self, tmp_path, extra=()):
        return ["run-grid", "--heuristics", "min-min,mct",
                "--tasks", "8", "--machines", "3", "--instances", "2",
                "--heterogeneities", "hihi,lolo",
                "--consistencies", "inconsistent",
                "--cache-dir", str(tmp_path / "cells"), *extra]

    def test_trace_out_writes_merged_span_tree(self, tmp_path, capsys):
        from repro.obs import build_span_tree, read_jsonl, spans_from_records

        trace = tmp_path / "trace.jsonl"
        assert main(self._argv(tmp_path, ["--trace-out", str(trace)])) == 0
        out = capsys.readouterr().out
        assert "trace: wrote" in out
        assert "repro obs timeline" in out
        spans = spans_from_records(read_jsonl(trace))
        assert spans
        (root,) = build_span_tree(spans)
        assert root.kind == "runner.grid"
        assert len({s.trace_id for s in spans}) == 1

    def test_timeseries_writes_log_and_prints_summary(self, tmp_path, capsys):
        from repro.obs import read_timeseries

        ts = tmp_path / "ts.jsonl"
        assert main(self._argv(tmp_path, ["--timeseries", str(ts),
                                          "--sample-interval", "0"])) == 0
        out = capsys.readouterr().out
        assert "tasks scheduled/s" in out
        header, samples = read_timeseries(ts)
        assert header["label"] == "run-grid"
        assert samples[-1]["metrics"]["cells_done"] == 2

    def test_ledger_carries_throughput_and_timeseries(self, tmp_path, capsys):
        from repro.obs.ledger import RunLedger

        ledger = tmp_path / "ledger.jsonl"
        ts = tmp_path / "ts.jsonl"
        assert main(self._argv(tmp_path, [
            "--timeseries", str(ts), "--append-ledger",
            "--ledger-path", str(ledger)])) == 0
        capsys.readouterr()
        record = RunLedger(ledger).read()[-1]
        # 2 cells x (2 heuristics x 2 instances) records x 8 tasks each
        assert record["metrics"]["tasks_scheduled"] == 8 * 8
        assert record["metrics"]["tasks_scheduled_per_s"] > 0
        assert record["extra"]["timeseries"]["tasks_scheduled"] == 8 * 8

    def test_timeline_renders_cli_trace(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        html = tmp_path / "trace.html"
        assert main(self._argv(tmp_path, ["--trace-out", str(trace)])) == 0
        capsys.readouterr()
        assert main(["obs", "timeline", str(trace),
                     "--html", str(html)]) == 0
        out = capsys.readouterr().out
        assert "runner.grid" in out
        assert "span(s)" in out
        assert html.read_text().startswith("<!DOCTYPE html>")

    def test_timeline_rejects_spanless_trace(self, tmp_path, capsys):
        assert main(["trace", "--example", "mct",
                     "--jsonl", str(tmp_path / "t.jsonl")]) == 0
        capsys.readouterr()
        # a heuristic trace has spans; an empty file does not
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["obs", "timeline", str(empty)]) == 1
        assert "no span records" in capsys.readouterr().err


class TestObsTailFollow:
    def test_follow_emits_only_new_records(self, tmp_path, capsys, monkeypatch):
        import repro.obs.ledger as ledger_mod
        from repro.obs.ledger import RunLedger, build_record

        path = tmp_path / "ledger.jsonl"
        store = RunLedger(path)
        store.append(build_record(
            "compare", metrics={"makespan_mean_overall": 1.0},
            timestamp="2026-01-01T00:00:00+00:00"))

        def fake_follow(ledger, emit, *, interval_s):
            # first poll re-emits everything, then one new record lands
            for record in ledger.read():
                emit(record)
            new = ledger.append(build_record(
                "study", metrics={"makespan_mean": 2.0},
                timestamp="2026-01-02T00:00:00+00:00"))
            emit(new)
            raise KeyboardInterrupt

        monkeypatch.setattr(ledger_mod, "follow_records", fake_follow)
        assert main(["obs", "tail", "--follow", "--ledger", str(path)]) == 0
        out = capsys.readouterr().out
        # the pre-existing record prints once (the tail), not twice
        assert out.count("compare") == 1
        assert out.count("study") == 1

    def test_follow_flag_parses_with_interval(self):
        args = build_parser().parse_args(
            ["obs", "tail", "-f", "--interval", "0.5"])
        assert args.follow
        assert args.interval == 0.5


class TestObsSummaryPercentiles:
    def test_summary_prints_percentile_block(self, tmp_path, capsys):
        cache = tmp_path / "cells"
        ledger = tmp_path / "ledger.jsonl"
        assert main(["run-grid", "--heuristics", "mct", "--tasks", "8",
                     "--machines", "3", "--instances", "2",
                     "--cache-dir", str(cache), "--append-ledger",
                     "--ledger-path", str(ledger)]) == 0
        capsys.readouterr()
        assert main(["obs", "summary", "--ledger", str(ledger)]) == 0
        out = capsys.readouterr().out
        assert "histogram percentiles" in out
        assert "runner.cell_wall_s" in out
        assert "p50=" in out and "p95=" in out and "max=" in out


class TestLedgerPathAlias:
    def test_alias_accepted_by_obs_family(self, tmp_path, capsys):
        from repro.obs.ledger import RunLedger, build_record

        ledger = tmp_path / "ledger.jsonl"
        RunLedger(ledger).append(
            build_record("compare", metrics={"makespan_mean_overall": 1.0},
                         timestamp="2026-01-01T00:00:00+00:00"))
        assert main(["obs", "tail", "--ledger-path", str(ledger)]) == 0
        assert "compare" in capsys.readouterr().out

    def test_alias_and_legacy_flag_are_the_same_destination(self):
        parser = build_parser()
        via_alias = parser.parse_args(["obs", "tail", "--ledger-path", "x"])
        via_legacy = parser.parse_args(["obs", "tail", "--ledger", "x"])
        assert via_alias.ledger == via_legacy.ledger == "x"

    def test_top_level_epilog_documents_the_flag(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        helptext = capsys.readouterr().out
        assert "--ledger-path" in helptext
        assert ".repro/cells" in helptext


class TestRunRolling:
    def _argv(self, extra=()):
        return ["run-rolling", "--tasks", "200", "--machines", "4",
                "--chunk-tasks", "32", "--batch-target", "16",
                "--seed", "5", *extra]

    def test_small_run_accounts_for_every_task(self, capsys):
        assert main(self._argv()) == 0
        out = capsys.readouterr().out
        assert "tasks accounted   : 200/200" in out
        assert "tasks scheduled/s" in out

    def test_faulty_run_with_ledger_and_timeseries(self, tmp_path, capsys):
        from repro.obs.ledger import RunLedger
        from repro.obs.timeseries import read_timeseries

        ledger = tmp_path / "ledger.jsonl"
        series = tmp_path / "rolling.jsonl"
        assert main(self._argv(
            ["--faults", "--failures", "3", "--recovery", "remap",
             "--timeseries", str(series), "--sample-interval", "0",
             "--append-ledger", "--ledger-path", str(ledger)])) == 0
        out = capsys.readouterr().out
        assert "fault plan        :" in out
        assert "tasks accounted   : 200/200" in out

        record = RunLedger(ledger).read()[-1]
        assert record["command"] == "run-rolling"
        metrics = record["metrics"]
        assert metrics["tasks_scheduled_per_s"] > 0
        assert (metrics["tasks_completed"] + metrics["tasks_dropped"]) == 200
        assert record["extra"]["plan_signature"]
        assert record["extra"]["timeseries"]["tasks_scheduled"] == \
            metrics["tasks_scheduled"]

        header, samples = read_timeseries(series)
        assert header["label"] == "run-rolling"
        assert samples[-1]["metrics"]["tasks_arrived"] == 200

    def test_store_backed_run_reuses_entry(self, tmp_path, capsys):
        store = tmp_path / "store"
        argv = self._argv(["--store", str(store)])
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "store: published entry" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "store: reusing entry" in second
        # Identical seeds and horizon: the served run is identical too.
        line = next(l for l in first.splitlines() if "makespan" in l)
        assert line in second

    def test_bursty_arrivals_and_trace_out(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        assert main(self._argv(["--arrival", "bursty",
                                "--trace-out", str(trace)])) == 0
        assert trace.exists()
        capsys.readouterr()
        assert main(["obs", "timeline", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "rolling.run" in out
        assert "rolling.horizon" in out

    def test_trace_arrival_requires_file(self, capsys):
        assert main(self._argv(["--arrival", "trace"])) == 2
        assert "--arrival-trace" in capsys.readouterr().err


class TestServeParsers:
    """Parser wiring for serve/serve-load (the end-to-end subprocess
    sessions live in tools/smoke_serve.py, run by `make smoke-serve`)."""

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8351
        assert args.workers == 4
        assert args.max_pending == 64
        assert args.cache_dir == ".repro/responses"
        assert args.no_cache is False
        assert args.func.__name__ == "cmd_serve"

    def test_serve_flags(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--no-cache", "--workers", "2",
             "--trace-out", "t.jsonl", "--ledger-every", "5"]
        )
        assert args.port == 0
        assert args.no_cache is True
        assert args.workers == 2
        assert args.trace_out == "t.jsonl"
        assert args.ledger_every == 5.0

    def test_serve_load_defaults(self):
        args = build_parser().parse_args(["serve-load"])
        assert args.url == "http://127.0.0.1:8351/v1/schedule"
        assert args.requests == 100
        assert args.concurrency == 8
        assert args.heuristic == "min-min"
        assert args.func.__name__ == "cmd_serve_load"

    def test_serve_load_rejects_unknown_heuristic(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve-load", "--heuristic", "quantum"])

"""Tests for tools/check_docs.py (docs consistency checker)."""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_docs  # noqa: E402


def _write(root: Path, relpath: str, text: str) -> Path:
    path = root / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text, encoding="utf-8")
    return path


class TestLinks:
    def test_dead_relative_link_reported(self, tmp_path):
        _write(tmp_path, "docs/index.md", "[gone](missing.md)\n")
        problems = check_docs.check_links(
            tmp_path, check_docs.doc_files(tmp_path)
        )
        assert problems == ["docs/index.md: dead link -> missing.md"]

    def test_live_external_and_fragment_links_pass(self, tmp_path):
        _write(tmp_path, "docs/other.md", "# other\n")
        _write(
            tmp_path,
            "docs/index.md",
            "[ok](other.md) [web](https://example.com) [frag](#section) "
            "[sub](other.md#part)\n",
        )
        assert check_docs.check_links(
            tmp_path, check_docs.doc_files(tmp_path)
        ) == []

    def test_image_links_are_ignored(self, tmp_path):
        _write(tmp_path, "docs/index.md", "![shot](missing.png)\n")
        assert check_docs.check_links(
            tmp_path, check_docs.doc_files(tmp_path)
        ) == []


class TestModuleReferences:
    def test_stale_module_reported(self, tmp_path):
        _write(tmp_path, "src/repro/__init__.py", "")
        _write(tmp_path, "src/repro/real.py", "x = 1\n")
        _write(
            tmp_path,
            "docs/index.md",
            "see repro.real and repro.not_a_module\n",
        )
        problems = check_docs.check_module_references(
            tmp_path, check_docs.doc_files(tmp_path)
        )
        assert problems == [
            "docs/index.md: stale reference repro.not_a_module"
        ]

    def test_real_repo_references_resolve(self):
        files = check_docs.doc_files(REPO_ROOT)
        assert files  # docs/ exists and is covered
        assert check_docs.check_module_references(REPO_ROOT, files) == []

    def test_attribute_references_checked_via_import(self):
        assert check_docs._resolve_module(REPO_ROOT, "analysis.runner.run_grid")
        assert not check_docs._resolve_module(
            REPO_ROOT, "analysis.runner.run_gird"
        )


class TestIndexReachability:
    def test_unreachable_page_reported(self, tmp_path):
        _write(tmp_path, "docs/index.md", "[a](a.md)\n")
        _write(tmp_path, "docs/a.md", "# a\n")
        _write(tmp_path, "docs/orphan.md", "# nobody links here\n")
        assert check_docs.check_index_reachability(tmp_path) == [
            "docs/orphan.md: not reachable from docs/index.md"
        ]

    def test_transitive_reachability(self, tmp_path):
        _write(tmp_path, "docs/index.md", "[a](a.md)\n")
        _write(tmp_path, "docs/a.md", "[b](b.md)\n")
        _write(tmp_path, "docs/b.md", "# b\n")
        assert check_docs.check_index_reachability(tmp_path) == []

    def test_missing_index_reported(self, tmp_path):
        _write(tmp_path, "docs/a.md", "# a\n")
        assert check_docs.check_index_reachability(tmp_path) == [
            "docs/index.md is missing"
        ]


class TestCliSubcommands:
    COMMANDS = {
        "map": frozenset(),
        "serve": frozenset(),
        "obs": frozenset({"tail", "timeline"}),
    }

    def test_unknown_subcommand_reported(self, tmp_path):
        _write(
            tmp_path,
            "docs/index.md",
            "run `repro nosuch --help` or python -m repro map\n",
        )
        problems = check_docs.check_cli_subcommands(
            tmp_path, check_docs.doc_files(tmp_path), self.COMMANDS
        )
        assert problems == [
            "docs/index.md: unknown CLI subcommand 'repro nosuch'"
        ]

    def test_nested_subcommand_checked(self, tmp_path):
        _write(
            tmp_path,
            "docs/index.md",
            "$ repro obs timeline trace.jsonl\n$ repro obs nosub x\n",
        )
        problems = check_docs.check_cli_subcommands(
            tmp_path, check_docs.doc_files(tmp_path), self.COMMANDS
        )
        assert problems == [
            "docs/index.md: unknown CLI subcommand 'repro obs nosub'"
        ]

    def test_non_command_contexts_ignored(self, tmp_path):
        _write(
            tmp_path,
            "docs/index.md",
            # Dotted module references, the bare CLI name, option-only
            # invocations and prose all stay out of scope.
            "repro.serve.models has the schema; the `repro` CLI; "
            "python -m repro --help; import repro nosuch\n",
        )
        assert check_docs.check_cli_subcommands(
            tmp_path, check_docs.doc_files(tmp_path), self.COMMANDS
        ) == []

    def test_fabricated_repo_without_cli_skips(self, tmp_path):
        _write(tmp_path, "docs/index.md", "python -m repro nosuch\n")
        assert check_docs.cli_subcommands(tmp_path) is None
        assert check_docs.check_cli_subcommands(
            tmp_path, check_docs.doc_files(tmp_path)
        ) == []

    def test_real_parser_map_includes_serve(self):
        commands = check_docs.cli_subcommands(REPO_ROOT)
        assert commands is not None
        for name in ("map", "iterate", "study", "run-grid", "bench",
                     "run-rolling", "serve", "serve-load"):
            assert name in commands, name
        assert "timeline" in commands["obs"]

    def test_real_repo_cli_mentions_resolve(self):
        files = check_docs.doc_files(REPO_ROOT)
        assert check_docs.check_cli_subcommands(REPO_ROOT, files) == []


class TestEndToEnd:
    def test_real_repo_is_consistent(self):
        assert check_docs.run_checks(REPO_ROOT) == []

    def test_main_exit_codes(self, tmp_path, capsys):
        _write(tmp_path, "docs/index.md", "[gone](missing.md)\n")
        assert check_docs.main([str(tmp_path)]) == 1
        assert "dead link" in capsys.readouterr().err

        _write(tmp_path, "docs/index.md", "all good\n")
        assert check_docs.main([str(tmp_path)]) == 0
        assert "OK" in capsys.readouterr().out

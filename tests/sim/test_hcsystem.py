"""Unit tests for the static HC system simulator."""

import pytest

from repro.core.schedule import Mapping
from repro.etc.generation import generate_range_based
from repro.etc.matrix import ETCMatrix
from repro.exceptions import SimulationError
from repro.heuristics import get_heuristic, heuristic_names
from repro.sim.hcsystem import HCSystem


class TestStaticExecution:
    def test_measured_matches_analytic_simple(self, tiny_etc):
        m = Mapping(tiny_etc)
        m.assign("a", "x")
        m.assign("b", "x")
        measured = HCSystem(tiny_etc).measured_finish_times(m)
        assert measured == m.machine_finish_times()

    def test_measured_matches_analytic_all_heuristics(self):
        etc = generate_range_based(25, 5, rng=0)
        system = HCSystem(etc)
        for name in heuristic_names():
            kwargs = {"iterations": 30, "rng": 0} if name == "genitor" else {}
            if name == "random":
                kwargs = {"rng": 0}
            mapping = get_heuristic(name, **kwargs).map_tasks(etc)
            measured = system.measured_finish_times(mapping)
            analytic = mapping.machine_finish_times()
            for machine in etc.machines:
                assert measured[machine] == pytest.approx(analytic[machine]), name

    def test_initial_ready_delays_start(self, tiny_etc):
        m = Mapping(tiny_etc, {"x": 4.0})
        m.assign("a", "x")
        trace = HCSystem(tiny_etc, {"x": 4.0}).execute(m)
        record = trace.execution_of("a")
        assert record.start == 4.0
        assert record.finish == 5.0

    def test_execution_order_respects_assignment_order(self, square_etc):
        m = Mapping(square_etc)
        m.assign("t3", "m0")
        m.assign("t0", "m0")
        trace = HCSystem(square_etc).execute(m)
        recs = trace.machine_records("m0")
        assert [r.task for r in recs] == ["t3", "t0"]
        assert recs[1].start == pytest.approx(recs[0].finish)

    def test_no_overlap_on_any_machine(self):
        etc = generate_range_based(40, 4, rng=1)
        mapping = get_heuristic("mct").map_tasks(etc)
        trace = HCSystem(etc).execute(mapping)
        for machine in etc.machines:
            recs = trace.machine_records(machine)
            for prev, cur in zip(recs, recs[1:]):
                assert cur.start >= prev.finish - 1e-9

    def test_partial_mapping_executes_partially(self, square_etc):
        m = Mapping(square_etc)
        m.assign("t0", "m0")
        trace = HCSystem(square_etc).execute(m)
        assert len(trace) == 1

    def test_wrong_etc_rejected(self, tiny_etc, square_etc):
        m = Mapping(square_etc)
        m.assign("t0", "m0")
        with pytest.raises(SimulationError):
            HCSystem(tiny_etc).execute(m)

    def test_idle_machines_report_initial_ready(self):
        etc = ETCMatrix([[1.0, 2.0]])
        m = Mapping(etc, {"m1": 9.0})
        m.assign("t0", "m0")
        measured = HCSystem(etc, {"m1": 9.0}).measured_finish_times(m)
        assert measured == {"m0": 1.0, "m1": 9.0}

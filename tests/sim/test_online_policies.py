"""Focused tests for the on-line policy objects (decision semantics)."""


import numpy as np
import pytest

from repro.core.ties import ScriptedTieBreaker
from repro.etc.matrix import ETCMatrix
from repro.sim.hcsystem import (
    ArrivalWorkload,
    DynamicHCSimulation,
    KPBOnline,
    MCTOnline,
    METOnline,
    OLBOnline,
    SWAOnline,
)


@pytest.fixture
def etc_row():
    return np.array([4.0, 2.0, 6.0])


class TestChooseSemantics:
    def test_mct_uses_expected_free_plus_etc(self, etc_row):
        free = np.array([10.0, 10.0, 0.0])
        # CTs: 14, 12, 6 -> machine 2
        assert MCTOnline().choose(etc_row, free, now=0.0) == 2

    def test_mct_clamps_free_to_now(self, etc_row):
        """A machine whose queue drained in the past is free *now*."""
        free = np.array([0.0, 0.0, 0.0])
        assert MCTOnline().choose(etc_row, free, now=100.0) == 1  # min ETC

    def test_met_ignores_load(self, etc_row):
        free = np.array([1e9, 0.0, 0.0])
        assert METOnline().choose(etc_row, free, now=0.0) == 1

    def test_olb_ignores_etc(self, etc_row):
        free = np.array([5.0, 9.0, 1.0])
        assert OLBOnline().choose(etc_row, free, now=0.0) == 2

    def test_kpb_restricts_to_fast_subset(self, etc_row):
        # 3 machines at 34% -> subset size 1 -> MET behaviour
        policy = KPBOnline(percent=34.0)
        free = np.array([0.0, 1e9, 0.0])
        assert policy.choose(etc_row, free, now=0.0) == 1

    def test_kpb_full_percent_is_mct(self, etc_row):
        free = np.array([10.0, 10.0, 0.0])
        assert KPBOnline(percent=100.0).choose(etc_row, free, 0.0) == (
            MCTOnline().choose(etc_row, free, 0.0)
        )

    def test_swa_starts_mct_switches_to_met(self, etc_row):
        policy = SWAOnline(low=0.2, high=0.8)
        # all idle -> BI nan -> stays MCT
        assert policy.choose(etc_row, np.zeros(3), now=0.0) == 1
        # perfectly balanced load -> BI = 1 > high -> MET for this call
        balanced = np.array([5.0, 5.0, 5.0])
        assert policy._current == "mct"
        policy.choose(etc_row, balanced, now=0.0)
        assert policy._current == "met"

    def test_swa_switches_back_on_imbalance(self, etc_row):
        policy = SWAOnline(low=0.5, high=0.8)
        policy._current = "met"
        skewed = np.array([1.0, 10.0, 10.0])  # BI = 0.1 < low
        policy.choose(etc_row, skewed, now=0.0)
        assert policy._current == "mct"

    def test_policies_respect_tie_breakers(self):
        row = np.array([3.0, 3.0])
        scripted = METOnline(tie_breaker=ScriptedTieBreaker([1]))
        assert scripted.choose(row, np.zeros(2), 0.0) == 1


class TestSimulationDetails:
    def test_simultaneous_arrivals_processed_fifo(self):
        etc = ETCMatrix([[1.0, 9.0], [1.0, 9.0], [1.0, 9.0]])
        workload = ArrivalWorkload(etc=etc, arrivals=(0.0, 0.0, 0.0))
        trace = DynamicHCSimulation(workload, policy=MCTOnline()).run()
        # MCT with queue-awareness: t0 -> m0; t1 sees m0 busy until 1
        # (CT 2) vs m1 (CT 9) -> m0; t2 -> m0 (CT 3) ...
        assert [r.task for r in trace.machine_records("m0")] == ["t0", "t1", "t2"]
        assert trace.makespan() == pytest.approx(3.0)

    def test_expected_free_accounts_for_queued_work(self):
        """Two quick arrivals: the second must see the first's load."""
        etc = ETCMatrix([[10.0, 12.0], [10.0, 12.0]])
        workload = ArrivalWorkload(etc=etc, arrivals=(0.0, 1.0))
        trace = DynamicHCSimulation(workload, policy=MCTOnline()).run()
        # t0 -> m0 (CT 10); at t=1, m0 CT = 20 vs m1 CT = 13 -> m1
        assert trace.execution_of("t0").machine == "m0"
        assert trace.execution_of("t1").machine == "m1"

    def test_idle_period_then_burst(self):
        etc = ETCMatrix([[2.0, 3.0], [2.0, 3.0]])
        workload = ArrivalWorkload(etc=etc, arrivals=(0.0, 100.0))
        trace = DynamicHCSimulation(workload, policy=MCTOnline()).run()
        second = trace.execution_of("t1")
        assert second.start == pytest.approx(100.0)
        assert second.machine == "m0"  # drained long ago

    def test_batch_mode_single_task(self):
        etc = ETCMatrix([[2.0, 3.0]])
        workload = ArrivalWorkload(etc=etc, arrivals=(5.0,))
        from repro.heuristics import get_heuristic

        trace = DynamicHCSimulation(
            workload, batch_heuristic=get_heuristic("min-min"),
            batch_interval=1.0,
        ).run()
        assert trace.execution_of("t0").start >= 5.0

    def test_swa_online_full_run_deterministic(self):
        etc = ETCMatrix(
            np.random.default_rng(3).uniform(1, 10, size=(20, 4))
        )
        arrivals = tuple(float(i) for i in range(20))
        workload = ArrivalWorkload(etc=etc, arrivals=arrivals)
        a = DynamicHCSimulation(workload, policy=SWAOnline()).run()
        b = DynamicHCSimulation(workload, policy=SWAOnline()).run()
        assert [(r.task, r.machine) for r in a.records] == [
            (r.task, r.machine) for r in b.records
        ]


class TestSWAResetSemantics:
    """The MCT/MET toggle is per-run state and must not leak across runs."""

    def workload(self):
        # At t1's arrival (t=4.5) the balance index is 4.5/10 = 0.45 —
        # inside the (0.40, 0.49) hysteresis band, so the policy keeps
        # whatever mode it is in: MCT picks m1 (completion 11.5 < 16),
        # MET picks m0 (etc 6 < 7).  A leaked "met" state from a prior
        # run is therefore visible in the assignment.
        etc = ETCMatrix(
            np.array([[10.0, 100.0], [6.0, 7.0], [5.0, 50.0]]),
            tasks=["t0", "t1", "t2"],
        )
        return ArrivalWorkload(etc=etc, arrivals=(0.0, 4.5, 9.0))

    def test_reset_restores_mct(self):
        policy = SWAOnline()
        policy._current = "met"
        policy.reset()
        assert policy._current == "mct"

    def test_tampered_state_cannot_change_a_run(self):
        workload = self.workload()
        fresh = DynamicHCSimulation(workload, policy=SWAOnline()).run()
        tampered_policy = SWAOnline()
        tampered_policy._current = "met"
        tampered = DynamicHCSimulation(workload, policy=tampered_policy).run()
        assert tampered.records == fresh.records

    def test_repeated_runs_with_one_policy_instance_identical(self):
        workload = self.workload()
        policy = SWAOnline()
        simulation = DynamicHCSimulation(workload, policy=policy)
        first = simulation.run()
        # The first run ends in MET mode (balance index 10/11.5 > 0.49
        # at t2); without the per-run reset the second run would map t1
        # differently.
        second = simulation.run()
        assert second.records == first.records
        assert policy._current == "met"

    def test_first_run_trace_shape(self):
        trace = DynamicHCSimulation(self.workload(), policy=SWAOnline()).run()
        machines = {t: trace.execution_of(t).machine for t in ("t0", "t1", "t2")}
        assert machines == {"t0": "m0", "t1": "m1", "t2": "m0"}

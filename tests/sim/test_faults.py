"""Unit tests for fault-plan generation and fault-tolerant execution."""

import numpy as np
import pytest

from repro.etc.generation import generate_range_based
from repro.exceptions import ConfigurationError
from repro.heuristics import get_heuristic
from repro.obs import CollectingTracer, use_tracer
from repro.sim.faults import (
    FaultConfig,
    FaultEvent,
    FaultPlan,
    generate_fault_plan,
)
from repro.sim.hcsystem import (
    RECOVERY_POLICIES,
    FaultTolerantHCSystem,
    HCSystem,
)


@pytest.fixture
def etc():
    return generate_range_based(20, 4, rng=0)


@pytest.fixture
def mapping(etc):
    return get_heuristic("min-min").map_tasks(etc)


def make_plan(etc, mapping, *, failures=3.0, seed=7, slowdowns=0.0):
    horizon = mapping.makespan()
    config = FaultConfig(
        failure_rate=failures / horizon,
        mean_downtime=0.05 * horizon,
        slowdown_rate=slowdowns / horizon,
        mean_slowdown=0.05 * horizon if slowdowns else 0.0,
    )
    return generate_fault_plan(
        etc.machines, config, horizon, rng=np.random.default_rng(seed)
    )


class TestFaultConfig:
    def test_disabled_by_default(self):
        assert not FaultConfig().enabled

    def test_rejects_negative_rates(self):
        with pytest.raises(ConfigurationError):
            FaultConfig(failure_rate=-1.0)

    def test_failures_need_positive_downtime(self):
        with pytest.raises(ConfigurationError):
            FaultConfig(failure_rate=0.1)

    def test_slowdowns_need_factor_above_one(self):
        with pytest.raises(ConfigurationError):
            FaultConfig(slowdown_rate=0.1, mean_slowdown=1.0, slowdown_factor=1.0)


class TestFaultPlan:
    def test_same_seed_same_plan(self, etc, mapping):
        a = make_plan(etc, mapping, seed=3)
        b = make_plan(etc, mapping, seed=3)
        assert a == b
        assert a.signature() == b.signature()

    def test_different_seed_different_signature(self, etc, mapping):
        a = make_plan(etc, mapping, seed=3)
        b = make_plan(etc, mapping, seed=4)
        assert a.signature() != b.signature()

    def test_every_failure_has_a_recovery(self, etc, mapping):
        plan = make_plan(etc, mapping)
        for machine in etc.machines:
            kinds = [e.kind for e in plan.events_for(machine)]
            assert kinds.count("fail") == kinds.count("recover")

    def test_events_time_ordered(self, etc, mapping):
        plan = make_plan(etc, mapping, slowdowns=2.0)
        times = [e.time for e in plan.events]
        assert times == sorted(times)

    def test_zero_rates_give_empty_plan(self, etc):
        plan = generate_fault_plan(etc.machines, FaultConfig(), 100.0, rng=0)
        assert plan.is_empty

    def test_rejects_unknown_machine_event(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(("m0",), 10.0, (FaultEvent(1.0, "fail", "m9"),))

    def test_rejects_bad_kind_and_time(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(1.0, "explode", "m0")
        with pytest.raises(ConfigurationError):
            FaultEvent(-1.0, "fail", "m0")

    def test_rejects_nonpositive_horizon(self, etc):
        with pytest.raises(ConfigurationError):
            generate_fault_plan(etc.machines, FaultConfig(), 0.0, rng=0)


class TestFaultTolerantHCSystem:
    def test_rejects_unknown_policy(self, etc, mapping):
        plan = make_plan(etc, mapping)
        with pytest.raises(ConfigurationError):
            FaultTolerantHCSystem(etc, plan, policy="pray")

    def test_rejects_mismatched_machines(self, etc):
        plan = generate_fault_plan(("z",), FaultConfig(), 10.0, rng=0)
        with pytest.raises(ConfigurationError):
            FaultTolerantHCSystem(etc, plan)

    def test_backoff_is_bounded_doubling(self, etc, mapping):
        plan = make_plan(etc, mapping)
        system = FaultTolerantHCSystem(
            etc, plan, backoff_base=1.0, backoff_cap=5.0
        )
        assert [system.backoff_delay(a) for a in (1, 2, 3, 4, 5)] == [
            1.0, 2.0, 4.0, 5.0, 5.0,
        ]

    def test_empty_plan_matches_fault_free_execution(self, etc, mapping):
        plan = generate_fault_plan(
            etc.machines, FaultConfig(), mapping.makespan(), rng=0
        )
        baseline = HCSystem(etc).execute(mapping)
        result = FaultTolerantHCSystem(etc, plan).execute(mapping)
        assert result.failures == 0 and not result.dropped
        key = lambda r: (r.task, r.machine, r.start, r.finish)  # noqa: E731
        assert sorted(map(key, result.trace.records)) == sorted(
            map(key, baseline.records)
        )

    @pytest.mark.parametrize("policy", RECOVERY_POLICIES)
    def test_recovers_all_tasks_with_budget(self, etc, mapping, policy):
        plan = make_plan(etc, mapping)
        horizon = mapping.makespan()
        result = FaultTolerantHCSystem(
            etc, plan, policy=policy, retry_budget=12,
            backoff_base=0.01 * horizon,
        ).execute(mapping)
        assert result.completed == mapping.num_assigned
        assert not result.dropped
        assert result.failures > 0
        assert result.makespan >= horizon

    def test_deterministic_trace(self, etc, mapping):
        plan = make_plan(etc, mapping)
        horizon = mapping.makespan()
        run = lambda: FaultTolerantHCSystem(  # noqa: E731
            etc, plan, retry_budget=8, backoff_base=0.01 * horizon
        ).execute(mapping)
        a, b = run(), run()
        assert a.trace.records == b.trace.records
        assert (a.failures, a.retries, a.requeues) == (
            b.failures, b.retries, b.requeues,
        )

    def test_zero_budget_drops_interrupted_tasks(self, etc, mapping):
        plan = make_plan(etc, mapping, failures=6.0)
        horizon = mapping.makespan()
        result = FaultTolerantHCSystem(
            etc, plan, retry_budget=0, backoff_base=0.01 * horizon
        ).execute(mapping)
        assert result.dropped  # this plan interrupts at least one task
        assert result.completed + len(result.dropped) == mapping.num_assigned
        assert set(result.dropped) <= set(etc.tasks)

    def test_counters_and_histogram_flow_through_tracer(self, etc, mapping):
        plan = make_plan(etc, mapping)
        horizon = mapping.makespan()
        with use_tracer(CollectingTracer()) as tracer:
            result = FaultTolerantHCSystem(
                etc, plan, retry_budget=12, backoff_base=0.01 * horizon
            ).execute(mapping)
        counters = tracer.counters.as_dict()
        assert counters["sim.failures"] == result.failures
        assert counters["sim.retries"] == result.retries
        assert counters["sim.requeues"] == result.requeues
        hist = tracer.histograms.as_dict()["sim.requeue_latency"]
        assert hist.count == result.retries
        assert hist.min >= 0.0
        assert tracer.events_of("sim.fault.fail")
        assert tracer.events_of("sim.fault.recover")

    def test_slowdown_stretches_makespan(self, etc, mapping):
        horizon = mapping.makespan()
        config = FaultConfig(
            slowdown_rate=2.0 / horizon,
            slowdown_factor=4.0,
            mean_slowdown=0.2 * horizon,
        )
        plan = generate_fault_plan(
            etc.machines, config, horizon, rng=np.random.default_rng(11)
        )
        assert plan.num_slowdowns > 0
        result = FaultTolerantHCSystem(etc, plan).execute(mapping)
        assert result.completed == mapping.num_assigned
        assert result.slowdowns > 0
        assert result.makespan >= horizon
        baseline = mapping.machine_finish_times()
        realised = result.finish_times()
        # Some machine started work while degraded and finished later.
        assert any(
            realised[m] > baseline[m] + 1e-9 for m in etc.machines
        )

    def test_remap_moves_stranded_work_off_failed_machine(self, etc, mapping):
        plan = make_plan(etc, mapping, failures=4.0)
        horizon = mapping.makespan()
        requeue = FaultTolerantHCSystem(
            etc, plan, policy="requeue", retry_budget=12,
            backoff_base=0.01 * horizon,
        ).execute(mapping)
        remap = FaultTolerantHCSystem(
            etc, plan, policy="remap", retry_budget=12,
            backoff_base=0.01 * horizon,
        ).execute(mapping)
        # Remap relocates queued tasks on every failure, so it requeues
        # at least as often as the stay-put policy.
        assert remap.requeues >= requeue.requeues
        assert remap.completed == mapping.num_assigned
        moved = [
            r for r in remap.trace.records
            if mapping.to_dict()[r.task] != r.machine
        ]
        assert moved  # at least one task actually ran elsewhere


class TestLongOutage:
    def test_total_outage_waits_for_recovery_not_polls(self, etc, mapping):
        """Regression: with every machine down, retries used to repoll
        every ``backoff_base`` — a long outage burned millions of events
        and exhausted ``max_events``.  The retry must jump straight to
        the next known recovery time from the plan."""
        fail_at = 1.0
        recover_at = 1.0e6 * mapping.makespan()
        events = tuple(
            FaultEvent(time=fail_at, kind="fail", machine=m)
            for m in etc.machines
        ) + tuple(
            FaultEvent(time=recover_at, kind="recover", machine=m)
            for m in etc.machines
        )
        plan = FaultPlan(
            machines=tuple(etc.machines), horizon=recover_at, events=events
        )
        system = FaultTolerantHCSystem(
            etc, plan, policy="remap", backoff_base=0.5
        )
        result = system.execute(mapping)
        assert not result.dropped
        assert len(result.trace) == etc.num_tasks
        assert result.failures == etc.num_machines
        assert result.recoveries == etc.num_machines
        # Work genuinely resumed after the outage ended.
        assert result.trace.makespan() > recover_at

"""Tests for the rolling-horizon serving loop and arrival processes."""

import numpy as np
import pytest

from repro.etc.generation import generate_ensemble, generate_ensemble_into
from repro.etc.store import ETCStore
from repro.exceptions import ConfigurationError, SimulationError
from repro.heuristics import get_heuristic
from repro.obs import CollectingTracer, use_tracer
from repro.obs.timeseries import read_timeseries
from repro.sim.arrivals import (
    ARRIVAL_PROCESSES,
    BurstyArrivals,
    PoissonArrivals,
    TraceArrivals,
    make_arrival_process,
)
from repro.sim.faults import FaultConfig, FaultEvent, FaultPlan, generate_fault_plan
from repro.sim.rolling import (
    EnsembleTaskSource,
    RollingSampler,
    RollingSimulation,
    StoreTaskSource,
    calibrate_rate,
)


# ----------------------------------------------------------------------
# Arrival processes
# ----------------------------------------------------------------------
class TestArrivalProcesses:
    def test_poisson_mean_rate(self):
        gen = np.random.default_rng(0)
        gaps = PoissonArrivals(rate=4.0).gaps(50_000, gen)
        assert gaps.min() >= 0
        assert 1.0 / gaps.mean() == pytest.approx(4.0, rel=0.05)

    def test_poisson_rejects_nonpositive_rate(self):
        with pytest.raises(ConfigurationError):
            PoissonArrivals(0.0)

    def test_bursty_preserves_overall_mean_rate(self):
        gen = np.random.default_rng(1)
        process = BurstyArrivals(rate=2.0, burst_factor=10.0, burst_fraction=0.6)
        gaps = process.gaps(200_000, gen)
        assert 1.0 / gaps.mean() == pytest.approx(2.0, rel=0.05)

    def test_bursty_is_actually_clumpier_than_poisson(self):
        """The gap distribution must be overdispersed vs exponential
        (same mean, higher coefficient of variation)."""
        gen = np.random.default_rng(2)
        bursty = BurstyArrivals(rate=1.0, burst_factor=16.0).gaps(100_000, gen)
        cv = bursty.std() / bursty.mean()
        assert cv > 1.2  # exponential has cv == 1

    def test_bursty_state_survives_chunked_draws(self):
        one = BurstyArrivals(rate=1.0)
        two = BurstyArrivals(rate=1.0)
        whole = one.gaps(1000, np.random.default_rng(3))
        gen = np.random.default_rng(3)
        parts = np.concatenate([two.gaps(137, gen), two.gaps(500, gen),
                                two.gaps(363, gen)])
        np.testing.assert_array_equal(whole, parts)

    def test_bursty_reset_restarts_the_phase(self):
        process = BurstyArrivals(rate=1.0)
        first = process.gaps(500, np.random.default_rng(4))
        process.reset()
        again = process.gaps(500, np.random.default_rng(4))
        np.testing.assert_array_equal(first, again)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rate": -1.0},
            {"rate": 1.0, "burst_factor": 1.0},
            {"rate": 1.0, "burst_fraction": 0.0},
            {"rate": 1.0, "burst_fraction": 1.0},
            {"rate": 1.0, "mean_burst": 0.5},
        ],
    )
    def test_bursty_validates(self, kwargs):
        with pytest.raises(ConfigurationError):
            BurstyArrivals(**kwargs)

    def test_trace_cycles(self):
        process = TraceArrivals([0.5, 1.0, 0.25])
        gaps = process.gaps(7, np.random.default_rng(0))
        np.testing.assert_array_equal(
            gaps, [0.5, 1.0, 0.25, 0.5, 1.0, 0.25, 0.5]
        )

    def test_trace_reset(self):
        process = TraceArrivals([1.0, 2.0])
        process.gaps(1, np.random.default_rng(0))
        process.reset()
        assert process.gaps(1, np.random.default_rng(0))[0] == 1.0

    def test_trace_from_file(self, tmp_path):
        path = tmp_path / "gaps.txt"
        path.write_text("# recorded gaps\n0.5\n\n1.5  # tail comment\n")
        process = TraceArrivals.from_file(path)
        np.testing.assert_array_equal(process.trace_gaps, [0.5, 1.5])

    def test_trace_from_file_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0.5\nnot-a-number\n")
        with pytest.raises(ConfigurationError):
            TraceArrivals.from_file(path)

    def test_trace_validates(self):
        with pytest.raises(ConfigurationError):
            TraceArrivals([])
        with pytest.raises(ConfigurationError):
            TraceArrivals([1.0, -2.0])
        with pytest.raises(ConfigurationError):
            TraceArrivals([np.inf])

    def test_factory_builds_each_kind(self):
        assert isinstance(make_arrival_process("poisson", 2.0), PoissonArrivals)
        assert isinstance(make_arrival_process("bursty", 2.0), BurstyArrivals)
        trace = make_arrival_process("trace", trace_gaps=[1.0])
        assert isinstance(trace, TraceArrivals)

    def test_factory_rejects_unknown_and_missing_trace(self):
        with pytest.raises(ConfigurationError):
            make_arrival_process("weibull", 1.0)
        with pytest.raises(ConfigurationError):
            make_arrival_process("trace", 1.0)

    def test_registry_names(self):
        assert ARRIVAL_PROCESSES == ("poisson", "bursty", "trace")


# ----------------------------------------------------------------------
# Task sources
# ----------------------------------------------------------------------
class TestTaskSources:
    def test_ensemble_source_matches_eager_ensemble(self):
        source = EnsembleTaskSource(
            100, 5, tasks_per_instance=16, rng=9, window=3
        )
        rows = np.concatenate(list(source.chunks()))
        eager = generate_ensemble(7, 16, 5, rng=9)
        expected = np.concatenate([m.values for m in eager])[:100]
        np.testing.assert_array_equal(rows, expected)
        assert rows.shape == (100, 5)

    def test_ensemble_source_trims_to_total(self):
        source = EnsembleTaskSource(10, 3, tasks_per_instance=8, rng=0)
        chunks = list(source.chunks())
        assert sum(c.shape[0] for c in chunks) == 10

    def test_ensemble_source_validates(self):
        with pytest.raises(ConfigurationError):
            EnsembleTaskSource(0, 4)
        with pytest.raises(ConfigurationError):
            EnsembleTaskSource(4, 0)
        with pytest.raises(ConfigurationError):
            EnsembleTaskSource(4, 4, tasks_per_instance=0)

    def test_store_source_roundtrip(self, tmp_path):
        store = ETCStore(tmp_path / "store")
        generate_ensemble_into(store, "k", 4, 8, 3, rng=11)
        try:
            stored = np.concatenate(
                list(StoreTaskSource(store, "k", window=2).chunks())
            )
        finally:
            store.close()
        direct = EnsembleTaskSource(32, 3, tasks_per_instance=8, rng=11)
        np.testing.assert_array_equal(
            stored, np.concatenate(list(direct.chunks()))
        )

    def test_store_source_bounds_num_tasks(self, tmp_path):
        store = ETCStore(tmp_path / "store")
        generate_ensemble_into(store, "k", 2, 4, 3, rng=0)
        try:
            with pytest.raises(ConfigurationError):
                StoreTaskSource(store, "k", num_tasks=9)
            source = StoreTaskSource(store, "k", num_tasks=5)
            rows = np.concatenate(list(source.chunks()))
        finally:
            store.close()
        assert rows.shape == (5, 3)

    def test_calibrate_rate_scales_with_utilization(self):
        chunk = np.full((10, 4), 2.0)
        assert calibrate_rate(chunk, 1.0) == pytest.approx(4 / 2.0)
        assert calibrate_rate(chunk, 0.5) == pytest.approx(1.0)
        with pytest.raises(ConfigurationError):
            calibrate_rate(chunk, 0.0)


# ----------------------------------------------------------------------
# The rolling loop
# ----------------------------------------------------------------------
def make_sim(tasks=300, machines=5, seed=42, **kwargs):
    source = EnsembleTaskSource(
        tasks, machines, tasks_per_instance=32, rng=seed, window=4
    )
    defaults = dict(horizon=kwargs.pop("horizon", None), rng=7)
    if defaults["horizon"] is None:
        # A horizon that yields multi-task batches at the calibrated
        # rate: ~20 tasks per mapping event.
        sample = EnsembleTaskSource(
            32, machines, tasks_per_instance=32, rng=seed
        )
        rate = calibrate_rate(next(sample.chunks()))
        defaults["horizon"] = 20.0 / rate
    defaults.update(kwargs)
    return RollingSimulation(source, get_heuristic("min-min"), **defaults)


def all_down_plan(machines, fail_at=1.0, recover_at=1e6):
    events = tuple(
        FaultEvent(time=fail_at, kind="fail", machine=m) for m in machines
    ) + tuple(
        FaultEvent(time=recover_at, kind="recover", machine=m) for m in machines
    )
    return FaultPlan(machines=tuple(machines), horizon=recover_at, events=events)


class TestRollingSimulation:
    def test_serves_every_task(self):
        result = make_sim().run()
        assert result.completed == 300
        assert result.dropped == ()
        assert result.dispatches == 300
        assert result.horizons >= 2
        assert result.batch_max >= result.mean_batch >= 1.0
        assert result.makespan > 0
        assert result.peak_backlog >= 1

    def test_deterministic_repeat(self):
        first = make_sim().run()
        second = make_sim().run()
        assert first == second

    def test_refinement_cap_modes(self):
        plain = make_sim(refine_iterations=1).run()
        full = make_sim(refine_iterations=0 or None).run()
        assert plain.completed == full.completed == 300
        assert plain.refine_iterations == 1
        assert full.refine_iterations is None

    def test_explicit_arrival_process(self):
        result = make_sim(
            arrival=BurstyArrivals(rate=0.001), horizon=20_000.0
        ).run()
        assert result.completed == 300
        assert result.arrival_rate == pytest.approx(0.001)

    def test_arrival_factory_gets_calibrated_rate(self):
        seen = {}

        def factory(rate):
            seen["rate"] = rate
            return PoissonArrivals(rate)

        result = make_sim(arrival=factory, utilization=0.5).run()
        assert result.completed == 300
        assert seen["rate"] == pytest.approx(result.arrival_rate)

    def test_store_and_ensemble_sources_agree(self, tmp_path):
        store = ETCStore(tmp_path / "store")
        generate_ensemble_into(store, "k", 10, 32, 5, rng=42)
        try:
            source = StoreTaskSource(store, "k", num_tasks=300, window=4)
            horizon = make_sim().horizon
            from_store = RollingSimulation(
                source, get_heuristic("min-min"), horizon=horizon, rng=7
            ).run()
        finally:
            store.close()
        assert from_store == make_sim().run()

    def test_faulty_run_accounts_for_every_task(self):
        machines = [f"m{j}" for j in range(5)]
        base = make_sim()
        est = 300.0 / 0.001
        plan = generate_fault_plan(
            machines,
            FaultConfig(failure_rate=8.0 / est, mean_downtime=0.02 * est),
            est,
            rng=3,
        )
        result = make_sim(
            arrival=PoissonArrivals(rate=0.001), horizon=20_000.0,
            plan=plan, recovery="remap", retry_budget=2,
        ).run()
        assert result.completed + len(result.dropped) == 300
        assert result.failures > 0
        assert result.recoveries > 0

    @pytest.mark.parametrize("recovery", ["requeue", "remap"])
    def test_both_recovery_policies_complete(self, recovery):
        machines = [f"m{j}" for j in range(5)]
        est = 300.0 / 0.001
        plan = generate_fault_plan(
            machines,
            FaultConfig(failure_rate=5.0 / est, mean_downtime=0.02 * est),
            est,
            rng=5,
        )
        result = make_sim(
            arrival=PoissonArrivals(rate=0.001), horizon=20_000.0,
            plan=plan, recovery=recovery, retry_budget=8,
        ).run()
        assert result.completed + len(result.dropped) == 300

    def test_zero_retry_budget_reports_drops(self):
        """A victim with no budget is dropped and *reported*."""
        machines = [f"m{j}" for j in range(5)]
        # Definitely interrupt work: fail everything mid-run, recover later.
        plan = all_down_plan(machines, fail_at=60_000.0, recover_at=120_000.0)
        result = make_sim(
            arrival=PoissonArrivals(rate=0.001), horizon=20_000.0,
            plan=plan, recovery="remap", retry_budget=0,
        ).run()
        assert result.completed + len(result.dropped) == 300
        assert result.failures == 5
        assert len(result.dropped) == result.aborted  # budget 0: every abort drops

    def test_long_total_outage_defers_to_recovery(self):
        """All machines down for a very long stretch must not exhaust the
        event budget (the rolling analogue of the fault-poll bugfix)."""
        machines = [f"m{j}" for j in range(5)]
        plan = all_down_plan(machines, fail_at=1.0, recover_at=5e8)
        result = make_sim(
            arrival=PoissonArrivals(rate=0.001), horizon=20_000.0,
            plan=plan, recovery="remap", retry_budget=3,
            backoff_base=1e-3,
        ).run()
        assert result.completed + len(result.dropped) == 300
        assert result.makespan > 5e8  # work resumed after the outage

    def test_spans_one_per_horizon(self):
        tracer = CollectingTracer()
        with use_tracer(tracer):
            result = make_sim().run()
        spans = [s for s in tracer.spans if s.kind == "rolling.horizon"]
        assert len(spans) == result.horizons
        assert [s.fields["index"] for s in spans] == list(
            range(1, result.horizons + 1)
        )
        runs = [s for s in tracer.spans if s.kind == "rolling.run"]
        assert len(runs) == 1
        assert runs[0].fields["tasks"] == 300

    def test_sampler_writes_valid_timeseries(self, tmp_path):
        path = tmp_path / "ts.jsonl"
        sampler = RollingSampler(path, total_tasks=300, interval_s=0.0)
        result = make_sim().run(sampler=sampler)
        sampler.close()
        header, samples = read_timeseries(path)
        assert header["label"] == ""
        assert samples, "expected at least one sample"
        final = samples[-1]["metrics"]
        assert final["tasks_scheduled"] == result.dispatches
        assert final["tasks_completed"] == result.completed
        assert final["tasks_arrived"] == 300
        assert final["rss_bytes"] > 0
        summary = sampler.summary()
        assert summary["tasks_scheduled"] == result.dispatches
        assert summary["tasks_per_s"] >= 0

    def test_validates_configuration(self):
        source = EnsembleTaskSource(10, 3, rng=0)
        heuristic = get_heuristic("min-min")
        with pytest.raises(ConfigurationError):
            RollingSimulation(source, heuristic, horizon=0.0)
        with pytest.raises(ConfigurationError):
            RollingSimulation(source, heuristic, refine_iterations=0)
        with pytest.raises(ConfigurationError):
            RollingSimulation(source, heuristic, recovery="panic")
        with pytest.raises(ConfigurationError):
            RollingSimulation(source, heuristic, retry_budget=-1)
        with pytest.raises(ConfigurationError):
            RollingSimulation(source, heuristic, backoff_base=0.0)
        plan = all_down_plan(["a", "b"])
        with pytest.raises(ConfigurationError):
            RollingSimulation(source, heuristic, plan=plan)

    def test_accounting_failure_raises(self, monkeypatch):
        """A loop that loses tasks must raise, not return silently."""
        sim = make_sim(tasks=50)
        original = sim.source.chunks

        def short_chunks():
            for chunk in original():
                yield chunk[:-5]  # drop five tasks on the floor

        monkeypatch.setattr(sim.source, "chunks", short_chunks)
        with pytest.raises(SimulationError):
            sim.run()

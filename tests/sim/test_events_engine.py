"""Unit tests for the event queue and the DES engine."""

import pytest

from repro.exceptions import SimulationError
from repro.sim.engine import Simulator
from repro.sim.events import Event, EventQueue


class TestEvent:
    def test_rejects_negative_time(self):
        with pytest.raises(SimulationError):
            Event(time=-1.0, kind="x")

    def test_rejects_nan_time(self):
        with pytest.raises(SimulationError):
            Event(time=float("nan"), kind="x")


class TestEventQueue:
    def test_time_order(self):
        q = EventQueue()
        q.push(Event(5.0, "b"))
        q.push(Event(1.0, "a"))
        assert q.pop().kind == "a"
        assert q.pop().kind == "b"

    def test_fifo_among_simultaneous(self):
        q = EventQueue()
        for i in range(5):
            q.push(Event(2.0, f"e{i}"))
        kinds = [q.pop().kind for _ in range(5)]
        assert kinds == [f"e{i}" for i in range(5)]

    def test_priority_before_seq(self):
        q = EventQueue()
        q.push(Event(1.0, "late", priority=5))
        q.push(Event(1.0, "early", priority=0))
        assert q.pop().kind == "early"

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_peek_and_len(self):
        q = EventQueue()
        assert q.peek_time() is None
        assert not q
        q.push(Event(3.0, "x"))
        assert q.peek_time() == 3.0
        assert len(q) == 1


class TestSimulator:
    def test_clock_advances_monotonically(self):
        sim = Simulator()
        times = []
        sim.on("tick", lambda e: times.append(sim.now))
        for t in (3.0, 1.0, 2.0):
            sim.schedule_at(t, "tick")
        sim.run()
        assert times == [1.0, 2.0, 3.0]
        assert sim.now == 3.0

    def test_schedule_relative(self):
        sim = Simulator()
        seen = []

        def chain(event):
            seen.append(sim.now)
            if len(seen) < 3:
                sim.schedule(2.0, "step")

        sim.on("step", chain)
        sim.schedule(1.0, "step")
        sim.run()
        assert seen == [1.0, 3.0, 5.0]

    def test_cannot_schedule_into_past(self):
        sim = Simulator()
        sim.on("x", lambda e: None)
        sim.schedule_at(5.0, "x")
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, "x")
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, "x")

    def test_missing_handler_raises(self):
        sim = Simulator()
        sim.schedule(0.0, "orphan")
        with pytest.raises(SimulationError):
            sim.run()

    def test_multiple_handlers_in_order(self):
        sim = Simulator()
        order = []
        sim.on("e", lambda ev: order.append("first"))
        sim.on("e", lambda ev: order.append("second"))
        sim.schedule(0.0, "e")
        sim.run()
        assert order == ["first", "second"]

    def test_until_stops_before_future_events(self):
        sim = Simulator()
        fired = []
        sim.on("x", lambda e: fired.append(sim.now))
        sim.schedule_at(1.0, "x")
        sim.schedule_at(10.0, "x")
        end = sim.run(until=5.0)
        assert fired == [1.0]
        assert end == 5.0
        # the future event is still pending and fires on the next run
        sim.run()
        assert fired == [1.0, 10.0]

    def test_until_advances_idle_clock(self):
        sim = Simulator()
        assert sim.run(until=7.5) == 7.5

    def test_max_events_guard(self):
        sim = Simulator()
        sim.on("loop", lambda e: sim.schedule(1.0, "loop"))
        sim.schedule(0.0, "loop")
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_processed_counter(self):
        sim = Simulator()
        sim.on("x", lambda e: None)
        for _ in range(4):
            sim.schedule(0.0, "x")
        sim.run()
        assert sim.processed_events == 4
        assert sim.pending_events == 0

    def test_payload_passthrough(self):
        sim = Simulator()
        got = []
        sim.on("x", lambda e: got.append(e.payload))
        sim.schedule(0.0, "x", payload={"k": 1})
        sim.run()
        assert got == [{"k": 1}]


class RecordingProgress:
    """Captures advance/finish calls for progress-accounting tests."""

    def __init__(self):
        self.advances = []
        self.finished = 0

    def advance(self, current="", n=1):
        self.advances.append(n)

    def finish(self):
        self.finished += 1


class TestRunProgressAccounting:
    @staticmethod
    def _sim_with(n_events):
        sim = Simulator()
        sim.on("x", lambda e: None)
        for i in range(n_events):
            sim.schedule_at(float(i), "x")
        return sim

    def test_final_partial_batch_is_flushed(self):
        progress = RecordingProgress()
        self._sim_with(25).run(progress=progress, progress_every=10)
        assert progress.advances == [10, 10, 5]
        assert progress.finished == 1

    def test_exact_multiple_has_no_extra_flush(self):
        progress = RecordingProgress()
        self._sim_with(20).run(progress=progress, progress_every=10)
        assert progress.advances == [10, 10]
        assert progress.finished == 1

    def test_fewer_events_than_batch(self):
        progress = RecordingProgress()
        self._sim_with(3).run(progress=progress, progress_every=10)
        assert progress.advances == [3]
        assert progress.finished == 1

    def test_empty_queue_still_finishes(self):
        progress = RecordingProgress()
        Simulator().run(progress=progress, progress_every=10)
        assert progress.advances == []
        assert progress.finished == 1

    def test_total_equals_dispatched_even_on_handler_error(self):
        sim = Simulator()
        count = [0]

        def handler(event):
            count[0] += 1
            if count[0] == 7:
                raise RuntimeError("boom")

        sim.on("x", handler)
        for i in range(10):
            sim.schedule_at(float(i), "x")
        progress = RecordingProgress()
        with pytest.raises(RuntimeError):
            sim.run(progress=progress, progress_every=5)
        assert sum(progress.advances) == 7
        assert progress.finished == 1

    def test_rejects_nonpositive_progress_every(self):
        with pytest.raises(SimulationError):
            Simulator().run(progress=RecordingProgress(), progress_every=0)

"""Unit tests for repro.sim.trace."""

import pytest

from repro.exceptions import SimulationError
from repro.sim.trace import ExecutionTrace, TaskExecution


@pytest.fixture
def trace():
    tr = ExecutionTrace(("m1", "m2"))
    tr.add(TaskExecution("a", "m1", start=0.0, finish=2.0))
    tr.add(TaskExecution("b", "m1", start=2.0, finish=5.0))
    tr.add(TaskExecution("c", "m2", start=1.0, finish=4.0, arrival=0.5))
    return tr


class TestRecording:
    def test_duplicate_task_rejected(self, trace):
        with pytest.raises(SimulationError):
            trace.add(TaskExecution("a", "m2", 0.0, 1.0))

    def test_unknown_machine_rejected(self, trace):
        with pytest.raises(SimulationError):
            trace.add(TaskExecution("z", "nope", 0.0, 1.0))

    def test_negative_duration_rejected(self, trace):
        with pytest.raises(SimulationError):
            trace.add(TaskExecution("z", "m1", 5.0, 4.0))

    def test_start_before_arrival_rejected(self):
        """arrival > start would make queue_wait negative — the record
        must be rejected at construction, not fed into statistics."""
        with pytest.raises(SimulationError, match="starts before it arrives"):
            TaskExecution("z", "m1", start=1.0, finish=2.0, arrival=3.0)

    def test_start_at_arrival_allowed(self):
        record = TaskExecution("z", "m1", start=1.0, finish=2.0, arrival=1.0)
        assert record.queue_wait == 0.0

    def test_zero_duration_allowed(self):
        record = TaskExecution("z", "m1", start=1.0, finish=1.0)
        assert record.duration == 0.0

    def test_execution_lookup(self, trace):
        assert trace.execution_of("b").finish == 5.0
        with pytest.raises(SimulationError):
            trace.execution_of("ghost")

    def test_len(self, trace):
        assert len(trace) == 3


class TestQueries:
    def test_machine_records_ordered(self, trace):
        recs = trace.machine_records("m1")
        assert [r.task for r in recs] == ["a", "b"]

    def test_finish_times(self, trace):
        assert trace.machine_finish_times() == {"m1": 5.0, "m2": 4.0}

    def test_finish_times_with_initial_ready(self):
        tr = ExecutionTrace(("m1", "m2"))
        tr.add(TaskExecution("a", "m1", 3.0, 4.0))
        finish = tr.machine_finish_times(initial_ready={"m1": 3.0, "m2": 7.0})
        assert finish == {"m1": 4.0, "m2": 7.0}

    def test_makespan(self, trace):
        assert trace.makespan() == 5.0

    def test_makespan_empty(self):
        assert ExecutionTrace(("m1",)).makespan() == 0.0

    def test_busy_time_and_utilisation(self, trace):
        assert trace.machine_busy_time("m1") == 5.0
        assert trace.utilisation("m1") == pytest.approx(1.0)
        assert trace.utilisation("m2") == pytest.approx(3.0 / 5.0)

    def test_utilisation_empty_trace(self):
        assert ExecutionTrace(("m1",)).utilisation("m1") == 0.0

    def test_queue_wait(self, trace):
        assert trace.execution_of("c").queue_wait == pytest.approx(0.5)
        assert trace.mean_queue_wait() == pytest.approx((0 + 2.0 + 0.5) / 3)

    def test_mean_queue_wait_empty(self):
        assert ExecutionTrace(("m1",)).mean_queue_wait() == 0.0

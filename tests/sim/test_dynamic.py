"""Unit tests for the dynamic HC simulation (arrivals, on-line policies)."""

import numpy as np
import pytest

from repro.etc.generation import generate_range_based
from repro.exceptions import ConfigurationError
from repro.heuristics import get_heuristic
from repro.sim.hcsystem import (
    ArrivalWorkload,
    DynamicHCSimulation,
    KPBOnline,
    MCTOnline,
    METOnline,
    OLBOnline,
    SWAOnline,
    poisson_workload,
)


@pytest.fixture
def etc():
    return generate_range_based(30, 4, rng=0)


@pytest.fixture
def workload(etc):
    return poisson_workload(etc, rate=0.001, rng=1)


class TestWorkload:
    def test_poisson_sorted_cumulative(self, etc):
        wl = poisson_workload(etc, rate=0.01, rng=0)
        arr = np.asarray(wl.arrivals)
        assert (np.diff(arr) > 0).all()
        assert len(arr) == etc.num_tasks

    def test_poisson_rate_validation(self, etc):
        with pytest.raises(ConfigurationError):
            poisson_workload(etc, rate=0.0)

    def test_workload_validation(self, etc):
        with pytest.raises(ConfigurationError):
            ArrivalWorkload(etc=etc, arrivals=(1.0,))
        with pytest.raises(ConfigurationError):
            ArrivalWorkload(etc=etc, arrivals=tuple([-1.0] * etc.num_tasks))

    def test_arrival_of(self, etc):
        wl = ArrivalWorkload(etc=etc, arrivals=tuple(float(i) for i in range(30)))
        assert wl.arrival_of("t3") == 3.0


class TestConfigValidation:
    def test_exactly_one_mode(self, workload):
        with pytest.raises(ConfigurationError):
            DynamicHCSimulation(workload)
        with pytest.raises(ConfigurationError):
            DynamicHCSimulation(
                workload,
                policy=MCTOnline(),
                batch_heuristic=get_heuristic("min-min"),
            )

    def test_batch_interval_positive(self, workload):
        with pytest.raises(ConfigurationError):
            DynamicHCSimulation(
                workload, batch_heuristic=get_heuristic("min-min"), batch_interval=0.0
            )

    def test_policy_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            KPBOnline(percent=0.0)
        with pytest.raises(ConfigurationError):
            SWAOnline(low=0.9, high=0.5)


class TestImmediateMode:
    @pytest.mark.parametrize(
        "policy_factory",
        [MCTOnline, METOnline, OLBOnline, lambda: KPBOnline(percent=50.0), SWAOnline],
    )
    def test_all_tasks_execute_once(self, workload, policy_factory):
        trace = DynamicHCSimulation(workload, policy=policy_factory()).run()
        assert len(trace) == workload.etc.num_tasks
        assert {r.task for r in trace.records} == set(workload.etc.tasks)

    def test_no_task_starts_before_arrival(self, workload):
        trace = DynamicHCSimulation(workload, policy=MCTOnline()).run()
        for record in trace.records:
            assert record.start >= record.arrival - 1e-9

    def test_machines_never_overlap(self, workload):
        trace = DynamicHCSimulation(workload, policy=METOnline()).run()
        for machine in workload.etc.machines:
            recs = trace.machine_records(machine)
            for prev, cur in zip(recs, recs[1:]):
                assert cur.start >= prev.finish - 1e-9

    def test_met_online_uses_fastest_machine(self, etc):
        wl = poisson_workload(etc, rate=0.0001, rng=2)  # sparse arrivals
        trace = DynamicHCSimulation(wl, policy=METOnline()).run()
        for record in trace.records:
            row = etc.task_row(record.task)
            assert etc.etc(record.task, record.machine) == row.min()

    def test_mct_beats_olb_on_heterogeneous_load(self, etc):
        wl = poisson_workload(etc, rate=0.01, rng=3)
        mct = DynamicHCSimulation(wl, policy=MCTOnline()).run().makespan()
        olb = DynamicHCSimulation(wl, policy=OLBOnline()).run().makespan()
        assert mct <= olb

    def test_deterministic_rerun(self, workload):
        a = DynamicHCSimulation(workload, policy=MCTOnline()).run()
        b = DynamicHCSimulation(workload, policy=MCTOnline()).run()
        assert [(r.task, r.machine) for r in a.records] == [
            (r.task, r.machine) for r in b.records
        ]


class TestBatchMode:
    @pytest.mark.parametrize("name", ["min-min", "sufferage", "max-min"])
    def test_all_tasks_execute_once(self, workload, name):
        trace = DynamicHCSimulation(
            workload, batch_heuristic=get_heuristic(name), batch_interval=100.0
        ).run()
        assert len(trace) == workload.etc.num_tasks

    def test_tail_flush_handles_late_pending(self, etc):
        """All tasks arrive nearly simultaneously after the first mapping
        event — the final flush must still map everything."""
        arrivals = tuple([0.0] + [1e-6] * (etc.num_tasks - 1))
        wl = ArrivalWorkload(etc=etc, arrivals=arrivals)
        trace = DynamicHCSimulation(
            wl, batch_heuristic=get_heuristic("min-min"), batch_interval=1e9
        ).run()
        assert len(trace) == etc.num_tasks

    def test_no_start_before_arrival(self, workload):
        trace = DynamicHCSimulation(
            workload, batch_heuristic=get_heuristic("min-min"), batch_interval=50.0
        ).run()
        for record in trace.records:
            assert record.start >= record.arrival - 1e-9

"""Batch-mode cadence, degenerate workloads, and stall detection."""

import numpy as np
import pytest

from repro.core.schedule import Mapping
from repro.etc.matrix import ETCMatrix
from repro.exceptions import SimulationError
from repro.heuristics import get_heuristic
from repro.heuristics.base import Heuristic
from repro.sim.hcsystem import ArrivalWorkload, DynamicHCSimulation, poisson_workload


class CountingHeuristic(Heuristic):
    """Delegates to min-min while counting mapping events."""

    name = "counting"

    def __init__(self):
        self.inner = get_heuristic("min-min")
        self.calls = 0

    def _run(self, mapping, tie_breaker, seed_mapping):
        self.calls += 1
        self.inner._run(mapping, tie_breaker, seed_mapping)


class NullHeuristic(Heuristic):
    """Pathological heuristic that assigns nothing."""

    name = "null"

    def _run(self, mapping, tie_breaker, seed_mapping):
        pass

    def map_tasks(self, etc, ready_times=None, tie_breaker=None, *, seed_mapping=None):
        # Bypasses the completeness check on purpose: the stall detector
        # in DynamicHCSimulation must catch an empty mapping.
        return Mapping(etc, ready_times)


def batch_sim(etc, arrivals, interval, heuristic=None):
    workload = ArrivalWorkload(etc=etc, arrivals=tuple(arrivals))
    return DynamicHCSimulation(
        workload,
        batch_heuristic=heuristic or get_heuristic("min-min"),
        batch_interval=interval,
    )


class TestBatchTimer:
    def test_batch_fires_on_timer_not_next_arrival(self):
        """Regression: a task arriving mid-interval must be mapped at the
        interval boundary, not when the *next* arrival (or the final
        flush) happens to trigger a mapping event."""
        etc = ETCMatrix(
            np.array([[50.0, 60.0], [5.0, 5.0]]),
            tasks=["t0", "t1"],
            machines=["m0", "m1"],
        )
        trace = batch_sim(etc, (0.0, 2.0), interval=10.0).run()
        # t0 is mapped alone at t=0 and runs on m0 until t=50.  t1
        # arrives at t=2; the timer boundary is t=10, where m1 is idle.
        # Pre-fix there was no timer: t1 sat pending until the end-of-run
        # flush and started at t=50.
        execution = trace.execution_of("t1")
        assert execution.start == 10.0
        assert execution.machine == "m1"

    def test_wait_bounded_by_one_interval(self):
        """With idle machines, no task waits more than one batch interval
        between arriving and being mapped (Maheswaran's interval cadence)."""
        interval = 5.0
        etc = ETCMatrix(
            np.full((40, 4), 1e-3), tasks=[f"t{i}" for i in range(40)]
        )
        workload = poisson_workload(etc, rate=0.1, rng=7)
        trace = DynamicHCSimulation(
            workload,
            batch_heuristic=get_heuristic("min-min"),
            batch_interval=interval,
        ).run()
        waits = [
            trace.execution_of(t).start - workload.arrival_of(t)
            for t in etc.tasks
        ]
        # Service is ~1e-3 and mean gap is 10, so queueing is negligible
        # (bounded by the whole workload's service demand, 0.04): the
        # start time is essentially the mapping time.  Pre-fix, tasks
        # arriving just after a mapping event waited for the *next
        # arrival* — with these gaps, frequently much longer than one
        # interval.
        assert max(waits) <= interval + 0.05

    def test_interval_longer_than_whole_run(self):
        """batch_interval larger than the whole arrival horizon: the first
        cycle maps at the first arrival, everything else waits exactly one
        interval (not forever)."""
        heuristic = CountingHeuristic()
        etc = ETCMatrix(
            np.full((3, 2), 1.0), tasks=["t0", "t1", "t2"]
        )
        trace = batch_sim(etc, (0.0, 1.0, 2.0), 100.0, heuristic).run()
        assert len(trace) == 3
        assert heuristic.calls == 2  # t0 alone, then {t1, t2} at t=100
        assert trace.execution_of("t0").start == 0.0
        assert trace.execution_of("t1").start == 100.0
        assert trace.execution_of("t2").start == 100.0


class TestDegenerateWorkloads:
    def test_single_task(self):
        etc = ETCMatrix(np.array([[3.0, 7.0]]), tasks=["t0"])
        trace = batch_sim(etc, (0.0,), interval=5.0).run()
        execution = trace.execution_of("t0")
        assert execution.start == 0.0
        assert execution.finish == 3.0
        assert execution.machine == etc.machines[0]

    def test_simultaneous_burst_maps_as_one_batch(self):
        heuristic = CountingHeuristic()
        etc = ETCMatrix(np.full((6, 3), 2.0), tasks=[f"t{i}" for i in range(6)])
        trace = batch_sim(etc, (0.0,) * 6, 1.0, heuristic).run()
        assert len(trace) == 6
        assert heuristic.calls == 1

    def test_arrival_exactly_on_boundary(self):
        heuristic = CountingHeuristic()
        etc = ETCMatrix(np.full((2, 2), 1.0), tasks=["t0", "t1"])
        trace = batch_sim(etc, (0.0, 10.0), 10.0, heuristic).run()
        assert heuristic.calls == 2
        assert trace.execution_of("t1").start == 10.0


class TestStallDetection:
    def test_heuristic_that_maps_nothing_raises(self):
        etc = ETCMatrix(np.full((4, 2), 1.0), tasks=[f"t{i}" for i in range(4)])
        sim = batch_sim(etc, (0.0, 0.5, 1.0, 1.5), 1.0, NullHeuristic())
        with pytest.raises(SimulationError, match="stalled"):
            sim.run()

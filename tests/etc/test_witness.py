"""Unit tests for the witness matrices (shape/label sanity).

The full behavioural replays of the paper's examples live in
tests/integration/test_paper_*.py; these tests pin the structural
facts every witness must satisfy.
"""

from repro.etc.witness import (
    KPB_EXAMPLE_PERCENT,
    SWA_EXAMPLE_HIGH_THRESHOLD,
    SWA_EXAMPLE_LOW_THRESHOLD,
    kpb_example_etc,
    mct_met_example_etc,
    minmin_example_etc,
    sufferage_example_etc,
    swa_example_etc,
)


def test_minmin_shape():
    etc = minmin_example_etc()
    assert etc.shape == (4, 3)
    assert etc.tasks == ("t1", "t2", "t3", "t4")
    assert etc.machines == ("m1", "m2", "m3")


def test_minmin_documented_tie_exists():
    """t2 must tie at CT 2 between m2 (after t1) and m3 (idle)."""
    etc = minmin_example_etc()
    assert etc.etc("t1", "m2") + etc.etc("t2", "m2") == etc.etc("t2", "m3")


def test_mct_met_shape():
    etc = mct_met_example_etc()
    assert etc.shape == (4, 3)


def test_mct_met_documented_tie_exists():
    """t2 must tie between m2 and m3 on both ETC (MET) and CT (MCT)."""
    etc = mct_met_example_etc()
    assert etc.etc("t2", "m2") == etc.etc("t2", "m3")


def test_swa_shape_and_thresholds():
    etc = swa_example_etc()
    assert etc.shape == (5, 3)
    assert 4 / 13 < SWA_EXAMPLE_LOW_THRESHOLD < 0.5
    assert SWA_EXAMPLE_LOW_THRESHOLD < SWA_EXAMPLE_HIGH_THRESHOLD < 0.5


def test_kpb_shape_and_percent():
    etc = kpb_example_etc()
    assert etc.shape == (5, 3)
    # floor(3 * 0.7) = 2 machines originally, floor(2 * 0.7) = 1 after.
    assert int(3 * KPB_EXAMPLE_PERCENT / 100) == 2
    assert int(2 * KPB_EXAMPLE_PERCENT / 100) == 1


def test_sufferage_shape():
    etc = sufferage_example_etc()
    assert etc.shape == (9, 3)
    assert etc.tasks[0] == "t0"  # the paper's figure labels tasks t0..t8


def test_witnesses_are_fresh_instances():
    """Factories must not share mutable state between calls."""
    assert minmin_example_etc() == minmin_example_etc()
    assert minmin_example_etc() is not minmin_example_etc()


def test_all_witness_values_positive():
    for factory in (
        minmin_example_etc,
        mct_met_example_etc,
        swa_example_etc,
        kpb_example_etc,
        sufferage_example_etc,
    ):
        assert (factory().values > 0).all()

"""ETCBatch: the zero-copy stacked-batch construction layer."""

import numpy as np
import pytest

from repro.etc import ETCBatch, ETCMatrix
from repro.exceptions import ETCShapeError, ETCValueError


@pytest.fixture
def matrices():
    return [
        ETCMatrix([[1.0, 4.0], [3.0, 2.0]], tasks=("a", "b"), machines=("x", "y")),
        ETCMatrix([[2.0, 2.0], [1.0, 6.0]], tasks=("a", "b"), machines=("x", "y")),
        ETCMatrix([[5.0, 1.0], [2.0, 2.0]], tasks=("a", "b"), machines=("x", "y")),
    ]


class TestConstruction:
    def test_from_matrices_stacks_values_and_labels(self, matrices):
        batch = ETCBatch.from_matrices(matrices)
        assert batch.shape == (3, 2, 2)
        assert len(batch) == 3
        assert batch.num_tasks == 2
        assert batch.num_machines == 2
        assert batch.tasks == ("a", "b")
        assert batch.machines == ("x", "y")
        np.testing.assert_array_equal(
            batch.values, np.stack([m.values for m in matrices])
        )

    def test_etcmatrix_stack_is_the_front_door(self, matrices):
        batch = ETCMatrix.stack(matrices)
        assert isinstance(batch, ETCBatch)
        assert len(batch) == len(matrices)

    def test_from_matrices_rejects_empty(self):
        with pytest.raises(ETCShapeError):
            ETCBatch.from_matrices([])

    def test_from_matrices_rejects_shape_mismatch(self, matrices):
        odd = ETCMatrix([[1.0, 2.0, 3.0]], tasks=("a",), machines=("x", "y", "z"))
        with pytest.raises(ETCShapeError):
            ETCBatch.from_matrices([*matrices, odd])

    def test_from_matrices_rejects_label_mismatch(self, matrices):
        relabeled = ETCMatrix(
            [[1.0, 4.0], [3.0, 2.0]], tasks=("a", "b"), machines=("x", "z")
        )
        with pytest.raises(ETCShapeError):
            ETCBatch.from_matrices([*matrices, relabeled])

    def test_raw_constructor_validates_values(self):
        with pytest.raises(ETCShapeError):
            ETCBatch([[1.0, 2.0]])  # 2-D, not 3-D
        with pytest.raises(ETCValueError):
            ETCBatch([[[1.0, -2.0]]])
        with pytest.raises(ETCValueError):
            ETCBatch([[[1.0, float("nan")]]])

    def test_values_are_read_only(self, matrices):
        batch = ETCBatch.from_matrices(matrices)
        with pytest.raises(ValueError):
            batch.values[0, 0, 0] = 9.0


class TestInstances:
    def test_instance_is_a_zero_copy_view(self, matrices):
        batch = ETCBatch.from_matrices(matrices)
        inst = batch.instance(1)
        assert isinstance(inst, ETCMatrix)
        assert np.shares_memory(inst.values, batch.values)
        assert inst.values.flags.c_contiguous
        np.testing.assert_array_equal(inst.values, matrices[1].values)
        assert inst.tasks == batch.tasks and inst.machines == batch.machines

    def test_instance_range_checked(self, matrices):
        batch = ETCBatch.from_matrices(matrices)
        with pytest.raises(IndexError):
            batch.instance(3)
        with pytest.raises(IndexError):
            batch.instance(-4)
        assert batch.instance(-1).values[0, 0] == matrices[-1].values[0, 0]

    def test_instances_iterates_in_order(self, matrices):
        batch = ETCBatch.from_matrices(matrices)
        for inst, src in zip(batch.instances(), matrices):
            np.testing.assert_array_equal(inst.values, src.values)


class TestFromTrustedStrides:
    """Regression: _from_trusted must never adopt mis-strided slices."""

    def test_non_contiguous_slice_is_copied_to_c_order(self):
        block = np.arange(1.0, 25.0).reshape(2, 3, 4)
        # A machine-axis slice of a stacked block: 2-D but strided.
        view = block[:, :, 0]
        assert not view.flags.c_contiguous
        etc = ETCMatrix._from_trusted(view, ("a", "b"), ("x", "y", "z"))
        assert etc.values.flags.c_contiguous
        assert not np.shares_memory(etc.values, block)
        np.testing.assert_array_equal(etc.values, view)

    def test_leading_axis_slice_still_zero_copy(self):
        block = np.ascontiguousarray(np.arange(1.0, 25.0).reshape(2, 3, 4))
        etc = ETCMatrix._from_trusted(
            block[1], ("a", "b", "c"), ("w", "x", "y", "z")
        )
        assert np.shares_memory(etc.values, block)

    def test_non_2d_trusted_values_rejected(self):
        block = np.ones((2, 3, 4))
        with pytest.raises(ETCShapeError):
            ETCMatrix._from_trusted(block, ("a", "b"), ("x", "y"))

    def test_allow_strided_escape_hatch_adopts_view(self):
        # _restricted's audited basic-slicing views keep zero-copy.
        parent = ETCMatrix(
            [[1.0, 2.0, 3.0], [4.0, 5.0, 6.0], [7.0, 8.0, 9.0]]
        )
        # Contiguous index runs slice to a strided (but audited) view.
        sub = parent._restricted((0, 1), (1, 2))
        assert not sub.values.flags.c_contiguous
        assert np.shares_memory(sub.values, parent.values)

"""Unit tests for repro.etc.io (CSV/JSON round-trips)."""

import pytest

from repro.etc.generation import generate_range_based
from repro.etc.io import (
    from_csv,
    from_json,
    load_csv,
    load_json,
    save_csv,
    save_json,
    to_csv,
    to_json,
)
from repro.etc.matrix import ETCMatrix
from repro.exceptions import ETCShapeError


@pytest.fixture
def sample():
    return ETCMatrix(
        [[1.5, 2.0], [3.25, 4.0]], tasks=("alpha", "beta"), machines=("mx", "my")
    )


class TestCSV:
    def test_roundtrip_exact(self, sample):
        assert from_csv(to_csv(sample)) == sample

    def test_roundtrip_random_instance(self):
        etc = generate_range_based(25, 7, rng=0)
        assert from_csv(to_csv(etc)) == etc

    def test_header_format(self, sample):
        first_line = to_csv(sample).splitlines()[0]
        assert first_line == "task,mx,my"

    def test_hand_written_csv(self):
        etc = from_csv("task,m1,m2\nt1,1,2\nt2,3,4\n")
        assert etc.etc("t2", "m1") == 3.0

    def test_bad_header(self):
        with pytest.raises(ETCShapeError):
            from_csv("nope,m1\nt1,1\n")

    def test_ragged_row(self):
        with pytest.raises(ETCShapeError):
            from_csv("task,m1,m2\nt1,1\n")

    def test_empty(self):
        with pytest.raises(ETCShapeError):
            from_csv("")

    def test_file_roundtrip(self, sample, tmp_path):
        path = tmp_path / "etc.csv"
        save_csv(sample, path)
        assert load_csv(path) == sample


class TestCSVLabelNormalisation:
    def test_whitespace_labels_round_trip(self):
        etc = ETCMatrix(
            [[1.0, 2.0], [3.0, 4.0]],
            tasks=(" a", "b "),
            machines=("m0 ", " m1"),
        )
        parsed = from_csv(to_csv(etc))
        assert parsed.tasks == ("a", "b")
        assert parsed.machines == ("m0", "m1")
        # A second round trip is the identity.
        assert from_csv(to_csv(parsed)) == parsed

    def test_hand_written_padding_is_stripped(self):
        text = "task, m0 , m1\n t0 ,1.0,2.0\n"
        etc = from_csv(text)
        assert etc.machines == ("m0", "m1")
        assert etc.tasks == ("t0",)

    def test_duplicate_machine_after_strip_raises(self):
        text = "task,m0,m0 \nt0,1.0,2.0\n"
        with pytest.raises(ETCShapeError, match="duplicate machine label"):
            from_csv(text)

    def test_duplicate_task_after_strip_raises(self):
        text = "task,m0,m1\nt0,1.0,2.0\n t0,3.0,4.0\n"
        with pytest.raises(ETCShapeError, match="duplicate task label"):
            from_csv(text)

    def test_to_csv_rejects_labels_colliding_after_strip(self):
        etc = ETCMatrix(
            [[1.0], [2.0]], tasks=("t0", "t0 "), machines=("m0",)
        )
        with pytest.raises(ETCShapeError, match="duplicate task label"):
            to_csv(etc)


class TestJSON:
    def test_roundtrip_exact(self, sample):
        assert from_json(to_json(sample)) == sample

    def test_roundtrip_random_instance(self):
        etc = generate_range_based(25, 7, rng=1)
        assert from_json(to_json(etc)) == etc

    def test_missing_key(self):
        with pytest.raises(ETCShapeError):
            from_json('{"tasks": ["a"], "machines": ["m"]}')

    def test_file_roundtrip(self, sample, tmp_path):
        path = tmp_path / "etc.json"
        save_json(sample, path)
        assert load_json(path) == sample

    def test_compact_output(self, sample):
        text = to_json(sample, indent=None)
        assert "\n" not in text

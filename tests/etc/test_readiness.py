"""Unit tests for the initial-ready-time generators."""

import pytest

from repro.core.schedule import ready_time_vector
from repro.etc.generation import generate_range_based
from repro.etc.readiness import (
    busy_fraction_ready_times,
    uniform_ready_times,
    zero_ready_times,
)
from repro.exceptions import ConfigurationError


@pytest.fixture
def etc():
    return generate_range_based(12, 4, rng=0)


class TestZero:
    def test_all_zero(self, etc):
        ready = zero_ready_times(etc)
        assert set(ready) == set(etc.machines)
        assert all(v == 0.0 for v in ready.values())


class TestUniform:
    def test_bounds(self, etc):
        ready = uniform_ready_times(etc, high=10.0, low=2.0, rng=1)
        assert all(2.0 <= v < 10.0 for v in ready.values())

    def test_seeded_reproducible(self, etc):
        a = uniform_ready_times(etc, high=5.0, rng=7)
        b = uniform_ready_times(etc, high=5.0, rng=7)
        assert a == b

    def test_validation(self, etc):
        with pytest.raises(ConfigurationError):
            uniform_ready_times(etc, high=1.0, low=2.0)
        with pytest.raises(ConfigurationError):
            uniform_ready_times(etc, high=1.0, low=-1.0)

    def test_accepted_by_schedule(self, etc):
        ready = uniform_ready_times(etc, high=10.0, rng=0)
        vec = ready_time_vector(etc, ready)
        assert vec.shape == (etc.num_machines,)


class TestBusyFraction:
    def test_scales_with_instance_magnitude(self):
        small = generate_range_based(20, 4, rng=2)
        ready = busy_fraction_ready_times(small, fraction=0.25, rng=3)
        mean_load = small.values.mean(axis=1).sum() / small.num_machines
        assert all(0.0 <= v <= 0.25 * mean_load for v in ready.values())

    def test_zero_fraction_is_zero(self, etc):
        ready = busy_fraction_ready_times(etc, fraction=0.0, rng=0)
        assert all(v == 0.0 for v in ready.values())

    def test_validation(self, etc):
        with pytest.raises(ConfigurationError):
            busy_fraction_ready_times(etc, fraction=-0.1)

    def test_usable_by_iterative_scheduler(self, etc):
        from repro.core.iterative import IterativeScheduler
        from repro.core.validation import validate_iterative_result
        from repro.heuristics import Sufferage

        ready = busy_fraction_ready_times(etc, fraction=0.5, rng=4)
        result = IterativeScheduler(Sufferage()).run(etc, ready_times=ready)
        validate_iterative_result(result)
        # survivors' final finishing times respect their ready floor:
        for machine, finish in result.final_finish_times.items():
            assert finish >= ready[machine] - 1e-9

"""Unit tests for repro.etc.generation."""

import numpy as np
import pytest

from repro.etc.generation import (
    Consistency,
    CVBParams,
    HETEROGENEITY_CVB,
    HETEROGENEITY_RANGES,
    Heterogeneity,
    RangeBasedParams,
    apply_consistency,
    generate_cvb,
    generate_ensemble,
    generate_range_based,
)
from repro.exceptions import ConfigurationError


class TestParams:
    def test_range_params_validate(self):
        with pytest.raises(ConfigurationError):
            RangeBasedParams(task_range=1.0, machine_range=10.0)
        with pytest.raises(ConfigurationError):
            RangeBasedParams(task_range=10.0, machine_range=0.5)

    def test_cvb_params_validate(self):
        with pytest.raises(ConfigurationError):
            CVBParams(mean_task=-1.0)
        with pytest.raises(ConfigurationError):
            CVBParams(v_task=0.0)
        with pytest.raises(ConfigurationError):
            CVBParams(v_machine=-0.5)

    def test_all_heterogeneity_classes_mapped(self):
        assert set(HETEROGENEITY_RANGES) == set(Heterogeneity)
        assert set(HETEROGENEITY_CVB) == set(Heterogeneity)


class TestRangeBased:
    def test_shape_and_positivity(self):
        etc = generate_range_based(20, 5, rng=0)
        assert etc.shape == (20, 5)
        assert np.all(etc.values > 0)

    def test_determinism_by_seed(self):
        a = generate_range_based(10, 4, rng=42)
        b = generate_range_based(10, 4, rng=42)
        assert a == b

    def test_different_seeds_differ(self):
        a = generate_range_based(10, 4, rng=1)
        b = generate_range_based(10, 4, rng=2)
        assert a != b

    def test_value_bounds(self):
        params = RangeBasedParams(task_range=10.0, machine_range=5.0)
        etc = generate_range_based(200, 8, params, rng=0)
        assert etc.values.max() <= 50.0
        assert etc.values.min() >= 1.0

    def test_heterogeneity_ordering(self):
        """hihi instances must spread far wider than lolo ones."""
        hihi = generate_range_based(300, 8, Heterogeneity.HIHI, rng=0)
        lolo = generate_range_based(300, 8, Heterogeneity.LOLO, rng=0)
        assert hihi.values.std() > 10 * lolo.values.std()

    def test_invalid_dimensions(self):
        with pytest.raises(ConfigurationError):
            generate_range_based(0, 3)
        with pytest.raises(ConfigurationError):
            generate_range_based(3, 0)

    def test_accepts_generator_instance(self):
        gen = np.random.default_rng(7)
        etc = generate_range_based(5, 3, rng=gen)
        assert etc.shape == (5, 3)


class TestCVB:
    def test_shape_and_positivity(self):
        etc = generate_cvb(20, 5, rng=0)
        assert etc.shape == (20, 5)
        assert np.all(etc.values > 0)

    def test_determinism_by_seed(self):
        assert generate_cvb(10, 4, rng=3) == generate_cvb(10, 4, rng=3)

    def test_mean_close_to_mean_task(self):
        params = CVBParams(mean_task=1000.0, v_task=0.3, v_machine=0.3)
        etc = generate_cvb(400, 16, params, rng=0)
        assert 800 < etc.values.mean() < 1200

    def test_machine_cv_controls_row_spread(self):
        tight = generate_cvb(200, 10, CVBParams(v_task=0.3, v_machine=0.05), rng=0)
        wide = generate_cvb(200, 10, CVBParams(v_task=0.3, v_machine=0.9), rng=0)
        cv = lambda v: (v.std(axis=1) / v.mean(axis=1)).mean()
        assert cv(wide.values) > 5 * cv(tight.values)

    def test_heterogeneity_enum_accepted(self):
        etc = generate_cvb(5, 3, Heterogeneity.LOLO, rng=0)
        assert etc.shape == (5, 3)

    def test_invalid_dimensions(self):
        with pytest.raises(ConfigurationError):
            generate_cvb(0, 3)


class TestConsistency:
    def test_consistent_rows_sorted(self):
        etc = generate_range_based(30, 6, consistency=Consistency.CONSISTENT, rng=0)
        assert np.all(np.diff(etc.values, axis=1) >= 0)

    def test_semi_consistent_even_columns_sorted(self):
        etc = generate_range_based(
            30, 6, consistency=Consistency.SEMI_CONSISTENT, rng=0
        )
        even = etc.values[:, 0::2]
        assert np.all(np.diff(even, axis=1) >= 0)

    def test_inconsistent_untouched(self):
        raw = np.random.default_rng(0).uniform(1, 10, size=(10, 5))
        out = apply_consistency(raw, Consistency.INCONSISTENT)
        assert np.array_equal(raw, out)

    def test_apply_consistency_does_not_mutate_input(self):
        raw = np.random.default_rng(0).uniform(1, 10, size=(10, 5))
        copy = raw.copy()
        apply_consistency(raw, Consistency.CONSISTENT)
        assert np.array_equal(raw, copy)

    def test_consistency_preserves_multiset_per_row(self):
        raw = np.random.default_rng(1).uniform(1, 10, size=(8, 5))
        out = apply_consistency(raw, Consistency.CONSISTENT)
        assert np.allclose(np.sort(raw, axis=1), out)


class TestEnsemble:
    def test_count_and_independence(self):
        ensemble = generate_ensemble(5, 10, 3, rng=0)
        assert len(ensemble) == 5
        assert len({e.values.tobytes() for e in ensemble}) == 5

    def test_cvb_method(self):
        ensemble = generate_ensemble(3, 10, 3, method="cvb", rng=0)
        assert len(ensemble) == 3

    def test_unknown_method(self):
        with pytest.raises(ConfigurationError):
            generate_ensemble(3, 10, 3, method="wat")

    def test_bad_count(self):
        with pytest.raises(ConfigurationError):
            generate_ensemble(0, 10, 3)

    def test_ensemble_reproducible(self):
        a = generate_ensemble(4, 6, 3, rng=9)
        b = generate_ensemble(4, 6, 3, rng=9)
        assert all(x == y for x, y in zip(a, b))

"""Unit tests for repro.etc.matrix.ETCMatrix."""

import numpy as np
import pytest

from repro.etc.matrix import (
    ETCMatrix,
    default_machine_labels,
    default_task_labels,
)
from repro.exceptions import ETCShapeError, ETCValueError, LabelError


class TestConstruction:
    def test_basic_shape_and_labels(self):
        etc = ETCMatrix([[1, 2], [3, 4], [5, 6]])
        assert etc.shape == (3, 2)
        assert etc.num_tasks == 3
        assert etc.num_machines == 2
        assert etc.tasks == ("t0", "t1", "t2")
        assert etc.machines == ("m0", "m1")

    def test_custom_labels(self):
        etc = ETCMatrix([[1, 2]], tasks=["job"], machines=["fast", "slow"])
        assert etc.tasks == ("job",)
        assert etc.machines == ("fast", "slow")

    def test_values_are_float64_and_readonly(self):
        etc = ETCMatrix([[1, 2]])
        assert etc.values.dtype == np.float64
        with pytest.raises(ValueError):
            etc.values[0, 0] = 9.0

    def test_input_array_not_aliased(self):
        src = np.array([[1.0, 2.0]])
        etc = ETCMatrix(src)
        src[0, 0] = 99.0
        assert etc.values[0, 0] == 1.0

    def test_rejects_1d(self):
        with pytest.raises(ETCShapeError):
            ETCMatrix([1.0, 2.0])

    def test_rejects_empty(self):
        with pytest.raises(ETCShapeError):
            ETCMatrix(np.empty((0, 3)))
        with pytest.raises(ETCShapeError):
            ETCMatrix(np.empty((3, 0)))

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf")])
    def test_rejects_nonpositive_and_nonfinite(self, bad):
        with pytest.raises(ETCValueError):
            ETCMatrix([[1.0, bad]])

    def test_rejects_wrong_label_count(self):
        with pytest.raises(ETCShapeError):
            ETCMatrix([[1, 2]], tasks=["a", "b"])
        with pytest.raises(ETCShapeError):
            ETCMatrix([[1, 2]], machines=["only"])

    def test_rejects_duplicate_labels(self):
        with pytest.raises(ETCShapeError):
            ETCMatrix([[1, 2], [3, 4]], tasks=["same", "same"])

    def test_from_dict_roundtrip(self):
        table = {"a": {"x": 1.0, "y": 2.0}, "b": {"x": 3.0, "y": 4.0}}
        etc = ETCMatrix.from_dict(table)
        assert etc.to_dict() == table

    def test_from_dict_inconsistent_machines(self):
        with pytest.raises(ETCShapeError):
            ETCMatrix.from_dict({"a": {"x": 1.0}, "b": {"y": 1.0}})

    def test_from_dict_empty(self):
        with pytest.raises(ETCShapeError):
            ETCMatrix.from_dict({})


class TestAccess:
    def test_etc_lookup(self, tiny_etc):
        assert tiny_etc.etc("a", "x") == 1.0
        assert tiny_etc.etc("b", "y") == 2.0

    def test_unknown_labels_raise(self, tiny_etc):
        with pytest.raises(LabelError):
            tiny_etc.etc("zzz", "x")
        with pytest.raises(LabelError):
            tiny_etc.etc("a", "zzz")
        with pytest.raises(LabelError):
            tiny_etc.task_index("nope")
        with pytest.raises(LabelError):
            tiny_etc.machine_index("nope")

    def test_has_task_machine(self, tiny_etc):
        assert tiny_etc.has_task("a") and not tiny_etc.has_task("q")
        assert tiny_etc.has_machine("y") and not tiny_etc.has_machine("q")

    def test_row_and_column_views(self, tiny_etc):
        row = tiny_etc.task_row("b")
        col = tiny_etc.machine_column("y")
        assert row.tolist() == [3.0, 2.0]
        assert col.tolist() == [4.0, 2.0]
        # views of the read-only backing array
        with pytest.raises(ValueError):
            row[0] = 0.0

    def test_index_lookup(self, tiny_etc):
        assert tiny_etc.task_index("b") == 1
        assert tiny_etc.machine_index("x") == 0


class TestRestriction:
    def test_submatrix_preserves_labels_and_values(self, square_etc):
        sub = square_etc.submatrix(tasks=["t1", "t3"], machines=["m0", "m2"])
        assert sub.tasks == ("t1", "t3")
        assert sub.machines == ("m0", "m2")
        assert sub.etc("t3", "m2") == square_etc.etc("t3", "m2")

    def test_submatrix_caller_order_respected(self, square_etc):
        sub = square_etc.submatrix(tasks=["t3", "t1"])
        assert sub.tasks == ("t3", "t1")
        assert sub.values[0].tolist() == square_etc.task_row("t3").tolist()

    def test_submatrix_none_keeps_axis(self, square_etc):
        sub = square_etc.submatrix(machines=["m1"])
        assert sub.tasks == square_etc.tasks
        assert sub.machines == ("m1",)

    def test_submatrix_rejects_empty(self, square_etc):
        with pytest.raises(ETCShapeError):
            square_etc.submatrix(tasks=[])
        with pytest.raises(ETCShapeError):
            square_etc.submatrix(machines=[])

    def test_submatrix_unknown_label(self, square_etc):
        with pytest.raises(LabelError):
            square_etc.submatrix(tasks=["nope"])

    def test_without_machine(self, square_etc):
        sub = square_etc.without_machine("m1", ["t0", "t2"])
        assert sub.machines == ("m0", "m2", "m3")
        assert sub.tasks == ("t1", "t3")

    def test_without_machine_unknown_raises(self, square_etc):
        with pytest.raises(LabelError):
            square_etc.without_machine("nope", [])
        with pytest.raises(LabelError):
            square_etc.without_machine("m0", ["nope"])

    def test_without_machine_keeps_relative_order(self, square_etc):
        sub = square_etc.without_machine("m0", ["t1"])
        assert sub.tasks == ("t0", "t2", "t3")
        assert sub.machines == ("m1", "m2", "m3")


class TestDunder:
    def test_equality_and_hash(self):
        a = ETCMatrix([[1, 2]])
        b = ETCMatrix([[1, 2]])
        c = ETCMatrix([[1, 3]])
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_equality_label_sensitive(self):
        a = ETCMatrix([[1, 2]], tasks=["a"])
        b = ETCMatrix([[1, 2]], tasks=["b"])
        assert a != b

    def test_equality_other_type(self):
        assert ETCMatrix([[1, 2]]) != "not-a-matrix"

    def test_repr_mentions_shape(self, tiny_etc):
        assert "shape=(2, 2)" in repr(tiny_etc)

    def test_pretty_contains_all_labels(self, tiny_etc):
        text = tiny_etc.pretty()
        for label in ("a", "b", "x", "y"):
            assert label in text


def test_default_labels():
    assert default_task_labels(3) == ("t0", "t1", "t2")
    assert default_machine_labels(2) == ("m0", "m1")


class TestTrustedRestriction:
    """The zero-copy fast path: views, no re-validation, eager label checks."""

    def test_contiguous_restriction_is_readonly_view(self, square_etc):
        sub = square_etc.submatrix(
            tasks=square_etc.tasks[1:], machines=square_etc.machines[:2]
        )
        assert not sub.values.flags.writeable
        assert np.shares_memory(sub.values, square_etc.values)

    def test_noncontiguous_restriction_copies_once(self, square_etc):
        sub = square_etc.submatrix(tasks=[square_etc.tasks[0], square_etc.tasks[2]])
        assert not np.shares_memory(sub.values, square_etc.values)
        assert not sub.values.flags.writeable

    def test_without_machine_drops_contiguously(self, square_etc):
        # Dropping the last machine keeps a contiguous prefix: a view.
        sub = square_etc.without_machine(square_etc.machines[-1], [])
        assert np.shares_memory(sub.values, square_etc.values)

    def test_restriction_labels_are_parent_objects(self, square_etc):
        sub = square_etc.submatrix(machines=square_etc.machines[1:])
        for label in sub.machines:
            assert any(label is parent for parent in square_etc.machines)

    def test_without_machine_typo_fails_before_restriction(
        self, square_etc, monkeypatch
    ):
        """A typo'd dropped-task label raises before any submatrix is built."""
        calls = []

        def spy(self, rows, cols):
            calls.append((tuple(rows), tuple(cols)))
            raise AssertionError("restriction must not run for bad labels")

        monkeypatch.setattr(ETCMatrix, "_restricted", spy)
        with pytest.raises(LabelError):
            square_etc.without_machine(square_etc.machines[0], ["no-such-task"])
        assert calls == []

    def test_hash_is_memoized(self):
        etc = ETCMatrix([[1.0, 2.0], [3.0, 4.0]])
        assert etc._hash is None
        first = hash(etc)
        assert etc._hash == first
        assert hash(etc) == first

    def test_restricted_hash_matches_fresh_equal_matrix(self, square_etc):
        sub = square_etc.submatrix(tasks=square_etc.tasks[:2])
        rebuilt = ETCMatrix(
            np.asarray(sub.values), tasks=sub.tasks, machines=sub.machines
        )
        assert sub == rebuilt
        assert hash(sub) == hash(rebuilt)

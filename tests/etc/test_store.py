"""Unit tests for the memory-mapped content-addressed ETC store."""

import json
import os

import numpy as np
import pytest

from repro.etc.generation import (
    generate_ensemble,
    generate_ensemble_into,
    stream_ensemble,
)
from repro.etc.matrix import ETCMatrix
from repro.etc.store import (
    DATA_NAME,
    LOCK_NAME,
    MANIFEST_NAME,
    ETCStore,
    ETCStoreWriter,
    StoreEntry,
)
from repro.exceptions import (
    ETCShapeError,
    ETCStoreError,
    ETCValueError,
)


def _matrices(count=3, tasks=4, machines=3, seed=7):
    return generate_ensemble(count, tasks, machines, rng=seed)


class TestWriteReadRoundTrip:
    def test_put_matrices_round_trips_values_exactly(self, tmp_path):
        matrices = _matrices()
        store = ETCStore(tmp_path / "s")
        entry = store.put_matrices("k1", matrices)
        assert entry.count == 3 and entry.shape == (3, 4, 3)
        batch = store.batch("k1")
        assert batch.values.dtype == np.float64
        for i, matrix in enumerate(matrices):
            assert np.array_equal(batch.values[i], matrix.values)
            got = store.instance("k1", i)
            assert isinstance(got, ETCMatrix)
            assert np.array_equal(got.values, matrix.values)
            assert got.tasks == matrix.tasks
            assert got.machines == matrix.machines
        store.close()

    def test_views_are_memmapped_and_read_only(self, tmp_path):
        store = ETCStore(tmp_path / "s")
        store.put_matrices("k", _matrices())
        values = store.batch("k").values
        assert isinstance(values.base, np.memmap) or isinstance(
            values, np.memmap
        )
        assert not values.flags.writeable
        store.close()

    def test_chunked_writer_appends_accumulate(self, tmp_path):
        store = ETCStore(tmp_path / "s")
        chunks = list(stream_ensemble(10, 4, 3, rng=1, window=3))
        with store.writer("k", 4, 3) as writer:
            for chunk in chunks:
                writer.append(chunk)
        assert store.entry("k").count == 10
        assert np.array_equal(
            store.batch("k").values, np.concatenate(chunks)
        )
        store.close()

    def test_single_matrix_append_accepts_2d(self, tmp_path):
        store = ETCStore(tmp_path / "s")
        matrix = _matrices(count=1)[0]
        with store.writer("k", 4, 3) as writer:
            writer.append(matrix.values)
        assert store.entry("k").count == 1
        store.close()

    def test_verify_detects_intact_and_corrupt_payloads(self, tmp_path):
        store = ETCStore(tmp_path / "s")
        store.put_matrices("k", _matrices())
        assert store.verify("k")
        with open(store.data_path, "r+b") as handle:
            handle.seek(8)
            handle.write(b"\xff" * 4)
        assert not store.verify("k")

    def test_entries_persist_across_handles(self, tmp_path):
        root = tmp_path / "s"
        ETCStore(root).put_matrices("k", _matrices())
        reopened = ETCStore(root, create=False)
        assert "k" in reopened
        assert reopened.keys() == ["k"]
        assert reopened.total_bytes() == 3 * 4 * 3 * 8
        reopened.close()

    def test_reload_sees_entries_committed_by_another_handle(self, tmp_path):
        root = tmp_path / "s"
        reader = ETCStore(root)
        ETCStore(root).put_matrices("k", _matrices())
        assert "k" not in reader
        reader.reload()
        assert "k" in reader
        reader.close()

    def test_custom_labels_round_trip(self, tmp_path):
        values = np.full((2, 3), 2.0)
        matrices = [
            ETCMatrix(values, tasks=("a", "b"), machines=("x", "y", "z"))
        ]
        store = ETCStore(tmp_path / "s")
        store.put_matrices("k", matrices)
        got = store.instance("k", 0)
        assert got.tasks == ("a", "b")
        assert got.machines == ("x", "y", "z")


class TestWriterContract:
    def test_aborted_writer_commits_nothing(self, tmp_path):
        store = ETCStore(tmp_path / "s")
        with pytest.raises(RuntimeError):
            with store.writer("k", 4, 3) as writer:
                writer.append(_matrices(count=1)[0].values)
                raise RuntimeError("boom")
        assert "k" not in store
        assert not store.lock_path.exists()
        # The store stays writable: a clean retry under the same key works.
        store.put_matrices("k", _matrices())
        assert "k" in store

    def test_empty_commit_refused(self, tmp_path):
        store = ETCStore(tmp_path / "s")
        with pytest.raises(ETCStoreError, match="empty"):
            with store.writer("k", 4, 3):
                pass
        assert "k" not in store
        assert not store.lock_path.exists()

    def test_duplicate_key_refused(self, tmp_path):
        store = ETCStore(tmp_path / "s")
        store.put_matrices("k", _matrices())
        with pytest.raises(ETCStoreError, match="already committed"):
            store.writer("k", 4, 3)

    def test_shape_and_value_validation(self, tmp_path):
        store = ETCStore(tmp_path / "s")
        with store.writer("k", 4, 3) as writer:
            with pytest.raises(ETCShapeError):
                writer.append(np.ones((2, 5, 3)))
            with pytest.raises(ETCValueError):
                writer.append(np.full((1, 4, 3), np.nan))
            with pytest.raises(ETCValueError):
                writer.append(np.zeros((1, 4, 3)))
            writer.append(np.ones((1, 4, 3)))

    def test_stale_lock_from_dead_pid_is_stolen(self, tmp_path):
        store = ETCStore(tmp_path / "s")
        store.lock_path.write_text("999999999\n", encoding="utf-8")
        store.put_matrices("k", _matrices())
        assert "k" in store
        assert not store.lock_path.exists()

    def test_live_lock_times_out(self, tmp_path):
        store = ETCStore(tmp_path / "s")
        store.lock_path.write_text(f"{os.getpid()}\n", encoding="utf-8")
        with pytest.raises(ETCStoreError, match="held by live pid"):
            with store.writer("k", 4, 3, lock_timeout_s=0.05):
                pass  # pragma: no cover - never entered
        store.lock_path.unlink()


class TestStoreErrors:
    def test_attach_missing_store_raises(self, tmp_path):
        with pytest.raises(ETCStoreError, match="no ETC store"):
            ETCStore(tmp_path / "absent", create=False)

    def test_unknown_key_raises(self, tmp_path):
        store = ETCStore(tmp_path / "s")
        with pytest.raises(ETCStoreError, match="no entry"):
            store.entry("missing")

    def test_corrupt_manifest_raises(self, tmp_path):
        root = tmp_path / "s"
        root.mkdir()
        (root / MANIFEST_NAME).write_text("{not json", encoding="utf-8")
        with pytest.raises(ETCStoreError, match="unreadable"):
            ETCStore(root)

    def test_wrong_schema_raises(self, tmp_path):
        root = tmp_path / "s"
        root.mkdir()
        (root / MANIFEST_NAME).write_text(
            json.dumps({"schema": "other/1", "entries": {}}), encoding="utf-8"
        )
        with pytest.raises(ETCStoreError, match="manifest"):
            ETCStore(root)

    def test_close_is_idempotent_and_releases_mmaps(self, tmp_path):
        store = ETCStore(tmp_path / "s")
        store.put_matrices("k", _matrices())
        store.batch("k")
        assert store._mmaps
        store.close()
        assert not store._mmaps
        store.close()

    def test_context_manager_closes(self, tmp_path):
        with ETCStore(tmp_path / "s") as store:
            store.put_matrices("k", _matrices())
            store.batch("k")
        assert not store._mmaps


class TestStreamedGeneration:
    def test_stream_windows_concatenate_to_eager_ensemble(self):
        eager = generate_ensemble(7, 4, 3, rng=11)
        streamed = np.concatenate(list(stream_ensemble(7, 4, 3, rng=11, window=2)))
        assert streamed.shape == (7, 4, 3)
        for i, matrix in enumerate(eager):
            assert np.array_equal(streamed[i], matrix.values)

    def test_stream_windows_bounded(self):
        sizes = [c.shape[0] for c in stream_ensemble(10, 3, 2, rng=0, window=4)]
        assert sizes == [4, 4, 2]
        assert all(
            c.flags.c_contiguous and c.dtype == np.float64
            for c in stream_ensemble(5, 3, 2, rng=0, window=2)
        )

    def test_cvb_method_streams_identically(self):
        eager = generate_ensemble(4, 3, 2, method="cvb", rng=5)
        streamed = np.concatenate(
            list(stream_ensemble(4, 3, 2, method="cvb", rng=5, window=3))
        )
        for i, matrix in enumerate(eager):
            assert np.array_equal(streamed[i], matrix.values)

    def test_generate_into_matches_eager_and_is_idempotent(self, tmp_path):
        store = ETCStore(tmp_path / "s")
        entry = generate_ensemble_into(store, "k", 6, 4, 3, rng=3, window=2)
        assert entry.count == 6
        eager = generate_ensemble(6, 4, 3, rng=3)
        for i, matrix in enumerate(eager):
            assert np.array_equal(store.batch("k").values[i], matrix.values)
        # Re-publishing the same key consumes no RNG and rewrites nothing.
        size_before = store.data_path.stat().st_size
        again = generate_ensemble_into(store, "k", 6, 4, 3, rng=99, window=2)
        assert again == entry
        assert store.data_path.stat().st_size == size_before
        store.close()

    def test_multiple_entries_share_one_data_file(self, tmp_path):
        store = ETCStore(tmp_path / "s")
        generate_ensemble_into(store, "a", 2, 4, 3, rng=1)
        generate_ensemble_into(store, "b", 3, 2, 5, rng=2)
        assert store.entry("a").shape == (2, 4, 3)
        assert store.entry("b").shape == (3, 2, 5)
        assert store.entry("b").offset == store.entry("a").nbytes
        assert store.verify("a") and store.verify("b")
        assert (tmp_path / "s" / DATA_NAME).stat().st_size == store.total_bytes()
        store.close()


class TestStoreEntrySerialisation:
    def test_entry_dict_round_trip(self):
        entry = StoreEntry(
            key="k",
            offset=96,
            count=2,
            num_tasks=3,
            num_machines=4,
            sha256="0" * 64,
            tasks=("a", "b", "c"),
            machines=None,
        )
        assert StoreEntry.from_dict("k", entry.to_dict()) == entry
        assert entry.nbytes == 2 * 3 * 4 * 8
        assert entry.machine_labels()[0].startswith("m")

    def test_writer_type_exported(self):
        assert ETCStoreWriter.__name__ == "ETCStoreWriter"
        assert LOCK_NAME == "store.lock"

"""Unit tests for repro.core.validation."""

import dataclasses

import pytest

from repro.core.iterative import IterativeScheduler
from repro.core.schedule import Assignment, Mapping
from repro.core.validation import validate_iterative_result, validate_mapping
from repro.etc.generation import generate_range_based
from repro.exceptions import MappingError
from repro.heuristics import MCT, Sufferage


class TestValidateMapping:
    def test_valid_mapping_passes(self, square_etc):
        m = MCT().map_tasks(square_etc)
        validate_mapping(m)

    def test_partial_mapping_passes(self, tiny_etc):
        m = Mapping(tiny_etc)
        m.assign("a", "x")
        validate_mapping(m)

    def test_detects_tampered_completion(self, tiny_etc):
        m = Mapping(tiny_etc)
        m.assign("a", "x")
        bad = Assignment(task="b", machine="y", start=0.0, completion=99.0, order=1)
        m._assignments.append(bad)
        m._by_task["b"] = bad
        with pytest.raises(MappingError):
            validate_mapping(m)

    def test_detects_wrong_start(self, tiny_etc):
        m = Mapping(tiny_etc)
        m.assign("a", "x")
        bad = Assignment(task="b", machine="x", start=0.5, completion=3.5, order=1)
        m._assignments.append(bad)
        m._by_task["b"] = bad
        with pytest.raises(MappingError):
            validate_mapping(m)

    def test_detects_duplicate_task(self, tiny_etc):
        m = Mapping(tiny_etc)
        a = m.assign("a", "x")
        m._assignments.append(a)
        with pytest.raises(MappingError):
            validate_mapping(m)

    def test_detects_stale_ready_cache(self, tiny_etc):
        m = Mapping(tiny_etc)
        m.assign("a", "x")
        m._ready[0] = 123.0  # corrupt the incremental cache
        with pytest.raises(MappingError):
            validate_mapping(m)


class TestValidateIterativeResult:
    def test_valid_results_pass(self):
        for seed in range(3):
            etc = generate_range_based(12, 4, rng=seed)
            validate_iterative_result(IterativeScheduler(Sufferage()).run(etc))

    def test_detects_corrupted_final_finish(self, square_etc):
        result = IterativeScheduler(MCT()).run(square_etc)
        result.final_finish_times[result.removal_order[0]] += 1.0
        with pytest.raises(MappingError):
            validate_iterative_result(result)

    def test_detects_missing_machine(self, square_etc):
        result = IterativeScheduler(MCT()).run(square_etc)
        del result.final_finish_times[square_etc.machines[0]]
        with pytest.raises(MappingError):
            validate_iterative_result(result)

    def test_detects_stale_makespan(self, square_etc):
        result = IterativeScheduler(MCT()).run(square_etc)
        bad_rec = dataclasses.replace(result.iterations[1], makespan=-1.0)
        tampered = dataclasses.replace(
            result,
            iterations=(result.iterations[0], bad_rec, *result.iterations[2:]),
        )
        with pytest.raises(MappingError):
            validate_iterative_result(tampered)

    def test_detects_removal_order_mismatch(self, square_etc):
        result = IterativeScheduler(MCT()).run(square_etc)
        tampered = dataclasses.replace(
            result, removal_order=tuple(reversed(result.removal_order))
        )
        # a reversed order disagrees with the iteration records unless
        # it was palindromic (it is not, for 4 machines)
        with pytest.raises(MappingError):
            validate_iterative_result(tampered)

"""Unit tests for repro.core.metrics."""

import pytest

from repro.core.iterative import IterativeScheduler
from repro.core.metrics import (
    average_finish_time,
    compare_iterative,
    finish_time_vector,
    makespan,
    total_finish_time,
)
from repro.core.schedule import Mapping
from repro.etc.matrix import ETCMatrix
from repro.heuristics import MCT, Sufferage


@pytest.fixture
def mapping(tiny_etc):
    m = Mapping(tiny_etc)
    m.assign("a", "x")  # x finishes at 1
    m.assign("b", "y")  # y finishes at 2
    return m


class TestScalars:
    def test_makespan(self, mapping):
        assert makespan(mapping) == 2.0

    def test_average(self, mapping):
        assert average_finish_time(mapping) == 1.5

    def test_total(self, mapping):
        assert total_finish_time(mapping) == 3.0

    def test_vector_is_copy(self, mapping):
        vec = finish_time_vector(mapping)
        vec[0] = 99.0
        assert finish_time_vector(mapping)[0] == 1.0


class TestComparison:
    def test_invariant_heuristic_all_zero_delta(self, square_etc):
        result = IterativeScheduler(MCT()).run(square_etc)
        comp = compare_iterative(result)
        assert comp.num_improved == 0
        assert comp.num_worsened == 0
        assert comp.num_unchanged == len(square_etc.machines)
        assert comp.mean_delta == pytest.approx(0.0)
        assert not comp.mapping_changed
        assert not comp.makespan_increased

    def test_sufferage_example_comparison(self, sufferage_etc):
        result = IterativeScheduler(Sufferage()).run(sufferage_etc)
        comp = compare_iterative(result)
        by_machine = {m.machine: m for m in comp.machines}
        # paper values: m1 frozen at 10; m2 9.5 -> 10.5; m3 9.5 -> 8.5
        assert by_machine["m1"].delta == pytest.approx(0.0)
        assert by_machine["m2"].delta == pytest.approx(-1.0)
        assert by_machine["m3"].delta == pytest.approx(1.0)
        assert by_machine["m2"].worsened
        assert by_machine["m3"].improved
        assert comp.makespan_increased
        assert comp.final_makespan == pytest.approx(10.5)
        assert comp.original_makespan == pytest.approx(10.0)

    def test_counts_consistent(self, sufferage_etc):
        comp = compare_iterative(IterativeScheduler(Sufferage()).run(sufferage_etc))
        assert comp.num_improved + comp.num_worsened + comp.num_unchanged == len(
            comp.machines
        )

    def test_averages(self, sufferage_etc):
        comp = compare_iterative(IterativeScheduler(Sufferage()).run(sufferage_etc))
        assert comp.average_finish_original == pytest.approx((10 + 9.5 + 9.5) / 3)
        assert comp.average_finish_iterative == pytest.approx((10 + 10.5 + 8.5) / 3)

    def test_machine_comparison_flags(self):
        from repro.core.metrics import MachineComparison

        same = MachineComparison("m", 5.0, 5.0)
        assert not same.improved and not same.worsened
        better = MachineComparison("m", 5.0, 4.0)
        assert better.improved and better.delta == pytest.approx(1.0)
        worse = MachineComparison("m", 5.0, 6.0)
        assert worse.worsened


def test_metrics_on_single_machine():
    etc = ETCMatrix([[2.0], [3.0]])
    m = Mapping(etc)
    m.assign("t0", "m0")
    m.assign("t1", "m0")
    assert makespan(m) == average_finish_time(m) == total_finish_time(m) == 5.0

"""Unit tests for repro.core.iterative (the paper's technique)."""

import pytest

from repro.core.iterative import IterativeScheduler
from repro.core.ties import DeterministicTieBreaker, RandomTieBreaker
from repro.core.validation import validate_iterative_result
from repro.etc.generation import generate_range_based
from repro.etc.matrix import ETCMatrix
from repro.exceptions import ConfigurationError
from repro.heuristics import MCT, MET, MinMin, Sufferage, get_heuristic


@pytest.fixture
def scheduler():
    return IterativeScheduler(MCT())


class TestProtocol:
    def test_runs_until_one_machine_or_no_tasks(self, scheduler, square_etc):
        result = scheduler.run(square_etc)
        last = result.iterations[-1]
        exhausted = set(last.frozen_tasks) == set(last.etc.tasks)
        assert last.etc.num_machines == 1 or exhausted
        assert result.num_iterations <= square_etc.num_machines

    def test_original_is_iteration_zero(self, scheduler, square_etc):
        result = scheduler.run(square_etc)
        assert result.original is result.iterations[0]
        assert result.original.index == 0

    def test_every_machine_gets_final_finish_time(self, scheduler, square_etc):
        result = scheduler.run(square_etc)
        assert set(result.final_finish_times) == set(square_etc.machines)

    def test_frozen_machine_removed_next_iteration(self, scheduler, square_etc):
        result = scheduler.run(square_etc)
        for prev, cur in zip(result.iterations, result.iterations[1:]):
            assert prev.frozen_machine not in cur.etc.machines
            for task in prev.frozen_tasks:
                assert task not in cur.etc.tasks

    def test_ready_times_reset_each_iteration(self):
        """Survivors restart from their *initial* ready times."""
        etc = ETCMatrix(
            [[10.0, 1.0], [1.0, 10.0]], tasks=("a", "b"), machines=("m1", "m2")
        )
        scheduler = IterativeScheduler(MET())
        result = scheduler.run(etc, max_iterations=None)
        # m1 runs b (CT 1), m2 runs a (CT 1); tie -> m1 frozen; m2 re-runs
        # its task from ready time 0 again.
        second = result.iterations[1]
        assert second.mapping.initial_ready_times().tolist() == [0.0]

    def test_initial_ready_times_respected(self, scheduler, square_etc):
        result = scheduler.run(square_etc, ready_times=[5.0, 0.0, 0.0, 0.0])
        assert result.initial_ready_times["m0"] == 5.0
        # every iteration that still contains m0 must start it at 5
        for rec in result.iterations:
            if "m0" in rec.etc.machines:
                idx = rec.etc.machine_index("m0")
                assert rec.mapping.initial_ready_times()[idx] == 5.0

    def test_frozen_finish_time_recorded(self, scheduler, square_etc):
        result = scheduler.run(square_etc)
        for rec in result.iterations:
            assert result.final_finish_times[rec.frozen_machine] == pytest.approx(
                rec.mapping.ready_time(rec.frozen_machine)
            )

    def test_max_iterations_caps(self, scheduler, square_etc):
        result = scheduler.run(square_etc, max_iterations=2)
        assert result.num_iterations == 2
        # survivors keep the last iteration's finishing times
        assert set(result.final_finish_times) == set(square_etc.machines)

    def test_max_iterations_validation(self, scheduler, square_etc):
        with pytest.raises(ConfigurationError):
            scheduler.run(square_etc, max_iterations=0)

    def test_single_machine_instance(self, scheduler):
        etc = ETCMatrix([[2.0], [3.0]])
        result = scheduler.run(etc)
        assert result.num_iterations == 1
        assert result.final_finish_times["m0"] == 5.0

    def test_fewer_tasks_than_machines(self, scheduler):
        etc = ETCMatrix([[5.0, 1.0, 2.0]])  # 1 task, 3 machines
        result = scheduler.run(etc)
        # the task lands on m1 (MCT), m1 frozen; remaining machines idle
        assert result.final_finish_times["m1"] == 1.0
        assert result.final_finish_times["m0"] == 0.0
        assert result.final_finish_times["m2"] == 0.0

    def test_task_pool_exhaustion_uses_initial_ready(self, scheduler):
        etc = ETCMatrix([[5.0, 1.0, 2.0]])
        result = scheduler.run(etc, ready_times={"m0": 3.0})
        assert result.final_finish_times["m0"] == 3.0

    def test_removal_order_prefix_matches_records(self, scheduler, square_etc):
        result = scheduler.run(square_etc)
        for machine, rec in zip(result.removal_order, result.iterations):
            assert rec.frozen_machine == machine

    def test_validates(self, scheduler, square_etc):
        validate_iterative_result(scheduler.run(square_etc))


class TestResultQueries:
    def test_makespans_tuple(self, scheduler, square_etc):
        result = scheduler.run(square_etc)
        assert len(result.makespans()) == result.num_iterations

    def test_improvements_keys(self, scheduler, square_etc):
        result = scheduler.run(square_etc)
        assert set(result.improvements()) == set(square_etc.machines)

    def test_original_makespan_machine_never_improves(self, scheduler, square_etc):
        result = scheduler.run(square_etc)
        frozen = result.original.frozen_machine
        assert result.improvements()[frozen] == pytest.approx(0.0)

    def test_invariant_heuristic_reports_unchanged(self, square_etc):
        result = IterativeScheduler(MinMin()).run(square_etc)
        assert not result.mapping_changed()
        assert not result.makespan_increased()

    def test_mapping_changed_detects_divergence(self, sufferage_etc):
        result = IterativeScheduler(Sufferage()).run(sufferage_etc)
        assert result.mapping_changed()
        assert result.makespan_increased()

    def test_makespans_nonincreasing_for_invariant_heuristics(self):
        for seed in range(5):
            etc = generate_range_based(20, 5, rng=seed)
            result = IterativeScheduler(MCT()).run(etc)
            spans = result.makespans()
            assert all(b <= a + 1e-9 for a, b in zip(spans, spans[1:]))

    def test_trace_captured_for_traced_heuristics(self, sufferage_etc):
        result = IterativeScheduler(Sufferage()).run(sufferage_etc)
        assert result.original.trace is not None
        assert result.original.trace != result.iterations[1].trace

    def test_trace_none_for_untraced_heuristics(self, square_etc):
        result = IterativeScheduler(MCT()).run(square_etc)
        assert result.original.trace is None


class TestDeterminism:
    def test_deterministic_reruns_identical(self, square_etc):
        r1 = IterativeScheduler(MCT(), DeterministicTieBreaker()).run(square_etc)
        r2 = IterativeScheduler(MCT(), DeterministicTieBreaker()).run(square_etc)
        assert r1.final_finish_times == r2.final_finish_times
        assert r1.removal_order == r2.removal_order

    def test_random_ties_seeded_reproducible(self, square_etc):
        r1 = IterativeScheduler(MCT(), RandomTieBreaker(rng=5)).run(square_etc)
        r2 = IterativeScheduler(MCT(), RandomTieBreaker(rng=5)).run(square_etc)
        assert r1.final_finish_times == r2.final_finish_times

    def test_heuristic_by_name(self, square_etc):
        result = IterativeScheduler(get_heuristic("sufferage")).run(square_etc)
        assert result.heuristic_name == "sufferage"

    def test_random_instances_validate(self):
        for seed in range(3):
            etc = generate_range_based(15, 4, rng=seed)
            for name in ("mct", "met", "min-min", "sufferage"):
                result = IterativeScheduler(get_heuristic(name)).run(etc)
                validate_iterative_result(result)

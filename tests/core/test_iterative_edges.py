"""Edge cases of the iterative technique's removal_order/unfrozen contract.

Regression suite for the contract documented on
:class:`~repro.core.iterative.IterativeResult`: ``removal_order`` holds
exactly the frozen machines (one per iteration record), never-frozen
survivors land in ``unfrozen``, and the two partition the machine set.
"""

import pytest

from repro.core.iterative import IterativeScheduler
from repro.core.ties import RandomTieBreaker
from repro.core.validation import validate_iterative_result
from repro.etc.generation import generate_range_based
from repro.etc.matrix import ETCMatrix
from repro.heuristics import MinMin


def assert_contract(result):
    """The removal_order/unfrozen contract, in one place."""
    assert len(result.removal_order) == result.num_iterations
    for machine, rec in zip(result.removal_order, result.iterations):
        assert machine == rec.frozen_machine
    assert not set(result.removal_order) & set(result.unfrozen)
    assert set(result.removal_order) | set(result.unfrozen) == set(
        result.etc.machines
    )
    validate_iterative_result(result)


class TestRemovalOrderContract:
    def test_full_run_freezes_every_machine(self):
        # Plenty of tasks per machine, so the pool never empties early
        # and the run terminates by freezing down to one machine.
        etc = generate_range_based(16, 3, rng=1)
        result = IterativeScheduler(MinMin()).run(etc)
        assert_contract(result)
        assert result.unfrozen == ()
        assert len(result.removal_order) == etc.num_machines

    def test_max_iterations_one_keeps_survivors_unfrozen(self, square_etc):
        result = IterativeScheduler(MinMin()).run(square_etc, max_iterations=1)
        assert_contract(result)
        assert result.num_iterations == 1
        assert len(result.removal_order) == 1
        assert len(result.unfrozen) == square_etc.num_machines - 1
        # Survivors keep the capped iteration's finishing times.
        finish = result.iterations[0].finish_times()
        for machine in result.unfrozen:
            assert result.final_finish_times[machine] == finish[machine]

    def test_pool_exhausted_mid_run(self):
        """Fewer tasks than machines: the pool empties before the
        machine set does, and idle survivors are unfrozen at their
        initial ready times."""
        etc = ETCMatrix(
            [[1.0, 50.0, 50.0, 50.0], [50.0, 2.0, 50.0, 50.0]],
            tasks=("a", "b"),
            machines=("m0", "m1", "m2", "m3"),
        )
        result = IterativeScheduler(MinMin()).run(etc)
        assert_contract(result)
        assert result.unfrozen  # someone survived
        for machine in result.unfrozen:
            assert result.final_finish_times[machine] == 0.0

    def test_unfrozen_preserves_input_machine_order(self):
        etc = ETCMatrix(
            [[1.0, 9.0, 9.0, 9.0, 9.0]],
            tasks=("only",),
            machines=("m0", "m1", "m2", "m3", "m4"),
        )
        result = IterativeScheduler(MinMin()).run(etc)
        assert_contract(result)
        assert result.unfrozen == ("m1", "m2", "m3", "m4")

    def test_random_makespan_tie_still_satisfies_contract(self):
        """A frozen-machine tie under RandomTieBreaker must pick exactly
        one machine per iteration — whichever it picks."""
        etc = ETCMatrix(
            [[2.0, 2.0], [2.0, 2.0]], tasks=("a", "b"), machines=("x", "y")
        )
        for seed in range(8):
            result = IterativeScheduler(
                MinMin(), makespan_tie_breaker=RandomTieBreaker(seed)
            ).run(etc)
            assert_contract(result)

    def test_contract_on_generated_instances(self):
        for seed in range(5):
            etc = generate_range_based(10, 4, rng=seed)
            result = IterativeScheduler(MinMin()).run(etc)
            assert_contract(result)

    @pytest.mark.parametrize("cap", [1, 2, 3])
    def test_final_mapping_reproduces_final_finish_times(self, cap):
        etc = generate_range_based(12, 4, rng=3)
        result = IterativeScheduler(MinMin()).run(etc, max_iterations=cap)
        assert_contract(result)
        composite = result.final_mapping()
        assert composite.is_complete()
        finish = composite.machine_finish_times()
        for machine in etc.machines:
            assert finish[machine] == pytest.approx(
                result.final_finish_times[machine]
            )

"""Unit tests for repro.core.schedule (Mapping, Eq. 1, finish times)."""

import numpy as np
import pytest

from repro.core.schedule import (
    Mapping,
    finish_times_for_vector,
    ready_time_vector,
)
from repro.core.ties import DeterministicTieBreaker
from repro.etc.matrix import ETCMatrix
from repro.exceptions import MappingError, UnmappedTaskError


class TestReadyTimeVector:
    def test_none_is_zeros(self, tiny_etc):
        assert ready_time_vector(tiny_etc, None).tolist() == [0.0, 0.0]

    def test_mapping_form(self, tiny_etc):
        vec = ready_time_vector(tiny_etc, {"y": 5.0})
        assert vec.tolist() == [0.0, 5.0]

    def test_sequence_form(self, tiny_etc):
        assert ready_time_vector(tiny_etc, [1.0, 2.0]).tolist() == [1.0, 2.0]

    def test_unknown_machine_rejected(self, tiny_etc):
        with pytest.raises(MappingError):
            ready_time_vector(tiny_etc, {"zzz": 1.0})

    def test_wrong_length_rejected(self, tiny_etc):
        with pytest.raises(MappingError):
            ready_time_vector(tiny_etc, [1.0])

    def test_negative_rejected(self, tiny_etc):
        with pytest.raises(MappingError):
            ready_time_vector(tiny_etc, [-1.0, 0.0])

    def test_nan_rejected(self, tiny_etc):
        with pytest.raises(MappingError):
            ready_time_vector(tiny_etc, [float("nan"), 0.0])

    def test_input_not_aliased(self, tiny_etc):
        src = np.array([1.0, 2.0])
        vec = ready_time_vector(tiny_etc, src)
        src[0] = 99.0
        assert vec[0] == 1.0


class TestAssignment:
    def test_eq1_completion(self, tiny_etc):
        m = Mapping(tiny_etc)
        a = m.assign("a", "x")
        assert a.start == 0.0
        assert a.completion == 1.0
        assert a.order == 0

    def test_sequential_on_same_machine(self, tiny_etc):
        m = Mapping(tiny_etc)
        m.assign("a", "x")
        b = m.assign("b", "x")
        assert b.start == 1.0
        assert b.completion == 4.0

    def test_initial_ready_offsets(self, tiny_etc):
        m = Mapping(tiny_etc, {"x": 10.0})
        a = m.assign("a", "x")
        assert a.start == 10.0 and a.completion == 11.0

    def test_double_assign_rejected(self, tiny_etc):
        m = Mapping(tiny_etc)
        m.assign("a", "x")
        with pytest.raises(MappingError):
            m.assign("a", "y")

    def test_completion_time_if_matches_commit(self, square_etc):
        m = Mapping(square_etc)
        m.assign("t0", "m1")
        predicted = m.completion_time_if("t1", "m1")
        committed = m.assign("t1", "m1").completion
        assert predicted == committed

    def test_completion_times_if_vectorised(self, square_etc):
        m = Mapping(square_etc)
        m.assign("t0", "m0")
        vec = m.completion_times_if("t1")
        expected = [
            m.completion_time_if("t1", mm) for mm in square_etc.machines
        ]
        assert vec.tolist() == expected


class TestQueries:
    def test_unmapped_tasks_order(self, square_etc):
        m = Mapping(square_etc)
        m.assign("t2", "m0")
        assert m.unmapped_tasks() == ("t0", "t1", "t3")

    def test_is_complete(self, tiny_etc):
        m = Mapping(tiny_etc)
        assert not m.is_complete()
        m.assign("a", "x")
        m.assign("b", "y")
        assert m.is_complete()

    def test_machine_of_and_assignment_of(self, tiny_etc):
        m = Mapping(tiny_etc)
        m.assign("a", "y")
        assert m.machine_of("a") == "y"
        with pytest.raises(UnmappedTaskError):
            m.assignment_of("b")

    def test_machine_tasks_in_order(self, square_etc):
        m = Mapping(square_etc)
        m.assign("t3", "m1")
        m.assign("t0", "m1")
        assert m.machine_tasks("m1") == ("t3", "t0")

    def test_finish_times_idle_machine_keeps_ready(self, tiny_etc):
        m = Mapping(tiny_etc, {"y": 7.0})
        m.assign("a", "x")
        m.assign("b", "x")
        finish = m.machine_finish_times()
        assert finish["y"] == 7.0
        assert finish["x"] == 4.0

    def test_makespan_and_machine(self, tiny_etc):
        m = Mapping(tiny_etc)
        m.assign("a", "x")
        m.assign("b", "y")
        assert m.makespan() == 2.0
        assert m.makespan_machine() == "y"

    def test_makespan_machine_tie_goes_low_index(self):
        etc = ETCMatrix([[2.0, 2.0]], tasks=["t"], machines=["p", "q"])
        m = Mapping(etc, {"q": 2.0})
        m.assign("t", "p")
        # both machines finish at 2 -> deterministic pick is 'p'
        assert m.makespan_machine(DeterministicTieBreaker()) == "p"

    def test_assignment_vector(self, square_etc):
        m = Mapping(square_etc)
        m.assign("t1", "m3")
        vec = m.assignment_vector()
        assert vec.tolist() == [-1, 3, -1, -1]

    def test_to_dict_and_same_assignments(self, tiny_etc):
        m1 = Mapping(tiny_etc)
        m1.assign("a", "x")
        m1.assign("b", "y")
        m2 = Mapping(tiny_etc)
        m2.assign("b", "y")
        m2.assign("a", "x")
        assert m1.same_assignments(m2)  # order-insensitive

    def test_ready_times_copy(self, tiny_etc):
        m = Mapping(tiny_etc)
        vec = m.ready_times()
        vec[0] = 99.0
        assert m.ready_time("x") == 0.0

    def test_repr(self, tiny_etc):
        m = Mapping(tiny_etc)
        assert "assigned=0/2" in repr(m)


class TestIndexFastPath:
    """assign_index / ready_times_view — the kernels' zero-lookup API."""

    def test_assign_index_matches_assign(self, square_etc, rng):
        by_label = Mapping(square_etc)
        by_index = Mapping(square_etc)
        pairs = [
            (ti, int(rng.integers(square_etc.num_machines)))
            for ti in range(square_etc.num_tasks)
        ]
        for ti, mi in pairs:
            by_label.assign(square_etc.tasks[ti], square_etc.machines[mi])
            by_index.assign_index(ti, mi)
        assert by_label.same_assignments(by_index)
        assert by_label.makespan() == by_index.makespan()

    def test_assign_index_double_assign_rejected(self, tiny_etc):
        m = Mapping(tiny_etc)
        m.assign_index(0, 0)
        with pytest.raises(MappingError):
            m.assign_index(0, 1)

    def test_assign_index_out_of_range(self, tiny_etc):
        with pytest.raises(IndexError):
            Mapping(tiny_etc).assign_index(99, 0)

    def test_ready_times_view_is_live(self, tiny_etc):
        m = Mapping(tiny_etc)
        view = m.ready_times_view()
        before = view.copy()
        a = m.assign("a", "x")
        assert view[0] == a.completion
        assert view[1] == before[1]

    def test_machine_tasks_tracks_assign_index(self, square_etc):
        m = Mapping(square_etc)
        m.assign_index(0, 1)
        m.assign_index(2, 1)
        m.assign_index(1, 0)
        assert m.machine_tasks(square_etc.machines[1]) == (
            square_etc.tasks[0],
            square_etc.tasks[2],
        )
        assert m.machine_tasks(square_etc.machines[0]) == (square_etc.tasks[1],)
        assert m.machine_tasks(square_etc.machines[2]) == ()


class TestFinishTimesForVector:
    def test_matches_incremental_mapping(self, square_etc, rng):
        for _ in range(10):
            vec = rng.integers(0, 4, size=4)
            m = Mapping(square_etc)
            for i, t in enumerate(square_etc.tasks):
                m.assign(t, square_etc.machines[int(vec[i])])
            fast = finish_times_for_vector(square_etc, vec)
            assert np.allclose(fast, m.finish_time_vector())

    def test_with_initial_ready(self, tiny_etc):
        out = finish_times_for_vector(tiny_etc, [0, 0], initial_ready=np.array([5.0, 1.0]))
        assert out.tolist() == [5.0 + 1.0 + 3.0, 1.0]

    def test_rejects_wrong_shape(self, tiny_etc):
        with pytest.raises(MappingError):
            finish_times_for_vector(tiny_etc, [0])

    def test_rejects_out_of_range(self, tiny_etc):
        with pytest.raises(MappingError):
            finish_times_for_vector(tiny_etc, [0, 5])
        with pytest.raises(MappingError):
            finish_times_for_vector(tiny_etc, [-1, 0])

    def test_rejects_bad_ready_shape(self, tiny_etc):
        with pytest.raises(MappingError):
            finish_times_for_vector(tiny_etc, [0, 1], initial_ready=np.zeros(3))

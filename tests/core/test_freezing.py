"""Unit tests for the pluggable freeze policies."""

import pytest

from repro.core.freezing import (
    FREEZE_POLICIES,
    earliest_finish_policy,
    makespan_machine_policy,
    most_loaded_policy,
)
from repro.core.iterative import IterativeScheduler
from repro.core.schedule import Mapping
from repro.core.ties import DeterministicTieBreaker
from repro.core.validation import validate_iterative_result
from repro.etc.generation import generate_range_based
from repro.etc.matrix import ETCMatrix
from repro.heuristics import MCT, Sufferage


@pytest.fixture
def mapping():
    # m0 finish 5; m1 finish 3 (initial 2 + 1 work); m2 finish 2 (idle)
    etc = ETCMatrix(
        [[5.0, 9.0, 9.0], [9.0, 1.0, 9.0]],
        tasks=("a", "b"),
        machines=("m0", "m1", "m2"),
    )
    m = Mapping(etc, {"m1": 2.0, "m2": 2.0})
    m.assign("a", "m0")
    m.assign("b", "m1")
    return m


class TestPolicies:
    def test_makespan_policy(self, mapping):
        assert makespan_machine_policy(mapping, DeterministicTieBreaker()) == "m0"

    def test_earliest_finish_policy(self, mapping):
        assert earliest_finish_policy(mapping, DeterministicTieBreaker()) == "m2"

    def test_most_loaded_differs_from_makespan_with_ready_times(self, mapping):
        # loads: m0 = 5, m1 = 1, m2 = 0 -> same as makespan here; flip
        # ready times to separate them
        etc = mapping.etc
        m = Mapping(etc, {"m0": 4.0})
        m.assign("a", "m0")   # finish 9, load 5
        m.assign("b", "m1")   # finish 1, load 1
        assert makespan_machine_policy(m, DeterministicTieBreaker()) == "m0"
        assert most_loaded_policy(m, DeterministicTieBreaker()) == "m0"
        m2 = Mapping(etc, {"m1": 8.5})
        m2.assign("a", "m0")  # finish 5, load 5
        m2.assign("b", "m1")  # finish 9.5, load 1
        assert makespan_machine_policy(m2, DeterministicTieBreaker()) == "m1"
        assert most_loaded_policy(m2, DeterministicTieBreaker()) == "m0"

    def test_registry_contains_all(self):
        assert set(FREEZE_POLICIES) == {"makespan", "earliest-finish", "most-loaded"}


class TestSchedulerIntegration:
    def test_default_is_paper_rule(self, square_etc):
        default = IterativeScheduler(MCT()).run(square_etc)
        explicit = IterativeScheduler(
            MCT(), freeze_policy=makespan_machine_policy
        ).run(square_etc)
        assert default.removal_order == explicit.removal_order
        assert default.final_finish_times == explicit.final_finish_times

    def test_earliest_finish_freezes_different_order(self):
        etc = generate_range_based(12, 4, rng=0)
        paper = IterativeScheduler(Sufferage()).run(etc)
        dual = IterativeScheduler(
            Sufferage(), freeze_policy=earliest_finish_policy
        ).run(etc)
        assert paper.removal_order != dual.removal_order
        validate_iterative_result(dual)

    def test_all_policies_produce_valid_runs(self):
        etc = generate_range_based(10, 3, rng=1)
        for policy in FREEZE_POLICIES.values():
            result = IterativeScheduler(Sufferage(), freeze_policy=policy).run(etc)
            validate_iterative_result(result)
            assert set(result.final_finish_times) == set(etc.machines)

    def test_zero_ready_most_loaded_equals_makespan(self):
        etc = generate_range_based(10, 3, rng=2)
        a = IterativeScheduler(MCT(), freeze_policy=most_loaded_policy).run(etc)
        b = IterativeScheduler(MCT()).run(etc)
        assert a.removal_order == b.removal_order

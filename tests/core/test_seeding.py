"""Unit tests for repro.core.seeding (the conclusion's extension)."""

import pytest

from repro.core.iterative import IterativeScheduler
from repro.core.seeding import SeededIterativeScheduler, replay_mapping
from repro.core.ties import RandomTieBreaker
from repro.etc.generation import generate_range_based
from repro.etc.matrix import ETCMatrix
from repro.etc.witness import (
    KPB_EXAMPLE_PERCENT,
    kpb_example_etc,
    swa_example_etc,
)
from repro.heuristics import (
    KPercentBest,
    MCT,
    MinMin,
    Sufferage,
    SwitchingAlgorithm,
)


class TestReplayMapping:
    def test_replays_assignments(self, tiny_etc):
        mapping = replay_mapping(tiny_etc, None, {"a": "y", "b": "x"})
        assert mapping.machine_of("a") == "y"
        assert mapping.machine_of("b") == "x"
        assert mapping.is_complete()

    def test_respects_ready_times(self, tiny_etc):
        mapping = replay_mapping(tiny_etc, [2.0, 0.0], {"a": "x", "b": "x"})
        assert mapping.machine_finish_times()["x"] == 2.0 + 1.0 + 3.0


class TestMonotonicity:
    def test_sufferage_example_no_longer_increases(self, sufferage_etc):
        """The paper's Sufferage counterexample is cured by seeding."""
        plain = IterativeScheduler(Sufferage()).run(sufferage_etc)
        assert plain.makespan_increased()
        seeded = SeededIterativeScheduler(Sufferage()).run(sufferage_etc)
        assert not seeded.makespan_increased()

    def test_kpb_example_no_longer_increases(self):
        etc = kpb_example_etc()
        kpb = KPercentBest(percent=KPB_EXAMPLE_PERCENT)
        assert IterativeScheduler(kpb).run(etc).makespan_increased()
        assert not SeededIterativeScheduler(kpb).run(etc).makespan_increased()

    def test_swa_example_no_longer_increases(self):
        etc = swa_example_etc()
        swa = SwitchingAlgorithm(low=0.40, high=0.49)
        assert IterativeScheduler(swa).run(etc).makespan_increased()
        assert not SeededIterativeScheduler(swa).run(etc).makespan_increased()

    @pytest.mark.parametrize("name_cls", [Sufferage, MCT, MinMin])
    def test_monotone_on_random_ensemble(self, name_cls):
        for seed in range(5):
            etc = generate_range_based(20, 6, rng=seed)
            result = SeededIterativeScheduler(name_cls()).run(etc)
            spans = result.makespans()
            assert all(b <= a + 1e-9 for a, b in zip(spans, spans[1:]))

    def test_monotone_even_with_random_ties(self):
        for seed in range(5):
            etc = generate_range_based(20, 6, rng=seed)
            result = SeededIterativeScheduler(
                MCT(), tie_breaker=RandomTieBreaker(rng=seed)
            ).run(etc)
            assert not result.makespan_increased()


class TestIncumbentSemantics:
    def test_ties_keep_incumbent(self):
        """When the fresh mapping equals the incumbent in makespan, the
        incumbent's assignments are kept (no gratuitous churn)."""
        etc = generate_range_based(15, 4, rng=3)
        result = SeededIterativeScheduler(MinMin()).run(etc)
        # Min-Min is iteration-invariant; with seeding the incumbent is
        # identical to the fresh mapping, so nothing may change.
        assert not result.mapping_changed()

    def test_improvement_still_allowed(self, sufferage_etc):
        """Seeding must not freeze the mapping when a strictly better
        one exists."""
        seeded = SeededIterativeScheduler(Sufferage()).run(sufferage_etc)
        plain = IterativeScheduler(Sufferage()).run(sufferage_etc)
        final_seeded = max(seeded.final_finish_times.values())
        final_plain = max(plain.final_finish_times.values())
        assert final_seeded <= final_plain + 1e-9

    def test_first_iteration_is_heuristic_output(self, square_etc):
        plain = IterativeScheduler(Sufferage()).run(square_etc)
        seeded = SeededIterativeScheduler(Sufferage()).run(square_etc)
        assert plain.original.mapping.to_dict() == seeded.original.mapping.to_dict()


def test_seeded_never_worse_per_machine_at_freeze_time():
    """At each iteration the frozen machine's finishing time under
    seeding is <= the plain scheduler's frozen finishing time ordering
    guarantee: makespans are monotone, so each frozen CT is bounded by
    the previous one."""
    etc = ETCMatrix(generate_range_based(12, 4, rng=11).values)
    result = SeededIterativeScheduler(Sufferage()).run(etc)
    frozen_cts = [
        rec.mapping.ready_time(rec.frozen_machine) for rec in result.iterations
    ]
    assert all(b <= a + 1e-9 for a, b in zip(frozen_cts, frozen_cts[1:]))

"""Unit tests for repro.core.ties."""

import numpy as np
import pytest

from repro.core.ties import (
    DeterministicTieBreaker,
    RandomTieBreaker,
    ScriptedTieBreaker,
    make_tie_breaker,
    tied_argmax,
    tied_argmin,
    tied_indices,
)
from repro.exceptions import ConfigurationError


class TestTiedIndices:
    def test_exact_ties(self):
        assert tied_indices([1.0, 2.0, 1.0], 1.0).tolist() == [0, 2]

    def test_tolerance_relative(self):
        vals = [1.0, 1.0 + 1e-12, 2.0]
        assert tied_indices(vals, 1.0).tolist() == [0, 1]

    def test_no_match(self):
        assert tied_indices([1.0, 2.0], 5.0).tolist() == []

    def test_argmin_single(self):
        assert tied_argmin([3.0, 1.0, 2.0]).tolist() == [1]

    def test_argmin_multiple(self):
        assert tied_argmin([1.0, 1.0, 2.0]).tolist() == [0, 1]

    def test_argmax(self):
        assert tied_argmax([1.0, 3.0, 3.0]).tolist() == [1, 2]

    def test_argmin_empty_raises(self):
        with pytest.raises(ConfigurationError):
            tied_argmin([])

    def test_argmax_empty_raises(self):
        with pytest.raises(ConfigurationError):
            tied_argmax(np.array([]))

    def test_large_magnitude_relative_ties(self):
        big = 1e12
        assert tied_argmin([big, big * (1 + 1e-12), big * 2]).tolist() == [0, 1]


class TestDeterministic:
    def test_lowest_index(self):
        tb = DeterministicTieBreaker()
        assert tb.choose([5, 2, 9]) == 2

    def test_argmin_ties_to_lowest(self):
        tb = DeterministicTieBreaker()
        assert tb.argmin([2.0, 1.0, 1.0]) == 1

    def test_argmax_ties_to_lowest(self):
        tb = DeterministicTieBreaker()
        assert tb.argmax([3.0, 3.0, 1.0]) == 0

    def test_empty_raises(self):
        with pytest.raises(ConfigurationError):
            DeterministicTieBreaker().choose([])

    def test_flag(self):
        assert DeterministicTieBreaker().deterministic is True

    def test_repeatable(self):
        tb = DeterministicTieBreaker()
        picks = {tb.choose([3, 7]) for _ in range(20)}
        assert picks == {3}


class TestRandom:
    def test_seeded_reproducible(self):
        a = RandomTieBreaker(rng=0)
        b = RandomTieBreaker(rng=0)
        seq_a = [a.choose([0, 1, 2]) for _ in range(50)]
        seq_b = [b.choose([0, 1, 2]) for _ in range(50)]
        assert seq_a == seq_b

    def test_covers_all_candidates(self):
        tb = RandomTieBreaker(rng=1)
        picks = {tb.choose([4, 9]) for _ in range(200)}
        assert picks == {4, 9}

    def test_roughly_uniform(self):
        tb = RandomTieBreaker(rng=2)
        picks = [tb.choose([0, 1]) for _ in range(2000)]
        frac = sum(picks) / len(picks)
        assert 0.4 < frac < 0.6

    def test_singleton_short_circuits_rng(self):
        tb = RandomTieBreaker(rng=3)
        state_before = tb.rng.bit_generator.state["state"]
        assert tb.choose([7]) == 7
        assert tb.rng.bit_generator.state["state"] == state_before

    def test_empty_raises(self):
        with pytest.raises(ConfigurationError):
            RandomTieBreaker(rng=0).choose([])

    def test_flag(self):
        assert RandomTieBreaker(rng=0).deterministic is False


class TestScripted:
    def test_replays_script_on_genuine_ties(self):
        tb = ScriptedTieBreaker([2, 0])
        assert tb.choose([0, 2]) == 2
        assert tb.choose([0, 1]) == 0
        assert tb.consumed == 2

    def test_singleton_does_not_consume(self):
        tb = ScriptedTieBreaker([1])
        assert tb.choose([5]) == 5
        assert tb.consumed == 0

    def test_exhausted_falls_back_to_lowest(self):
        tb = ScriptedTieBreaker([])
        assert tb.choose([3, 1]) == 1

    def test_invalid_scripted_choice(self):
        tb = ScriptedTieBreaker([9])
        with pytest.raises(ConfigurationError):
            tb.choose([0, 1])

    def test_empty_raises(self):
        with pytest.raises(ConfigurationError):
            ScriptedTieBreaker([]).choose([])


class TestFactory:
    def test_deterministic_spec(self):
        assert isinstance(make_tie_breaker("deterministic"), DeterministicTieBreaker)

    def test_random_spec_uses_rng(self):
        tb = make_tie_breaker("random", rng=0)
        assert isinstance(tb, RandomTieBreaker)

    def test_passthrough(self):
        original = DeterministicTieBreaker()
        assert make_tie_breaker(original) is original

    def test_unknown_spec(self):
        with pytest.raises(ConfigurationError):
            make_tie_breaker("coin-flip")

"""Unit tests for the heuristic base class and registry."""

import pytest

from repro.core.schedule import Mapping
from repro.core.ties import TieBreaker
from repro.exceptions import MappingError, UnknownHeuristicError
from repro.heuristics import PAPER_HEURISTICS, get_heuristic, heuristic_names
from repro.heuristics.base import Heuristic


class TestRegistry:
    def test_all_paper_heuristics_registered(self):
        for name in PAPER_HEURISTICS:
            assert name in heuristic_names()

    def test_baselines_registered(self):
        for name in ("olb", "max-min", "duplex", "random"):
            assert name in heuristic_names()

    def test_get_returns_fresh_instances(self):
        assert get_heuristic("mct") is not get_heuristic("mct")

    def test_unknown_name(self):
        with pytest.raises(UnknownHeuristicError):
            get_heuristic("quantum-annealer")

    def test_kwargs_forwarded(self):
        h = get_heuristic("k-percent-best", percent=50.0)
        assert h.percent == 50.0

    def test_names_sorted(self):
        names = heuristic_names()
        assert list(names) == sorted(names)


class _Lazy(Heuristic):
    """Deliberately broken heuristic that maps nothing."""

    name = "lazy-test-only"

    def _run(self, mapping: Mapping, tie_breaker: TieBreaker, seed_mapping) -> None:
        return None


class TestContract:
    def test_incomplete_mapping_rejected(self, tiny_etc):
        with pytest.raises(MappingError):
            _Lazy().map_tasks(tiny_etc)

    def test_every_heuristic_maps_every_task(self, square_etc):
        for name in heuristic_names():
            mapping = get_heuristic(name).map_tasks(square_etc)
            assert mapping.is_complete(), name

    def test_seed_validation_for_seeding_heuristics(self, square_etc):
        genitor = get_heuristic("genitor", iterations=5, rng=0)
        with pytest.raises(MappingError):
            genitor.map_tasks(square_etc, seed_mapping={"t0": "m0"})  # incomplete
        bad = {t: "m0" for t in square_etc.tasks} | {"ghost": "m0"}
        with pytest.raises(MappingError):
            genitor.map_tasks(square_etc, seed_mapping=bad)

    def test_seed_ignored_by_non_seeding_heuristics(self, square_etc):
        mct = get_heuristic("mct")
        seed = {t: "m3" for t in square_etc.tasks}
        with_seed = mct.map_tasks(square_etc, seed_mapping=seed)
        without = mct.map_tasks(square_etc)
        assert with_seed.to_dict() == without.to_dict()

    def test_ready_times_forwarded(self, tiny_etc):
        mapping = get_heuristic("mct").map_tasks(tiny_etc, {"x": 100.0})
        # with x busy until 100, both tasks go to y
        assert mapping.machine_of("a") == "y"
        assert mapping.machine_of("b") == "y"

    def test_repr(self):
        assert "MCT" in repr(get_heuristic("mct"))

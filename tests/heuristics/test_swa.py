"""Unit tests for the Switching Algorithm."""

import math

import pytest

from repro.etc.generation import generate_range_based
from repro.etc.matrix import ETCMatrix
from repro.exceptions import ConfigurationError
from repro.heuristics import MCT, SwitchingAlgorithm, balance_index


class TestBalanceIndex:
    def test_defined(self):
        assert balance_index([2.0, 4.0]) == 0.5

    def test_balanced_is_one(self):
        assert balance_index([3.0, 3.0, 3.0]) == 1.0

    def test_all_idle_is_nan(self):
        assert math.isnan(balance_index([0.0, 0.0]))

    def test_one_idle_is_zero(self):
        assert balance_index([0.0, 5.0]) == 0.0


class TestConfiguration:
    def test_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            SwitchingAlgorithm(low=0.6, high=0.5)
        with pytest.raises(ConfigurationError):
            SwitchingAlgorithm(low=-0.1, high=0.5)
        with pytest.raises(ConfigurationError):
            SwitchingAlgorithm(low=0.2, high=1.5)

    def test_repr(self):
        assert "low=0.4" in repr(SwitchingAlgorithm(low=0.4, high=0.49))


class TestSwitching:
    def test_first_task_always_mct(self, square_etc):
        swa = SwitchingAlgorithm()
        swa.map_tasks(square_etc)
        assert swa.last_trace[0].heuristic == "mct"
        assert math.isnan(swa.last_trace[0].bi)

    def test_degenerate_low_high_tracks_mct(self):
        """With high=1.0 nothing can exceed it, so SWA stays MCT."""
        etc = generate_range_based(20, 4, rng=0)
        swa = SwitchingAlgorithm(low=0.0, high=1.0)
        # BI can equal 1.0 but the switch needs BI > high, so never fires
        assert swa.map_tasks(etc).to_dict() == MCT().map_tasks(etc).to_dict()

    def test_switches_to_met_when_balanced(self):
        # two machines; first task leaves BI 0; second task balances the
        # system so the third sees BI above high and uses MET
        etc = ETCMatrix(
            [[4.0, 9.0], [9.0, 4.0], [1.0, 3.0]],
        )
        swa = SwitchingAlgorithm(low=0.2, high=0.8)
        swa.map_tasks(etc)
        assert [s.heuristic for s in swa.last_trace] == ["mct", "mct", "met"]

    def test_switches_back_to_mct_when_unbalanced(self):
        etc = ETCMatrix(
            [[4.0, 9.0], [9.0, 4.0], [8.0, 9.0], [1.0, 1.5]],
        )
        swa = SwitchingAlgorithm(low=0.5, high=0.8)
        swa.map_tasks(etc)
        heuristics = [s.heuristic for s in swa.last_trace]
        assert heuristics[2] == "met"
        assert heuristics[3] == "mct"  # BI dropped below low after MET burst

    def test_paper_example_heuristic_trace(self, swa_etc):
        swa = SwitchingAlgorithm(low=0.40, high=0.49)
        mapping = swa.map_tasks(swa_etc)
        assert [s.heuristic for s in swa.last_trace] == [
            "mct",
            "mct",
            "mct",
            "mct",
            "met",
        ]
        bis = [s.bi for s in swa.last_trace]
        assert math.isnan(bis[0])
        assert bis[1:] == pytest.approx([0.0, 0.0, 1 / 3, 2 / 3])
        assert mapping.machine_finish_times() == {"m1": 6.0, "m2": 5.0, "m3": 5.0}

    def test_trace_machine_matches_mapping(self, square_etc):
        swa = SwitchingAlgorithm()
        mapping = swa.map_tasks(square_etc)
        for step in swa.last_trace:
            assert mapping.machine_of(step.task) == step.machine

    def test_deterministic_reruns_identical(self):
        for seed in range(5):
            etc = generate_range_based(40, 6, rng=seed)
            a = SwitchingAlgorithm().map_tasks(etc)
            b = SwitchingAlgorithm().map_tasks(etc)
            assert a.to_dict() == b.to_dict()

    def test_uses_both_heuristics_on_balanced_loads(self):
        """On instances that repeatedly balance, SWA must actually
        alternate: both MET and MCT appear in the trace."""
        etc = generate_range_based(60, 4, rng=1)
        swa = SwitchingAlgorithm(low=0.3, high=0.6)
        swa.map_tasks(etc)
        used = {s.heuristic for s in swa.last_trace}
        assert used == {"mct", "met"}

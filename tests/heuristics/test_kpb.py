"""Unit tests for the K-Percent Best heuristic."""

import pytest

from repro.etc.generation import generate_range_based
from repro.etc.matrix import ETCMatrix
from repro.exceptions import ConfigurationError
from repro.heuristics import MCT, MET, KPercentBest, kpb_subset_size


class TestSubsetSize:
    @pytest.mark.parametrize(
        "machines,percent,expected",
        [
            (3, 70.0, 2),   # the paper's example: best two of three
            (2, 70.0, 1),   # and one of two after the first iteration
            (3, 100.0, 3),  # k=100% -> MCT
            (4, 25.0, 1),   # k=100/M -> MET
            (10, 1.0, 1),   # clamped to at least one machine
            (5, 99.9, 4),   # floor semantics
        ],
    )
    def test_values(self, machines, percent, expected):
        assert kpb_subset_size(machines, percent) == expected

    def test_rejects_zero_machines(self):
        with pytest.raises(ConfigurationError):
            kpb_subset_size(0, 50.0)


class TestConfiguration:
    def test_invalid_percent(self):
        with pytest.raises(ConfigurationError):
            KPercentBest(percent=0.0)
        with pytest.raises(ConfigurationError):
            KPercentBest(percent=150.0)

    def test_repr_shows_percent(self):
        assert "70.0" in repr(KPercentBest(percent=70.0))


class TestEquivalences:
    """Paper Section 3.6: KPB interpolates between MET and MCT."""

    def test_k100_equals_mct(self):
        etc = generate_range_based(25, 5, rng=0)
        kpb = KPercentBest(percent=100.0).map_tasks(etc)
        mct = MCT().map_tasks(etc)
        assert kpb.to_dict() == mct.to_dict()

    def test_k_1_over_m_equals_met(self):
        etc = generate_range_based(25, 5, rng=1)
        kpb = KPercentBest(percent=100.0 / etc.num_machines).map_tasks(etc)
        met = MET().map_tasks(etc)
        assert kpb.to_dict() == met.to_dict()


class TestSubsets:
    def test_subset_for_contains_fastest(self, square_etc):
        kpb = KPercentBest(percent=50.0)
        for task in square_etc.tasks:
            subset = kpb.subset_for(square_etc, task)
            row = square_etc.task_row(task)
            fastest = square_etc.machines[int(row.argmin())]
            assert fastest in subset

    def test_assignment_always_inside_subset(self):
        etc = generate_range_based(30, 6, rng=2)
        kpb = KPercentBest(percent=50.0)
        mapping = kpb.map_tasks(etc)
        for step in kpb.last_trace:
            assert step.machine in step.subset
        assert mapping.is_complete()

    def test_etc_boundary_tie_stable_to_lower_index(self):
        etc = ETCMatrix([[2.0, 1.0, 2.0]])  # m0 and m2 tie for 2nd place
        kpb = KPercentBest(percent=67.0)  # subset of 2
        kpb.map_tasks(etc)
        assert kpb.last_trace[0].subset == ("m0", "m1")

    def test_paper_example_original_subsets(self, kpb_etc):
        kpb = KPercentBest(percent=70.0)
        mapping = kpb.map_tasks(kpb_etc)
        assert mapping.machine_finish_times() == {
            "m1": 6.0,
            "m2": 5.0,
            "m3": 5.5,
        }
        subsets = [set(step.subset) for step in kpb.last_trace]
        assert subsets == [
            {"m1", "m2"},
            {"m2", "m3"},
            {"m2", "m3"},
            {"m2", "m3"},
            {"m2", "m3"},
        ]

    def test_trace_length_matches_tasks(self, square_etc):
        kpb = KPercentBest(percent=70.0)
        kpb.map_tasks(square_etc)
        assert len(kpb.last_trace) == square_etc.num_tasks

"""Unit tests for Segmented Min-Min, Simulated Annealing and Tabu Search."""

import numpy as np
import pytest

from repro.core.iterative import IterativeScheduler
from repro.core.seeding import SeededIterativeScheduler
from repro.core.validation import validate_mapping
from repro.etc.generation import Consistency, generate_range_based
from repro.etc.matrix import ETCMatrix
from repro.exceptions import ConfigurationError
from repro.heuristics import (
    MinMin,
    SegmentedMinMin,
    SimulatedAnnealing,
    TabuSearch,
    get_heuristic,
)


class TestSegmentedMinMin:
    def test_registered(self):
        assert isinstance(get_heuristic("segmented-min-min"), SegmentedMinMin)

    def test_configuration_validation(self):
        with pytest.raises(ConfigurationError):
            SegmentedMinMin(segments=0)
        with pytest.raises(ConfigurationError):
            SegmentedMinMin(key="median")

    def test_one_segment_equals_minmin_when_order_is_irrelevant(self):
        """With a single segment covering all tasks, segmented Min-Min
        IS Min-Min over the whole set — identical finish times (the
        commit *order* differs, but the greedy pair choices coincide on
        tie-free instances)."""
        etc = generate_range_based(20, 4, rng=0)
        seg = SegmentedMinMin(segments=1).map_tasks(etc)
        mm = MinMin().map_tasks(etc)
        assert seg.to_dict() == mm.to_dict()

    def test_segments_clamped_to_task_count(self):
        etc = ETCMatrix([[1.0, 2.0], [2.0, 1.0]])
        mapping = SegmentedMinMin(segments=10).map_tasks(etc)
        assert mapping.is_complete()

    @pytest.mark.parametrize("key", ["average", "minimum", "maximum"])
    def test_all_keys_produce_valid_mappings(self, key):
        etc = generate_range_based(25, 5, rng=1)
        mapping = SegmentedMinMin(segments=4, key=key).map_tasks(etc)
        validate_mapping(mapping)
        assert mapping.is_complete()

    def test_beats_minmin_on_consistent_instances(self):
        """Wu & Shu's headline result: segmentation helps on consistent
        matrices (on average over an ensemble)."""
        wins = 0
        total = 12
        for seed in range(total):
            etc = generate_range_based(
                64, 8, consistency=Consistency.CONSISTENT, rng=seed
            )
            seg = SegmentedMinMin(segments=4).map_tasks(etc).makespan()
            mm = MinMin().map_tasks(etc).makespan()
            wins += seg < mm
        assert wins > total / 2

    def test_descending_key_order_within_first_segment(self):
        etc = generate_range_based(12, 3, rng=2)
        seg = SegmentedMinMin(segments=3)
        mapping = seg.map_tasks(etc)
        first_segment_tasks = [a.task for a in mapping.assignments[:4]]
        keys = etc.values.mean(axis=1)
        cutoff = sorted(keys, reverse=True)[3]
        for task in first_segment_tasks:
            assert keys[etc.task_index(task)] >= cutoff - 1e-12

    def test_repr(self):
        assert "segments=4" in repr(SegmentedMinMin())


class TestSimulatedAnnealing:
    def test_registered(self):
        assert isinstance(get_heuristic("simulated-annealing"), SimulatedAnnealing)

    def test_configuration_validation(self):
        with pytest.raises(ConfigurationError):
            SimulatedAnnealing(steps=-1)
        with pytest.raises(ConfigurationError):
            SimulatedAnnealing(cooling=1.0)
        with pytest.raises(ConfigurationError):
            SimulatedAnnealing(cooling=0.0)

    def test_seeded_reproducible(self, square_etc):
        a = SimulatedAnnealing(steps=300, rng=5).map_tasks(square_etc)
        b = SimulatedAnnealing(steps=300, rng=5).map_tasks(square_etc)
        assert a.to_dict() == b.to_dict()

    def test_complete_and_valid(self, square_etc):
        mapping = SimulatedAnnealing(steps=200, rng=0).map_tasks(square_etc)
        validate_mapping(mapping)
        assert mapping.is_complete()

    def test_improves_with_budget(self):
        etc = generate_range_based(30, 5, rng=3)
        cold = SimulatedAnnealing(steps=0, rng=1).map_tasks(etc).makespan()
        hot = SimulatedAnnealing(steps=5000, rng=1).map_tasks(etc).makespan()
        assert hot < cold

    def test_finds_optimum_on_trivial_instance(self):
        etc = ETCMatrix([[1.0, 10.0], [10.0, 1.0]])
        mapping = SimulatedAnnealing(steps=500, rng=0).map_tasks(etc)
        assert mapping.makespan() == pytest.approx(1.0)

    def test_seed_never_lost(self, square_etc):
        """Best-so-far elitism: output <= seed makespan."""
        seed_map = MinMin().map_tasks(square_etc).to_dict()
        out = SimulatedAnnealing(steps=300, rng=0).map_tasks(
            square_etc, seed_mapping=seed_map
        )
        from repro.core.seeding import replay_mapping

        seed_span = replay_mapping(square_etc, None, seed_map).makespan()
        assert out.makespan() <= seed_span + 1e-9

    def test_supports_seeding_flag(self):
        assert SimulatedAnnealing().supports_seeding

    def test_iterative_with_seeding_monotone(self):
        etc = generate_range_based(15, 4, rng=4)
        sa = SimulatedAnnealing(steps=300, rng=2)
        result = IterativeScheduler(sa, seed_across_iterations=True).run(etc)
        spans = result.makespans()
        assert all(b <= a + 1e-9 for a, b in zip(spans, spans[1:]))


class TestTabuSearch:
    def test_registered(self):
        assert isinstance(get_heuristic("tabu-search"), TabuSearch)

    def test_configuration_validation(self):
        with pytest.raises(ConfigurationError):
            TabuSearch(max_hops=-1)
        with pytest.raises(ConfigurationError):
            TabuSearch(tabu_size=0)

    def test_seeded_reproducible(self, square_etc):
        a = TabuSearch(max_hops=50, rng=5).map_tasks(square_etc)
        b = TabuSearch(max_hops=50, rng=5).map_tasks(square_etc)
        assert a.to_dict() == b.to_dict()

    def test_complete_and_valid(self, square_etc):
        mapping = TabuSearch(max_hops=50, rng=0).map_tasks(square_etc)
        validate_mapping(mapping)
        assert mapping.is_complete()

    def test_short_hops_reach_local_optimum(self):
        """After the search, no single-task reassignment of the output
        can strictly improve the makespan... unless the budget ran out
        mid-descent; with a generous budget on a small instance the
        output must be 1-swap optimal."""
        etc = generate_range_based(10, 3, rng=6)
        mapping = TabuSearch(max_hops=300, rng=0).map_tasks(etc)
        finish = mapping.finish_time_vector()
        span = finish.max()
        vec = mapping.assignment_vector()
        for task_idx in range(etc.num_tasks):
            for machine_idx in range(etc.num_machines):
                if machine_idx == vec[task_idx]:
                    continue
                trial = finish.copy()
                trial[vec[task_idx]] -= etc.values[task_idx, vec[task_idx]]
                trial[machine_idx] += etc.values[task_idx, machine_idx]
                assert trial.max() >= span - 1e-9

    def test_finds_optimum_on_trivial_instance(self):
        etc = ETCMatrix([[1.0, 10.0], [10.0, 1.0]])
        mapping = TabuSearch(max_hops=50, rng=0).map_tasks(etc)
        assert mapping.makespan() == pytest.approx(1.0)

    def test_seed_never_lost(self, square_etc):
        seed_map = MinMin().map_tasks(square_etc).to_dict()
        out = TabuSearch(max_hops=50, rng=0).map_tasks(
            square_etc, seed_mapping=seed_map
        )
        from repro.core.seeding import replay_mapping

        seed_span = replay_mapping(square_etc, None, seed_map).makespan()
        assert out.makespan() <= seed_span + 1e-9

    def test_long_hop_avoids_tabu_patterns(self):
        rng = np.random.default_rng(0)
        banned = TabuSearch._long_hop(rng, 3, 2, [])
        out = TabuSearch._long_hop(rng, 3, 2, [banned.tobytes()])
        assert out.tobytes() != banned.tobytes()


class TestSearchHeuristicsInIterativeTechnique:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: SegmentedMinMin(segments=3),
            lambda: SimulatedAnnealing(steps=200, rng=0),
            lambda: TabuSearch(max_hops=50, rng=0),
        ],
        ids=["segmented", "sa", "tabu"],
    )
    def test_runs_under_both_schedulers(self, factory):
        etc = generate_range_based(12, 4, rng=7)
        plain = IterativeScheduler(factory()).run(etc)
        assert plain.num_iterations >= 1
        seeded = SeededIterativeScheduler(factory()).run(etc)
        assert not seeded.makespan_increased()

"""Unit tests for the list-based heuristics: MET, MCT, OLB, random."""

import numpy as np
import pytest

from repro.core.ties import RandomTieBreaker, ScriptedTieBreaker
from repro.etc.generation import generate_range_based
from repro.etc.matrix import ETCMatrix
from repro.heuristics import MCT, MET, OLB, RandomMapper


class TestMET:
    def test_each_task_on_fastest_machine(self, square_etc):
        mapping = MET().map_tasks(square_etc)
        for task in square_etc.tasks:
            row = square_etc.task_row(task)
            assert square_etc.etc(task, mapping.machine_of(task)) == row.min()

    def test_load_oblivious(self):
        """All tasks pile onto the single fastest machine."""
        etc = ETCMatrix([[1.0, 5.0], [2.0, 9.0], [1.0, 7.0]])
        mapping = MET().map_tasks(etc)
        assert all(mapping.machine_of(t) == "m0" for t in etc.tasks)
        assert mapping.machine_finish_times() == {"m0": 4.0, "m1": 0.0}

    def test_ignores_ready_times(self, square_etc):
        busy = MET().map_tasks(square_etc, {"m0": 1e6})
        idle = MET().map_tasks(square_etc)
        assert busy.to_dict() == idle.to_dict()

    def test_tie_respects_policy(self):
        etc = ETCMatrix([[3.0, 3.0]])
        low = MET().map_tasks(etc)
        assert low.machine_of("t0") == "m0"
        scripted = MET().map_tasks(etc, tie_breaker=ScriptedTieBreaker([1]))
        assert scripted.machine_of("t0") == "m1"

    def test_paper_example_original(self, mct_met_etc):
        mapping = MET().map_tasks(mct_met_etc)
        assert mapping.to_dict() == {"t1": "m1", "t2": "m2", "t3": "m3", "t4": "m2"}


class TestMCT:
    def test_greedy_min_completion(self, square_etc):
        mapping = MCT().map_tasks(square_etc)
        # replay: every assignment must have been a min-CT choice
        ready = dict.fromkeys(square_etc.machines, 0.0)
        for a in mapping.assignments:
            cts = {m: ready[m] + square_etc.etc(a.task, m) for m in square_etc.machines}
            assert cts[a.machine] == pytest.approx(min(cts.values()))
            ready[a.machine] = a.completion

    def test_respects_ready_times(self):
        etc = ETCMatrix([[1.0, 5.0]])
        mapping = MCT().map_tasks(etc, {"m0": 10.0})
        assert mapping.machine_of("t0") == "m1"

    def test_balances_unlike_met(self):
        etc = ETCMatrix([[1.0, 1.5], [1.0, 1.5], [1.0, 1.5], [1.0, 1.5]])
        mapping = MCT().map_tasks(etc)
        finish = mapping.machine_finish_times()
        assert finish["m1"] > 0.0  # MCT spills onto the slower machine

    def test_task_list_order_is_row_order(self, square_etc):
        mapping = MCT().map_tasks(square_etc)
        assert [a.task for a in mapping.assignments] == list(square_etc.tasks)

    def test_paper_example_original(self, mct_met_etc):
        mapping = MCT().map_tasks(mct_met_etc)
        assert mapping.machine_finish_times() == {"m1": 4.0, "m2": 3.0, "m3": 3.0}

    def test_random_ties_seeded(self, mct_met_etc):
        a = MCT().map_tasks(mct_met_etc, tie_breaker=RandomTieBreaker(rng=0))
        b = MCT().map_tasks(mct_met_etc, tie_breaker=RandomTieBreaker(rng=0))
        assert a.to_dict() == b.to_dict()


class TestOLB:
    def test_round_robins_on_equal_ready(self):
        etc = ETCMatrix(np.full((4, 2), 3.0))
        mapping = OLB().map_tasks(etc)
        machines = [mapping.machine_of(t) for t in etc.tasks]
        assert machines == ["m0", "m1", "m0", "m1"]

    def test_ignores_etc_values(self):
        # m1 is terrible for everything, but it is idle first
        etc = ETCMatrix([[1.0, 100.0], [1.0, 100.0]])
        mapping = OLB().map_tasks(etc, {"m0": 50.0})
        assert mapping.machine_of("t0") == "m1"

    def test_picks_earliest_ready(self, square_etc):
        mapping = OLB().map_tasks(square_etc)
        ready = dict.fromkeys(square_etc.machines, 0.0)
        for a in mapping.assignments:
            assert ready[a.machine] == pytest.approx(min(ready.values()))
            ready[a.machine] = a.completion


class TestRandomMapper:
    def test_seeded_reproducible(self, square_etc):
        a = RandomMapper(rng=7).map_tasks(square_etc)
        b = RandomMapper(rng=7).map_tasks(square_etc)
        assert a.to_dict() == b.to_dict()

    def test_different_seeds_differ_somewhere(self):
        etc = generate_range_based(30, 6, rng=0)
        a = RandomMapper(rng=1).map_tasks(etc)
        b = RandomMapper(rng=2).map_tasks(etc)
        assert a.to_dict() != b.to_dict()

    def test_spreads_over_machines(self):
        etc = generate_range_based(200, 4, rng=0)
        mapping = RandomMapper(rng=0).map_tasks(etc)
        used = {mapping.machine_of(t) for t in etc.tasks}
        assert used == set(etc.machines)

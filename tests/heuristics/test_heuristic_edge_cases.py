"""Edge-case behaviours across heuristics: degenerate shapes, extreme
parameters, and interactions the main suites don't reach."""

import numpy as np
import pytest

from repro.core.iterative import IterativeScheduler
from repro.core.ties import RandomTieBreaker, ScriptedTieBreaker
from repro.core.validation import validate_mapping
from repro.etc.generation import generate_range_based
from repro.etc.matrix import ETCMatrix
from repro.heuristics import (
    Duplex,
    Genitor,
    KPercentBest,
    MCT,
    MET,
    MinMin,
    OLB,
    SegmentedMinMin,
    SimulatedAnnealing,
    Sufferage,
    SwitchingAlgorithm,
    TabuSearch,
    get_heuristic,
    heuristic_names,
)


@pytest.fixture
def single_task():
    return ETCMatrix([[3.0, 1.0, 2.0]])


@pytest.fixture
def single_machine():
    return ETCMatrix([[2.0], [4.0], [1.0]])


class TestDegenerateShapes:
    @pytest.mark.parametrize("name", sorted(set(heuristic_names()) - {"genitor",
                             "random", "simulated-annealing", "tabu-search",
                             "gsa", "branch-and-bound"}))
    def test_single_task_goes_somewhere_sensible(self, name, single_task):
        mapping = get_heuristic(name).map_tasks(single_task)
        assert mapping.is_complete()
        validate_mapping(mapping)

    @pytest.mark.parametrize("name", ["met", "mct", "min-min", "sufferage",
                                      "k-percent-best", "switching-algorithm"])
    def test_single_task_picks_fastest_when_idle(self, name, single_task):
        """With one task and idle machines every CT-aware heuristic must
        pick the minimum-ETC machine."""
        mapping = get_heuristic(name).map_tasks(single_task)
        assert mapping.machine_of("t0") == "m1"

    @pytest.mark.parametrize(
        "name", ["met", "mct", "olb", "min-min", "max-min", "duplex",
                 "sufferage", "k-percent-best", "switching-algorithm",
                 "segmented-min-min"]
    )
    def test_single_machine_is_forced(self, name, single_machine):
        mapping = get_heuristic(name).map_tasks(single_machine)
        assert all(
            mapping.machine_of(t) == "m0" for t in single_machine.tasks
        )
        assert mapping.makespan() == 7.0

    def test_one_by_one_instance(self):
        etc = ETCMatrix([[5.0]])
        for name in ("mct", "min-min", "sufferage", "olb"):
            mapping = get_heuristic(name).map_tasks(etc)
            assert mapping.makespan() == 5.0

    def test_iterative_on_single_machine_is_one_iteration(self, single_machine):
        result = IterativeScheduler(MCT()).run(single_machine)
        assert result.num_iterations == 1


class TestExtremeParameters:
    def test_kpb_percent_exactly_at_met_boundary(self):
        etc = generate_range_based(10, 4, rng=0)
        met_like = KPercentBest(percent=25.0).map_tasks(etc)
        assert met_like.to_dict() == MET().map_tasks(etc).to_dict()

    def test_swa_low_zero_never_switches_back(self):
        """low=0 means BI < low is impossible; once MET, always MET."""
        etc = generate_range_based(40, 4, rng=1)
        swa = SwitchingAlgorithm(low=0.0, high=0.3)
        swa.map_tasks(etc)
        heuristics = [s.heuristic for s in swa.last_trace]
        if "met" in heuristics:
            first_met = heuristics.index("met")
            assert all(h == "met" for h in heuristics[first_met:])

    def test_segmented_minmin_segments_equal_tasks(self):
        """One task per segment = largest-key-first greedy placement."""
        etc = generate_range_based(6, 3, rng=2)
        mapping = SegmentedMinMin(segments=6).map_tasks(etc)
        keys = etc.values.mean(axis=1)
        order = [etc.task_index(a.task) for a in mapping.assignments]
        assert all(
            keys[a] >= keys[b] - 1e-12 for a, b in zip(order, order[1:])
        )

    def test_genitor_population_two(self):
        etc = generate_range_based(8, 3, rng=3)
        mapping = Genitor(population_size=2, iterations=50, rng=0).map_tasks(etc)
        validate_mapping(mapping)

    def test_sa_zero_steps_returns_start(self, square_etc):
        from repro.core.seeding import replay_mapping

        seed_map = MinMin().map_tasks(square_etc).to_dict()
        out = SimulatedAnnealing(steps=0, rng=0).map_tasks(
            square_etc, seed_mapping=seed_map
        )
        assert out.to_dict() == seed_map

    def test_tabu_zero_hops_returns_start(self, square_etc):
        seed_map = MinMin().map_tasks(square_etc).to_dict()
        out = TabuSearch(max_hops=0, rng=0).map_tasks(
            square_etc, seed_mapping=seed_map
        )
        assert out.to_dict() == seed_map


class TestTieInteractions:
    def test_scripted_breaker_errors_surface(self, square_etc):
        from repro.exceptions import ConfigurationError

        etc = ETCMatrix([[2.0, 2.0]])
        with pytest.raises(ConfigurationError):
            MCT().map_tasks(etc, tie_breaker=ScriptedTieBreaker([5]))

    def test_random_breaker_stream_shared_across_iterations(self):
        """One seeded stream drives the whole iterative run — replaying
        with the same seed reproduces it exactly."""
        etc = ETCMatrix(
            np.random.default_rng(0).integers(1, 4, size=(8, 3)).astype(float)
        )
        runs = [
            IterativeScheduler(
                MinMin(), tie_breaker=RandomTieBreaker(rng=123)
            ).run(etc).final_finish_times
            for _ in range(2)
        ]
        assert runs[0] == runs[1]

    def test_duplex_with_random_ties_still_complete(self):
        etc = generate_range_based(12, 4, rng=4)
        mapping = Duplex().map_tasks(etc, tie_breaker=RandomTieBreaker(rng=0))
        assert mapping.is_complete()

    def test_olb_tie_on_equal_ready_goes_low_index(self):
        etc = ETCMatrix([[1.0, 1.0], [1.0, 1.0]])
        mapping = OLB().map_tasks(etc)
        assert mapping.machine_of("t0") == "m0"
        assert mapping.machine_of("t1") == "m1"


class TestSufferageEdge:
    def test_all_tasks_prefer_one_machine(self):
        """Maximal contention: M-1 tasks displaced every pass."""
        values = np.full((6, 3), 50.0)
        values[:, 0] = np.arange(1.0, 7.0)
        etc = ETCMatrix(values)
        s = Sufferage()
        mapping = s.map_tasks(etc)
        assert mapping.is_complete()
        # the machine everyone prefers fills up across passes
        assert len(mapping.machine_tasks("m0")) >= 1

    def test_sufferage_with_nonzero_ready(self):
        etc = generate_range_based(10, 3, rng=5)
        mapping = Sufferage().map_tasks(etc, [100.0, 0.0, 0.0])
        validate_mapping(mapping)
        # m0 heavily preloaded: it should attract little work
        assert len(mapping.machine_tasks("m0")) <= len(
            mapping.machine_tasks("m1")
        ) + len(mapping.machine_tasks("m2"))

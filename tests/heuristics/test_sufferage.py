"""Unit tests for the Sufferage heuristic."""

import numpy as np

from repro.core.ties import TieBreaker
from repro.etc.generation import generate_range_based
from repro.etc.matrix import ETCMatrix
from repro.heuristics.sufferage import Sufferage, _sufferage_value


class TestSufferageValue:
    def test_two_machines(self):
        assert _sufferage_value(np.array([3.0, 5.0]), 0) == 2.0

    def test_best_not_first(self):
        assert _sufferage_value(np.array([5.0, 3.0, 4.0]), 1) == 1.0

    def test_single_machine_is_zero(self):
        assert _sufferage_value(np.array([7.0]), 0) == 0.0

    def test_tied_best_gives_zero(self):
        assert _sufferage_value(np.array([2.0, 2.0, 9.0]), 0) == 0.0


class TestContests:
    def test_high_sufferage_wins_contest(self):
        # both tasks prefer m0; t1 suffers more and wins the pass-1
        # contest; t0 re-enters pass 2 where m1 now finishes it earlier
        etc = ETCMatrix([[2.0, 2.5], [1.0, 9.0]])
        s = Sufferage()
        mapping = s.map_tasks(etc)
        assert mapping.machine_of("t1") == "m0"
        assert mapping.machine_of("t0") == "m1"

    def test_rejected_task_may_return_to_same_machine(self):
        """A task that loses the pass-1 contest is re-evaluated with
        updated ready times — it can still land on the contested machine
        when that remains its earliest completion."""
        etc = ETCMatrix([[1.0, 9.0], [1.0, 5.0]])
        mapping = Sufferage().map_tasks(etc)
        assert mapping.machine_of("t0") == "m0"  # claims (sufferage 8 > 4)
        assert mapping.machine_of("t1") == "m0"  # pass 2: CT 2 < 5

    def test_incumbent_keeps_on_tie(self):
        # identical rows -> equal sufferage; the earlier-listed task
        # keeps the machine in pass 1 (strict "less than" contest)
        etc = ETCMatrix([[1.0, 5.0], [1.0, 5.0]])
        s = Sufferage()
        s.map_tasks(etc)
        outcomes = {d.task: d.outcome for d in s.last_trace[0].decisions}
        assert outcomes["t0"] == "claimed"
        assert outcomes["t1"] == "rejected"

    def test_displaced_task_returns_next_pass(self):
        etc = ETCMatrix([[1.0, 2.0], [1.0, 9.0]])
        s = Sufferage()
        s.map_tasks(etc)
        decisions0 = s.last_trace[0].decisions
        outcomes = {d.task: d.outcome for d in decisions0}
        assert outcomes["t0"] == "claimed"
        assert outcomes["t1"] == "displaced"
        # t0 must be re-examined in pass 2
        assert s.last_trace[1].decisions[0].task == "t0"

    def test_one_commit_per_machine_per_pass(self):
        etc = generate_range_based(12, 3, rng=0)
        s = Sufferage()
        s.map_tasks(etc)
        for p in s.last_trace:
            machines = [m for _, m in p.committed]
            assert len(machines) == len(set(machines))

    def test_all_tasks_mapped_exactly_once(self):
        etc = generate_range_based(30, 5, rng=1)
        mapping = Sufferage().map_tasks(etc)
        assert mapping.is_complete()

    def test_progress_guaranteed(self):
        """Every pass commits at least one task (no livelock)."""
        etc = generate_range_based(25, 4, rng=2)
        s = Sufferage()
        s.map_tasks(etc)
        assert all(len(p.committed) >= 1 for p in s.last_trace)

    def test_single_machine_degenerates_to_list_order(self):
        etc = ETCMatrix([[2.0], [3.0], [1.0]])
        mapping = Sufferage().map_tasks(etc)
        assert [a.task for a in mapping.assignments] == ["t0", "t1", "t2"]
        assert mapping.makespan() == 6.0


class TestTrace:
    def test_trace_replaced_per_run(self, square_etc):
        s = Sufferage()
        s.map_tasks(square_etc)
        first = s.last_trace
        s.map_tasks(square_etc)
        assert s.last_trace is not first  # fresh tuple per run

    def test_trace_commits_match_mapping(self, square_etc):
        s = Sufferage()
        mapping = s.map_tasks(square_etc)
        committed = {t: m for p in s.last_trace for t, m in p.committed}
        assert committed == mapping.to_dict()

    def test_paper_example_passes(self, sufferage_etc):
        s = Sufferage()
        mapping = s.map_tasks(sufferage_etc)
        assert mapping.machine_finish_times() == {
            "m1": 10.0,
            "m2": 9.5,
            "m3": 9.5,
        }
        assert len(s.last_trace) >= 2  # multi-pass, as in Table 16

    def test_ready_times_shift_decisions(self):
        etc = ETCMatrix([[1.0, 2.0]])
        loaded = Sufferage().map_tasks(etc, {"m0": 5.0})
        assert loaded.machine_of("t0") == "m1"


class TestVectorisedFastPath:
    """The deterministic fast path must be semantically identical to the
    per-task reference path (same policy routed through TieBreaker)."""

    class _RefDeterministic(TieBreaker):
        deterministic = True

        def choose(self, candidates):
            return int(np.asarray(candidates).min())

    def test_equivalent_on_random_ensemble(self):
        for seed in range(10):
            etc = generate_range_based(20, 5, rng=seed)
            fast = Sufferage().map_tasks(etc)
            slow = Sufferage().map_tasks(etc, tie_breaker=self._RefDeterministic())
            assert fast.to_dict() == slow.to_dict(), seed

    def test_equivalent_on_tie_heavy_integer_grid(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            etc = ETCMatrix(rng.integers(1, 4, size=(10, 3)).astype(float))
            fast = Sufferage().map_tasks(etc)
            slow = Sufferage().map_tasks(etc, tie_breaker=self._RefDeterministic())
            assert fast.to_dict() == slow.to_dict()

    def test_equivalent_traces(self, sufferage_etc):
        fast = Sufferage()
        fast.map_tasks(sufferage_etc)
        slow = Sufferage()
        slow.map_tasks(sufferage_etc, tie_breaker=self._RefDeterministic())
        assert [p.committed for p in fast.last_trace] == [
            p.committed for p in slow.last_trace
        ]

    def test_float_noise_tie_goes_to_lower_index(self):
        """The fast path must use tolerance ties (lowest index), not a
        plain argmin: index 1 holds the exact minimum here but index 0
        is within tolerance and must win."""
        base = 2.0
        etc = ETCMatrix([[base * (1 + 1e-13), base, 9.0]])
        mapping = Sufferage().map_tasks(etc)
        assert mapping.machine_of("t0") == "m0"

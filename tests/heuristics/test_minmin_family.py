"""Unit tests for Min-Min, Max-Min and Duplex."""

import numpy as np
import pytest

from repro.core.ties import ScriptedTieBreaker
from repro.etc.generation import generate_range_based
from repro.etc.matrix import ETCMatrix
from repro.heuristics import Duplex, MaxMin, MinMin, minmin_round_table
from repro.core.schedule import Mapping


class TestMinMin:
    def test_first_commit_is_global_min_pair(self, square_etc):
        mapping = MinMin().map_tasks(square_etc)
        first = mapping.assignments[0]
        assert first.completion == pytest.approx(square_etc.values.min())

    def test_two_phase_semantics(self, square_etc):
        """Replay: each committed pair must be the min over per-task
        minimum completion times at that point."""
        mapping = MinMin().map_tasks(square_etc)
        ready = np.zeros(square_etc.num_machines)
        unmapped = set(square_etc.tasks)
        for a in mapping.assignments:
            best_cts = {
                t: (square_etc.task_row(t) + ready).min() for t in unmapped
            }
            assert a.completion == pytest.approx(min(best_cts.values()))
            ready[square_etc.machine_index(a.machine)] = a.completion
            unmapped.remove(a.task)

    def test_task_pair_tie_goes_oldest(self):
        etc = ETCMatrix([[1.0, 9.0], [1.0, 9.0]])
        mapping = MinMin().map_tasks(etc)
        assert mapping.assignments[0].task == "t0"

    def test_machine_tie_respects_policy(self):
        etc = ETCMatrix([[2.0, 2.0]])
        assert MinMin().map_tasks(etc).machine_of("t0") == "m0"
        scripted = MinMin().map_tasks(etc, tie_breaker=ScriptedTieBreaker([1]))
        assert scripted.machine_of("t0") == "m1"

    def test_paper_example(self, minmin_etc):
        mapping = MinMin().map_tasks(minmin_etc)
        assert mapping.machine_finish_times() == {"m1": 5.0, "m2": 2.0, "m3": 4.0}
        assert mapping.to_dict() == {
            "t1": "m2",
            "t2": "m2",
            "t3": "m3",
            "t4": "m1",
        }

    def test_round_table_diagnostics(self, square_etc):
        m = Mapping(square_etc)
        m.assign("t0", "m0")
        table = minmin_round_table(m)
        assert table.shape == (3, 4)
        # row 0 corresponds to t1 with m0 loaded by t0's ETC
        assert table[0, 0] == square_etc.etc("t1", "m0") + square_etc.etc("t0", "m0")


class TestMaxMin:
    def test_first_commit_is_max_of_row_minima(self, square_etc):
        mapping = MaxMin().map_tasks(square_etc)
        first = mapping.assignments[0]
        row_minima = square_etc.values.min(axis=1)
        assert first.completion == pytest.approx(row_minima.max())

    def test_differs_from_minmin_in_general(self):
        etc = generate_range_based(20, 4, rng=0)
        assert MinMin().map_tasks(etc).to_dict() != MaxMin().map_tasks(etc).to_dict()

    def test_long_tasks_first(self, square_etc):
        mapping = MaxMin().map_tasks(square_etc)
        # the task with the largest minimum ETC must be committed first
        row_minima = {t: square_etc.task_row(t).min() for t in square_etc.tasks}
        expected_first = max(row_minima, key=row_minima.__getitem__)
        assert mapping.assignments[0].task == expected_first


class TestDuplex:
    def test_never_worse_than_either(self):
        for seed in range(5):
            etc = generate_range_based(25, 5, rng=seed)
            duplex = Duplex().map_tasks(etc).makespan()
            assert duplex <= MinMin().map_tasks(etc).makespan() + 1e-9
            assert duplex <= MaxMin().map_tasks(etc).makespan() + 1e-9

    def test_ties_pick_minmin(self):
        etc = ETCMatrix([[1.0, 1.0]])
        mapping = Duplex().map_tasks(etc)
        assert mapping.to_dict() == MinMin().map_tasks(etc).to_dict()

    def test_picks_maxmin_when_better(self):
        # Classic Max-Min-wins shape: one long task plus fillers.
        etc = ETCMatrix(
            [[10.0, 11.0], [2.0, 2.5], [2.0, 2.5], [2.0, 2.5], [2.0, 2.5]]
        )
        mm = MinMin().map_tasks(etc).makespan()
        xm = MaxMin().map_tasks(etc).makespan()
        duplex = Duplex().map_tasks(etc).makespan()
        assert duplex == pytest.approx(min(mm, xm))
        assert xm < mm  # sanity: the instance indeed favours Max-Min

"""Unit tests for the Genitor steady-state GA."""

import numpy as np
import pytest

from repro.core.iterative import IterativeScheduler
from repro.core.schedule import Mapping, finish_times_for_vector
from repro.etc.generation import generate_range_based
from repro.etc.matrix import ETCMatrix
from repro.exceptions import ConfigurationError
from repro.heuristics import Genitor, MinMin


class TestConfiguration:
    def test_rejects_tiny_population(self):
        with pytest.raises(ConfigurationError):
            Genitor(population_size=1)

    def test_rejects_negative_iterations(self):
        with pytest.raises(ConfigurationError):
            Genitor(iterations=-1)

    def test_rejects_bad_stall(self):
        with pytest.raises(ConfigurationError):
            Genitor(stall_limit=0)

    def test_repr(self):
        assert "population_size=50" in repr(Genitor())


class TestSearch:
    def test_seeded_reproducible(self, square_etc):
        a = Genitor(iterations=100, rng=3).map_tasks(square_etc)
        b = Genitor(iterations=100, rng=3).map_tasks(square_etc)
        assert a.to_dict() == b.to_dict()

    def test_complete_mapping(self, square_etc):
        mapping = Genitor(iterations=50, rng=0).map_tasks(square_etc)
        assert mapping.is_complete()

    def test_improves_over_random_start(self):
        etc = generate_range_based(30, 5, rng=0)
        zero_iter = Genitor(iterations=0, population_size=20, rng=1)
        evolved = Genitor(iterations=800, population_size=20, rng=1)
        assert (
            evolved.map_tasks(etc).makespan() < zero_iter.map_tasks(etc).makespan()
        )

    def test_finds_optimum_on_trivial_instance(self):
        # one dominant machine: optimum is everything on m0 only if it
        # still beats spreading; instead use a 2x2 exhaustive optimum.
        etc = ETCMatrix([[1.0, 10.0], [10.0, 1.0]])
        mapping = Genitor(iterations=200, rng=0).map_tasks(etc)
        assert mapping.makespan() == pytest.approx(1.0)

    def test_near_minmin_quality(self):
        """Genitor with a modest budget should at worst be close to
        Min-Min on small instances (Braun et al. found it better)."""
        etc = generate_range_based(20, 4, rng=5)
        gen_span = Genitor(iterations=1500, population_size=40, rng=2).map_tasks(
            etc
        ).makespan()
        mm_span = MinMin().map_tasks(etc).makespan()
        assert gen_span <= mm_span * 1.10

    def test_stall_limit_stops_early(self):
        etc = ETCMatrix([[1.0, 10.0], [10.0, 1.0]])
        g = Genitor(iterations=10_000, stall_limit=5, rng=0)
        mapping = g.map_tasks(etc)  # must terminate quickly
        assert mapping.is_complete()


class TestSeeding:
    def test_seed_quality_never_lost(self, square_etc):
        """Output makespan <= seed makespan (rank preservation)."""
        seed_map = MinMin().map_tasks(square_etc).to_dict()
        seed_span = _span_of(square_etc, seed_map)
        g = Genitor(iterations=50, population_size=10, rng=0)
        out = g.map_tasks(square_etc, seed_mapping=seed_map)
        assert out.makespan() <= seed_span + 1e-9

    def test_zero_iterations_returns_best_of_initial_population(self, square_etc):
        seed_map = MinMin().map_tasks(square_etc).to_dict()
        g = Genitor(iterations=0, population_size=5, rng=0)
        out = g.map_tasks(square_etc, seed_mapping=seed_map)
        # seed is in the initial population, so output can't be worse
        assert out.makespan() <= _span_of(square_etc, seed_map) + 1e-9

    def test_supports_seeding_flag(self):
        assert Genitor().supports_seeding is True

    def test_iterative_never_increases_makespan(self):
        """Paper Section 3.1: seeded Genitor iterations only improve."""
        for seed in range(3):
            etc = generate_range_based(15, 4, rng=seed)
            g = Genitor(iterations=150, population_size=20, rng=seed)
            result = IterativeScheduler(g, seed_across_iterations=True).run(etc)
            spans = result.makespans()
            assert all(b <= a + 1e-9 for a, b in zip(spans, spans[1:]))


class TestEvolveInternals:
    def test_chromosome_fitness_kernel_agrees_with_mapping(self, square_etc):
        rng = np.random.default_rng(0)
        for _ in range(5):
            chrom = rng.integers(0, 4, size=4)
            fast = finish_times_for_vector(square_etc, chrom).max()
            m = Mapping(square_etc)
            for i, t in enumerate(square_etc.tasks):
                m.assign(t, square_etc.machines[int(chrom[i])])
            assert fast == pytest.approx(m.makespan())

    def test_evolve_returns_valid_chromosome(self, square_etc):
        g = Genitor(iterations=20, rng=0)
        chrom = g.evolve(Mapping(square_etc))
        assert chrom.shape == (4,)
        assert ((chrom >= 0) & (chrom < 4)).all()


def _span_of(etc, assignment: dict) -> float:
    m = Mapping(etc)
    for t in etc.tasks:
        m.assign(t, assignment[t])
    return m.makespan()

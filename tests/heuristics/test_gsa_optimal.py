"""Unit tests for GSA and the branch-and-bound optimality oracle."""

import itertools

import numpy as np
import pytest

from repro.core.schedule import finish_times_for_vector
from repro.core.validation import validate_mapping
from repro.etc.generation import generate_range_based
from repro.etc.matrix import ETCMatrix
from repro.exceptions import ConfigurationError
from repro.heuristics import (
    BranchAndBound,
    GeneticSimulatedAnnealing,
    MinMin,
    get_heuristic,
)


class TestGSA:
    def test_registered(self):
        assert isinstance(get_heuristic("gsa"), GeneticSimulatedAnnealing)

    def test_configuration_validation(self):
        with pytest.raises(ConfigurationError):
            GeneticSimulatedAnnealing(population_size=1)
        with pytest.raises(ConfigurationError):
            GeneticSimulatedAnnealing(iterations=-1)
        with pytest.raises(ConfigurationError):
            GeneticSimulatedAnnealing(cooling=1.5)

    def test_seeded_reproducible(self, square_etc):
        a = GeneticSimulatedAnnealing(iterations=100, rng=4).map_tasks(square_etc)
        b = GeneticSimulatedAnnealing(iterations=100, rng=4).map_tasks(square_etc)
        assert a.to_dict() == b.to_dict()

    def test_complete_and_valid(self, square_etc):
        mapping = GeneticSimulatedAnnealing(iterations=100, rng=0).map_tasks(
            square_etc
        )
        validate_mapping(mapping)
        assert mapping.is_complete()

    def test_improves_with_budget(self):
        etc = generate_range_based(25, 5, rng=5)
        cold = GeneticSimulatedAnnealing(iterations=0, rng=1).map_tasks(etc)
        hot = GeneticSimulatedAnnealing(iterations=2000, rng=1).map_tasks(etc)
        assert hot.makespan() <= cold.makespan()

    def test_seed_never_lost(self, square_etc):
        """Best-ever tracking: output <= seed makespan."""
        from repro.core.seeding import replay_mapping

        seed_map = MinMin().map_tasks(square_etc).to_dict()
        out = GeneticSimulatedAnnealing(iterations=100, rng=0).map_tasks(
            square_etc, seed_mapping=seed_map
        )
        seed_span = replay_mapping(square_etc, None, seed_map).makespan()
        assert out.makespan() <= seed_span + 1e-9

    def test_population_stays_sorted_sizewise(self, square_etc):
        # indirectly: repeated runs never crash and produce valid output
        for seed in range(3):
            mapping = GeneticSimulatedAnnealing(
                population_size=4, iterations=200, rng=seed
            ).map_tasks(square_etc)
            validate_mapping(mapping)


class TestBranchAndBound:
    def test_registered(self):
        assert isinstance(get_heuristic("branch-and-bound"), BranchAndBound)

    def test_node_limit_validation(self):
        with pytest.raises(ConfigurationError):
            BranchAndBound(node_limit=0)

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_brute_force(self, seed):
        etc = generate_range_based(7, 3, rng=seed)
        bb = BranchAndBound()
        mapping = bb.map_tasks(etc)
        brute = min(
            float(finish_times_for_vector(etc, np.array(v)).max())
            for v in itertools.product(range(3), repeat=7)
        )
        assert mapping.makespan() == pytest.approx(brute)
        assert bb.proven_optimal

    def test_never_worse_than_minmin(self):
        for seed in range(5):
            etc = generate_range_based(12, 4, rng=seed)
            bb = BranchAndBound().map_tasks(etc).makespan()
            mm = MinMin().map_tasks(etc).makespan()
            assert bb <= mm + 1e-9

    def test_respects_ready_times(self):
        etc = ETCMatrix([[1.0, 1.0], [1.0, 1.0]])
        mapping = BranchAndBound().map_tasks(etc, {"m0": 100.0})
        assert mapping.machine_tasks("m0") == ()
        assert mapping.makespan() == pytest.approx(100.0)

    def test_symmetry_pruning_on_identical_machines(self):
        """With M identical machines the search must stay tiny."""
        values = np.tile(np.arange(1.0, 9.0)[:, None], (1, 4))
        etc = ETCMatrix(values)
        bb = BranchAndBound()
        bb.map_tasks(etc)
        assert bb.proven_optimal
        assert bb.nodes_expanded < 20_000

    def test_node_limit_degrades_gracefully(self):
        etc = generate_range_based(12, 4, rng=10)
        bb = BranchAndBound(node_limit=5)
        mapping = bb.map_tasks(etc)  # falls back to the incumbent
        assert mapping.is_complete()
        assert not bb.proven_optimal
        # incumbent is Min-Min, so quality is still bounded
        assert mapping.makespan() <= MinMin().map_tasks(etc).makespan() + 1e-9

    def test_search_heuristics_reach_optimum_on_small_instances(self):
        """The oracle certifies the iterative searchers: Genitor and SA
        find the optimum on small instances with a generous budget."""
        etc = generate_range_based(8, 3, rng=11)
        optimum = BranchAndBound().map_tasks(etc).makespan()
        genitor = get_heuristic(
            "genitor", iterations=3000, population_size=40, rng=1
        ).map_tasks(etc).makespan()
        sa = get_heuristic(
            "simulated-annealing", steps=20000, rng=0
        ).map_tasks(etc).makespan()
        tabu = get_heuristic(
            "tabu-search", max_hops=300, rng=0
        ).map_tasks(etc).makespan()
        assert genitor == pytest.approx(optimum)
        assert sa == pytest.approx(optimum)
        assert tabu == pytest.approx(optimum)

"""The kernel-backend registry and its construction semantics."""

import pytest

from repro.etc.matrix import ETCMatrix
from repro.exceptions import UnknownBackendError
from repro.heuristics.backends import (
    DEFAULT_BACKEND,
    KERNELED_HEURISTICS,
    BatchedBackend,
    IncrementalBackend,
    KernelBackend,
    ReferenceBackend,
    _BACKENDS,
    backend_names,
    get_backend,
    register_backend,
)
from repro.heuristics.kpb import KPercentBest
from repro.heuristics.met import MET
from repro.heuristics.minmin import MinMin
from repro.obs.tracer import CollectingTracer, use_tracer


@pytest.fixture
def batch():
    matrices = [
        ETCMatrix([[1.0, 4.0, 2.0], [3.0, 2.0, 2.0]]),
        ETCMatrix([[2.0, 2.0, 5.0], [1.0, 6.0, 3.0]]),
    ]
    return ETCMatrix.stack(matrices)


class TestRegistry:
    def test_default_backends_registered(self):
        assert backend_names() == ("batched", "incremental", "reference")

    def test_default_backend_name_is_registered(self):
        assert DEFAULT_BACKEND in backend_names()

    def test_get_backend_resolves_each_name(self):
        assert isinstance(get_backend("reference"), ReferenceBackend)
        assert isinstance(get_backend("incremental"), IncrementalBackend)
        assert isinstance(get_backend("batched"), BatchedBackend)

    def test_unknown_backend_raises_with_known_names(self):
        with pytest.raises(UnknownBackendError, match="compiled"):
            get_backend("compiled")
        with pytest.raises(UnknownBackendError, match="batched, incremental"):
            get_backend("nope")

    def test_unknown_backend_error_is_key_error(self):
        # KeyError ancestry so dict-style callers can catch it idiomatically.
        with pytest.raises(KeyError):
            get_backend("nope")

    def test_backend_instances_pass_through(self):
        backend = get_backend("reference")
        assert get_backend(backend) is backend

    def test_register_backend_requires_name(self):
        class Nameless(IncrementalBackend):
            name = ""

        with pytest.raises(UnknownBackendError):
            register_backend(Nameless())

    def test_register_backend_latest_wins(self):
        class Custom(IncrementalBackend):
            name = "custom-test-backend"

        try:
            first, second = Custom(), Custom()
            assert register_backend(first) is first
            register_backend(second)
            assert get_backend("custom-test-backend") is second
            assert "custom-test-backend" in backend_names()
        finally:
            _BACKENDS.pop("custom-test-backend", None)

    def test_repr_names_the_backend(self):
        assert "reference" in repr(get_backend("reference"))


class TestMake:
    def test_reference_forces_reference_kernels(self):
        heuristic = get_backend("reference").make("min-min")
        assert isinstance(heuristic, MinMin)
        assert heuristic.incremental is False

    def test_reference_respects_explicit_incremental(self):
        # An explicit caller choice must survive the reference default.
        heuristic = get_backend("reference").make("min-min", incremental=True)
        assert heuristic.incremental is True

    def test_incremental_keeps_registry_defaults(self):
        assert get_backend("incremental").make("min-min").incremental is True
        assert get_backend("batched").make("min-min").incremental is True

    def test_make_forwards_kwargs(self):
        heuristic = get_backend("incremental").make("k-percent-best", percent=30.0)
        assert isinstance(heuristic, KPercentBest)
        assert heuristic.percent == 30.0

    def test_reference_make_skips_flag_for_unkerneled_heuristics(self):
        # MET has a single implementation — no ``incremental`` toggle to
        # force; make() must not invent one.
        assert "met" not in KERNELED_HEURISTICS
        assert isinstance(get_backend("reference").make("met"), MET)

    def test_kernel_backend_is_abstract(self):
        with pytest.raises(TypeError):
            KernelBackend()


class TestMapBatch:
    def test_all_backends_map_batches_identically(self, batch):
        results = [
            get_backend(name).map_batch("min-min", batch)
            for name in backend_names()
        ]
        expected = [
            results[0].assignment_tuples(i) for i in range(len(batch))
        ]
        for result in results[1:]:
            assert [
                result.assignment_tuples(i) for i in range(len(batch))
            ] == expected

    def test_batched_single_instance_equals_single_kernel(self, batch):
        result = get_backend("batched").map_batch("min-min", batch)
        for index in range(len(batch)):
            mapping = MinMin().map_tasks(batch.instance(index))
            assert result.assignment_tuples(index) == [
                (a.task, a.machine, a.start, a.completion, a.order)
                for a in mapping.assignments
            ]

    def test_non_batched_backends_count_fallback(self, batch):
        tracer = CollectingTracer()
        with use_tracer(tracer):
            get_backend("incremental").map_batch("min-min", batch)
        counters = tracer.counters.as_dict()
        assert counters.get("kernels.batch.requests") == 1
        assert counters.get("kernels.batch.fallback") == 1

    def test_fill_pct_recorded_against_nominal_size(self, batch):
        tracer = CollectingTracer()
        with use_tracer(tracer):
            get_backend("batched").map_batch("min-min", batch, nominal_size=4)
        histograms = tracer.histograms.as_dict()
        assert "kernels.batch.fill_pct" in histograms
        assert "kernels.batch.size" in histograms

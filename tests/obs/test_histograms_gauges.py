"""Unit tests for the histogram and gauge metric types (PR 3)."""

import pickle

import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    TIME_BUCKETS,
    CollectingTracer,
    Gauges,
    HistogramStat,
    Histograms,
    NullTracer,
    read_jsonl,
    records_to_snapshot,
    snapshot_to_jsonl,
    write_jsonl,
)

pytestmark = pytest.mark.obs


class TestHistogramStat:
    def test_empty_shape(self):
        stat = HistogramStat.empty((1.0, 2.0, 4.0))
        assert stat.buckets == (1.0, 2.0, 4.0)
        assert stat.counts == (0, 0, 0, 0)  # 3 bounds + overflow
        assert stat.count == 0
        assert stat.mean == 0.0

    def test_rejects_empty_bounds(self):
        with pytest.raises(ValueError):
            HistogramStat.empty(())

    def test_rejects_non_increasing_bounds(self):
        with pytest.raises(ValueError):
            HistogramStat.empty((1.0, 1.0, 2.0))
        with pytest.raises(ValueError):
            HistogramStat.empty((2.0, 1.0))

    def test_observe_buckets_first_bound_geq_value(self):
        stat = HistogramStat.empty((1.0, 2.0, 4.0))
        stat = stat.observe(1.0)   # ties land in the bucket they bound
        stat = stat.observe(1.5)
        stat = stat.observe(4.0)
        stat = stat.observe(99.0)  # overflow
        assert stat.counts == (1, 1, 1, 1)
        assert stat.count == 4
        assert stat.sum == pytest.approx(105.5)
        assert stat.min == 1.0
        assert stat.max == 99.0
        assert stat.mean == pytest.approx(105.5 / 4)

    def test_combine_sums_counts(self):
        a = HistogramStat.empty((1.0, 2.0)).observe(0.5).observe(3.0)
        b = HistogramStat.empty((1.0, 2.0)).observe(1.5)
        c = a.combine(b)
        assert c.counts == (1, 1, 1)
        assert c.count == 3
        assert c.min == 0.5
        assert c.max == 3.0

    def test_combine_rejects_bucket_mismatch(self):
        a = HistogramStat.empty((1.0, 2.0))
        b = HistogramStat.empty((1.0, 3.0))
        with pytest.raises(ValueError):
            a.combine(b)

    def test_default_bucket_constants_are_valid(self):
        HistogramStat.empty(DEFAULT_BUCKETS)
        HistogramStat.empty(TIME_BUCKETS)


class TestQuantile:
    def test_empty_is_zero(self):
        assert HistogramStat.empty((1.0, 2.0)).quantile(0.5) == 0.0

    def test_rejects_out_of_range(self):
        stat = HistogramStat.empty((1.0, 2.0)).observe(1.0)
        with pytest.raises(ValueError):
            stat.quantile(-0.1)
        with pytest.raises(ValueError):
            stat.quantile(1.1)

    def test_interpolates_within_bucket(self):
        stat = HistogramStat.empty((0.0, 10.0))
        for value in (2.0, 4.0, 6.0, 8.0):
            stat = stat.observe(value)
        # all four observations sit in the (0, 10] bucket: the median
        # rank is halfway through it, so the estimate is mid-bucket.
        assert stat.quantile(0.5) == pytest.approx(5.0)

    def test_clamped_to_observed_range(self):
        stat = HistogramStat.empty((10.0, 20.0)).observe(4.0).observe(5.0)
        assert stat.quantile(0.0) >= stat.min
        assert stat.quantile(1.0) <= stat.max

    def test_overflow_bucket_resolves_to_max(self):
        stat = HistogramStat.empty((1.0,)).observe(0.5).observe(99.0)
        assert stat.quantile(1.0) == 99.0

    def test_p50_p95_ordering(self):
        stat = HistogramStat.empty(TIME_BUCKETS)
        for value in (0.001, 0.002, 0.004, 0.5, 0.9):
            stat = stat.observe(value)
        assert stat.quantile(0.5) <= stat.quantile(0.95) <= stat.max


class TestHistograms:
    def test_observe_and_get(self):
        h = Histograms()
        h.observe("depth", 2)
        h.observe("depth", 3)
        stat = h.get("depth")
        assert stat.count == 2
        assert stat.buckets == tuple(float(b) for b in DEFAULT_BUCKETS)
        assert h.get("missing") is None

    def test_buckets_fixed_by_first_observation(self):
        h = Histograms()
        h.observe("x", 0.5, buckets=(1.0, 2.0))
        h.observe("x", 1.5, buckets=(10.0, 20.0))  # ignored
        assert h.get("x").buckets == (1.0, 2.0)
        assert h.get("x").counts == (1, 1, 0)

    def test_merge_combines_and_adopts(self):
        a, b = Histograms(), Histograms()
        a.observe("shared", 1, buckets=(1.0, 2.0))
        b.observe("shared", 2, buckets=(1.0, 2.0))
        b.observe("only_b", 5)
        a.merge(b)
        assert a.get("shared").count == 2
        assert a.get("only_b").count == 1

    def test_merge_accepts_plain_mapping(self):
        a = Histograms()
        a.observe("x", 1, buckets=(1.0, 2.0))
        a.merge({"x": HistogramStat.empty((1.0, 2.0)).observe(2)})
        assert a.get("x").counts == (1, 1, 0)

    def test_as_dict_sorted_and_eq(self):
        h = Histograms()
        h.observe("zz", 1)
        h.observe("aa", 1)
        assert list(h.as_dict()) == ["aa", "zz"]
        assert list(h) == ["aa", "zz"]
        other = Histograms()
        other.observe("aa", 1)
        other.observe("zz", 1)
        assert h == other
        assert h == other.as_dict()


class TestGauges:
    def test_set_get_updates(self):
        g = Gauges()
        g.set("queue", 3)
        g.set("queue", 1)
        assert g.get("queue") == 1.0
        assert g.updates("queue") == 2
        assert g.get("missing") is None
        assert g.get("missing", -1.0) == -1.0
        assert g.updates("missing") == 0

    def test_merge_last_writer_wins(self):
        a = Gauges({"x": 1.0, "only_a": 9.0})
        b = Gauges({"x": 2.0})
        a.merge(b)
        assert a.get("x") == 2.0
        assert a.get("only_a") == 9.0
        assert a.updates("x") == 2  # one local set + one merged set

    def test_merge_plain_mapping(self):
        a = Gauges()
        a.merge({"x": 4.0})
        assert a.get("x") == 4.0

    def test_as_dict_sorted_and_eq(self):
        g = Gauges({"b": 2.0, "a": 1.0})
        assert list(g.as_dict()) == ["a", "b"]
        assert g == Gauges({"a": 1.0, "b": 2.0})
        assert g == {"a": 1.0, "b": 2.0}
        assert len(g) == 2


class TestTracerIntegration:
    def test_null_tracer_observe_gauge_inert(self):
        t = NullTracer()
        t.observe("x", 1)
        t.gauge("y", 2.0)  # no-ops, no state anywhere

    def test_collecting_tracer_records_both(self):
        t = CollectingTracer()
        t.observe("depth", 3)
        t.gauge("makespan", 17.5)
        assert t.histograms.get("depth").count == 1
        assert t.gauges.get("makespan") == 17.5

    def test_snapshot_carries_and_merges(self):
        a, b = CollectingTracer(), CollectingTracer()
        a.observe("depth", 1)
        a.gauge("g", 1.0)
        b.observe("depth", 2)
        b.gauge("g", 2.0)
        a.merge_snapshot(b.snapshot())
        assert a.histograms.get("depth").count == 2
        assert a.gauges.get("g") == 2.0  # b merged after a's own write

    def test_snapshot_is_picklable(self):
        t = CollectingTracer()
        t.observe("depth", 2)
        t.gauge("g", 3.0)
        snap = pickle.loads(pickle.dumps(t.snapshot()))
        assert snap.histograms["depth"].count == 1
        assert snap.gauges["g"] == 3.0

    def test_clear_resets(self):
        t = CollectingTracer()
        t.observe("depth", 1)
        t.gauge("g", 1.0)
        t.clear()
        assert len(t.histograms) == 0
        assert len(t.gauges) == 0


class TestExportRoundTrip:
    def _tracer(self):
        t = CollectingTracer()
        t.event("a.decision", task="t1")
        t.count("decisions")
        t.observe("depth", 2, buckets=(1.0, 2.0, 4.0))
        t.observe("depth", 9, buckets=(1.0, 2.0, 4.0))
        t.gauge("makespan", 12.25)
        with t.span("phase"):
            pass
        return t

    def test_jsonl_contains_new_record_types(self, tmp_path):
        t = self._tracer()
        path = tmp_path / "trace.jsonl"
        write_jsonl(t, path)
        records = read_jsonl(path)
        gauges = [r for r in records if r["type"] == "gauge"]
        histograms = [r for r in records if r["type"] == "histogram"]
        assert gauges == [{"type": "gauge", "name": "makespan", "value": 12.25}]
        (h,) = histograms
        assert h["name"] == "depth"
        assert h["buckets"] == [1.0, 2.0, 4.0]
        assert h["counts"] == [0, 1, 0, 1]
        assert h["count"] == 2

    def test_records_to_snapshot_inverts_export(self, tmp_path):
        t = self._tracer()
        path = tmp_path / "trace.jsonl"
        write_jsonl(t, path)
        snap = records_to_snapshot(read_jsonl(path))
        original = t.snapshot()
        assert snap.counters == original.counters
        assert snap.gauges == original.gauges
        assert snap.histograms == original.histograms
        assert snap.timers == original.timers
        assert [e.kind for e in snap.events] == [e.kind for e in original.events]

    def test_records_to_snapshot_rejects_unknown_type(self):
        with pytest.raises(ValueError):
            records_to_snapshot([{"type": "mystery"}])

    def test_export_deterministic_with_new_types(self):
        t = self._tracer()
        assert snapshot_to_jsonl(t) == snapshot_to_jsonl(t.snapshot())

"""Trace-replay regressions for the paper's worked examples.

Each test runs a witness ETC matrix through the iterative technique
under a :class:`CollectingTracer` and asserts that the *emitted event
stream* — not just the final numbers — reproduces the divergence the
paper documents for that example: the tie that flips (Min-Min, MCT,
MET), the heuristic switches that move (SWA), the subset collapse
(KPB), and the sufferage-value re-shuffle (Sufferage).
"""

import math

import pytest

from repro.core.iterative import IterativeScheduler
from repro.core.ties import ScriptedTieBreaker
from repro.etc.witness import (
    KPB_EXAMPLE_PERCENT,
    SWA_EXAMPLE_HIGH_THRESHOLD,
    SWA_EXAMPLE_LOW_THRESHOLD,
    kpb_example_etc,
    mct_met_example_etc,
    minmin_example_etc,
    sufferage_example_etc,
    swa_example_etc,
)
from repro.heuristics.kpb import KPercentBest
from repro.heuristics.mct import MCT
from repro.heuristics.met import MET
from repro.heuristics.minmin import MinMin
from repro.heuristics.sufferage import Sufferage
from repro.heuristics.swa import SwitchingAlgorithm
from repro.obs import CollectingTracer, use_tracer

pytestmark = pytest.mark.obs


def traced_run(heuristic, etc, tie_breaker=None):
    """Run the iterative technique and return (result, tracer)."""
    tracer = CollectingTracer()
    scheduler = IterativeScheduler(heuristic, tie_breaker=tie_breaker)
    with use_tracer(tracer):
        result = scheduler.run(etc)
    return result, tracer


def decisions_by_iteration(tracer, kind):
    """Partition ``kind`` events by iteration using freeze markers.

    The event stream interleaves decision events with one
    ``iterative.freeze`` per iteration, in order — so the freeze events
    delimit the iterations.
    """
    iterations = [[]]
    for event in tracer.events:
        if event.kind == "iterative.freeze":
            iterations.append([])
        elif event.kind == kind:
            iterations[-1].append(event)
    while iterations and not iterations[-1]:
        iterations.pop()
    return iterations


class TestMinMinExample:
    """Section 3.2: the t2 tie flips from m2 to m3 and the makespan grows."""

    def test_divergent_tie_is_visible_in_trace(self):
        result, tracer = traced_run(
            MinMin(), minmin_example_etc(), ScriptedTieBreaker([1, 1])
        )
        rounds = decisions_by_iteration(tracer, "min-min.decision")
        original_t2 = next(e for e in rounds[0] if e.get("task") == "t2")
        iterative_t2 = next(e for e in rounds[1] if e.get("task") == "t2")
        # Both mappings see the same genuine tie at completion time 2...
        assert original_t2.get("tied") == ("m2", "m3")
        assert iterative_t2.get("tied") == ("m2", "m3")
        assert original_t2.get("completion") == 2.0
        assert iterative_t2.get("completion") == 2.0
        # ...but break it differently — the documented divergence point.
        assert original_t2.get("machine") == "m2"
        assert iterative_t2.get("machine") == "m3"
        assert result.makespans()[:2] == (5.0, 6.0)
        assert result.makespan_increased()

    def test_freeze_events_follow_removal_order(self):
        result, tracer = traced_run(
            MinMin(), minmin_example_etc(), ScriptedTieBreaker([1, 1])
        )
        freezes = tracer.events_of("iterative.freeze")
        assert [e.get("frozen_machine") for e in freezes] == list(
            result.removal_order
        )
        assert freezes[0].get("frozen_machine") == "m1"
        assert freezes[0].get("makespan") == 5.0
        assert freezes[1].get("makespan") == 6.0
        assert tracer.counters.get("iterations") == len(freezes)


@pytest.mark.parametrize(
    ("heuristic_cls", "kind", "makespans"),
    [(MCT, "mct.decision", (4.0, 5.0)), (MET, "met.decision", (4.0, 5.0))],
    ids=["mct", "met"],
)
class TestMCTMETExamples:
    """Sections 3.3–3.4: both heuristics share the t2 tie between m2/m3."""

    def test_t2_tie_flips(self, heuristic_cls, kind, makespans):
        result, tracer = traced_run(
            heuristic_cls(), mct_met_example_etc(), ScriptedTieBreaker([1, 1])
        )
        rounds = decisions_by_iteration(tracer, kind)
        original_t2 = next(e for e in rounds[0] if e.get("task") == "t2")
        iterative_t2 = next(e for e in rounds[1] if e.get("task") == "t2")
        assert original_t2.get("tied") == ("m2", "m3")
        assert original_t2.get("machine") == "m2"
        assert iterative_t2.get("tied") == ("m2", "m3")
        assert iterative_t2.get("machine") == "m3"
        assert result.makespans()[:2] == makespans
        assert result.makespan_increased()

    def test_non_tied_decisions_consume_no_script(self, heuristic_cls, kind, makespans):
        script = ScriptedTieBreaker([1, 1])
        traced_run(heuristic_cls(), mct_met_example_etc(), script)
        # Only the two genuine t2 ties draw from the script.
        assert script.consumed == 2


class TestSWAExample:
    """Section 3.5: the t4 decision moves because t3 leaves a different BI."""

    def _run(self):
        heuristic = SwitchingAlgorithm(
            low=SWA_EXAMPLE_LOW_THRESHOLD, high=SWA_EXAMPLE_HIGH_THRESHOLD
        )
        return traced_run(heuristic, swa_example_etc())

    def test_heuristic_sequences(self):
        _, tracer = self._run()
        rounds = decisions_by_iteration(tracer, "switching-algorithm.decision")
        assert [e.get("heuristic") for e in rounds[0]] == [
            "mct", "mct", "mct", "mct", "met",
        ]
        assert [e.get("heuristic") for e in rounds[1]] == [
            "mct", "mct", "met", "mct",
        ]

    def test_divergent_balance_indices(self):
        _, tracer = self._run()
        rounds = decisions_by_iteration(tracer, "switching-algorithm.decision")
        # Original: t4 still maps by MCT (BI 1/3), t5 sees BI 2/3 -> MET.
        original_bis = [e.get("bi") for e in rounds[0]]
        assert math.isnan(original_bis[0])
        assert original_bis[3] == pytest.approx(1 / 3)
        assert original_bis[4] == pytest.approx(2 / 3)
        # Iterative: t3's allocation leaves BI 1/2 > high at t4's turn,
        # so t4 maps by MET instead — the documented divergence.
        iterative_bis = [e.get("bi") for e in rounds[1]]
        assert iterative_bis[2] == pytest.approx(1 / 2)
        assert iterative_bis[3] == pytest.approx(4 / 13)

    def test_switch_events(self):
        _, tracer = self._run()
        rounds = decisions_by_iteration(tracer, "switching-algorithm.switch")
        assert [(e.get("task"), e.get("selected")) for e in rounds[0]] == [
            ("t5", "met"),  # original mapping: BI 2/3 > 0.49
        ]
        assert [(e.get("task"), e.get("selected")) for e in rounds[1]] == [
            ("t4", "met"),  # iterative mapping: BI 1/2 > 0.49
            ("t5", "mct"),  # iterative mapping: BI 4/13 < low
        ]

    def test_makespan_increase(self):
        result, _ = self._run()
        assert result.makespans()[:2] == (6.0, 6.5)
        assert result.makespan_increased()


class TestKPBExample:
    """Section 3.6: the subset collapses to 1 machine — KPB becomes MET."""

    def _run(self):
        return traced_run(
            KPercentBest(percent=KPB_EXAMPLE_PERCENT), kpb_example_etc()
        )

    def test_subset_shrinks_from_two_to_one(self):
        _, tracer = self._run()
        rounds = decisions_by_iteration(tracer, "k-percent-best.decision")
        assert {e.get("subset_size") for e in rounds[0]} == {2}
        assert {e.get("subset_size") for e in rounds[1]} == {1}
        # With a singleton subset every choice is forced to the task's
        # fastest machine ("forces KPB to perform like MET").
        for event in rounds[1]:
            assert event.get("subset") == (event.get("machine"),)

    def test_t5_diverges(self):
        _, tracer = self._run()
        rounds = decisions_by_iteration(tracer, "k-percent-best.decision")
        original_t5 = next(e for e in rounds[0] if e.get("task") == "t5")
        iterative_t5 = next(e for e in rounds[1] if e.get("task") == "t5")
        assert original_t5.get("machine") == "m3"
        assert iterative_t5.get("machine") == "m2"
        assert iterative_t5.get("completion") == 7.0

    def test_makespan_increase(self):
        result, _ = self._run()
        assert result.makespans()[:2] == (6.0, 7.0)
        assert result.makespan_increased()


class TestSufferageExample:
    """Section 3.7: removing m1 changes sufferage values and re-shuffles."""

    def _run(self):
        return traced_run(Sufferage(), sufferage_example_etc())

    @staticmethod
    def _first_examinations(round_events):
        """Each task's first sufferage examination within one mapping."""
        first = {}
        for event in round_events:
            first.setdefault(event.get("task"), event)
        return first

    def test_sufferage_values_change_for_t0_and_t6(self):
        _, tracer = self._run()
        rounds = decisions_by_iteration(tracer, "sufferage.decision")
        original = self._first_examinations(rounds[0])
        iterative = self._first_examinations(rounds[1])
        surviving = set(iterative)
        changed = {
            t
            for t in surviving
            if original[t].get("sufferage") != iterative[t].get("sufferage")
        }
        assert changed == {"t0", "t6"}

    def test_two_tasks_remap(self):
        result, tracer = self._run()
        original = result.original.mapping.to_dict()
        iterative = result.iterations[1].mapping.to_dict()
        remapped = {t for t, m in iterative.items() if original[t] != m}
        assert remapped == {"t5", "t6"}
        assert iterative["t5"] == "m3" and original["t5"] == "m2"
        assert iterative["t6"] == "m2" and original["t6"] == "m3"
        # The re-mapping is visible in the trace as machine contests:
        # some first-pass decision of iteration 1 displaced or rejected
        # an incumbent (the mechanism of the example).
        rounds = decisions_by_iteration(tracer, "sufferage.decision")
        outcomes = {e.get("outcome") for e in rounds[1]}
        assert "displaced" in outcomes or "rejected" in outcomes

    def test_pass_events_mirror_last_trace(self):
        result, tracer = self._run()
        rounds = decisions_by_iteration(tracer, "sufferage.pass")
        original_passes = result.original.trace
        assert [e.get("index") for e in rounds[0]] == [
            p.index for p in original_passes
        ]
        assert [e.get("committed") for e in rounds[0]] == [
            p.committed for p in original_passes
        ]

    def test_makespan_increase(self):
        result, _ = self._run()
        assert result.makespans()[:2] == (10.0, 10.5)
        assert result.original.finish_times() == {
            "m1": 10.0, "m2": 9.5, "m3": 9.5,
        }
        assert result.iterations[1].finish_times() == {"m2": 10.5, "m3": 8.5}
        assert result.makespan_increased()


class TestDecisionCounters:
    """The auto-counters stay consistent with the event stream."""

    @pytest.mark.parametrize(
        ("heuristic", "etc"),
        [
            (MinMin(), minmin_example_etc()),
            (MCT(), mct_met_example_etc()),
            (MET(), mct_met_example_etc()),
            (SwitchingAlgorithm(), swa_example_etc()),
            (KPercentBest(), kpb_example_etc()),
            (Sufferage(), sufferage_example_etc()),
        ],
        ids=["min-min", "mct", "met", "swa", "kpb", "sufferage"],
    )
    def test_decision_counter_matches_events(self, heuristic, etc):
        _, tracer = traced_run(heuristic, etc)
        decision_events = [
            e for e in tracer.events if e.kind.endswith(".decision")
        ]
        assert tracer.counters.get("decisions") == len(decision_events)
        assert tracer.counters.get("events.iterative.run") == 1

"""Unit tests for hierarchical spans and cross-process trace identity."""

import pickle

import pytest

from repro.obs import (
    CollectingTracer,
    NullTracer,
    SpanContext,
    SpanRecord,
    build_span_tree,
    read_jsonl,
    span_from_dict,
    span_to_dict,
    spans_from_records,
    tree_shape,
    write_jsonl,
)

pytestmark = pytest.mark.obs


def _span(seq, span_id, parent_id, kind, *, trace="t", start=0.0, dur=1.0, **fields):
    return SpanRecord(
        seq=seq,
        span_id=span_id,
        parent_id=parent_id,
        trace_id=trace,
        kind=kind,
        fields=fields,
        start_unix=start,
        duration_s=dur,
    )


class TestSpanRecording:
    def test_span_records_a_span_record(self):
        t = CollectingTracer()
        with t.span("outer", cell="hihi"):
            pass
        (span,) = t.spans
        assert span.kind == "outer"
        assert span.fields == {"cell": "hihi"}
        assert span.parent_id is None
        assert span.duration_s >= 0.0
        assert span.end_unix >= span.start_unix
        assert span.span_id.endswith(f":{span.seq}")

    def test_nesting_parents_and_enter_order_seq(self):
        t = CollectingTracer()
        with t.span("outer"):
            with t.span("inner"):
                pass
            with t.span("sibling"):
                pass
        outer, inner, sibling = sorted(t.spans, key=lambda s: s.seq)
        assert (outer.kind, inner.kind, sibling.kind) == (
            "outer", "inner", "sibling",
        )
        assert inner.parent_id == outer.span_id
        assert sibling.parent_id == outer.span_id
        assert outer.seq < inner.seq < sibling.seq
        assert len({s.trace_id for s in t.spans}) == 1

    def test_phase_records_span_but_no_event_or_timer(self):
        t = CollectingTracer()
        with t.phase("runner.publish", cells=3):
            pass
        assert [s.kind for s in t.spans] == ["runner.publish"]
        assert list(t.events) == []
        assert len(t.timers) == 0
        assert len(t.counters) == 0

    def test_span_still_times_and_emits_events(self):
        t = CollectingTracer()
        with t.span("phase"):
            pass
        assert [e.kind for e in t.events] == ["phase"]
        assert t.timers.get("phase").count == 1

    def test_phase_nests_with_span(self):
        t = CollectingTracer()
        with t.span("outer"):
            with t.phase("inner"):
                pass
        outer, inner = sorted(t.spans, key=lambda s: s.seq)
        assert inner.parent_id == outer.span_id

    def test_null_tracer_phase_is_inert(self):
        t = NullTracer()
        with t.phase("anything", x=1):
            pass  # no state anywhere, nothing raised

    def test_clear_resets_spans(self):
        t = CollectingTracer()
        with t.span("a"):
            pass
        t.clear()
        assert t.spans == ()
        with t.span("b"):
            pass
        (span,) = t.spans
        assert span.parent_id is None


class TestSpanContext:
    def test_context_carries_trace_and_open_span(self):
        t = CollectingTracer()
        outside = t.context()
        assert outside.span_id is None
        with t.span("grid"):
            ctx = t.context()
        assert ctx.trace_id == outside.trace_id
        assert ctx.span_id is not None

    def test_context_is_picklable(self):
        ctx = SpanContext(trace_id="abc", span_id="abc:0")
        assert pickle.loads(pickle.dumps(ctx)) == ctx

    def test_worker_tracer_adopts_context(self):
        parent = CollectingTracer()
        with parent.span("grid"):
            ctx = parent.context()
        worker = CollectingTracer(context=ctx)
        with worker.span("cell"):
            with worker.span("kernel"):
                pass
        cell, kernel = sorted(worker.spans, key=lambda s: s.seq)
        assert cell.trace_id == ctx.trace_id
        assert cell.parent_id == ctx.span_id
        assert kernel.parent_id == cell.span_id


class TestMerge:
    def test_merge_attaches_worker_roots_under_open_span(self):
        parent = CollectingTracer()
        worker = CollectingTracer()
        with worker.span("cell"):
            pass
        with parent.span("grid"):
            parent.merge_snapshot(worker.snapshot())
        (root,) = build_span_tree(parent.spans)
        assert root.kind == "grid"
        assert [child.kind for child in root.children] == ["cell"]

    def test_merge_rewrites_trace_id_and_resequences(self):
        parent = CollectingTracer()
        workers = [CollectingTracer() for _ in range(2)]
        for index, worker in enumerate(workers):
            with worker.span("cell", index=index):
                pass
        with parent.span("grid"):
            for worker in workers:
                parent.merge_snapshot(worker.snapshot())
        spans = parent.spans
        assert len({s.trace_id for s in spans}) == 1
        assert [s.seq for s in sorted(spans, key=lambda s: s.seq)] == list(
            range(len(spans))
        )
        assert len({s.span_id for s in spans}) == len(spans)

    def test_adopted_worker_keeps_explicit_parent_through_merge(self):
        parent = CollectingTracer()
        with parent.span("grid"):
            ctx = parent.context()
            worker = CollectingTracer(context=ctx)
            with worker.span("cell"):
                pass
            parent.merge_snapshot(worker.snapshot())
        (root,) = build_span_tree(parent.spans)
        assert [child.kind for child in root.children] == ["cell"]


class TestExport:
    def test_span_dict_round_trip(self):
        span = _span(3, "ab:3", "ab:0", "k", start=1.5, dur=0.25, cell="x")
        assert span_from_dict(span_to_dict(span)) == span
        assert span_from_dict({**span_to_dict(span), "type": "span"}) == span

    def test_jsonl_round_trip_preserves_spans(self, tmp_path):
        t = CollectingTracer()
        with t.span("outer"):
            with t.phase("inner"):
                pass
        path = tmp_path / "trace.jsonl"
        write_jsonl(t, path)
        spans = spans_from_records(read_jsonl(path))
        assert spans == sorted(t.spans, key=lambda s: s.seq)

    def test_spans_from_records_ignores_other_types(self):
        records = [
            {"type": "event", "kind": "x"},
            {"type": "span", **span_to_dict(_span(1, "a:1", None, "k"))},
            {"type": "span", **span_to_dict(_span(0, "a:0", None, "j"))},
        ]
        assert [s.seq for s in spans_from_records(records)] == [0, 1]


class TestTree:
    def test_unknown_parent_becomes_root(self):
        spans = [
            _span(0, "a:0", "elsewhere:9", "orphan"),
            _span(1, "a:1", "a:0", "child"),
        ]
        (root,) = build_span_tree(spans)
        assert root.kind == "orphan"
        assert [c.kind for c in root.children] == ["child"]

    def test_walk_reports_depth(self):
        spans = [
            _span(0, "a:0", None, "root"),
            _span(1, "a:1", "a:0", "mid"),
            _span(2, "a:2", "a:1", "leaf"),
        ]
        (root,) = build_span_tree(spans)
        assert [(d, n.kind) for d, n in root.walk()] == [
            (0, "root"), (1, "mid"), (2, "leaf"),
        ]

    def test_tree_shape_ignores_ids_and_clocks(self):
        a = [_span(0, "a:0", None, "r", x=1), _span(1, "a:1", "a:0", "c")]
        b = [
            _span(5, "zz:5", None, "r", trace="other", start=9.0, dur=7.0, x=1),
            _span(8, "zz:8", "zz:5", "c", trace="other"),
        ]
        assert tree_shape(a) == tree_shape(b)

    def test_tree_shape_sees_structure_and_fields(self):
        flat = [_span(0, "a:0", None, "r"), _span(1, "a:1", None, "c")]
        nested = [_span(0, "a:0", None, "r"), _span(1, "a:1", "a:0", "c")]
        assert tree_shape(flat) != tree_shape(nested)
        assert tree_shape([_span(0, "a:0", None, "r", x=1)]) != tree_shape(
            [_span(0, "a:0", None, "r", x=2)]
        )

"""Unit tests for the repro-timeseries/1 log and the grid sampler."""

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.obs import (
    TIMESERIES_SCHEMA,
    GridSampler,
    TimeSeriesLog,
    read_timeseries,
    rss_bytes,
)

pytestmark = pytest.mark.obs


class FakeClock:
    def __init__(self, start=0.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestRssBytes:
    def test_positive_on_this_platform(self):
        assert rss_bytes() > 0


class TestTimeSeriesLog:
    def test_header_written_on_construction(self, tmp_path):
        path = tmp_path / "sub" / "ts.jsonl"
        with TimeSeriesLog(path, label="run-grid"):
            header = json.loads(path.read_text().splitlines()[0])
        assert header["type"] == "header"
        assert header["schema"] == TIMESERIES_SCHEMA
        assert header["label"] == "run-grid"
        assert header["started_unix"] > 0

    def test_samples_flushed_while_open(self, tmp_path):
        path = tmp_path / "ts.jsonl"
        log = TimeSeriesLog(path)
        log.sample({"x": 1})
        log.sample({"x": 2})
        # readable before close — the file is live-tailable
        lines = path.read_text().splitlines()
        assert len(lines) == 3
        assert log.samples_written == 2
        log.close()
        log.close()  # idempotent

    def test_t_s_non_decreasing_with_backwards_clock(self, tmp_path):
        clock = FakeClock(start=10.0)
        log = TimeSeriesLog(tmp_path / "ts.jsonl", clock=clock)
        clock.advance(2.0)
        first = log.sample({})
        clock.now = 10.5  # clock regression
        second = log.sample({})
        log.close()
        assert first == pytest.approx(2.0)
        assert second >= first

    def test_round_trip(self, tmp_path):
        path = tmp_path / "ts.jsonl"
        with TimeSeriesLog(path, label="lbl") as log:
            log.sample({"tasks_per_s": 4.0})
        header, samples = read_timeseries(path)
        assert header["label"] == "lbl"
        (sample,) = samples
        assert sample["metrics"] == {"tasks_per_s": 4.0}
        assert sample["t_s"] >= 0.0


class TestReadTimeseriesErrors:
    def test_missing_header(self, tmp_path):
        path = tmp_path / "ts.jsonl"
        path.write_text("")
        with pytest.raises(ConfigurationError):
            read_timeseries(path)

    def test_sample_before_header(self, tmp_path):
        path = tmp_path / "ts.jsonl"
        path.write_text(json.dumps({"type": "sample", "t_s": 0, "metrics": {}}) + "\n")
        with pytest.raises(ConfigurationError):
            read_timeseries(path)

    def test_wrong_schema(self, tmp_path):
        path = tmp_path / "ts.jsonl"
        path.write_text(json.dumps({"type": "header", "schema": "other/9"}) + "\n")
        with pytest.raises(ConfigurationError):
            read_timeseries(path)

    def test_unknown_type_and_bad_json(self, tmp_path):
        path = tmp_path / "ts.jsonl"
        with TimeSeriesLog(path):
            pass
        path.write_text(path.read_text() + json.dumps({"type": "mystery"}) + "\n")
        with pytest.raises(ConfigurationError):
            read_timeseries(path)
        path.write_text("not json\n")
        with pytest.raises(ConfigurationError):
            read_timeseries(path)


def _sampler(tmp_path, clock, **kw):
    kw.setdefault("total_cells", 4)
    kw.setdefault("tasks_per_record", 10)
    kw.setdefault("interval_s", 1.0)
    kw.setdefault("rss_fn", lambda: 4096)
    return GridSampler(tmp_path / "ts.jsonl", clock=clock, **kw)


class TestGridSampler:
    def test_rejects_negative_interval(self, tmp_path):
        with pytest.raises(ConfigurationError):
            _sampler(tmp_path, FakeClock(), interval_s=-0.1)

    def test_throttles_to_interval(self, tmp_path):
        clock = FakeClock()
        sampler = _sampler(tmp_path, clock)
        sampler.note_cell(records=1)  # first sample always lands
        sampler.note_cell(records=1)  # within the interval: suppressed
        assert sampler.log.samples_written == 1
        clock.advance(1.5)
        sampler.note_cell(records=1)
        assert sampler.log.samples_written == 2

    def test_accounting_in_metrics(self, tmp_path):
        clock = FakeClock()
        sampler = _sampler(tmp_path, clock)
        clock.advance(2.0)
        sampler.note_cell(records=3)
        sampler.note_cell(cached=True)
        sampler.note_cell(quarantined=True)
        sampler.note_store(published=5, reused=2)
        sampler.set_queue_depth(7)
        metrics = sampler.metrics()
        assert metrics["tasks_scheduled"] == 30  # 3 records x 10 tasks
        assert metrics["tasks_per_s"] == pytest.approx(15.0)
        assert metrics["cells_done"] == 3
        assert metrics["cells_total"] == 4
        assert metrics["cache_hit_rate"] == pytest.approx(1 / 3)
        assert metrics["store_published"] == 5
        assert metrics["store_reused"] == 2
        assert metrics["queue_depth"] == 7
        assert metrics["rss_bytes"] == 4096

    def test_close_forces_final_sample_and_is_idempotent(self, tmp_path):
        clock = FakeClock()
        sampler = _sampler(tmp_path, clock)
        sampler.note_cell(records=1)
        sampler.note_cell(records=1)  # suppressed by the throttle
        sampler.close()
        sampler.close()
        _, samples = read_timeseries(sampler.log.path)
        assert len(samples) == 2
        assert samples[-1]["metrics"]["cells_done"] == 2

    def test_summary_headline_keys(self, tmp_path):
        clock = FakeClock()
        sampler = _sampler(tmp_path, clock)
        clock.advance(2.0)
        sampler.note_cell(records=2)
        summary = sampler.summary()
        assert summary["schema"] == TIMESERIES_SCHEMA
        assert summary["path"].endswith("ts.jsonl")
        assert summary["tasks_scheduled"] == 20
        assert summary["tasks_per_s"] == pytest.approx(10.0)
        assert summary["duration_s"] == pytest.approx(2.0)
        assert summary["samples"] == 1
        assert 0.0 <= summary["cache_hit_rate"] <= 1.0

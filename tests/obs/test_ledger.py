"""Unit tests for the append-only run ledger (repro-ledger/1)."""

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.obs.ledger import (
    DEFAULT_LEDGER_PATH,
    LEDGER_SCHEMA,
    RunLedger,
    build_record,
    collect_counters,
    config_hash,
    diff_records,
    fingerprint,
    follow_records,
    format_record_line,
    headline_metrics,
    histogram_summaries,
    is_lower_better,
    summarize_records,
)
from repro.obs.metrics import HistogramStat

pytestmark = pytest.mark.obs


def _record(command="bench", *, metrics=None, counters=None, ts="2026-01-01T00:00:00+00:00", **kw):
    return build_record(
        command,
        metrics=metrics or {"makespan_mean": 10.0},
        counters=counters,
        timestamp=ts,
        **kw,
    )


class TestBuildRecord:
    def test_schema_and_fields(self):
        rec = _record(seed=7, config={"tasks": 8}, duration_s=1.5)
        assert rec["schema"] == LEDGER_SCHEMA
        assert rec["command"] == "bench"
        assert rec["seed"] == 7
        assert rec["duration_s"] == 1.5
        assert rec["config"] == {"tasks": 8}
        assert rec["config_hash"] == config_hash({"tasks": 8})
        assert len(rec["run_id"]) == 12
        int(rec["run_id"], 16)  # hex

    def test_run_id_is_content_derived(self):
        a = _record(seed=1)
        b = _record(seed=1)
        c = _record(seed=2)
        assert a["run_id"] == b["run_id"]
        assert a["run_id"] != c["run_id"]

    def test_fingerprint_embedded(self):
        fp = _record()["fingerprint"]
        assert set(fp) == {
            "git_sha", "version", "python", "numpy", "platform", "machine",
        }
        from repro import __version__

        assert fp["version"] == __version__

    def test_config_hash_canonical(self):
        assert config_hash({"a": 1, "b": 2}) == config_hash({"b": 2, "a": 1})
        assert config_hash({"a": 1}) != config_hash({"a": 2})

    def test_fingerprint_standalone(self):
        assert fingerprint()["python"]


class TestRunLedger:
    def test_default_path(self):
        assert RunLedger().path == __import__("pathlib").Path(DEFAULT_LEDGER_PATH)

    def test_append_and_read_roundtrip(self, tmp_path):
        ledger = RunLedger(tmp_path / "sub" / "ledger.jsonl")
        assert not ledger.exists()
        assert ledger.read() == []
        rec = ledger.append(_record(ts="2026-01-01T00:00:00+00:00"))
        ledger.append(_record(ts="2026-01-02T00:00:00+00:00"))
        assert ledger.exists()
        records = ledger.read()
        assert len(records) == len(ledger) == 2
        assert records[0] == rec
        assert [r["timestamp"] for r in ledger] == [
            "2026-01-01T00:00:00+00:00", "2026-01-02T00:00:00+00:00",
        ]

    def test_append_is_append_only(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        ledger.append(_record(ts="2026-01-01T00:00:00+00:00"))
        before = ledger.path.read_text()
        ledger.append(_record(ts="2026-01-02T00:00:00+00:00"))
        assert ledger.path.read_text().startswith(before)

    def test_append_rejects_wrong_schema(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        with pytest.raises(ConfigurationError):
            ledger.append({"schema": "other/1", "run_id": "abc123abc123"})
        rec = _record()
        rec = {**rec, "run_id": ""}
        with pytest.raises(ConfigurationError):
            ledger.append(rec)
        assert not ledger.exists()

    def test_read_rejects_corrupt_line(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ConfigurationError):
            RunLedger(path).read()
        path.write_text(json.dumps({"schema": "other/1"}) + "\n")
        with pytest.raises(ConfigurationError):
            RunLedger(path).read()

    def test_tail(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        for day in range(1, 6):
            ledger.append(_record(ts=f"2026-01-0{day}T00:00:00+00:00"))
        assert [r["timestamp"][8:10] for r in ledger.tail(2)] == ["04", "05"]
        assert len(ledger.tail(99)) == 5
        with pytest.raises(ConfigurationError):
            ledger.tail(0)

    def test_find_by_index_and_prefix(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        first = ledger.append(_record(ts="2026-01-01T00:00:00+00:00"))
        last = ledger.append(_record(ts="2026-01-02T00:00:00+00:00"))
        assert ledger.find("-1") == last
        assert ledger.find("-2") == first
        assert ledger.find(first["run_id"][:6]) == first
        with pytest.raises(ConfigurationError):
            ledger.find("-3")
        with pytest.raises(ConfigurationError):
            ledger.find("abc")  # too short
        with pytest.raises(ConfigurationError):
            ledger.find("ffffffff")  # no match

    def test_find_empty_ledger(self, tmp_path):
        with pytest.raises(ConfigurationError):
            RunLedger(tmp_path / "ledger.jsonl").find("-1")


class TestHeadlineAndFormat:
    def test_headline_filters_non_numeric(self):
        rec = _record(metrics={"m": 1.0, "note": "hi", "flag": True, "n": 2})
        assert headline_metrics(rec) == {"m": 1.0, "n": 2}

    def test_format_record_line(self):
        rec = _record(seed=3, duration_s=0.5,
                      metrics={"a": 1.0, "b": 2.0, "c": 3.0, "d": 4.0})
        line = format_record_line(rec)
        assert rec["run_id"] in line
        assert "bench" in line
        assert "seed=3" in line
        assert "0.50s" in line
        assert "(+1 more)" in line


class TestSummarize:
    def test_empty(self):
        assert "empty" in summarize_records([])

    def test_trend_across_runs(self):
        records = [
            _record(metrics={"makespan_mean": 10.0},
                    ts="2026-01-01T00:00:00+00:00"),
            _record(metrics={"makespan_mean": 9.0},
                    ts="2026-01-02T00:00:00+00:00"),
        ]
        text = summarize_records(records)
        assert "bench: 2 run(s)" in text
        assert "-10.0% vs first" in text


class TestDiff:
    def test_direction_convention(self):
        assert is_lower_better("makespan_mean")
        assert is_lower_better("bench.minmin.best_s")
        assert not is_lower_better("bench.minmin.speedup")
        assert not is_lower_better("non_makespan_improvement_mean")
        assert not is_lower_better("machine_improved_rate")

    def test_no_regression_within_tolerance(self):
        a = _record(metrics={"makespan_mean": 100.0})
        b = _record(metrics={"makespan_mean": 103.0},
                    ts="2026-01-02T00:00:00+00:00")
        lines, regressions = diff_records(a, b, tolerance=0.05)
        assert regressions == []
        assert any("+3.0%" in line for line in lines)

    def test_lower_better_regression(self):
        a = _record(metrics={"makespan_mean": 100.0})
        b = _record(metrics={"makespan_mean": 120.0},
                    ts="2026-01-02T00:00:00+00:00")
        _, regressions = diff_records(a, b, tolerance=0.05)
        assert len(regressions) == 1
        assert "makespan_mean" in regressions[0]

    def test_higher_better_regression_on_drop(self):
        a = _record(metrics={"x.speedup": 2.0})
        b = _record(metrics={"x.speedup": 1.0},
                    ts="2026-01-02T00:00:00+00:00")
        _, regressions = diff_records(a, b, tolerance=0.05)
        assert len(regressions) == 1
        # and an *increase* is never a speedup regression
        _, none = diff_records(b, a, tolerance=0.05)
        assert none == []

    def test_disjoint_metrics_reported(self):
        a = _record(metrics={"only_a": 1.0, "shared": 1.0})
        b = _record(metrics={"only_b": 1.0, "shared": 1.0},
                    ts="2026-01-02T00:00:00+00:00")
        lines, regressions = diff_records(a, b)
        assert regressions == []
        assert any("only in" in line and "only_a" in line for line in lines)
        assert any("only in" in line and "only_b" in line for line in lines)

    def test_rejects_negative_tolerance(self):
        with pytest.raises(ConfigurationError):
            diff_records(_record(), _record(), tolerance=-0.1)


class TestCollectCounters:
    def test_sums_across_records(self):
        records = [
            _record(counters={"decisions": 10, "iterations": 3}),
            _record(counters={"decisions": 5},
                    ts="2026-01-02T00:00:00+00:00"),
        ]
        assert collect_counters(records) == {"decisions": 15, "iterations": 3}


class TestHistogramSummaries:
    def test_includes_percentiles_and_drops_empty(self):
        stats = {
            "runner.cell_wall_s": (
                HistogramStat.empty((1.0, 2.0, 4.0))
                .observe(0.5).observe(1.5).observe(3.0)
            ),
            "never_observed": HistogramStat.empty((1.0,)),
        }
        summaries = histogram_summaries(stats)
        assert list(summaries) == ["runner.cell_wall_s"]
        summary = summaries["runner.cell_wall_s"]
        assert summary["count"] == 3
        assert summary["mean"] == pytest.approx(5.0 / 3)
        assert summary["min"] == 0.5
        assert summary["max"] == 3.0
        assert summary["p50"] <= summary["p95"] <= summary["max"]


class TestFollowRecords:
    def _ledger(self, tmp_path):
        return RunLedger(tmp_path / "ledger.jsonl")

    def test_emits_only_new_records_per_poll(self, tmp_path):
        ledger = self._ledger(tmp_path)
        ledger.append(_record(ts="2026-01-01T00:00:00+00:00"))
        seen = []
        sleeps = []

        def sleep(seconds):
            sleeps.append(seconds)
            # a run lands while we were sleeping
            if len(sleeps) == 1:
                ledger.append(_record(ts="2026-01-02T00:00:00+00:00"))

        emitted = follow_records(
            ledger, seen.append, interval_s=0.25, max_polls=3, sleep=sleep
        )
        assert emitted == 2
        assert [r["timestamp"][8:10] for r in seen] == ["01", "02"]
        assert sleeps == [0.25, 0.25]

    def test_missing_ledger_means_nothing_yet(self, tmp_path):
        ledger = self._ledger(tmp_path)
        emitted = follow_records(
            ledger, lambda r: None, max_polls=2, sleep=lambda s: None
        )
        assert emitted == 0

    def test_validates_arguments(self, tmp_path):
        ledger = self._ledger(tmp_path)
        with pytest.raises(ConfigurationError):
            follow_records(ledger, lambda r: None, interval_s=0.0)
        with pytest.raises(ConfigurationError):
            follow_records(ledger, lambda r: None, max_polls=0)

"""Unit tests for repro.obs: tracer, counters, timers, JSONL export."""

import pickle

import pytest

from repro.obs import (
    NULL_TRACER,
    CollectingTracer,
    Counters,
    NullTracer,
    TimerStat,
    Timers,
    event_to_dict,
    format_event,
    get_tracer,
    read_jsonl,
    render_events,
    set_tracer,
    snapshot_to_jsonl,
    use_tracer,
    write_jsonl,
)
from repro.obs.tracer import TraceEvent

pytestmark = pytest.mark.obs


class TestNullTracer:
    def test_disabled_and_inert(self):
        t = NullTracer()
        assert t.enabled is False
        t.event("anything", x=1)  # no-ops, no state anywhere
        t.count("anything")
        with t.span("anything", y=2):
            pass

    def test_default_current_tracer_is_null(self):
        assert get_tracer() is NULL_TRACER


class TestCurrentTracer:
    def test_use_tracer_installs_and_restores(self):
        collector = CollectingTracer()
        with use_tracer(collector) as inside:
            assert inside is collector
            assert get_tracer() is collector
        assert get_tracer() is NULL_TRACER

    def test_use_tracer_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with use_tracer(CollectingTracer()):
                raise RuntimeError("boom")
        assert get_tracer() is NULL_TRACER

    def test_set_tracer_returns_previous(self):
        collector = CollectingTracer()
        previous = set_tracer(collector)
        try:
            assert previous is NULL_TRACER
            assert get_tracer() is collector
        finally:
            set_tracer(previous)


class TestCollectingTracer:
    def test_events_are_sequenced(self):
        t = CollectingTracer()
        t.event("a.x", v=1)
        t.event("b.y", v=2)
        assert [e.seq for e in t.events] == [0, 1]
        assert [e.kind for e in t.events] == ["a.x", "b.y"]
        assert t.events[0].get("v") == 1

    def test_event_auto_increments_kind_counter(self):
        t = CollectingTracer()
        t.event("a.x")
        t.event("a.x")
        t.event("b.y")
        assert t.counters.get("events.a.x") == 2
        assert t.counters.get("events.b.y") == 1
        assert t.counters.total("events.") == len(t.events)

    def test_span_times_and_emits(self):
        t = CollectingTracer()
        with t.span("work", label="w"):
            pass
        assert t.counters.get("events.work") == 1
        stat = t.timers.get("work")
        assert stat.count == 1
        assert stat.total >= 0.0
        assert t.events_of("work")[0].get("label") == "w"

    def test_merge_snapshot_resequences(self):
        a, b = CollectingTracer(), CollectingTracer()
        a.event("x")
        b.event("y")
        b.count("custom", 3)
        with b.timers.time("t"):
            pass
        a.merge_snapshot(b.snapshot())
        assert [e.seq for e in a.events] == [0, 1]
        assert [e.kind for e in a.events] == ["x", "y"]
        assert a.counters.get("custom") == 3
        assert a.timers.get("t").count == 1

    def test_snapshot_is_picklable(self):
        t = CollectingTracer()
        t.event("a.x", task="t1", tied=("m1", "m2"))
        with t.span("s"):
            pass
        snap = pickle.loads(pickle.dumps(t.snapshot()))
        assert snap.events[0].fields["task"] == "t1"
        assert snap.counters["events.a.x"] == 1
        assert snap.timers["s"].count == 1

    def test_clear(self):
        t = CollectingTracer()
        t.event("a")
        t.clear()
        assert len(t) == 0
        assert len(t.counters) == 0


class TestCounters:
    def test_inc_get_total(self):
        c = Counters()
        assert c.inc("a.x") == 1
        assert c.inc("a.x", 4) == 5
        c.inc("b.y", 2)
        assert c.get("a.x") == 5
        assert c.get("missing") == 0
        assert c.total("a.") == 5
        assert c.total() == 7

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counters().inc("a", -1)

    def test_merge_and_equality(self):
        a = Counters({"x": 1, "y": 2})
        a.merge(Counters({"x": 2}))
        a.merge({"z": 1})
        assert a == {"x": 3, "y": 2, "z": 1}
        assert list(a) == ["x", "y", "z"]

    def test_as_dict_sorted(self):
        c = Counters()
        c.inc("zz")
        c.inc("aa")
        assert list(c.as_dict()) == ["aa", "zz"]


class TestTimers:
    def test_record_and_stats(self):
        t = Timers()
        t.record("op", 2.0)
        t.record("op", 4.0)
        stat = t.get("op")
        assert stat.count == 2
        assert stat.total == 6.0
        assert stat.min == 2.0
        assert stat.max == 4.0
        assert stat.mean == 3.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Timers().record("op", -0.1)

    def test_time_context_manager_monotonic(self):
        t = Timers()
        with t.time("op"):
            sum(range(100))
        assert t.get("op").count == 1
        assert t.get("op").total >= 0.0

    def test_merge(self):
        a, b = Timers(), Timers()
        a.record("op", 1.0)
        b.record("op", 3.0)
        b.record("other", 2.0)
        a.merge(b)
        assert a.get("op") == TimerStat(count=2, total=4.0, min=1.0, max=3.0)
        assert a.get("other").count == 1

    def test_empty_stat_mean(self):
        assert TimerStat().mean == 0.0


class TestExport:
    def _tracer(self):
        t = CollectingTracer()
        t.event("a.decision", task="t1", tied=("m1", "m2"), completion=2.5)
        t.event("b.step", bi=float("nan"))
        t.count("decisions")
        with t.span("phase"):
            pass
        return t

    def test_event_to_dict_schema(self):
        t = self._tracer()
        d = event_to_dict(t.events[0])
        assert d["type"] == "event"
        assert d["seq"] == 0
        assert d["kind"] == "a.decision"
        assert d["fields"]["tied"] == ["m1", "m2"]

    def test_nan_exports_as_null(self):
        t = self._tracer()
        d = event_to_dict(t.events[1])
        assert d["fields"]["bi"] is None

    def test_jsonl_roundtrip(self, tmp_path):
        t = self._tracer()
        path = tmp_path / "trace.jsonl"
        lines = write_jsonl(t, path)
        records = read_jsonl(path)
        assert lines == len(records)
        events = [r for r in records if r["type"] == "event"]
        counters = {r["name"]: r["value"] for r in records if r["type"] == "counter"}
        timers = [r for r in records if r["type"] == "timer"]
        assert len(events) == len(t.events)
        assert counters["decisions"] == 1
        assert counters["events.a.decision"] == 1
        assert timers[0]["name"] == "phase"
        assert timers[0]["count"] == 1

    def test_export_is_deterministic(self):
        t = self._tracer()
        assert snapshot_to_jsonl(t) == snapshot_to_jsonl(t.snapshot())

    def test_empty_snapshot_exports_empty(self):
        assert snapshot_to_jsonl(CollectingTracer()) == ""

    def test_format_event_rendering(self):
        event = TraceEvent(3, "x.decision", {"task": "t1", "bi": float("nan"),
                                             "tied": ("m1", "m2"), "ct": 2.0})
        line = format_event(event)
        assert "[   3]" in line
        assert "x.decision" in line
        assert "bi=x" in line
        assert "tied=m1,m2" in line
        assert "ct=2" in line

    def test_render_events_multiline(self):
        t = self._tracer()
        assert len(render_events(t.events).splitlines()) == len(t.events)

"""Unit tests for the live progress reporter."""

import io

import pytest

from repro.obs import (
    NULL_PROGRESS,
    NullProgress,
    ProgressReporter,
    make_progress,
)

pytestmark = pytest.mark.obs


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


class TestProgressReporter:
    def _reporter(self, total=4, **kw):
        stream = io.StringIO()  # isatty() is False -> one line per update
        clock = FakeClock()
        return ProgressReporter(
            total, stream=stream, clock=clock, **kw
        ), stream, clock

    def test_non_tty_writes_one_line_per_update(self):
        progress, stream, clock = self._reporter(total=2, label="cells")
        progress.start()
        clock.now = 10.0
        progress.advance("hihi")
        clock.now = 20.0
        progress.advance("lolo")
        progress.finish()
        lines = stream.getvalue().splitlines()
        assert lines[0] == "[0/2]   0.0% elapsed 0:00 cells"
        assert lines[1] == "[1/2]  50.0% elapsed 0:10 eta 0:10 cells hihi"
        assert lines[2] == "[2/2] 100.0% elapsed 0:20 cells lolo"
        assert lines[3] == "[2/2] 100.0% elapsed 0:20 cells done"
        assert "\r" not in stream.getvalue()

    def test_eta_is_linear_extrapolation(self):
        progress, stream, clock = self._reporter(total=4)
        progress.start()
        clock.now = 30.0
        progress.advance()
        assert "eta 1:30" in stream.getvalue().splitlines()[-1]

    def test_unknown_total_is_plain_counter(self):
        progress, stream, clock = self._reporter(total=None)
        progress.start()
        progress.advance("x")
        last = stream.getvalue().splitlines()[-1]
        assert last.startswith("[1] elapsed")
        assert "%" not in last and "eta" not in last

    def test_advance_before_start_autostarts(self):
        progress, stream, _ = self._reporter(total=3)
        progress.advance()
        assert progress.done == 1
        assert stream.getvalue()

    def test_finish_without_start_is_silent(self):
        progress, stream, _ = self._reporter()
        progress.finish()
        assert stream.getvalue() == ""

    def test_min_interval_throttles_but_finish_renders(self):
        progress, stream, clock = self._reporter(
            total=3, min_interval_s=100.0
        )
        progress.start()
        clock.now = 1.0
        progress.advance()  # throttled
        clock.now = 2.0
        progress.advance()  # throttled
        progress.finish()   # forced
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert lines[-1].startswith("[2/3]")

    def test_rejects_negative_total(self):
        with pytest.raises(ValueError):
            ProgressReporter(-1)

    def test_hours_rendering(self):
        progress, stream, clock = self._reporter(total=2)
        progress.start()
        clock.now = 3725.0
        progress.advance()
        assert "elapsed 1:02:05" in stream.getvalue().splitlines()[-1]


class TestNullProgress:
    def test_inert_and_disabled(self):
        assert NULL_PROGRESS.enabled is False
        assert NULL_PROGRESS.start() is NULL_PROGRESS
        NULL_PROGRESS.advance("anything")
        NULL_PROGRESS.finish()
        assert NULL_PROGRESS.done == 0

    def test_make_progress_dispatch(self):
        assert make_progress(False, 10) is NULL_PROGRESS
        live = make_progress(True, 10, label="cells", stream=io.StringIO())
        assert isinstance(live, ProgressReporter)
        assert live.enabled is True
        assert live.total == 10
        assert isinstance(NULL_PROGRESS, NullProgress)

"""Unit tests for the ASCII / HTML span-timeline renderers."""

import pytest

from repro.exceptions import ConfigurationError
from repro.obs import (
    SpanRecord,
    render_timeline,
    render_timeline_html,
    write_timeline_html,
)

pytestmark = pytest.mark.obs


def _span(seq, span_id, parent_id, kind, *, start=0.0, dur=1.0, **fields):
    return SpanRecord(
        seq=seq,
        span_id=span_id,
        parent_id=parent_id,
        trace_id="trace01",
        kind=kind,
        fields=fields,
        start_unix=start,
        duration_s=dur,
    )


@pytest.fixture
def spans():
    return [
        _span(0, "a:0", None, "runner.grid", start=0.0, dur=4.0),
        _span(1, "a:1", "a:0", "runner.publish", start=0.0, dur=1.0),
        _span(2, "a:2", "a:0", "runner.cell", start=1.0, dur=3.0),
        _span(3, "a:3", "a:2", "iterative.run", start=1.5, dur=0.002),
    ]


class TestRenderTimeline:
    def test_header_and_rows(self, spans):
        text = render_timeline(spans)
        lines = text.splitlines()
        assert lines[0] == "trace trace01 — 4 span(s), 4.00s total"
        for kind in ("runner.grid", "runner.publish", "runner.cell",
                     "iterative.run"):
            assert kind in text

    def test_depth_indentation_and_duration_units(self, spans):
        text = render_timeline(spans)
        assert "\n  runner.publish" in text
        assert "\n    iterative.run" in text  # depth 2
        assert "4.00s" in text
        assert "2.0ms" in text

    def test_bars_fill_the_budget(self, spans):
        rows = render_timeline(spans, width=80).splitlines()[2:]
        assert all("|" in row and "█" in row for row in rows)
        root_bar = rows[0].split("|")[1]
        assert "·" not in root_bar  # the root spans the full extent

    def test_rejects_empty_and_narrow(self, spans):
        with pytest.raises(ConfigurationError):
            render_timeline([])
        with pytest.raises(ConfigurationError):
            render_timeline(spans, width=39)


class TestRenderTimelineHtml:
    def test_page_contains_lanes_and_escapes(self, spans):
        page = render_timeline_html(
            spans + [_span(4, "a:4", "a:0", "k<script>", start=2.0)]
        )
        assert page.count('class="lane') == 5
        assert "trace01" in page
        assert "k&lt;script&gt;" in page
        assert "<script>" not in page

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            render_timeline_html([])

    def test_write_creates_parents(self, tmp_path, spans):
        path = write_timeline_html(spans, tmp_path / "out" / "trace.html")
        assert path.exists()
        assert path.read_text().startswith("<!DOCTYPE html>")

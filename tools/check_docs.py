#!/usr/bin/env python
"""Documentation consistency checker (zero dependencies).

Three checks over ``docs/`` and ``README.md``, wired into ``make lint``
and CI so the docs cannot silently rot as the code moves:

1. **Dead relative links** — every relative markdown link target
   (``[text](path)``) must exist on disk, resolved against the file
   containing the link.  External links (``http(s)://``, ``mailto:``)
   and pure in-page anchors (``#section``) are skipped.
2. **Stale module references** — every dotted ``repro.<module>``
   mention must resolve: first against the source tree layout under
   ``src/repro`` (packages and ``.py`` modules; trailing lowercase
   segments past a module are treated as attributes and verified by
   import), so a doc can never name a module that was renamed away.
3. **Index reachability** — every page under ``docs/`` must be
   reachable from ``docs/index.md`` by following relative links, so
   the index stays the complete map of the documentation.
4. **Stale CLI subcommands** — every ``repro <subcommand>`` invocation
   the docs show (``python -m repro X``, `` `repro X`` or ``$ repro X``)
   must name a real subcommand of the live argument parser (nested
   groups like ``repro obs <sub>`` included), so a renamed or removed
   command cannot survive in a quickstart.

Usage::

    python tools/check_docs.py [repo_root]

Exits 0 when the docs are consistent, 1 with one line per problem
otherwise.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Markdown inline link: [text](target), ignoring images' leading ``!``.
_LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: Dotted repro module path: lowercase/underscore segments only, so
#: class references like ``repro.obs.CollectingTracer`` contribute just
#: their module prefix.
_MODULE_RE = re.compile(r"\brepro((?:\.[a-z_][a-z0-9_]*)+)")

#: ``repro <subcommand>`` invocation in one of the command contexts the
#: docs use: ``python -m repro X``, an opening-backtick `` `repro X`` or
#: a shell-prompt ``$ repro X``.  Dotted ``repro.module`` references do
#: not match (no whitespace), and option tokens (``--help``) cannot
#: match the ``[a-z]``-led subcommand group.  The optional second token
#: covers nested groups (``repro obs timeline``) and is only validated
#: for commands that actually own a nested parser.
_CLI_RE = re.compile(
    r"(?:python -m repro|\$ repro|`repro)\s+"
    r"([a-z][a-z0-9-]*)(?:\s+([a-z][a-z0-9-]*))?"
)

#: Files whose links/references are checked.
_DOC_GLOBS = ("docs/*.md",)
_EXTRA_FILES = ("README.md",)


def doc_files(root: Path) -> list[Path]:
    """All markdown files the checker covers, sorted for stable output."""
    files = [root / name for name in _EXTRA_FILES if (root / name).is_file()]
    for pattern in _DOC_GLOBS:
        files.extend(sorted(root.glob(pattern)))
    return files


def _is_external(target: str) -> bool:
    return target.startswith(("http://", "https://", "mailto:", "#"))


def iter_links(text: str):
    """Yield link targets of one markdown document (fragment stripped)."""
    for match in _LINK_RE.finditer(text):
        target = match.group(1)
        if _is_external(target):
            continue
        yield target.split("#", 1)[0]


def check_links(root: Path, files: list[Path]) -> list[str]:
    """Dead-relative-link problems, one message per broken link."""
    problems = []
    for path in files:
        for target in iter_links(path.read_text(encoding="utf-8")):
            if not target:
                continue
            resolved = (path.parent / target).resolve()
            if not resolved.exists():
                problems.append(
                    f"{path.relative_to(root)}: dead link -> {target}"
                )
    return problems


def _resolve_module(root: Path, dotted: str) -> bool:
    """Does ``repro.<dotted...>`` name a real module/package/attribute?

    Walks the source tree first (cheap, no imports): each segment must
    be a package directory or a ``.py`` module under ``src/repro``.
    Segments *after* a ``.py`` module are attributes; those are checked
    by importing the module (with ``src`` on ``sys.path``), so a doc
    referencing ``repro.analysis.runner.run_grid`` breaks the build if
    ``run_grid`` is renamed.
    """
    base = root / "src" / "repro"
    if not base.is_dir():
        return True  # nothing to check against
    segments = dotted.split(".")
    current = base
    for index, segment in enumerate(segments):
        if (current / segment).is_dir():
            current = current / segment
            continue
        if (current / f"{segment}.py").is_file():
            module = "repro." + ".".join(segments[: index + 1])
            attrs = segments[index + 1 :]
            if not attrs:
                return True
            return _resolve_attrs(root, module, attrs)
        # Not a package or module: only valid as attribute(s) of the
        # package reached so far (e.g. repro.obs.use_tracer re-export).
        module = "repro" + (
            "." + ".".join(segments[:index]) if index else ""
        )
        return _resolve_attrs(root, module, segments[index:])
    return True


def _resolve_attrs(root: Path, module: str, attrs: list[str]) -> bool:
    import importlib

    src = str(root / "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    try:
        obj = importlib.import_module(module)
    except Exception:
        return False
    for attr in attrs:
        try:
            obj = getattr(obj, attr)
        except AttributeError:
            return False
    return True


def check_module_references(root: Path, files: list[Path]) -> list[str]:
    """Stale ``repro.<module>`` reference problems."""
    problems = []
    checked: dict[str, bool] = {}
    for path in files:
        text = path.read_text(encoding="utf-8")
        for match in _MODULE_RE.finditer(text):
            dotted = match.group(1).lstrip(".")
            if dotted not in checked:
                checked[dotted] = _resolve_module(root, dotted)
            if not checked[dotted]:
                problems.append(
                    f"{path.relative_to(root)}: stale reference repro.{dotted}"
                )
    return problems


def check_index_reachability(root: Path) -> list[str]:
    """Pages under docs/ not reachable from docs/index.md by links."""
    docs = root / "docs"
    index = docs / "index.md"
    if not index.is_file():
        return ["docs/index.md is missing"]
    all_pages = {p.resolve() for p in docs.glob("*.md")}
    seen = {index.resolve()}
    frontier = [index]
    while frontier:
        page = frontier.pop()
        for target in iter_links(page.read_text(encoding="utf-8")):
            if not target.endswith(".md"):
                continue
            resolved = (page.parent / target).resolve()
            if resolved in all_pages and resolved not in seen:
                seen.add(resolved)
                frontier.append(docs / resolved.name)
    return [
        f"docs/{page.name}: not reachable from docs/index.md"
        for page in sorted(all_pages - seen)
    ]


def cli_subcommands(root: Path) -> dict[str, frozenset[str]] | None:
    """Live subcommand map of the ``repro`` CLI, or ``None`` to skip.

    Keys are top-level subcommands; each value is the set of nested
    subcommands the command owns (empty for flat commands).  Returns
    ``None`` when the tree under ``root`` has no importable CLI (the
    fabricated repos of the unit tests), mirroring how the module check
    degrades when ``src/repro`` is absent.
    """
    if not (root / "src" / "repro" / "cli.py").is_file():
        return None
    import importlib

    src = str(root / "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    try:
        parser = importlib.import_module("repro.cli").build_parser()
    except Exception:
        return None

    def _choices(p):
        if p._subparsers is None:
            return {}
        for action in p._subparsers._group_actions:
            if getattr(action, "choices", None):
                return action.choices
        return {}

    return {
        name: frozenset(_choices(sub))
        for name, sub in _choices(parser).items()
    }


def check_cli_subcommands(
    root: Path,
    files: list[Path],
    commands: dict[str, frozenset[str]] | None = None,
) -> list[str]:
    """Stale ``repro <subcommand>`` invocation problems.

    ``commands`` defaults to the live parser's map; the unit tests
    inject a fake map to exercise the matching without importing.
    """
    if commands is None:
        commands = cli_subcommands(root)
    if commands is None:
        return []
    problems = []
    for path in files:
        text = path.read_text(encoding="utf-8")
        for match in _CLI_RE.finditer(text):
            command, nested = match.group(1), match.group(2)
            if command not in commands:
                problems.append(
                    f"{path.relative_to(root)}: unknown CLI subcommand "
                    f"'repro {command}'"
                )
            elif nested and commands[command] and nested not in commands[command]:
                problems.append(
                    f"{path.relative_to(root)}: unknown CLI subcommand "
                    f"'repro {command} {nested}'"
                )
    return problems


def run_checks(root: Path) -> list[str]:
    """All problems across the four checks (empty = consistent docs)."""
    files = doc_files(root)
    problems = check_links(root, files)
    problems += check_module_references(root, files)
    problems += check_index_reachability(root)
    problems += check_cli_subcommands(root, files)
    return problems


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    root = Path(args[0]).resolve() if args else Path.cwd()
    problems = run_checks(root)
    for problem in problems:
        print(problem, file=sys.stderr)
    files = doc_files(root)
    if problems:
        print(
            f"check_docs: {len(problems)} problem(s) across "
            f"{len(files)} file(s)",
            file=sys.stderr,
        )
        return 1
    print(f"check_docs: OK ({len(files)} file(s) checked)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

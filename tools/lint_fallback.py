#!/usr/bin/env python
"""Zero-dependency lint fallback for environments without ruff.

``make lint`` prefers ``ruff check`` (configured in pyproject.toml).
This script is the degraded path for minimal containers: it walks the
given directories and reports, per Python file,

* syntax errors (the file fails to parse),
* imports that are never used,
* names imported more than once.

It deliberately checks only what can be decided reliably from a single
file's AST — no style rules, no cross-module analysis.  Exit status is
0 when clean, 1 when any finding is reported.

Usage::

    python tools/lint_fallback.py src tests benchmarks examples tools
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: Imports that exist for their side effects or for re-export; a bare
#: usage scan would flag them as unused.
_USED_BY_CONVENTION = {"annotations"}


def _imported_names(tree: ast.Module):
    """Yield ``(local_name, node)`` for every module-level import binding.

    Function-local imports are skipped: they are deliberate lazy imports
    in this codebase and shadowing them is scope-legal.
    """
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                yield local, node
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name == "*":
                    continue
                yield alias.asname or alias.name, node


def _used_names(tree: ast.AST) -> set[str]:
    used: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Attribute):
            # Root of a dotted access: ``np.argsort`` uses ``np``.
            root = node
            while isinstance(root, ast.Attribute):
                root = root.value
            if isinstance(root, ast.Name):
                used.add(root.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Parameter names count as usages: pytest fixtures are
            # imported into a module and consumed via argument names.
            args = node.args
            for arg in (
                *args.posonlyargs, *args.args, *args.kwonlyargs,
                *((args.vararg,) if args.vararg else ()),
                *((args.kwarg,) if args.kwarg else ()),
            ):
                used.add(arg.arg)
    return used


def _exported_names(tree: ast.Module) -> set[str]:
    """Names listed in a literal module-level ``__all__``."""
    exported: set[str] = set()
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets
        ):
            continue
        if isinstance(node.value, (ast.List, ast.Tuple)):
            for elt in node.value.elts:
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                    exported.add(elt.value)
    return exported


def check_file(path: Path) -> list[str]:
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return [f"{path}: unreadable: {exc}"]
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [f"{path}:{exc.lineno}: syntax error: {exc.msg}"]

    findings: list[str] = []
    used = _used_names(tree)
    exported = _exported_names(tree)
    # Packages re-export via __init__.py without referencing the names.
    is_package_init = path.name == "__init__.py"
    seen: dict[str, int] = {}
    for name, node in _imported_names(tree):
        if name in seen:
            findings.append(
                f"{path}:{node.lineno}: duplicate import of {name!r} "
                f"(first at line {seen[name]})"
            )
            continue
        seen[name] = node.lineno
        if name in _USED_BY_CONVENTION or name.startswith("_"):
            continue
        if name not in used and name not in exported and not is_package_init:
            findings.append(f"{path}:{node.lineno}: unused import {name!r}")
    return findings


def main(argv: list[str]) -> int:
    roots = [Path(a) for a in argv] or [Path("src")]
    files: list[Path] = []
    for root in roots:
        if root.is_file() and root.suffix == ".py":
            files.append(root)
        elif root.is_dir():
            files.extend(sorted(root.rglob("*.py")))
    findings: list[str] = []
    for path in files:
        findings.extend(check_file(path))
    for line in findings:
        print(line)
    print(
        f"lint_fallback: {len(files)} files checked, {len(findings)} finding(s)"
    )
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))

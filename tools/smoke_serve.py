#!/usr/bin/env python
"""End-to-end smoke of the scheduling service (`make smoke-serve`).

Two sessions against real ``repro serve`` subprocesses:

1. **Cache/trace/ledger session** — start a traced service on an
   ephemeral port, issue one map request and then the *identical*
   request again, and assert the second is served from the
   content-addressed response cache: ``cached: true`` in the response,
   the ``serve.cache_hits`` counter incremented in ``/v1/stats``, and —
   after a clean SIGTERM shutdown — exactly one ``serve.compute`` span
   in the exported trace against two ``serve.request`` spans for the
   schedule posts (no recomputation happened), plus one ``serve``
   record in the run ledger.  A malformed request must come back as a
   400 ``validation`` error without disturbing any of that.

2. **Load session** — start a fresh untraced service and drive the
   ``repro serve-load`` CLI against it, writing the
   ``repro-serve-load/1`` report (default ``SERVE_load_smoke.json``,
   published as a CI artifact) and printing the requests/s headline.

Zero dependencies beyond the standard library; exits non-zero on the
first failed assertion.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
from urllib.error import HTTPError
from urllib.request import Request, urlopen
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
LOAD_REPORT = sys.argv[1] if len(sys.argv) > 1 else "SERVE_load_smoke.json"

MAP_PAYLOAD = {
    "kind": "map",
    "etc": {"values": [[4, 5, 5], [6, 2, 2], [5, 6, 3], [4, 1, 3]]},
    "heuristic": "min-min",
}


def check(condition: bool, message: str) -> None:
    if not condition:
        print(f"FAIL: {message}", file=sys.stderr)
        raise SystemExit(1)
    print(f"ok: {message}")


def start_serve(extra_args: list[str]) -> tuple[subprocess.Popen, int]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", *extra_args],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
        cwd=REPO,
    )
    line = proc.stdout.readline().strip()
    if not line.startswith("serving on http://"):
        proc.kill()
        print(f"FAIL: unexpected serve banner {line!r}", file=sys.stderr)
        print(proc.stderr.read(), file=sys.stderr)
        raise SystemExit(1)
    return proc, int(line.rsplit(":", 1)[1])


def post(port: int, path: str, payload: dict) -> tuple[int, dict]:
    request = Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except HTTPError as exc:
        return exc.code, json.loads(exc.read())


def get(port: int, path: str) -> dict:
    with urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=30
    ) as response:
        return json.loads(response.read())


def stop(proc: subprocess.Popen) -> tuple[str, str]:
    proc.send_signal(signal.SIGTERM)
    out, err = proc.communicate(timeout=30)
    if proc.returncode != 0:
        print(f"FAIL: serve exited {proc.returncode}\n{err}", file=sys.stderr)
        raise SystemExit(1)
    return out, err


def session_cache_trace_ledger(tmp: Path) -> None:
    ledger = tmp / "ledger.jsonl"
    trace = tmp / "trace.jsonl"
    proc, port = start_serve(
        [
            "--cache-dir", str(tmp / "responses"),
            "--append-ledger", "--ledger", str(ledger),
            "--trace-out", str(trace),
        ]
    )
    try:
        health = get(port, "/healthz")
        check(health["status"] == "ok", "healthz answers ok")

        status, first = post(port, "/v1/map", MAP_PAYLOAD)
        check(status == 200 and first["cached"] is False,
              "first request computed (cached: false)")
        status, second = post(port, "/v1/map", MAP_PAYLOAD)
        check(status == 200 and second["cached"] is True,
              "identical request served from response cache (cached: true)")
        check(first["key"] == second["key"],
              "both responses carry the same content-address key")
        check(first["result"] == second["result"],
              "cached result is byte-identical to the computed one")

        status, error = post(port, "/v1/schedule", {"kind": "nonsense"})
        check(
            status == 400 and error["error"]["type"] == "validation",
            "malformed request rejected as 400 validation",
        )

        counts = get(port, "/v1/stats")["counts"]
        check(counts["cache_hits"] == 1, "serve.cache_hits counter incremented")
        check(counts["computed"] == 1, "exactly one request computed")
    finally:
        out, _err = stop(proc)
    check("shutting down" in out, "clean SIGTERM shutdown")

    records = [json.loads(l) for l in ledger.read_text().splitlines()]
    serve_rows = [r for r in records if r["command"] == "serve"]
    check(len(serve_rows) == 1, "one serve record appended to the run ledger")
    metrics = serve_rows[0]["metrics"]
    check(metrics["serve.cache_hits"] == 1, "ledger row records the cache hit")

    spans = [
        json.loads(l)
        for l in trace.read_text().splitlines()
        if '"span"' in l
    ]
    compute = [s for s in spans if s.get("kind") == "serve.compute"]
    requests = [s for s in spans if s.get("kind") == "serve.request"]
    check(
        len(compute) == 1,
        "trace holds one serve.compute span (no recomputation on the hit)",
    )
    check(len(requests) == 3, "trace holds one serve.request span per request")


def session_load(tmp: Path) -> None:
    proc, port = start_serve(["--cache-dir", str(tmp / "load-responses")])
    try:
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        result = subprocess.run(
            [
                sys.executable, "-m", "repro", "serve-load",
                "--url", f"http://127.0.0.1:{port}/v1/schedule",
                "-n", "24", "--concurrency", "4",
                "--tasks", "16", "--machines", "4", "--instances", "2",
                "--errors-fatal",
                "-o", LOAD_REPORT,
            ],
            capture_output=True,
            text=True,
            env=env,
            cwd=REPO,
            timeout=120,
        )
        if result.returncode != 0:
            print(f"FAIL: serve-load exited {result.returncode}\n"
                  f"{result.stdout}\n{result.stderr}", file=sys.stderr)
            raise SystemExit(1)
        check("requests/s" in result.stdout, "serve-load prints the "
              "requests/s headline")
        print(result.stdout.rstrip())
        report = json.loads((REPO / LOAD_REPORT).read_text())
        check(report["schema"] == "repro-serve-load/1",
              f"load report written to {LOAD_REPORT}")
        check(report["errors"] == 0 and report["ok"] == 24,
              "all load requests succeeded")
        # The first wave of identical requests can race the initial
        # cache write (at most one miss per client worker); everything
        # after must be a hit.
        check(report["cached"] >= 24 - 4,
              "repeat load traffic served from the response cache")
    finally:
        stop(proc)


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-smoke-serve-") as tmp:
        session_cache_trace_ledger(Path(tmp))
        session_load(Path(tmp))
    print("smoke-serve: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

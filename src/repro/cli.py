"""Command-line interface.

Usage (after install)::

    python -m repro generate --tasks 40 --machines 8 -o suite.csv
    python -m repro map      --etc suite.csv --heuristic min-min --gantt
    python -m repro iterate  --etc suite.csv --heuristic sufferage
    python -m repro study    --tasks 30 --machines 8 --instances 20
    python -m repro compare  --heuristics min-min,mct,met,olb
    python -m repro simulate --tasks 100 --machines 8 --policy mct
    python -m repro simulate --faults --failures 3 --recovery remap
    python -m repro study    --faults --heuristics min-min --instances 5
    python -m repro run-grid --heterogeneities hihi,lolo --resume
    python -m repro run-grid --trace-out trace.jsonl --timeseries ts.jsonl
    python -m repro serve    --port 8351 --append-ledger
    python -m repro serve-load --url http://127.0.0.1:8351/v1/schedule -n 200
    python -m repro trace    --example min-min
    python -m repro bench    --baseline BENCH_baseline.json --append-ledger
    python -m repro obs      tail --follow
    python -m repro obs      summary
    python -m repro obs      diff -2 -1
    python -m repro obs      timeline trace.jsonl --html trace.html
    python -m repro paper

Every subcommand accepts ``--seed`` and is fully reproducible.  The
result-producing subcommands (``bench``, ``study``, ``compare``,
``export``, ``run-grid``, ``report``) accept ``--append-ledger`` to
append one fingerprinted ``repro-ledger/1`` record to the run ledger
(default ``.repro/ledger.jsonl``; relocatable with ``--ledger-path``),
which the ``obs`` family inspects.  ``run-grid`` (and ``study`` /
``export`` under ``--cache-dir`` / ``--resume``) executes through the
resumable cached runner (see :mod:`repro.analysis.runner`).
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from collections.abc import Sequence

from repro import __version__

from repro.analysis.gantt import render_gantt
from repro.analysis.study import (
    format_comparison_table,
    format_improvement_table,
    heuristic_comparison,
    improvement_study,
)
from repro.analysis.tables import (
    render_allocation_table,
    render_comparison,
    render_etc_table,
    render_finish_times,
    render_iteration_overview,
)
from repro.core.iterative import IterativeScheduler
from repro.core.metrics import compare_iterative
from repro.core.seeding import SeededIterativeScheduler
from repro.core.ties import make_tie_breaker
from repro.etc.generation import Consistency, Heterogeneity
from repro.etc import generation, io as etc_io
from repro.exceptions import ReproError
from repro.heuristics import get_heuristic, heuristic_names

__all__ = ["main", "build_parser"]


def _heterogeneity(value: str) -> Heterogeneity:
    try:
        return Heterogeneity(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"unknown heterogeneity {value!r}; choose from "
            f"{[h.value for h in Heterogeneity]}"
        ) from None


def _consistency(value: str) -> Consistency:
    try:
        return Consistency(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"unknown consistency {value!r}; choose from "
            f"{[c.value for c in Consistency]}"
        ) from None


def _load_etc(path: str):
    if path.endswith(".json"):
        return etc_io.load_json(path)
    return etc_io.load_csv(path)


def _make_heuristic(name: str, seed: int):
    kwargs = {}
    if name in ("genitor", "random", "simulated-annealing", "tabu-search"):
        kwargs["rng"] = seed
    return get_heuristic(name, **kwargs)


# ----------------------------------------------------------------------
# run-ledger plumbing (see repro.obs.ledger)
# ----------------------------------------------------------------------
def _ledger_append(
    args: argparse.Namespace,
    command: str,
    *,
    started: float,
    config: dict,
    metrics: dict,
    counters: dict | None = None,
    extra: dict | None = None,
) -> None:
    """Build and append one ledger record for a finished command."""
    from repro.obs.ledger import RunLedger, build_record

    record = build_record(
        command,
        seed=getattr(args, "seed", None),
        config=config,
        metrics=metrics,
        counters=counters,
        duration_s=round(time.perf_counter() - started, 6),
        extra=extra,
    )
    ledger = RunLedger(args.ledger)
    ledger.append(record)
    print(f"ledger: appended run {record['run_id']} to {ledger.path}")


def _maybe_collect(enabled: bool):
    """A collecting-tracer context when ``enabled``, else a no-op one."""
    from contextlib import nullcontext

    from repro.obs import CollectingTracer, use_tracer

    return use_tracer(CollectingTracer()) if enabled else nullcontext(None)


def _runner_run_fn(args: argparse.Namespace):
    """The per-config executor for study/export: cached runner or ``None``.

    Returns ``None`` when no runner option was given, so callers keep
    the exact legacy execution path; otherwise a ``config -> records``
    callable routed through :func:`repro.analysis.runner.run_grid`
    with the requested cache/resume/shard settings (``--resume`` alone
    implies the default cache directory).
    """
    if args.cache_dir is None and not args.resume and args.shards is None:
        return None
    from repro.analysis.runner import DEFAULT_CACHE_DIR, run_grid

    cache_dir = args.cache_dir if args.cache_dir is not None else (
        DEFAULT_CACHE_DIR if args.resume else None
    )

    def run_fn(config):
        result = run_grid(
            config,
            max_workers=getattr(args, "workers", None),
            cache_dir=cache_dir,
            resume=args.resume,
            shards=args.shards,
            batch_size=getattr(args, "batch_size", None),
            on_error="raise",
        )
        return list(result.records)

    return run_fn


# ----------------------------------------------------------------------
# subcommand implementations
# ----------------------------------------------------------------------
def cmd_generate(args: argparse.Namespace) -> int:
    if args.method == "range":
        etc = generation.generate_range_based(
            args.tasks, args.machines, args.heterogeneity, args.consistency,
            rng=args.seed,
        )
    else:
        etc = generation.generate_cvb(
            args.tasks, args.machines, args.heterogeneity, args.consistency,
            rng=args.seed,
        )
    if args.output:
        if args.output.endswith(".json"):
            etc_io.save_json(etc, args.output)
        else:
            etc_io.save_csv(etc, args.output)
        print(f"wrote {etc.num_tasks}x{etc.num_machines} ETC matrix to {args.output}")
    else:
        print(etc_io.to_csv(etc), end="")
    return 0


def cmd_map(args: argparse.Namespace) -> int:
    etc = _load_etc(args.etc)
    heuristic = _make_heuristic(args.heuristic, args.seed)
    breaker = make_tie_breaker(args.ties, rng=args.seed)
    mapping = heuristic.map_tasks(etc, tie_breaker=breaker)
    if args.show_etc:
        print(render_etc_table(etc, "ETC matrix"))
        print()
    print(render_allocation_table(mapping, f"{args.heuristic} mapping"))
    print()
    print(render_finish_times(mapping))
    if args.gantt:
        print()
        print(render_gantt(mapping))
    return 0


def cmd_iterate(args: argparse.Namespace) -> int:
    etc = _load_etc(args.etc)
    heuristic = _make_heuristic(args.heuristic, args.seed)
    breaker = make_tie_breaker(args.ties, rng=args.seed)
    scheduler_cls = SeededIterativeScheduler if args.seeded else IterativeScheduler
    result = scheduler_cls(heuristic, tie_breaker=breaker).run(etc)
    print(render_iteration_overview(result))
    print()
    print(render_comparison(compare_iterative(result),
                            "original vs iterative finishing times"))
    if args.chart and result.num_iterations > 1:
        from repro.analysis.trajectory import render_series, trajectory_of

        print()
        print(render_series(
            trajectory_of(result).makespans,
            label="per-iteration makespan",
            width=max(10, 2 * result.num_iterations),
        ))
    if result.makespan_increased():
        print("\nWARNING: the iterative technique INCREASED the makespan "
              "on this instance (see the paper, Sections 3.5-3.7).")
    return 0


def cmd_study(args: argparse.Namespace) -> int:
    if args.faults:
        return _cmd_study_faults(args)
    started = time.perf_counter()
    run_fn = _runner_run_fn(args)
    study_kwargs = {"run_fn": run_fn} if run_fn is not None else {}
    with _maybe_collect(args.append_ledger) as tracer:
        rows = improvement_study(
            heuristics=tuple(args.heuristics.split(",")),
            num_tasks=args.tasks,
            num_machines=args.machines,
            instances=args.instances,
            heterogeneity=args.heterogeneity,
            consistency=args.consistency,
            tie_policies=tuple(args.ties.split(",")),
            seeded_iterations=args.seeded,
            seed=args.seed,
            backend=args.backend,
            **study_kwargs,
        )
    print(format_improvement_table(rows))
    if args.append_ledger:
        import numpy as np

        metrics = {}
        for r in rows:
            prefix = f"{r.heuristic}.{r.tie_policy}"
            metrics[f"{prefix}.mapping_change_rate"] = r.mapping_change_rate
            metrics[f"{prefix}.makespan_increase_rate"] = r.makespan_increase_rate
            metrics[f"{prefix}.machine_improved_rate"] = r.machine_improved_rate
            metrics[f"{prefix}.non_makespan_improvement_mean"] = (
                r.mean_improvement.mean
            )
        metrics["makespan_increase_rate_mean"] = float(
            np.mean([r.makespan_increase_rate for r in rows])
        )
        metrics["non_makespan_improvement_mean"] = float(
            np.mean([r.mean_improvement.mean for r in rows])
        )
        _ledger_append(
            args,
            "study",
            started=started,
            config={
                "heuristics": args.heuristics,
                "tasks": args.tasks,
                "machines": args.machines,
                "instances": args.instances,
                "heterogeneity": args.heterogeneity.value,
                "consistency": args.consistency.value,
                "ties": args.ties,
                "seeded": args.seeded,
                "backend": args.backend,
            },
            metrics=metrics,
            counters=tracer.counters.as_dict() if tracer is not None else None,
        )
    return 0


def _cmd_study_faults(args: argparse.Namespace) -> int:
    """``study --faults``: original-vs-iterative fault degradation."""
    from repro.analysis.robustness import (
        fault_degradation_study,
        format_fault_table,
    )

    started = time.perf_counter()
    try:
        rates = tuple(float(r) for r in args.failure_rates.split(","))
    except ValueError:
        print(f"--failure-rates must be comma-separated numbers, "
              f"got {args.failure_rates!r}", file=sys.stderr)
        return 2
    heuristics = tuple(args.heuristics.split(","))
    rows = []
    with _maybe_collect(args.append_ledger) as tracer:
        for heuristic in heuristics:
            rows.extend(fault_degradation_study(
                heuristic,
                failure_rates=rates,
                num_tasks=args.tasks,
                num_machines=args.machines,
                instances=args.instances,
                policy=args.recovery,
                retry_budget=args.retry_budget,
                downtime_frac=args.downtime_frac,
                heterogeneity=args.heterogeneity,
                consistency=args.consistency,
                seed=args.seed,
            ))
    print(format_fault_table(rows))
    if args.append_ledger:
        metrics = {}
        for r in rows:
            prefix = f"{r.heuristic}.{r.mapping_kind}.rate_{r.failure_rate:g}"
            metrics[f"{prefix}.makespan_degradation"] = r.makespan_degradation
            metrics[f"{prefix}.non_makespan_degradation"] = (
                r.non_makespan_degradation
            )
            metrics[f"{prefix}.failures"] = r.failures
            metrics[f"{prefix}.dropped"] = r.dropped
        _ledger_append(
            args,
            "study-faults",
            started=started,
            config={
                "heuristics": args.heuristics,
                "tasks": args.tasks,
                "machines": args.machines,
                "instances": args.instances,
                "failure_rates": args.failure_rates,
                "recovery": args.recovery,
                "retry_budget": args.retry_budget,
                "downtime_frac": args.downtime_frac,
                "heterogeneity": args.heterogeneity.value,
                "consistency": args.consistency.value,
            },
            metrics=metrics,
            counters=tracer.counters.as_dict() if tracer is not None else None,
        )
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    started = time.perf_counter()
    rows = heuristic_comparison(
        tuple(args.heuristics.split(",")),
        num_tasks=args.tasks,
        num_machines=args.machines,
        instances=args.instances,
        heterogeneities=(args.heterogeneity,),
        consistencies=(args.consistency,),
        seed=args.seed,
    )
    print(format_comparison_table(rows))
    if args.append_ledger:
        import numpy as np

        metrics = {
            f"{r.heuristic}.{r.etc_class}.makespan_mean": r.mean_makespan
            for r in rows
        }
        metrics["makespan_mean_overall"] = float(
            np.mean([r.mean_makespan for r in rows])
        )
        _ledger_append(
            args,
            "compare",
            started=started,
            config={
                "heuristics": args.heuristics,
                "tasks": args.tasks,
                "machines": args.machines,
                "instances": args.instances,
                "heterogeneity": args.heterogeneity.value,
                "consistency": args.consistency.value,
            },
            metrics=metrics,
        )
    return 0


def _cmd_simulate_faults(args: argparse.Namespace) -> int:
    """``simulate --faults``: execute a static mapping under a seeded
    fault plan and report how recovery coped."""
    import numpy as np

    from repro.sim.faults import FaultConfig, generate_fault_plan
    from repro.sim.hcsystem import FaultTolerantHCSystem

    started = time.perf_counter()
    etc = generation.generate_range_based(
        args.tasks, args.machines, args.heterogeneity, args.consistency,
        rng=args.seed,
    )
    heuristic = _make_heuristic(args.heuristic, args.seed)
    mapping = heuristic.map_tasks(etc)
    horizon = mapping.makespan()
    mean_downtime = args.downtime_frac * horizon
    config = FaultConfig(
        failure_rate=args.failures / horizon,
        mean_downtime=mean_downtime,
        slowdown_rate=args.slowdowns / horizon if args.slowdowns else 0.0,
        slowdown_factor=args.slowdown_factor,
        mean_slowdown=mean_downtime if args.slowdowns else 0.0,
    )
    plan = generate_fault_plan(
        etc.machines, config, horizon, rng=np.random.default_rng(args.seed + 1)
    )
    with _maybe_collect(args.append_ledger) as tracer:
        system = FaultTolerantHCSystem(
            etc,
            plan,
            policy=args.recovery,
            retry_budget=args.retry_budget,
            backoff_base=max(0.25 * mean_downtime, 1e-9),
            backoff_cap=4.0 * mean_downtime,
        )
        result = system.execute(mapping)
    degradation = result.makespan / horizon if horizon > 0 else 1.0
    print(f"heuristic           : {args.heuristic}")
    print(f"recovery policy     : {args.recovery} "
          f"(retry budget {args.retry_budget})")
    print(f"fault plan          : {plan.num_failures} failures, "
          f"{plan.num_slowdowns} slowdowns over horizon {horizon:.6g}")
    print(f"plan signature      : {plan.signature()}")
    print(f"fault-free makespan : {horizon:.6g}")
    print(f"faulty makespan     : {result.makespan:.6g} "
          f"(x{degradation:.3f})")
    print(f"tasks completed     : {result.completed}/{mapping.num_assigned} "
          f"(dropped {len(result.dropped)})")
    print(f"failures hit        : {result.failures}  "
          f"retries: {result.retries}  requeues: {result.requeues}")
    for machine, finish in sorted(result.finish_times().items()):
        print(f"  {machine:<6} finish {finish:.6g}")
    if args.append_ledger:
        _ledger_append(
            args,
            "simulate-faults",
            started=started,
            config={
                "heuristic": args.heuristic,
                "tasks": args.tasks,
                "machines": args.machines,
                "failures": args.failures,
                "downtime_frac": args.downtime_frac,
                "slowdowns": args.slowdowns,
                "recovery": args.recovery,
                "retry_budget": args.retry_budget,
                "heterogeneity": args.heterogeneity.value,
                "consistency": args.consistency.value,
            },
            metrics={
                "fault_free_makespan": horizon,
                "faulty_makespan": result.makespan,
                "makespan_degradation": degradation,
                "failures": result.failures,
                "retries": result.retries,
                "requeues": result.requeues,
                "dropped": len(result.dropped),
            },
            counters=tracer.counters.as_dict() if tracer is not None else None,
            extra={"plan_signature": plan.signature()},
        )
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    if args.faults:
        return _cmd_simulate_faults(args)
    from repro.sim.hcsystem import (
        DynamicHCSimulation,
        KPBOnline,
        MCTOnline,
        METOnline,
        OLBOnline,
        SWAOnline,
        poisson_workload,
    )

    etc = generation.generate_range_based(
        args.tasks, args.machines, args.heterogeneity, args.consistency,
        rng=args.seed,
    )
    workload = poisson_workload(etc, rate=args.rate, rng=args.seed + 1)
    policies = {
        "mct": lambda: DynamicHCSimulation(workload, policy=MCTOnline()),
        "met": lambda: DynamicHCSimulation(workload, policy=METOnline()),
        "olb": lambda: DynamicHCSimulation(workload, policy=OLBOnline()),
        "kpb": lambda: DynamicHCSimulation(
            workload, policy=KPBOnline(percent=args.kpb_percent)
        ),
        "swa": lambda: DynamicHCSimulation(workload, policy=SWAOnline()),
        "batch-min-min": lambda: DynamicHCSimulation(
            workload,
            batch_heuristic=get_heuristic("min-min"),
            batch_interval=args.batch_interval,
        ),
        "batch-sufferage": lambda: DynamicHCSimulation(
            workload,
            batch_heuristic=get_heuristic("sufferage"),
            batch_interval=args.batch_interval,
        ),
    }
    if args.policy not in policies:
        print(f"unknown policy {args.policy!r}; choose from {sorted(policies)}",
              file=sys.stderr)
        return 2
    from repro.obs.progress import make_progress

    trace = policies[args.policy]().run(
        progress=make_progress(args.progress, label=f"sim {args.policy}"),
        progress_every=max(1, args.tasks // 10),
    )
    print(f"policy          : {args.policy}")
    print(f"tasks executed  : {len(trace)}")
    print(f"makespan        : {trace.makespan():.6g}")
    print(f"mean queue wait : {trace.mean_queue_wait():.6g}")
    for machine in etc.machines:
        print(f"  {machine:<6} utilisation {100 * trace.utilisation(machine):5.1f}%  "
              f"busy {trace.machine_busy_time(machine):.6g}")
    return 0


def cmd_witness(args: argparse.Namespace) -> int:
    """Search for a makespan-increase counterexample."""
    from repro.analysis.counterexamples import find_makespan_increase
    from repro.core.ties import RandomTieBreaker

    import numpy as np

    tie_factory = None
    if args.ties == "random":
        shared_rng = np.random.default_rng(args.seed + 1)
        tie_factory = lambda: RandomTieBreaker(shared_rng)  # noqa: E731
    witness = find_makespan_increase(
        _make_heuristic(args.heuristic, args.seed),
        num_tasks=args.tasks,
        num_machines=args.machines,
        trials=args.trials,
        tie_breaker_factory=tie_factory,
        value_grid=(
            [float(x) for x in args.grid.split(",")] if args.grid else None
        ),
        rng=args.seed,
    )
    if witness is None:
        print(f"no makespan-increase witness found in {args.trials} trials "
              f"for {args.heuristic} ({args.ties} ties)")
        return 3
    print(witness.describe())
    print()
    print(witness.etc.pretty())
    print(f"\nmakespans per iteration: {witness.result.makespans()}")
    if args.output:
        if args.output.endswith(".json"):
            etc_io.save_json(witness.etc, args.output)
        else:
            etc_io.save_csv(witness.etc, args.output)
        print(f"witness ETC matrix written to {args.output}")
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    """Run an experiment grid and write per-run records to CSV/JSON."""
    from repro.analysis.experiments import ExperimentConfig
    from repro.analysis.export import run_records_to_rows, write_csv, write_json
    from repro.analysis.parallel import run_experiment_parallel
    from repro.obs.progress import make_progress

    started = time.perf_counter()
    config = ExperimentConfig(
        heuristics=tuple(args.heuristics.split(",")),
        num_tasks=args.tasks,
        num_machines=args.machines,
        heterogeneities=(args.heterogeneity,),
        consistencies=(args.consistency,),
        instances_per_cell=args.instances,
        tie_policy=args.ties,
        seeded_iterations=args.seeded,
        seed=args.seed,
        backend=args.backend,
    )
    run_fn = _runner_run_fn(args)
    with _maybe_collect(args.append_ledger) as tracer:
        if run_fn is not None:
            records = run_fn(config)
        else:
            records = run_experiment_parallel(
                config,
                max_workers=args.workers,
                progress=make_progress(args.progress, label="cells"),
            )
    rows = run_records_to_rows(records)
    if args.output.endswith(".json"):
        write_json(rows, args.output)
    else:
        write_csv(rows, args.output)
    print(f"wrote {len(rows)} run records to {args.output}")
    if args.append_ledger:
        import numpy as np

        comparisons = [r.comparison for r in records]
        metrics = {
            "original_makespan_mean": float(
                np.mean([c.original_makespan for c in comparisons])
            ),
            "final_makespan_mean": float(
                np.mean([c.final_makespan for c in comparisons])
            ),
            "makespan_increase_rate": float(
                np.mean([c.makespan_increased for c in comparisons])
            ),
            "non_makespan_improvement_mean": float(
                np.mean([c.mean_delta for c in comparisons])
            ),
            "runs": len(records),
        }
        _ledger_append(
            args,
            "export",
            started=started,
            config={
                "heuristics": args.heuristics,
                "tasks": args.tasks,
                "machines": args.machines,
                "instances": args.instances,
                "heterogeneity": args.heterogeneity.value,
                "consistency": args.consistency.value,
                "ties": args.ties,
                "seeded": args.seeded,
                "workers": args.workers,
                "backend": args.backend,
            },
            metrics=metrics,
            counters=tracer.counters.as_dict() if tracer is not None else None,
        )
    return 0


def cmd_run_grid(args: argparse.Namespace) -> int:
    """Execute a full experiment grid through the resumable cached runner."""
    from repro.analysis.experiments import ExperimentConfig
    from repro.analysis.export import run_records_to_rows, write_csv, write_json
    from repro.analysis.runner import run_grid
    from repro.obs.progress import make_progress

    if args.no_cache and args.resume:
        print("error: --resume needs the cell cache (drop --no-cache)",
              file=sys.stderr)
        return 2
    if args.stream_chunk is not None and args.store_dir is None:
        print("error: --stream needs the ETC store (add --store DIR)",
              file=sys.stderr)
        return 2
    started = time.perf_counter()
    config = ExperimentConfig(
        heuristics=tuple(args.heuristics.split(",")),
        num_tasks=args.tasks,
        num_machines=args.machines,
        heterogeneities=tuple(
            _heterogeneity(h) for h in args.heterogeneities.split(",")
        ),
        consistencies=tuple(
            _consistency(c) for c in args.consistencies.split(",")
        ),
        instances_per_cell=args.instances,
        tie_policy=args.ties,
        seeded_iterations=args.seeded,
        seed=args.seed,
        backend=args.backend,
    )
    cache_dir = None if args.no_cache else args.cache_dir
    with _maybe_collect(args.append_ledger or bool(args.trace_out)) as tracer:
        result = run_grid(
            config,
            max_workers=args.workers,
            progress=make_progress(args.progress, label="cells"),
            cache_dir=cache_dir,
            resume=args.resume,
            shards=args.shards,
            batch_size=args.batch_size,
            timeout_s=args.timeout,
            retries=args.retries,
            store_dir=args.store_dir,
            stream_chunk=args.stream_chunk,
            timeseries=args.timeseries,
            sample_interval_s=args.sample_interval,
        )
    print(f"grid: {result.total_cells} cell(s) — "
          f"{result.cached_cells} cached, {result.computed_cells} computed, "
          f"{result.retried} retried, {len(result.quarantined)} quarantined; "
          f"{len(result.records)} records")
    if args.store_dir is not None:
        print(f"store: {result.store_published} ensemble(s) published, "
              f"{result.store_reused} reused from {args.store_dir}")
    if args.trace_out and tracer is not None:
        from repro.obs import write_jsonl

        lines = write_jsonl(tracer, args.trace_out)
        print(f"trace: wrote {lines} JSONL records to {args.trace_out} "
              "(render with `repro obs timeline`)")
    if result.timeseries_summary is not None:
        ts = result.timeseries_summary
        print(f"timeseries: {ts['samples']} sample(s) to {ts['path']} — "
              f"{ts['tasks_per_s']:.6g} tasks scheduled/s, "
              f"{100 * ts['cache_hit_rate']:.0f}% cache hits")
    for q in result.quarantined:
        print(f"quarantined: {q.label} [{q.key[:12]}] after "
              f"{q.attempts} attempt(s): {q.error}", file=sys.stderr)
    if args.output:
        rows = run_records_to_rows(list(result.records))
        if args.output.endswith(".json"):
            write_json(rows, args.output)
        else:
            write_csv(rows, args.output)
        print(f"wrote {len(rows)} run records to {args.output}")
    if args.append_ledger:
        import numpy as np

        from repro.obs.ledger import histogram_summaries

        comparisons = [r.comparison for r in result.records]
        metrics = {
            "cells_total": result.total_cells,
            "cells_cached": result.cached_cells,
            "cells_computed": result.computed_cells,
            "cells_retried": result.retried,
            "cells_quarantined": len(result.quarantined),
            "runs": len(result.records),
        }
        if args.store_dir is not None:
            metrics["store_published"] = result.store_published
            metrics["store_reused"] = result.store_reused
        if comparisons:
            metrics["original_makespan_mean"] = float(
                np.mean([c.original_makespan for c in comparisons])
            )
            metrics["final_makespan_mean"] = float(
                np.mean([c.final_makespan for c in comparisons])
            )
            metrics["makespan_increase_rate"] = float(
                np.mean([c.makespan_increased for c in comparisons])
            )
            metrics["non_makespan_improvement_mean"] = float(
                np.mean([c.mean_delta for c in comparisons])
            )
        # Headline throughput: every record schedules the cell's full
        # task set once, so records x tasks over the wall clock is the
        # grid-level tasks-scheduled-per-second figure.
        duration = time.perf_counter() - started
        tasks_scheduled = len(result.records) * args.tasks
        metrics["tasks_scheduled"] = tasks_scheduled
        metrics["tasks_scheduled_per_s"] = (
            tasks_scheduled / duration if duration > 0 else 0.0
        )
        extra = None
        if tracer is not None or result.timeseries_summary is not None:
            extra = {}
            if tracer is not None:
                extra["histograms"] = histogram_summaries(
                    tracer.histograms.as_dict()
                )
            if result.timeseries_summary is not None:
                extra["timeseries"] = result.timeseries_summary
        _ledger_append(
            args,
            "run-grid",
            started=started,
            config={
                "heuristics": args.heuristics,
                "tasks": args.tasks,
                "machines": args.machines,
                "instances": args.instances,
                "heterogeneities": args.heterogeneities,
                "consistencies": args.consistencies,
                "ties": args.ties,
                "seeded": args.seeded,
                "workers": args.workers,
                "shards": args.shards,
                "batch_size": args.batch_size,
                "backend": args.backend,
                "cache_dir": cache_dir,
                "resume": args.resume,
                "store_dir": args.store_dir,
                "stream_chunk": args.stream_chunk,
            },
            metrics=metrics,
            counters=tracer.counters.as_dict() if tracer is not None else None,
            extra=extra,
        )
    return 0 if result.ok else 1


def cmd_run_rolling(args: argparse.Namespace) -> int:
    """Serve a streamed workload through the rolling-horizon loop."""
    import numpy as np

    from repro.etc.generation import DEFAULT_STREAM_WINDOW
    from repro.obs.progress import make_progress
    from repro.sim.arrivals import TraceArrivals, make_arrival_process
    from repro.sim.faults import FaultConfig, generate_fault_plan
    from repro.sim.rolling import (
        EnsembleTaskSource,
        RollingSampler,
        RollingSimulation,
        StoreTaskSource,
        calibrate_rate,
    )

    if args.arrival == "trace" and not args.arrival_trace:
        print("error: --arrival trace needs --arrival-trace PATH",
              file=sys.stderr)
        return 2
    started = time.perf_counter()
    window = args.stream_chunk or DEFAULT_STREAM_WINDOW
    heuristic = _make_heuristic(args.heuristic, args.seed)
    refine = None if args.refine_iterations == 0 else args.refine_iterations

    # Estimate the arrival rate up front (one sample instance from the
    # same seed, so the estimate matches the real stream's statistics
    # without consuming its randomness) — it anchors the default
    # horizon and the fault-plan horizon.
    sample = generation.generate_range_based(
        min(args.tasks, max(args.chunk_tasks, 32)), args.machines,
        args.heterogeneity, args.consistency, rng=np.random.default_rng(args.seed),
    )
    rate_est = args.rate if args.rate is not None else calibrate_rate(
        sample.values, args.utilization
    )
    horizon = (
        args.horizon if args.horizon is not None
        else args.batch_target / rate_est
    )
    est_duration = args.tasks / rate_est

    if args.arrival == "trace":
        arrival = TraceArrivals.from_file(args.arrival_trace)
    elif args.rate is not None:
        arrival = make_arrival_process(
            args.arrival, args.rate,
            burst_factor=args.burst_factor,
            burst_fraction=args.burst_fraction,
            mean_burst=args.mean_burst,
        )
    else:
        # Calibrated inside the run from the first streamed window.
        def arrival(rate, _name=args.arrival):
            return make_arrival_process(
                _name, rate,
                burst_factor=args.burst_factor,
                burst_fraction=args.burst_fraction,
                mean_burst=args.mean_burst,
            )

    plan = None
    mean_downtime = 0.0
    if args.faults:
        mean_downtime = args.downtime_frac * est_duration
        config = FaultConfig(
            failure_rate=args.failures / est_duration,
            mean_downtime=mean_downtime,
            slowdown_rate=(
                args.slowdowns / est_duration if args.slowdowns else 0.0
            ),
            slowdown_factor=args.slowdown_factor,
            mean_slowdown=mean_downtime if args.slowdowns else 0.0,
        )
        plan = generate_fault_plan(
            [f"m{j}" for j in range(args.machines)],
            config, est_duration, rng=np.random.default_rng(args.seed + 1),
        )

    store = None
    try:
        if args.store_dir is not None:
            from repro.etc.generation import generate_ensemble_into
            from repro.etc.store import ETCStore

            count = -(-args.tasks // args.chunk_tasks)
            key = (
                f"rolling-{count}x{args.chunk_tasks}x{args.machines}-"
                f"{args.heterogeneity.value}-{args.consistency.value}-"
                f"range-seed{args.seed}"
            )
            store = ETCStore(args.store_dir)
            already = key in store
            generate_ensemble_into(
                store, key, count, args.chunk_tasks, args.machines,
                heterogeneity=args.heterogeneity,
                consistency=args.consistency,
                rng=args.seed, window=window,
            )
            print(f"store: {'reusing' if already else 'published'} entry "
                  f"{key} in {args.store_dir}")
            source = StoreTaskSource(
                store, key, num_tasks=args.tasks, window=window
            )
        else:
            source = EnsembleTaskSource(
                args.tasks, args.machines,
                tasks_per_instance=args.chunk_tasks,
                heterogeneity=args.heterogeneity,
                consistency=args.consistency,
                rng=args.seed, window=window,
            )

        sampler = None
        if args.timeseries:
            sampler = RollingSampler(
                args.timeseries, total_tasks=args.tasks,
                label="run-rolling", interval_s=args.sample_interval,
            )
        simulation = RollingSimulation(
            source, heuristic,
            horizon=horizon,
            arrival=arrival,
            utilization=args.utilization,
            refine_iterations=refine,
            rng=args.seed + 2,
            plan=plan,
            recovery=args.recovery,
            retry_budget=args.retry_budget,
            backoff_base=max(0.25 * mean_downtime, 1e-9) if plan else 1.0,
            backoff_cap=max(4.0 * mean_downtime, 1e-9) if plan else None,
        )
        # Event collection is opt-in via --trace-out only: a collecting
        # tracer holds every per-decision event in memory, which would
        # break the bounded-RSS guarantee on million-task serving runs.
        with _maybe_collect(bool(args.trace_out)) as tracer:
            try:
                result = simulation.run(
                    sampler=sampler,
                    progress=make_progress(args.progress, label="events"),
                )
            finally:
                if sampler is not None:
                    sampler.close()
    finally:
        if store is not None:
            store.close()

    duration = time.perf_counter() - started
    throughput = result.dispatches / duration if duration > 0 else 0.0
    accounted = result.completed + len(result.dropped)
    print(f"heuristic         : {args.heuristic} "
          f"(refine {'full' if refine is None else refine})")
    print(f"arrival           : {args.arrival} rate {result.arrival_rate:.6g} "
          f"(utilization target {args.utilization:g})")
    print(f"horizon           : {horizon:.6g} — {result.horizons} mapping "
          f"event(s), mean batch {result.mean_batch:.1f}, "
          f"max {result.batch_max}")
    if plan is not None:
        print(f"fault plan        : {plan.num_failures} failures, "
              f"{plan.num_slowdowns} slowdowns "
              f"({args.recovery}, retry budget {args.retry_budget})")
        print(f"plan signature    : {plan.signature()}")
        print(f"faults hit        : {result.failures} failures, "
              f"{result.aborted} aborted, {result.retries} retries")
    print(f"tasks accounted   : {accounted}/{result.total_tasks} "
          f"({result.completed} completed + {len(result.dropped)} dropped)")
    print(f"makespan          : {result.makespan:.6g} "
          f"(mean wait {result.mean_queue_wait:.6g}, "
          f"mean flow {result.mean_flow:.6g}, "
          f"peak backlog {result.peak_backlog})")
    print(f"throughput        : {result.dispatches} dispatches in "
          f"{duration:.3f}s wall — {throughput:.6g} tasks scheduled/s")
    if sampler is not None:
        ts = sampler.summary()
        print(f"timeseries        : {ts['samples']} sample(s) to "
              f"{ts['path']} — peak RSS "
              f"{ts['peak_rss_bytes'] / 1e6:.1f} MB")
    if args.trace_out and tracer is not None:
        from repro.obs import write_jsonl

        lines = write_jsonl(tracer, args.trace_out)
        print(f"trace: wrote {lines} JSONL records to {args.trace_out} "
              "(render with `repro obs timeline`)")
    if args.append_ledger:
        extra: dict = {}
        if plan is not None:
            extra["plan_signature"] = plan.signature()
        if sampler is not None:
            extra["timeseries"] = sampler.summary()
        _ledger_append(
            args,
            "run-rolling",
            started=started,
            config={
                "tasks": args.tasks,
                "machines": args.machines,
                "heuristic": args.heuristic,
                "refine_iterations": args.refine_iterations,
                "horizon": horizon,
                "arrival": args.arrival,
                "rate": args.rate,
                "utilization": args.utilization,
                "chunk_tasks": args.chunk_tasks,
                "stream": window,
                "store_dir": args.store_dir,
                "faults": args.faults,
                "failures": args.failures if args.faults else 0,
                "recovery": args.recovery,
                "retry_budget": args.retry_budget,
                "heterogeneity": args.heterogeneity.value,
                "consistency": args.consistency.value,
            },
            metrics={
                "tasks_total": result.total_tasks,
                "tasks_completed": result.completed,
                "tasks_dropped": len(result.dropped),
                "tasks_scheduled": result.dispatches,
                "tasks_scheduled_per_s": throughput,
                "horizons": result.horizons,
                "batch_mean": result.mean_batch,
                "batch_max": result.batch_max,
                "makespan": result.makespan,
                "mean_queue_wait": result.mean_queue_wait,
                "max_queue_wait": result.max_queue_wait,
                "mean_flow": result.mean_flow,
                "peak_backlog": result.peak_backlog,
                "failures": result.failures,
                "retries": result.retries,
            },
            counters=tracer.counters.as_dict() if tracer is not None else None,
            extra=extra or None,
        )
    return 0


def _serve_ledger_config(args: argparse.Namespace, port: int) -> dict:
    return {
        "host": args.host,
        "port": port,
        "workers": args.workers,
        "max_pending": args.max_pending,
        "cache_dir": None if args.no_cache else args.cache_dir,
    }


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the scheduling service until SIGINT/SIGTERM (see docs/serving.md)."""
    import asyncio
    import signal

    from repro.serve.http import start_server
    from repro.serve.service import SchedulingService

    cache_dir = None if args.no_cache else args.cache_dir
    service = SchedulingService(
        cache_dir, max_workers=args.workers, max_pending=args.max_pending
    )
    bound_port = args.port

    def flush_ledger() -> None:
        record = service.ledger_record(config=_serve_ledger_config(args, bound_port))
        if record is None:
            return
        from repro.obs.ledger import RunLedger

        ledger = RunLedger(args.ledger)
        ledger.append(record)
        print(f"ledger: appended run {record['run_id']} to {ledger.path}",
              flush=True)

    async def serve_forever() -> None:
        nonlocal bound_port
        server = await start_server(service, args.host, args.port)
        bound_port = server.sockets[0].getsockname()[1]
        print(f"serving on http://{args.host}:{bound_port}", flush=True)
        if service.cache is not None:
            print(f"response cache: {service.cache.root}", flush=True)
        else:
            print("response cache: disabled", flush=True)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(signum, stop.set)
        flusher = None
        if args.append_ledger and args.ledger_every > 0:
            async def periodic() -> None:
                while True:
                    await asyncio.sleep(args.ledger_every)
                    flush_ledger()

            flusher = asyncio.create_task(periodic())
        await stop.wait()
        print("shutting down", flush=True)
        if flusher is not None:
            flusher.cancel()
        server.close()
        await server.wait_closed()

    with _maybe_collect(bool(args.trace_out)) as tracer:
        asyncio.run(serve_forever())
    service.close()
    if args.append_ledger:
        flush_ledger()
    if args.trace_out and tracer is not None:
        from repro.obs.export import write_jsonl

        lines = write_jsonl(tracer, args.trace_out)
        print(f"trace: wrote {lines} JSONL records to {args.trace_out} "
              "(inspect with `repro obs timeline`)")
    counts = service.stats()["counts"]
    print(f"served {counts['requests']} request(s) "
          f"({counts['cache_hits']} cache hit(s), "
          f"{counts['computed']} computed)")
    return 0


def cmd_serve_load(args: argparse.Namespace) -> int:
    """Generate synthetic traffic against a running scheduling service."""
    import json

    from repro.serve.load import format_load_report, run_load

    started = time.perf_counter()
    if args.payload:
        from pathlib import Path

        payload = json.loads(Path(args.payload).read_text(encoding="utf-8"))
    else:
        payload = {
            "kind": "study",
            "ensemble": {
                "tasks": args.tasks,
                "machines": args.machines,
                "instances": args.instances,
            },
            "heuristic": args.heuristic,
            "seed": args.seed,
        }
    report = run_load(
        args.url,
        payload,
        requests=args.requests,
        concurrency=args.concurrency,
        rate=args.rate,
        timeout=args.timeout,
    )
    print(format_load_report(report))
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote load report to {args.output}")
    if args.errors_fatal and report["errors"]:
        print(f"error: {report['errors']} request(s) failed", file=sys.stderr)
        return 1
    if args.append_ledger:
        _ledger_append(
            args,
            "serve-load",
            started=started,
            config={
                "url": args.url,
                "requests": args.requests,
                "concurrency": args.concurrency,
                "rate": args.rate,
            },
            metrics={
                "requests_per_s": report["requests_per_s"],
                "latency_p50_ms": report["latency_ms"]["p50"],
                "latency_p95_ms": report["latency_ms"]["p95"],
                "errors": report["errors"],
            },
            extra={"load_report": report},
        )
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Generate the full reproduction report (Markdown)."""
    from repro.analysis.report import build_report

    started = time.perf_counter()
    text = build_report(quick=args.quick, seed=args.seed)
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(text, encoding="utf-8")
        print(f"report written to {args.output}")
    else:
        print(text)
    if args.append_ledger:
        _ledger_append(
            args,
            "report",
            started=started,
            config={"quick": args.quick, "output": args.output},
            metrics={"report_chars": len(text)},
        )
    return 0


#: The paper worked examples replayable by ``repro trace --example``.
TRACE_EXAMPLES = ("min-min", "mct", "met", "swa", "kpb", "sufferage")


def _trace_example_run(example: str):
    """(heuristic, witness ETC) for one paper worked example."""
    from repro.etc.witness import (
        KPB_EXAMPLE_PERCENT,
        SWA_EXAMPLE_HIGH_THRESHOLD,
        SWA_EXAMPLE_LOW_THRESHOLD,
        kpb_example_etc,
        mct_met_example_etc,
        minmin_example_etc,
        sufferage_example_etc,
        swa_example_etc,
    )
    from repro.heuristics import KPercentBest, Sufferage, SwitchingAlgorithm

    table = {
        "min-min": (lambda: get_heuristic("min-min"), minmin_example_etc),
        "mct": (lambda: get_heuristic("mct"), mct_met_example_etc),
        "met": (lambda: get_heuristic("met"), mct_met_example_etc),
        "swa": (
            lambda: SwitchingAlgorithm(
                low=SWA_EXAMPLE_LOW_THRESHOLD, high=SWA_EXAMPLE_HIGH_THRESHOLD
            ),
            swa_example_etc,
        ),
        "kpb": (
            lambda: KPercentBest(percent=KPB_EXAMPLE_PERCENT),
            kpb_example_etc,
        ),
        "sufferage": (Sufferage, sufferage_example_etc),
    }
    make_heuristic, make_etc = table[example]
    return make_heuristic(), make_etc()


def cmd_trace(args: argparse.Namespace) -> int:
    """Replay a run under a collecting tracer and print its decision trace."""
    from repro.obs import CollectingTracer, render_events, use_tracer, write_jsonl

    if bool(args.example) == bool(args.etc):
        print("error: trace needs exactly one of --example or --etc",
              file=sys.stderr)
        return 2
    if args.example:
        heuristic, etc = _trace_example_run(args.example)
        label = f"paper example {args.example!r}"
    else:
        etc = _load_etc(args.etc)
        heuristic = _make_heuristic(args.heuristic, args.seed)
        label = f"{args.heuristic} on {args.etc}"
    breaker = make_tie_breaker(args.ties, rng=args.seed)
    with use_tracer(CollectingTracer()) as tracer:
        result = IterativeScheduler(heuristic, tie_breaker=breaker).run(etc)
    print(f"decision trace — {label} "
          f"({etc.num_tasks} tasks x {etc.num_machines} machines)")
    print()
    print(render_events(tracer.events))
    print()
    spans = " -> ".join(f"{s:g}" for s in result.makespans())
    print(f"makespans per iteration : {spans}")
    print(f"removal order           : {' -> '.join(result.removal_order)}")
    if result.unfrozen:
        print(f"never frozen            : {', '.join(result.unfrozen)}")
    if result.makespan_increased():
        print("makespan increased      : yes (the paper's phenomenon)")
    print("counters:")
    for name, value in tracer.counters.as_dict().items():
        print(f"  {name:<36} {value}")
    if args.jsonl:
        lines = write_jsonl(tracer, args.jsonl)
        print(f"\nwrote {lines} JSONL records to {args.jsonl}")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Time the tracked workloads; optionally compare against a baseline."""
    from repro.bench import (
        WORKLOADS,
        compare_reports,
        compare_speedups,
        format_report,
        load_report,
        run_bench,
        write_report,
    )

    if args.list_workloads:
        for workload in WORKLOADS:
            print(f"{workload.name:<28} {workload.description}")
        return 0
    started = time.perf_counter()
    report = run_bench(
        smoke=args.smoke,
        repeats=args.repeats,
        with_reference=not args.no_reference,
        only=args.workloads.split(",") if args.workloads else None,
        backend=args.backend,
        batch_size=args.batch_size,
        profile=args.profile,
        progress=lambda line: print(line, file=sys.stderr),
    )
    print(format_report(report))
    if args.profile is not None:
        for name, entry in sorted(report["results"].items()):
            if entry.get("profile"):
                print(f"\nprofile: {name} (top {args.profile} by cumulative time)")
                for line in entry["profile"]:
                    print(f"  {line}")
    if args.output:
        write_report(report, args.output)
        print(f"\nreport written to {args.output}")
    if args.append_ledger:
        metrics = {}
        for name, entry in report["results"].items():
            metrics[f"bench.{name}.best_s"] = entry["best_s"]
            if "speedup" in entry:
                metrics[f"bench.{name}.speedup"] = entry["speedup"]
        _ledger_append(
            args,
            "bench",
            started=started,
            config={
                "smoke": args.smoke,
                "repeats": args.repeats,
                "with_reference": not args.no_reference,
                "workloads": args.workloads,
                "backend": args.backend,
                "batch_size": args.batch_size,
            },
            metrics=metrics,
            extra={"bench_report": report},
        )
    if args.baseline:
        regressions = compare_reports(
            report, load_report(args.baseline), tolerance=args.tolerance
        )
        if regressions:
            print(f"\nREGRESSION vs {args.baseline}:", file=sys.stderr)
            for line in regressions:
                print(f"  {line}", file=sys.stderr)
            return 1
        print(f"\nno regressions vs {args.baseline} "
              f"(tolerance {args.tolerance:.0%})")
    if args.speedup_baseline:
        regressions = compare_speedups(
            report,
            load_report(args.speedup_baseline),
            tolerance=args.speedup_tolerance,
        )
        if regressions:
            print(f"\nSPEEDUP REGRESSION vs {args.speedup_baseline}:",
                  file=sys.stderr)
            for line in regressions:
                print(f"  {line}", file=sys.stderr)
            return 1
        print(f"\nno speedup regressions vs {args.speedup_baseline} "
              f"(tolerance {args.speedup_tolerance:.0%})")
    return 0


def cmd_paper(args: argparse.Namespace) -> int:
    """Replay the paper's five worked examples (compact form)."""
    from repro.etc.witness import (
        KPB_EXAMPLE_PERCENT,
        SWA_EXAMPLE_HIGH_THRESHOLD,
        SWA_EXAMPLE_LOW_THRESHOLD,
        kpb_example_etc,
        mct_met_example_etc,
        minmin_example_etc,
        sufferage_example_etc,
        swa_example_etc,
    )
    from repro.heuristics import KPercentBest, Sufferage, SwitchingAlgorithm

    runs = [
        ("Min-Min (Tables 1-3)", get_heuristic("min-min"), minmin_example_etc()),
        ("MCT (Tables 4-6)", get_heuristic("mct"), mct_met_example_etc()),
        ("MET (Tables 7-8)", get_heuristic("met"), mct_met_example_etc()),
        (
            "SWA (Tables 9-11)",
            SwitchingAlgorithm(
                low=SWA_EXAMPLE_LOW_THRESHOLD, high=SWA_EXAMPLE_HIGH_THRESHOLD
            ),
            swa_example_etc(),
        ),
        (
            "K-percent Best (Tables 12-14)",
            KPercentBest(percent=KPB_EXAMPLE_PERCENT),
            kpb_example_etc(),
        ),
        ("Sufferage (Tables 15-17)", Sufferage(), sufferage_example_etc()),
    ]
    for label, heuristic, etc in runs:
        result = IterativeScheduler(heuristic).run(etc)
        spans = " -> ".join(f"{s:g}" for s in result.makespans())
        verdict = (
            "MAKESPAN INCREASED" if result.makespan_increased() else
            ("mapping unchanged" if not result.mapping_changed() else "re-mapped")
        )
        print(f"{label:<32} makespans {spans:<22} [{verdict}]")
    print("\n(For the full tables and Gantt charts run "
          "`python examples/paper_walkthrough.py`.)")
    return 0


# ----------------------------------------------------------------------
# obs subcommand family — inspect the run ledger
# ----------------------------------------------------------------------
def cmd_obs_tail(args: argparse.Namespace) -> int:
    """Print the last N ledger records; ``--follow`` keeps polling."""
    from repro.obs.ledger import RunLedger, follow_records, format_record_line

    ledger = RunLedger(args.ledger)
    records = ledger.tail(args.last)
    if not records and not args.follow:
        print(f"ledger {ledger.path} is empty "
              "(run e.g. `repro bench --append-ledger`)")
        return 0
    for record in records:
        print(format_record_line(record), flush=True)
    if args.follow:
        # The poll loop re-reads the whole ledger, so skip the records
        # that already existed (the tail above showed the newest ones).
        preexisting = len(ledger.read()) if ledger.exists() else 0
        emitted = 0

        def emit(record: dict) -> None:
            nonlocal emitted
            emitted += 1
            if emitted > preexisting:
                print(format_record_line(record), flush=True)

        try:
            follow_records(ledger, emit, interval_s=args.interval)
        except KeyboardInterrupt:
            pass
    return 0


def cmd_obs_summary(args: argparse.Namespace) -> int:
    """Longitudinal summary of the ledger, grouped by command."""
    from repro.obs.ledger import RunLedger, collect_counters, summarize_records

    records = RunLedger(args.ledger).read()
    print(summarize_records(records))
    totals = collect_counters(records)
    if totals:
        print()
        print("obs counter totals across runs:")
        for name, value in sorted(totals.items()):
            print(f"  {name:<44} {value}")
    latest = next(
        (
            r
            for r in reversed(records)
            if isinstance(r.get("extra"), dict) and r["extra"].get("histograms")
        ),
        None,
    )
    if latest is not None:
        def fmt(value) -> str:
            return f"{value:.6g}" if isinstance(value, (int, float)) else "-"

        print()
        print(f"histogram percentiles (latest run {latest['run_id']}):")
        for name, stats in sorted(latest["extra"]["histograms"].items()):
            print(f"  {name:<36} p50={fmt(stats.get('p50')):<10} "
                  f"p95={fmt(stats.get('p95')):<10} "
                  f"max={fmt(stats.get('max')):<10} "
                  f"n={stats.get('count')}")
    return 0


def cmd_obs_timeline(args: argparse.Namespace) -> int:
    """Render a span timeline from an exported trace JSONL file."""
    from repro.obs import read_jsonl, spans_from_records
    from repro.obs.timeline import render_timeline, write_timeline_html

    spans = spans_from_records(read_jsonl(args.trace))
    print(render_timeline(spans, width=args.width))
    if args.html:
        path = write_timeline_html(spans, args.html)
        print(f"\nhtml timeline written to {path}")
    return 0


def cmd_obs_diff(args: argparse.Namespace) -> int:
    """Metric deltas between two ledger records; exit 1 on regression."""
    from repro.obs.ledger import RunLedger, diff_records

    ledger = RunLedger(args.ledger)
    record_a = ledger.find(args.run_a)
    record_b = ledger.find(args.run_b)
    lines, regressions = diff_records(
        record_a, record_b, tolerance=args.tolerance
    )
    print("\n".join(lines))
    if regressions:
        print(f"\nREGRESSION ({len(regressions)} metric(s) beyond "
              f"{args.tolerance:.0%} tolerance):", file=sys.stderr)
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"\nno regressions (tolerance {args.tolerance:.0%})")
    return 0


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    from repro.analysis.runner import DEFAULT_CACHE_DIR
    from repro.bench import DEFAULT_BATCH
    from repro.heuristics.backends import DEFAULT_BACKEND, backend_names
    from repro.obs.ledger import DEFAULT_LEDGER_PATH

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Iterative non-makespan minimisation (IPPS/HCW 2007) toolkit",
        epilog=(
            "Result-producing subcommands accept --append-ledger to record "
            f"the run in the ledger (default: {DEFAULT_LEDGER_PATH}; "
            "relocate it with --ledger-path/--ledger, also honoured by "
            "`repro obs`).  `repro run-grid` — and study/export under "
            "--cache-dir/--resume — persists completed grid cells to "
            ".repro/cells so interrupted runs resume without recomputing."
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p, etc_classes=True):
        p.add_argument("--seed", type=int, default=0, help="master RNG seed")
        if etc_classes:
            p.add_argument("--heterogeneity", type=_heterogeneity,
                           default=Heterogeneity.HIHI,
                           help="hihi | hilo | lohi | lolo")
            p.add_argument("--consistency", type=_consistency,
                           default=Consistency.INCONSISTENT,
                           help="consistent | semi-consistent | inconsistent")

    def add_ledger(p):
        p.add_argument("--append-ledger", action="store_true",
                       help="append a repro-ledger/1 record to the run ledger")
        p.add_argument("--ledger", "--ledger-path", dest="ledger",
                       default=DEFAULT_LEDGER_PATH,
                       help="run ledger path (default: %(default)s)")

    def add_runner(p):
        p.add_argument("--cache-dir", default=None,
                       help="cell cache directory; enables persist-as-you-go "
                            "execution through the resumable runner "
                            "(--resume alone defaults it to .repro/cells)")
        p.add_argument("--resume", action="store_true",
                       help="serve already-completed cells from the cache "
                            "instead of recomputing them")
        p.add_argument("--shards", type=int, default=None,
                       help="round-robin submission shards for the work "
                            "queue (default: one per cell)")
        p.add_argument("--backend", choices=backend_names(),
                       default=DEFAULT_BACKEND,
                       help="kernel backend (decision-identical; default: "
                            "%(default)s)")
        p.add_argument("--batch-size", type=int, default=None,
                       help="pack same-shape grid cells into submission "
                            "batches of this size (default: one cell per "
                            "submission)")

    def add_faults(p):
        from repro.sim.hcsystem import RECOVERY_POLICIES

        p.add_argument("--faults", action="store_true",
                       help="inject seeded machine failures and recoveries")
        p.add_argument("--recovery", choices=RECOVERY_POLICIES,
                       default="requeue",
                       help="rescheduling policy for failed tasks")
        p.add_argument("--retry-budget", type=int, default=8,
                       help="max retries per task before it is dropped")
        p.add_argument("--downtime-frac", type=float, default=0.05,
                       help="mean downtime as a fraction of the fault-free "
                            "makespan")

    g = sub.add_parser("generate", help="generate a synthetic ETC matrix")
    g.add_argument("--tasks", type=int, required=True)
    g.add_argument("--machines", type=int, required=True)
    g.add_argument("--method", choices=["range", "cvb"], default="range")
    g.add_argument("-o", "--output", help="CSV/JSON path (stdout if omitted)")
    add_common(g)
    g.set_defaults(func=cmd_generate)

    m = sub.add_parser("map", help="map an ETC file with one heuristic")
    m.add_argument("--etc", required=True, help="CSV/JSON ETC file")
    m.add_argument("--heuristic", choices=heuristic_names(), default="min-min")
    m.add_argument("--ties", choices=["deterministic", "random"],
                   default="deterministic")
    m.add_argument("--gantt", action="store_true", help="print a Gantt chart")
    m.add_argument("--show-etc", action="store_true")
    add_common(m, etc_classes=False)
    m.set_defaults(func=cmd_map)

    i = sub.add_parser("iterate", help="run the paper's iterative technique")
    i.add_argument("--etc", required=True)
    i.add_argument("--heuristic", choices=heuristic_names(), default="min-min")
    i.add_argument("--ties", choices=["deterministic", "random"],
                   default="deterministic")
    i.add_argument("--seeded", action="store_true",
                   help="use the Section-5 seeding extension (never worse)")
    i.add_argument("--chart", action="store_true",
                   help="render the per-iteration makespan trajectory")
    add_common(i, etc_classes=False)
    i.set_defaults(func=cmd_iterate)

    s = sub.add_parser("study", help="iterative improvement study (E23)")
    s.add_argument("--heuristics",
                   default="min-min,mct,met,sufferage,k-percent-best,"
                           "switching-algorithm")
    s.add_argument("--tasks", type=int, default=30)
    s.add_argument("--machines", type=int, default=8)
    s.add_argument("--instances", type=int, default=20)
    s.add_argument("--ties", default="deterministic",
                   help="comma list: deterministic,random")
    s.add_argument("--seeded", action="store_true")
    s.add_argument("--failure-rates", default="1e-6,3e-6,1e-5",
                   help="(--faults) comma list of failure rates per machine "
                        "per time unit")
    add_faults(s)
    add_common(s)
    add_ledger(s)
    add_runner(s)
    s.set_defaults(func=cmd_study)

    c = sub.add_parser("compare", help="cross-heuristic makespan comparison (E24)")
    c.add_argument("--heuristics", default="min-min,mct,met,olb")
    c.add_argument("--tasks", type=int, default=40)
    c.add_argument("--machines", type=int, default=8)
    c.add_argument("--instances", type=int, default=10)
    add_common(c)
    add_ledger(c)
    c.set_defaults(func=cmd_compare)

    d = sub.add_parser("simulate", help="dynamic (arrival-driven) simulation")
    d.add_argument("--tasks", type=int, default=100)
    d.add_argument("--machines", type=int, default=8)
    d.add_argument("--rate", type=float, default=1e-4,
                   help="Poisson arrival rate (tasks per time unit)")
    d.add_argument("--policy", default="mct",
                   help="mct | met | olb | kpb | swa | batch-min-min | "
                        "batch-sufferage")
    d.add_argument("--kpb-percent", type=float, default=50.0)
    d.add_argument("--batch-interval", type=float, default=1000.0)
    d.add_argument("--progress", action="store_true",
                   help="live event-count progress on stderr")
    d.add_argument("--heuristic", choices=heuristic_names(), default="min-min",
                   help="(--faults) mapping heuristic for the static run")
    d.add_argument("--failures", type=float, default=2.0,
                   help="(--faults) expected failures per machine over the "
                        "fault-free makespan")
    d.add_argument("--slowdowns", type=float, default=0.0,
                   help="(--faults) expected slowdown episodes per machine "
                        "over the fault-free makespan")
    d.add_argument("--slowdown-factor", type=float, default=2.0,
                   help="(--faults) execution-time multiplier while slowed")
    add_faults(d)
    add_common(d)
    add_ledger(d)
    d.set_defaults(func=cmd_simulate)

    w = sub.add_parser("witness", help="search for a makespan-increase witness")
    w.add_argument("--heuristic", choices=heuristic_names(), default="sufferage")
    w.add_argument("--tasks", type=int, default=8)
    w.add_argument("--machines", type=int, default=3)
    w.add_argument("--trials", type=int, default=5000)
    w.add_argument("--ties", choices=["deterministic", "random"],
                   default="deterministic")
    w.add_argument("--grid", help="comma-separated ETC value grid "
                                  "(default: half-integers 0.5..10)")
    w.add_argument("-o", "--output", help="write the witness ETC to CSV/JSON")
    add_common(w, etc_classes=False)
    w.set_defaults(func=cmd_witness)

    e = sub.add_parser("export", help="run a grid and export run records")
    e.add_argument("--heuristics", default="min-min,mct,met,sufferage")
    e.add_argument("--tasks", type=int, default=30)
    e.add_argument("--machines", type=int, default=8)
    e.add_argument("--instances", type=int, default=20)
    e.add_argument("--ties", choices=["deterministic", "random"],
                   default="deterministic")
    e.add_argument("--seeded", action="store_true")
    e.add_argument("--workers", type=int, default=None,
                   help="process count for the parallel runner")
    e.add_argument("--progress", action="store_true",
                   help="live per-cell progress (with ETA) on stderr")
    e.add_argument("-o", "--output", required=True, help="CSV/JSON path")
    add_common(e)
    add_ledger(e)
    add_runner(e)
    e.set_defaults(func=cmd_export)

    rg = sub.add_parser(
        "run-grid",
        help="run a multi-class grid through the resumable cached runner",
    )
    rg.add_argument("--heuristics", default="min-min,mct,met,sufferage")
    rg.add_argument("--tasks", type=int, default=30)
    rg.add_argument("--machines", type=int, default=8)
    rg.add_argument("--instances", type=int, default=20)
    rg.add_argument("--heterogeneities", default="hihi,lolo",
                    help="comma list: hihi,hilo,lohi,lolo")
    rg.add_argument("--consistencies", default="inconsistent",
                    help="comma list: consistent,semi-consistent,inconsistent")
    rg.add_argument("--ties", choices=["deterministic", "random"],
                    default="deterministic")
    rg.add_argument("--seeded", action="store_true")
    rg.add_argument("--workers", type=int, default=None,
                    help="process count for pooled execution")
    rg.add_argument("--timeout", type=float, default=None,
                    help="per-cell wall-clock timeout in seconds "
                         "(pooled mode)")
    rg.add_argument("--retries", type=int, default=1,
                    help="re-attempts per failing/timed-out cell before "
                         "it is quarantined (default: %(default)s)")
    rg.add_argument("--no-cache", action="store_true",
                    help="disable the on-disk cell cache entirely")
    rg.add_argument("--store", dest="store_dir", metavar="DIR", default=None,
                    help="publish cell inputs once into a memory-mapped ETC "
                         "store at DIR; workers attach zero-copy views "
                         "instead of regenerating instances")
    rg.add_argument("--stream", dest="stream_chunk", type=int, metavar="N",
                    default=None,
                    help="bound the store publish window to N instances in "
                         "RAM at a time (requires --store)")
    rg.add_argument("--progress", action="store_true",
                    help="live per-cell progress (with ETA) on stderr")
    rg.add_argument("--trace-out", metavar="PATH", default=None,
                    help="collect a trace (even without --append-ledger) and "
                         "export it as obs JSONL, spans included; render "
                         "with `repro obs timeline PATH`")
    rg.add_argument("--timeseries", metavar="PATH", default=None,
                    help="stream repro-timeseries/1 throughput samples "
                         "(tasks/s, cache hits, RSS, queue depth) to PATH "
                         "while the grid runs")
    rg.add_argument("--sample-interval", type=float, default=0.5,
                    help="minimum seconds between time-series samples "
                         "(default: %(default)s)")
    rg.add_argument("-o", "--output",
                    help="write per-run records to CSV/JSON")
    rg.add_argument("--seed", type=int, default=0, help="master RNG seed")
    add_ledger(rg)
    add_runner(rg)
    # run-grid caches by default (unlike study/export, which only opt
    # in via --cache-dir/--resume).
    rg.set_defaults(func=cmd_run_grid, cache_dir=DEFAULT_CACHE_DIR)

    from repro.sim.arrivals import ARRIVAL_PROCESSES

    rr = sub.add_parser(
        "run-rolling",
        help="rolling-horizon online serving simulation (map + refine "
             "each horizon batch, optional live faults)",
    )
    rr.add_argument("--tasks", type=int, default=10_000,
                    help="total tasks to serve (default: %(default)s)")
    rr.add_argument("--machines", type=int, default=8)
    rr.add_argument("--heuristic", choices=heuristic_names(),
                    default="min-min",
                    help="batch mapping heuristic refined by the iterative "
                         "technique each horizon")
    rr.add_argument("--refine-iterations", type=int, default=2,
                    help="iterative-technique cap per batch: 1 = plain "
                         "heuristic mapping, 0 = run the technique to "
                         "completion (default: %(default)s)")
    rr.add_argument("--horizon", type=float, default=None,
                    help="mapping-event cadence in simulation time "
                         "(default: derived so a mean batch holds "
                         "--batch-target tasks)")
    rr.add_argument("--batch-target", type=int, default=64,
                    help="target mean batch size when --horizon is derived "
                         "(default: %(default)s)")
    rr.add_argument("--rate", type=float, default=None,
                    help="arrival rate in tasks per sim time unit "
                         "(default: calibrated to --utilization)")
    rr.add_argument("--utilization", type=float, default=0.7,
                    help="target machine load for rate calibration "
                         "(default: %(default)s)")
    rr.add_argument("--arrival", choices=ARRIVAL_PROCESSES,
                    default="poisson",
                    help="arrival process (default: %(default)s)")
    rr.add_argument("--burst-factor", type=float, default=8.0,
                    help="(--arrival bursty) in-burst rate multiplier")
    rr.add_argument("--burst-fraction", type=float, default=0.5,
                    help="(--arrival bursty) fraction of tasks arriving "
                         "inside bursts")
    rr.add_argument("--mean-burst", type=float, default=16.0,
                    help="(--arrival bursty) mean tasks per burst")
    rr.add_argument("--arrival-trace", metavar="PATH", default=None,
                    help="(--arrival trace) file of inter-arrival gaps, "
                         "one per line")
    rr.add_argument("--chunk-tasks", type=int, default=64,
                    help="tasks per generated ETC instance; the streamed "
                         "window holds --stream instances (default: "
                         "%(default)s)")
    rr.add_argument("--stream", dest="stream_chunk", type=int, metavar="N",
                    default=None,
                    help="instances per streamed window (default: 32); "
                         "bounds resident task definitions")
    rr.add_argument("--store", dest="store_dir", metavar="DIR", default=None,
                    help="publish the task stream once into a memory-mapped "
                         "ETC store at DIR and serve from it (idempotent "
                         "per key, so reruns skip generation)")
    rr.add_argument("--failures", type=float, default=2.0,
                    help="(--faults) expected failures per machine over "
                         "the run")
    rr.add_argument("--slowdowns", type=float, default=0.0,
                    help="(--faults) expected slowdown episodes per machine "
                         "over the run")
    rr.add_argument("--slowdown-factor", type=float, default=2.0,
                    help="(--faults) execution-time multiplier while slowed")
    rr.add_argument("--progress", action="store_true",
                    help="live event-count progress on stderr")
    rr.add_argument("--trace-out", metavar="PATH", default=None,
                    help="collect a trace (even without --append-ledger) "
                         "with rolling.horizon spans and export it as obs "
                         "JSONL; render with `repro obs timeline PATH`")
    rr.add_argument("--timeseries", metavar="PATH", default=None,
                    help="stream repro-timeseries/1 throughput samples "
                         "(tasks scheduled/s, backlog, RSS) to PATH")
    rr.add_argument("--sample-interval", type=float, default=0.5,
                    help="minimum seconds between time-series samples "
                         "(default: %(default)s)")
    add_faults(rr)
    add_common(rr)
    add_ledger(rr)
    rr.set_defaults(func=cmd_run_rolling)

    from repro.serve.cache import DEFAULT_RESPONSE_CACHE_DIR

    sv = sub.add_parser(
        "serve",
        help="run the scheduling-as-a-service HTTP API "
             "(see docs/serving.md)",
    )
    sv.add_argument("--host", default="127.0.0.1",
                    help="bind address (default: %(default)s)")
    sv.add_argument("--port", type=int, default=8351,
                    help="bind port; 0 picks an ephemeral port "
                         "(default: %(default)s)")
    sv.add_argument("--workers", type=int, default=4,
                    help="worker threads computing requests "
                         "(default: %(default)s)")
    sv.add_argument("--max-pending", type=int, default=64,
                    help="in-flight request cap before shedding with 503 "
                         "(default: %(default)s)")
    sv.add_argument("--cache-dir", default=DEFAULT_RESPONSE_CACHE_DIR,
                    help="content-addressed response cache directory "
                         "(default: %(default)s)")
    sv.add_argument("--no-cache", action="store_true",
                    help="disable the response cache (recompute everything)")
    sv.add_argument("--trace-out", metavar="PATH", default=None,
                    help="collect serve.request/serve.compute spans and "
                         "export them as obs JSONL on shutdown (serialises "
                         "request handling; debugging aid, not for load)")
    sv.add_argument("--ledger-every", type=float, default=0.0,
                    help="with --append-ledger, also flush a ledger record "
                         "every N seconds of traffic (default: only at "
                         "shutdown)")
    add_ledger(sv)
    sv.set_defaults(func=cmd_serve)

    sl = sub.add_parser(
        "serve-load",
        help="drive synthetic traffic against a running `repro serve`",
    )
    sl.add_argument("--url", default="http://127.0.0.1:8351/v1/schedule",
                    help="endpoint to POST to (default: %(default)s)")
    sl.add_argument("-n", "--requests", type=int, default=100,
                    help="number of requests (default: %(default)s)")
    sl.add_argument("--concurrency", type=int, default=8,
                    help="client worker threads (default: %(default)s)")
    sl.add_argument("--rate", type=float, default=None,
                    help="open-loop request release rate per second "
                         "(default: unpaced)")
    sl.add_argument("--timeout", type=float, default=30.0,
                    help="per-request timeout in seconds "
                         "(default: %(default)s)")
    sl.add_argument("--payload", metavar="FILE", default=None,
                    help="JSON file with the request payload (default: a "
                         "small built-in study request)")
    sl.add_argument("--tasks", type=int, default=24,
                    help="built-in payload: ensemble tasks "
                         "(default: %(default)s)")
    sl.add_argument("--machines", type=int, default=6,
                    help="built-in payload: ensemble machines "
                         "(default: %(default)s)")
    sl.add_argument("--instances", type=int, default=4,
                    help="built-in payload: instances per request "
                         "(default: %(default)s)")
    sl.add_argument("--heuristic", choices=heuristic_names(),
                    default="min-min",
                    help="built-in payload heuristic (default: %(default)s)")
    sl.add_argument("--seed", type=int, default=0,
                    help="built-in payload seed (default: %(default)s)")
    sl.add_argument("--errors-fatal", action="store_true",
                    help="exit 1 when any request fails")
    sl.add_argument("-o", "--output", help="write the load report JSON here")
    add_ledger(sl)
    sl.set_defaults(func=cmd_serve_load)

    t = sub.add_parser("trace", help="replay a run and print its decision trace")
    t.add_argument("--example", choices=TRACE_EXAMPLES,
                   help="replay one of the paper's worked examples")
    t.add_argument("--etc", help="CSV/JSON ETC file (instead of --example)")
    t.add_argument("--heuristic", choices=heuristic_names(), default="min-min",
                   help="heuristic for --etc runs")
    t.add_argument("--ties", choices=["deterministic", "random"],
                   default="deterministic")
    t.add_argument("--jsonl", help="also write the trace to a JSONL file")
    add_common(t, etc_classes=False)
    t.set_defaults(func=cmd_trace)

    r = sub.add_parser("report", help="generate the full reproduction report")
    r.add_argument("--quick", action="store_true", help="small ensembles")
    r.add_argument("-o", "--output", help="Markdown path (stdout if omitted)")
    add_common(r, etc_classes=False)
    add_ledger(r)
    r.set_defaults(func=cmd_report)

    b = sub.add_parser("bench", help="time the tracked scheduling workloads")
    b.add_argument("--smoke", action="store_true",
                   help="shrunken workloads (64x8) for quick sanity runs")
    b.add_argument("--repeats", type=int, default=5,
                   help="timing repetitions per workload (best is reported)")
    b.add_argument("--no-reference", action="store_true",
                   help="skip the retained pre-optimisation variants")
    b.add_argument("--workloads",
                   help="comma list restricting which workloads run")
    b.add_argument("--list", action="store_true", dest="list_workloads",
                   help="list the registered workloads and exit")
    b.add_argument("--backend", choices=backend_names(), default=None,
                   help="kernel backend for the backend-aware workloads "
                        "(default: each workload's historical default)")
    b.add_argument("--batch-size", type=int, default=DEFAULT_BATCH,
                   help="batch size for the batched-greedy workload "
                        "(default: %(default)s)")
    b.add_argument("--baseline",
                   help="bench JSON to compare against (exit 1 on regression)")
    b.add_argument("--tolerance", type=float, default=0.5,
                   help="allowed fractional slowdown vs baseline (0.5 = 50%%)")
    b.add_argument("--profile", type=int, metavar="N", default=None,
                   help="after timing, run each optimised thunk once under "
                        "cProfile and print the top N cumulative entries")
    b.add_argument("--speedup-baseline",
                   help="bench JSON whose optimised-vs-reference speedup "
                        "ratios gate this run (machine-speed independent; "
                        "exit 1 when a ratio shrinks beyond tolerance)")
    b.add_argument("--speedup-tolerance", type=float, default=0.25,
                   help="allowed fractional speedup shrink vs "
                        "--speedup-baseline (default: %(default)s)")
    b.add_argument("-o", "--output", help="write the report JSON here")
    add_ledger(b)
    b.set_defaults(func=cmd_bench)

    o = sub.add_parser("obs", help="inspect the run ledger")
    osub = o.add_subparsers(dest="obs_command", required=True)

    def add_obs_common(p):
        p.add_argument("--ledger", "--ledger-path", dest="ledger",
                       default=DEFAULT_LEDGER_PATH,
                       help="run ledger path (default: %(default)s)")

    ot = osub.add_parser("tail", help="print the most recent ledger records")
    ot.add_argument("-n", "--last", type=int, default=10,
                    help="how many records (default: %(default)s)")
    ot.add_argument("-f", "--follow", action="store_true",
                    help="keep polling the ledger and print records as they "
                         "are appended (Ctrl-C to stop)")
    ot.add_argument("--interval", type=float, default=2.0,
                    help="poll interval in seconds for --follow "
                         "(default: %(default)s)")
    add_obs_common(ot)
    ot.set_defaults(func=cmd_obs_tail)

    otl = osub.add_parser(
        "timeline",
        help="render a flamegraph-style span timeline from an exported "
             "trace JSONL (see run-grid --trace-out)",
    )
    otl.add_argument("trace", help="obs JSONL export containing span records")
    otl.add_argument("--width", type=int, default=100,
                     help="ASCII timeline width (default: %(default)s)")
    otl.add_argument("--html", metavar="PATH", default=None,
                     help="also write a self-contained HTML timeline to PATH")
    otl.set_defaults(func=cmd_obs_timeline)

    os_ = osub.add_parser("summary",
                          help="longitudinal metric summary per command")
    add_obs_common(os_)
    os_.set_defaults(func=cmd_obs_summary)

    od = osub.add_parser(
        "diff",
        help="metric deltas between two runs (exit 1 on makespan-metric "
             "regression beyond tolerance)",
    )
    od.add_argument("run_a", help="run_id prefix or negative index (-2 = "
                                  "second newest)")
    od.add_argument("run_b", help="run_id prefix or negative index (-1 = "
                                  "newest)")
    od.add_argument("--tolerance", type=float, default=0.05,
                    help="allowed relative worsening before a metric counts "
                         "as a regression (default: %(default)s)")
    add_obs_common(od)
    od.set_defaults(func=cmd_obs_diff)

    p = sub.add_parser("paper", help="replay the paper's worked examples")
    p.set_defaults(func=cmd_paper)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Downstream pager/filter (e.g. ``| head``) closed the pipe.
        # Point stdout at devnull so the interpreter's shutdown flush
        # does not raise a second time, and exit quietly.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

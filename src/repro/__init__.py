"""repro — reproduction of Briceño, Oltikar, Siegel & Maciejewski,
"Study of an Iterative Technique to Minimize Completion Times of
Non-Makespan Machines" (IPPS/HCW 2007).

Quickstart::

    from repro import (
        ETCMatrix, IterativeScheduler, get_heuristic, compare_iterative,
    )

    etc = ETCMatrix([[4, 5, 5], [6, 2, 2], [5, 6, 3], [4, 1, 3]])
    result = IterativeScheduler(get_heuristic("min-min")).run(etc)
    print(compare_iterative(result))

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.core import (
    Assignment,
    DeterministicTieBreaker,
    IterationRecord,
    IterativeComparison,
    IterativeResult,
    IterativeScheduler,
    MachineComparison,
    Mapping,
    RandomTieBreaker,
    ScriptedTieBreaker,
    SeededIterativeScheduler,
    TieBreaker,
    compare_iterative,
    make_tie_breaker,
    validate_iterative_result,
    validate_mapping,
)
from repro.etc import (
    Consistency,
    ETCMatrix,
    Heterogeneity,
    generate_cvb,
    generate_ensemble,
    generate_range_based,
)
from repro.heuristics import (
    PAPER_HEURISTICS,
    Heuristic,
    get_heuristic,
    heuristic_names,
)

__version__ = "1.8.0"

__all__ = [
    "__version__",
    # etc
    "ETCMatrix",
    "Consistency",
    "Heterogeneity",
    "generate_range_based",
    "generate_cvb",
    "generate_ensemble",
    # core
    "Mapping",
    "Assignment",
    "TieBreaker",
    "DeterministicTieBreaker",
    "RandomTieBreaker",
    "ScriptedTieBreaker",
    "make_tie_breaker",
    "IterativeScheduler",
    "SeededIterativeScheduler",
    "IterationRecord",
    "IterativeResult",
    "MachineComparison",
    "IterativeComparison",
    "compare_iterative",
    "validate_mapping",
    "validate_iterative_result",
    # heuristics
    "Heuristic",
    "get_heuristic",
    "heuristic_names",
    "PAPER_HEURISTICS",
]

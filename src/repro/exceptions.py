"""Exception hierarchy for the :mod:`repro` library.

All library-raised errors derive from :class:`ReproError` so that callers
can catch every library failure with a single ``except`` clause while
still being able to discriminate the failure class.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ETCError",
    "ETCShapeError",
    "ETCValueError",
    "LabelError",
    "MappingError",
    "UnmappedTaskError",
    "UnknownHeuristicError",
    "UnknownBackendError",
    "ConfigurationError",
    "SimulationError",
    "ETCStoreError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ETCError(ReproError):
    """Base class for errors involving ETC matrices."""


class ETCShapeError(ETCError):
    """An ETC matrix (or labels for one) has an invalid shape."""


class ETCValueError(ETCError):
    """An ETC matrix contains invalid values (negative, NaN, inf)."""


class LabelError(ETCError, KeyError):
    """A task or machine label does not exist in the matrix."""


class MappingError(ReproError):
    """A mapping violates a structural invariant.

    Examples: a task is assigned twice, an assignment references a
    machine outside the considered machine set, or completion times do
    not recompute consistently.
    """


class UnmappedTaskError(MappingError):
    """A completion-time query referenced a task that is not mapped."""


class UnknownHeuristicError(ReproError, KeyError):
    """A heuristic name was not found in the registry."""


class UnknownBackendError(ReproError, KeyError):
    """A kernel-backend name was not found in the backend registry."""


class ConfigurationError(ReproError, ValueError):
    """A heuristic or experiment was configured with invalid parameters."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class ETCStoreError(ETCError):
    """The on-disk ETC store is locked, corrupt, or misused.

    Examples: appending to a key that is already committed, attaching to
    a store directory that does not exist, a manifest whose schema does
    not match, or a write lock held by another live process.
    """

"""Discrete-event HC system simulator substrate."""

from repro.sim.engine import Simulator
from repro.sim.events import Event, EventQueue
from repro.sim.faults import (
    FAULT_KINDS,
    FaultConfig,
    FaultEvent,
    FaultPlan,
    generate_fault_plan,
)
from repro.sim.hcsystem import (
    RECOVERY_POLICIES,
    ArrivalWorkload,
    DynamicHCSimulation,
    FaultTolerantHCSystem,
    FaultyExecution,
    HCSystem,
    KPBOnline,
    MCTOnline,
    METOnline,
    OLBOnline,
    OnlinePolicy,
    SWAOnline,
    poisson_workload,
)
from repro.sim.trace import ExecutionTrace, TaskExecution

__all__ = [
    "Event",
    "EventQueue",
    "Simulator",
    "ExecutionTrace",
    "TaskExecution",
    "HCSystem",
    "ArrivalWorkload",
    "poisson_workload",
    "OnlinePolicy",
    "MCTOnline",
    "METOnline",
    "OLBOnline",
    "KPBOnline",
    "SWAOnline",
    "DynamicHCSimulation",
    "FAULT_KINDS",
    "FaultConfig",
    "FaultEvent",
    "FaultPlan",
    "generate_fault_plan",
    "RECOVERY_POLICIES",
    "FaultyExecution",
    "FaultTolerantHCSystem",
]

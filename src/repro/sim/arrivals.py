"""Arrival-process generators for dynamic and rolling-horizon serving.

Three processes produce inter-arrival *gaps* (all strictly positive is
not required — simultaneous arrivals are legal, but gaps must be finite
and non-negative):

* :class:`PoissonArrivals` — exponential gaps at a fixed ``rate``; the
  memoryless baseline used by ``poisson_workload`` since PR 4.
* :class:`BurstyArrivals` — a two-phase Markov-modulated Poisson
  process: geometric-length bursts at ``rate * burst_factor``
  interleaved with calm stretches whose rate is derived so the
  *overall* mean arrival rate stays ``rate``.  Use it to stress
  horizon batching with clumped load at an unchanged average.
* :class:`TraceArrivals` — replay recorded gaps (cycling when the
  workload outlives the trace), for driving the simulator with real
  arrival logs.

Generators are chunk-oriented: ``gaps(count, gen)`` may be called
repeatedly and the process carries its phase state across calls, which
is what lets the rolling simulation schedule arrivals window by window
without materialising a million-entry timeline up front.  Call
``reset()`` to restart the process for a fresh run.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "BurstyArrivals",
    "TraceArrivals",
    "ARRIVAL_PROCESSES",
    "make_arrival_process",
]


class ArrivalProcess:
    """Produces inter-arrival gaps chunk by chunk."""

    name: str = ""

    def gaps(self, count: int, gen: np.random.Generator) -> np.ndarray:
        """Next ``count`` inter-arrival gaps as a float64 array."""
        raise NotImplementedError

    def reset(self) -> None:
        """Restart the process (default: stateless, nothing to do)."""


class PoissonArrivals(ArrivalProcess):
    """Exponential inter-arrival gaps with mean ``1 / rate``."""

    name = "poisson"

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise ConfigurationError(f"arrival rate must be positive, got {rate}")
        self.rate = float(rate)

    def gaps(self, count: int, gen: np.random.Generator) -> np.ndarray:
        if count < 0:
            raise ConfigurationError(f"count must be >= 0, got {count}")
        return gen.exponential(1.0 / self.rate, size=count)


class BurstyArrivals(ArrivalProcess):
    """Two-phase bursty arrivals with an unchanged overall mean rate.

    A fraction ``burst_fraction`` of tasks arrive inside bursts drawn
    at ``rate * burst_factor``; the calm-phase rate solves

        burst_fraction / (rate * burst_factor)
          + (1 - burst_fraction) / calm_rate  =  1 / rate

    so the long-run mean gap is exactly ``1 / rate`` regardless of how
    hard the bursts clump.  Phase runs are geometric with mean
    ``mean_burst`` (burst) and the matching calm length that realises
    ``burst_fraction``, and the phase survives across ``gaps()`` calls.
    """

    name = "bursty"

    def __init__(
        self,
        rate: float,
        burst_factor: float = 8.0,
        burst_fraction: float = 0.5,
        mean_burst: float = 16.0,
    ) -> None:
        if rate <= 0:
            raise ConfigurationError(f"arrival rate must be positive, got {rate}")
        if burst_factor <= 1.0:
            raise ConfigurationError(
                f"burst_factor must be > 1, got {burst_factor}"
            )
        if not 0.0 < burst_fraction < 1.0:
            raise ConfigurationError(
                f"burst_fraction must be in (0, 1), got {burst_fraction}"
            )
        if mean_burst < 1.0:
            raise ConfigurationError(
                f"mean_burst must be >= 1, got {mean_burst}"
            )
        self.rate = float(rate)
        self.burst_factor = float(burst_factor)
        self.burst_fraction = float(burst_fraction)
        self.mean_burst = float(mean_burst)
        self.burst_rate = self.rate * self.burst_factor
        calm_share = 1.0 / self.rate - self.burst_fraction / self.burst_rate
        self.calm_rate = (1.0 - self.burst_fraction) / calm_share
        # Mean calm-run length that makes the task share of bursts equal
        # burst_fraction: runs alternate, so lengths are proportional to
        # the per-phase task shares.
        self.mean_calm = self.mean_burst * (1.0 - self.burst_fraction) / (
            self.burst_fraction
        )
        self.reset()

    def reset(self) -> None:
        self._in_burst = True
        self._run_left = 0

    def _draw_run(self, gen: np.random.Generator) -> None:
        mean = self.mean_burst if self._in_burst else self.mean_calm
        # Geometric with the requested mean (>= 1 draw per run).
        p = min(1.0, 1.0 / mean)
        self._run_left = int(gen.geometric(p))

    def gaps(self, count: int, gen: np.random.Generator) -> np.ndarray:
        if count < 0:
            raise ConfigurationError(f"count must be >= 0, got {count}")
        out = np.empty(count, dtype=np.float64)
        filled = 0
        while filled < count:
            if self._run_left <= 0:
                self._draw_run(gen)
            take = min(self._run_left, count - filled)
            phase_rate = self.burst_rate if self._in_burst else self.calm_rate
            out[filled : filled + take] = gen.exponential(
                1.0 / phase_rate, size=take
            )
            filled += take
            self._run_left -= take
            if self._run_left == 0:
                self._in_burst = not self._in_burst
        return out


class TraceArrivals(ArrivalProcess):
    """Replays a recorded gap sequence, cycling when it runs out."""

    name = "trace"

    def __init__(self, trace_gaps: Sequence[float]) -> None:
        arr = np.asarray(list(trace_gaps), dtype=np.float64)
        if arr.size == 0:
            raise ConfigurationError("trace must contain at least one gap")
        if not np.all(np.isfinite(arr)) or np.any(arr < 0):
            raise ConfigurationError("trace gaps must be finite and non-negative")
        self.trace_gaps = arr
        self.reset()

    @classmethod
    def from_file(cls, path) -> "TraceArrivals":
        """Load gaps from a text file, one float per line (``#`` starts a
        comment; blank lines are skipped)."""
        values: list[float] = []
        with open(path, encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                text = line.split("#", 1)[0].strip()
                if not text:
                    continue
                try:
                    values.append(float(text))
                except ValueError as exc:
                    raise ConfigurationError(
                        f"{path}:{lineno}: not a number: {text!r}"
                    ) from exc
        return cls(values)

    def reset(self) -> None:
        self._pos = 0

    def gaps(self, count: int, gen: np.random.Generator) -> np.ndarray:
        if count < 0:
            raise ConfigurationError(f"count must be >= 0, got {count}")
        out = np.empty(count, dtype=np.float64)
        filled = 0
        n = self.trace_gaps.size
        while filled < count:
            take = min(n - self._pos, count - filled)
            out[filled : filled + take] = self.trace_gaps[
                self._pos : self._pos + take
            ]
            filled += take
            self._pos = (self._pos + take) % n
        return out


#: Registered process names for CLI / config plumbing.
ARRIVAL_PROCESSES = ("poisson", "bursty", "trace")


def make_arrival_process(
    name: str,
    rate: float = 1.0,
    *,
    burst_factor: float = 8.0,
    burst_fraction: float = 0.5,
    mean_burst: float = 16.0,
    trace_gaps: Sequence[float] | None = None,
) -> ArrivalProcess:
    """Build an arrival process by registered name."""
    if name == "poisson":
        return PoissonArrivals(rate)
    if name == "bursty":
        return BurstyArrivals(
            rate,
            burst_factor=burst_factor,
            burst_fraction=burst_fraction,
            mean_burst=mean_burst,
        )
    if name == "trace":
        if trace_gaps is None:
            raise ConfigurationError("trace arrivals need trace_gaps")
        return TraceArrivals(trace_gaps)
    raise ConfigurationError(
        f"unknown arrival process {name!r}; choose from {ARRIVAL_PROCESSES}"
    )

"""Event primitives for the discrete-event simulator.

A minimal, allocation-light event core: events are ordered by
``(time, priority, seq)`` where ``seq`` is a monotonically increasing
tiebreaker guaranteeing FIFO order among simultaneous events — the
property that makes simulator runs deterministic and reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

from repro.exceptions import SimulationError

__all__ = ["Event", "EventQueue"]


@dataclass(frozen=True, order=False)
class Event:
    """A scheduled simulator event.

    ``kind`` is a free-form string dispatched on by the engine's
    handlers; ``payload`` carries event-specific data.
    """

    time: float
    kind: str
    payload: Any = None
    priority: int = 0
    seq: int = field(default=-1, compare=False)

    def __post_init__(self) -> None:
        if self.time < 0 or self.time != self.time:  # negative or NaN
            raise SimulationError(f"invalid event time {self.time!r}")


class EventQueue:
    """A stable priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, Event]] = []
        self._counter = itertools.count()

    def push(self, event: Event) -> Event:
        """Enqueue ``event``; returns the sequenced copy actually stored."""
        seq = next(self._counter)
        stamped = Event(
            time=event.time,
            kind=event.kind,
            payload=event.payload,
            priority=event.priority,
            seq=seq,
        )
        heapq.heappush(self._heap, (stamped.time, stamped.priority, seq, stamped))
        return stamped

    def pop(self) -> Event:
        """Dequeue the earliest event (FIFO among simultaneous ones)."""
        if not self._heap:
            raise SimulationError("pop from an empty event queue")
        return heapq.heappop(self._heap)[3]

    def peek_time(self) -> float | None:
        """Time of the next event, or ``None`` when empty."""
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


Handler = Callable[[Event], None]

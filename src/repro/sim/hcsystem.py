"""Simulated heterogeneous computing suite.

Two operating modes, both built on the generic engine:

* **static** (:class:`HCSystem`) — execute a complete, precomputed
  mapping: each machine runs its tasks one at a time in assignment
  order from its initial ready time.  This independently *measures* the
  finishing times that the analytic Eq. (1) bookkeeping predicts; the
  property suite asserts they agree for every heuristic (DESIGN.md E25).

* **dynamic** (:class:`DynamicHCSimulation`) — tasks arrive over time
  (the environment SWA, K-percent Best and Sufferage were designed for
  in Maheswaran et al.).  *Immediate mode* maps each task the moment it
  arrives using an :class:`OnlinePolicy`; *batch mode* collects pending
  tasks and remaps them with a full batch heuristic at every mapping
  event (fixed-interval cadence).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Mapping as MappingABC
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.schedule import Mapping, ready_time_vector
from repro.core.ties import DeterministicTieBreaker, TieBreaker, tied_argmin
from repro.etc.matrix import ETCMatrix
from repro.exceptions import ConfigurationError, SimulationError
from repro.heuristics.base import Heuristic
from repro.heuristics.kpb import kpb_subset_size
from repro.heuristics.swa import balance_index
from repro.sim.engine import Simulator
from repro.sim.trace import ExecutionTrace, TaskExecution

__all__ = [
    "HCSystem",
    "ArrivalWorkload",
    "poisson_workload",
    "OnlinePolicy",
    "MCTOnline",
    "METOnline",
    "OLBOnline",
    "KPBOnline",
    "SWAOnline",
    "DynamicHCSimulation",
]


# ----------------------------------------------------------------------
# Static execution
# ----------------------------------------------------------------------
class HCSystem:
    """Executes a complete static mapping and measures the timeline."""

    def __init__(
        self,
        etc: ETCMatrix,
        initial_ready: MappingABC[str, float] | Sequence[float] | None = None,
    ) -> None:
        self.etc = etc
        self._initial_ready = ready_time_vector(etc, initial_ready)

    def execute(self, mapping: Mapping) -> ExecutionTrace:
        """Run ``mapping`` to completion; returns the measured trace."""
        if mapping.etc is not self.etc and mapping.etc != self.etc:
            raise SimulationError("mapping was built for a different ETC matrix")
        sim = Simulator()
        trace = ExecutionTrace(self.etc.machines)
        queues: dict[str, deque[str]] = {
            m: deque(mapping.machine_tasks(m)) for m in self.etc.machines
        }

        def start_next(machine: str) -> None:
            queue = queues[machine]
            if not queue:
                return
            task = queue.popleft()
            duration = self.etc.etc(task, machine)
            start = sim.now
            sim.schedule(duration, "task-finish", payload=(task, machine, start))

        def on_machine_ready(event) -> None:
            start_next(event.payload)

        def on_task_finish(event) -> None:
            task, machine, start = event.payload
            trace.add(
                TaskExecution(task=task, machine=machine, start=start, finish=sim.now)
            )
            start_next(machine)

        sim.on("machine-ready", on_machine_ready)
        sim.on("task-finish", on_task_finish)
        for j, machine in enumerate(self.etc.machines):
            sim.schedule_at(float(self._initial_ready[j]), "machine-ready", machine)
        sim.run()
        if len(trace) != mapping.num_assigned:
            raise SimulationError(
                f"executed {len(trace)} tasks but the mapping holds "
                f"{mapping.num_assigned}"
            )
        return trace

    def measured_finish_times(self, mapping: Mapping) -> dict[str, float]:
        """Per-machine measured finishing times (idle machines keep
        their initial ready time, matching ``Mapping`` semantics)."""
        trace = self.execute(mapping)
        base = dict(zip(self.etc.machines, self._initial_ready.tolist()))
        return trace.machine_finish_times(initial_ready=base)


# ----------------------------------------------------------------------
# Dynamic workloads
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ArrivalWorkload:
    """Tasks with arrival times over an ETC matrix.

    ``arrivals[i]`` is the arrival time of ``etc.tasks[i]``; arrivals
    need not be sorted (the simulator orders them).
    """

    etc: ETCMatrix
    arrivals: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.arrivals) != self.etc.num_tasks:
            raise ConfigurationError(
                f"{len(self.arrivals)} arrival times for {self.etc.num_tasks} tasks"
            )
        if any(a < 0 or a != a for a in self.arrivals):
            raise ConfigurationError("arrival times must be finite and non-negative")

    def arrival_of(self, task: str) -> float:
        return self.arrivals[self.etc.task_index(task)]


def poisson_workload(
    etc: ETCMatrix,
    rate: float,
    rng: np.random.Generator | int | None = None,
) -> ArrivalWorkload:
    """Poisson arrivals: exponential inter-arrival times with ``rate``."""
    if rate <= 0:
        raise ConfigurationError(f"arrival rate must be positive, got {rate}")
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    gaps = gen.exponential(1.0 / rate, size=etc.num_tasks)
    return ArrivalWorkload(etc=etc, arrivals=tuple(np.cumsum(gaps).tolist()))


# ----------------------------------------------------------------------
# Immediate-mode policies (Maheswaran et al. on-line heuristics)
# ----------------------------------------------------------------------
class OnlinePolicy:
    """Chooses a machine for one task the moment it arrives.

    ``expected_free[j]`` is when machine ``j`` will have drained its
    current queue (the on-line analogue of the ready time).
    """

    name: str = ""

    def __init__(self, tie_breaker: TieBreaker | None = None) -> None:
        self.tie_breaker = tie_breaker or DeterministicTieBreaker()

    def choose(self, etc_row: np.ndarray, expected_free: np.ndarray, now: float) -> int:
        raise NotImplementedError


class MCTOnline(OnlinePolicy):
    """On-line MCT: minimise expected completion time."""

    name = "mct-online"

    def choose(self, etc_row: np.ndarray, expected_free: np.ndarray, now: float) -> int:
        completion = np.maximum(expected_free, now) + etc_row
        return self.tie_breaker.choose(tied_argmin(completion))


class METOnline(OnlinePolicy):
    """On-line MET: fastest machine regardless of load."""

    name = "met-online"

    def choose(self, etc_row: np.ndarray, expected_free: np.ndarray, now: float) -> int:
        return self.tie_breaker.choose(tied_argmin(etc_row))


class OLBOnline(OnlinePolicy):
    """On-line OLB: machine expected free soonest."""

    name = "olb-online"

    def choose(self, etc_row: np.ndarray, expected_free: np.ndarray, now: float) -> int:
        return self.tie_breaker.choose(tied_argmin(np.maximum(expected_free, now)))


class KPBOnline(OnlinePolicy):
    """On-line K-percent Best: MCT within the k% fastest machines."""

    name = "kpb-online"

    def __init__(
        self, percent: float = 50.0, tie_breaker: TieBreaker | None = None
    ) -> None:
        super().__init__(tie_breaker)
        if not 0.0 < percent <= 100.0:
            raise ConfigurationError(f"percent must be in (0, 100], got {percent}")
        self.percent = float(percent)

    def choose(self, etc_row: np.ndarray, expected_free: np.ndarray, now: float) -> int:
        size = kpb_subset_size(etc_row.size, self.percent)
        subset = np.sort(np.argsort(etc_row, kind="stable")[:size])
        completion = np.maximum(expected_free[subset], now) + etc_row[subset]
        pick = self.tie_breaker.choose(tied_argmin(completion))
        return int(subset[pick])


class SWAOnline(OnlinePolicy):
    """On-line Switching Algorithm: MCT/MET toggled by the balance index."""

    name = "swa-online"

    def __init__(
        self,
        low: float = 0.40,
        high: float = 0.49,
        tie_breaker: TieBreaker | None = None,
    ) -> None:
        super().__init__(tie_breaker)
        if not 0.0 <= low < high <= 1.0:
            raise ConfigurationError(
                f"thresholds must satisfy 0 <= low < high <= 1, got {low}, {high}"
            )
        self.low = float(low)
        self.high = float(high)
        self._current = "mct"

    def choose(self, etc_row: np.ndarray, expected_free: np.ndarray, now: float) -> int:
        load = np.maximum(expected_free, now)
        bi = balance_index(load)
        if bi == bi:  # not NaN
            if bi > self.high:
                self._current = "met"
            elif bi < self.low:
                self._current = "mct"
        if self._current == "met":
            return self.tie_breaker.choose(tied_argmin(etc_row))
        return self.tie_breaker.choose(tied_argmin(load + etc_row))


# ----------------------------------------------------------------------
# Dynamic simulation
# ----------------------------------------------------------------------
class DynamicHCSimulation:
    """Simulates a dynamic HC system under an on-line or batch policy.

    Exactly one of ``policy`` (immediate mode) or ``batch_heuristic``
    (batch mode) must be given.  In batch mode a *mapping event* fires
    when a task arrives and at least ``batch_interval`` time units have
    passed since the previous mapping event (Maheswaran et al.'s
    interval-based batch mode); any tasks still pending once arrivals
    stop are mapped in a final flush.
    """

    def __init__(
        self,
        workload: ArrivalWorkload,
        policy: OnlinePolicy | None = None,
        batch_heuristic: Heuristic | None = None,
        batch_interval: float = 1.0,
        tie_breaker: TieBreaker | None = None,
    ) -> None:
        if (policy is None) == (batch_heuristic is None):
            raise ConfigurationError(
                "provide exactly one of policy (immediate) or batch_heuristic"
            )
        if batch_heuristic is not None and batch_interval <= 0:
            raise ConfigurationError(
                f"batch_interval must be positive, got {batch_interval}"
            )
        self.workload = workload
        self.policy = policy
        self.batch_heuristic = batch_heuristic
        self.batch_interval = float(batch_interval)
        self.tie_breaker = tie_breaker or DeterministicTieBreaker()

    # ------------------------------------------------------------------
    def run(self, progress=None, progress_every: int = 1000) -> ExecutionTrace:
        """Execute the workload; ``progress`` is forwarded to the engine
        (see :meth:`repro.sim.engine.Simulator.run`)."""
        etc = self.workload.etc
        sim = Simulator()
        trace = ExecutionTrace(etc.machines)
        queues: dict[str, deque[str]] = {m: deque() for m in etc.machines}
        busy: dict[str, bool] = dict.fromkeys(etc.machines, False)
        expected_free = np.zeros(etc.num_machines, dtype=np.float64)
        pending: list[str] = []  # batch mode: arrived but unassigned
        remaining = etc.num_tasks
        last_batch = -np.inf
        batch_scheduled = False

        def try_start(machine: str) -> None:
            if busy[machine] or not queues[machine]:
                return
            task = queues[machine].popleft()
            busy[machine] = True
            duration = etc.etc(task, machine)
            sim.schedule(duration, "task-finish", payload=(task, machine, sim.now))

        def dispatch(task: str, machine_idx: int) -> None:
            machine = etc.machines[machine_idx]
            queues[machine].append(task)
            expected_free[machine_idx] = (
                max(expected_free[machine_idx], sim.now) + etc.values[
                    etc.task_index(task), machine_idx
                ]
            )
            try_start(machine)

        def on_arrival(event) -> None:
            nonlocal batch_scheduled
            task = event.payload
            if self.policy is not None:
                row = etc.task_row(task)
                machine_idx = self.policy.choose(row, expected_free, sim.now)
                dispatch(task, int(machine_idx))
                return
            pending.append(task)
            # Mapping events run at a lower priority than arrivals so a
            # burst of simultaneous arrivals is mapped as one batch.
            if not batch_scheduled and sim.now - last_batch >= self.batch_interval:
                sim.schedule(0.0, "batch-event", priority=10)
                batch_scheduled = True

        def on_batch_event(event) -> None:
            nonlocal batch_scheduled, last_batch
            batch_scheduled = False
            last_batch = sim.now
            run_batch()

        def run_batch() -> None:
            if not pending:
                return
            sub = etc.submatrix(tasks=list(pending))
            ready = np.maximum(expected_free, sim.now)
            assert self.batch_heuristic is not None
            mapping = self.batch_heuristic.map_tasks(
                sub, ready.tolist(), self.tie_breaker
            )
            pending.clear()
            for a in mapping.assignments:
                dispatch(a.task, etc.machine_index(a.machine))

        def on_task_finish(event) -> None:
            nonlocal remaining
            task, machine, start = event.payload
            arrival = self.workload.arrival_of(task)
            trace.add(
                TaskExecution(
                    task=task,
                    machine=machine,
                    start=start,
                    finish=sim.now,
                    arrival=arrival,
                )
            )
            busy[machine] = False
            remaining -= 1
            try_start(machine)

        sim.on("task-arrival", on_arrival)
        sim.on("task-finish", on_task_finish)
        sim.on("batch-event", on_batch_event)
        for task in etc.tasks:
            sim.schedule_at(self.workload.arrival_of(task), "task-arrival", task)
        sim.run(
            max_events=20 * etc.num_tasks + 10_000,
            progress=progress,
            progress_every=progress_every,
        )
        # Flush any stragglers left pending if the last tick fired early.
        while len(trace) < etc.num_tasks:
            run_batch()
            for m in etc.machines:
                try_start(m)
            before = sim.processed_events
            sim.run(max_events=before + 20 * etc.num_tasks + 10_000)
            if sim.processed_events == before and len(trace) < etc.num_tasks:
                raise SimulationError("dynamic simulation stalled with pending tasks")
        return trace

"""Simulated heterogeneous computing suite.

Two operating modes, both built on the generic engine:

* **static** (:class:`HCSystem`) — execute a complete, precomputed
  mapping: each machine runs its tasks one at a time in assignment
  order from its initial ready time.  This independently *measures* the
  finishing times that the analytic Eq. (1) bookkeeping predicts; the
  property suite asserts they agree for every heuristic (DESIGN.md E25).

* **dynamic** (:class:`DynamicHCSimulation`) — tasks arrive over time
  (the environment SWA, K-percent Best and Sufferage were designed for
  in Maheswaran et al.).  *Immediate mode* maps each task the moment it
  arrives using an :class:`OnlinePolicy`; *batch mode* collects pending
  tasks and remaps them with a full batch heuristic at every mapping
  event (fixed-interval cadence).

* **faulty** (:class:`FaultTolerantHCSystem`) — execute a static
  mapping while a seeded :class:`~repro.sim.faults.FaultPlan` injects
  machine failures, recoveries and slowdowns.  Interrupted tasks are
  recovered with bounded exponential backoff under a per-task retry
  budget, either back onto their mapped machine (``requeue``) or onto
  the machine with the earliest expected completion among the live ones
  (``remap`` — the MCT re-mapping rule).  See docs/robustness.md.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import deque
from collections.abc import Mapping as MappingABC
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.schedule import Mapping, ready_time_vector
from repro.core.ties import DeterministicTieBreaker, TieBreaker, tied_argmin
from repro.etc.matrix import ETCMatrix
from repro.exceptions import ConfigurationError, SimulationError
from repro.heuristics.base import Heuristic
from repro.heuristics.kpb import kpb_subset_size
from repro.heuristics.swa import balance_index
from repro.obs.tracer import get_tracer
from repro.sim.arrivals import ArrivalProcess, BurstyArrivals, TraceArrivals
from repro.sim.engine import Simulator
from repro.sim.faults import FaultPlan
from repro.sim.trace import ExecutionTrace, TaskExecution

__all__ = [
    "HCSystem",
    "ArrivalWorkload",
    "poisson_workload",
    "bursty_workload",
    "trace_replay_workload",
    "workload_from_process",
    "OnlinePolicy",
    "MCTOnline",
    "METOnline",
    "OLBOnline",
    "KPBOnline",
    "SWAOnline",
    "DynamicHCSimulation",
    "RECOVERY_POLICIES",
    "FaultyExecution",
    "FaultTolerantHCSystem",
]


# ----------------------------------------------------------------------
# Static execution
# ----------------------------------------------------------------------
class HCSystem:
    """Executes a complete static mapping and measures the timeline."""

    def __init__(
        self,
        etc: ETCMatrix,
        initial_ready: MappingABC[str, float] | Sequence[float] | None = None,
    ) -> None:
        self.etc = etc
        self._initial_ready = ready_time_vector(etc, initial_ready)

    def execute(self, mapping: Mapping) -> ExecutionTrace:
        """Run ``mapping`` to completion; returns the measured trace."""
        if mapping.etc is not self.etc and mapping.etc != self.etc:
            raise SimulationError("mapping was built for a different ETC matrix")
        sim = Simulator()
        trace = ExecutionTrace(self.etc.machines)
        queues: dict[str, deque[str]] = {
            m: deque(mapping.machine_tasks(m)) for m in self.etc.machines
        }

        def start_next(machine: str) -> None:
            queue = queues[machine]
            if not queue:
                return
            task = queue.popleft()
            duration = self.etc.etc(task, machine)
            start = sim.now
            sim.schedule(duration, "task-finish", payload=(task, machine, start))

        def on_machine_ready(event) -> None:
            start_next(event.payload)

        def on_task_finish(event) -> None:
            task, machine, start = event.payload
            trace.add(
                TaskExecution(task=task, machine=machine, start=start, finish=sim.now)
            )
            start_next(machine)

        sim.on("machine-ready", on_machine_ready)
        sim.on("task-finish", on_task_finish)
        for j, machine in enumerate(self.etc.machines):
            sim.schedule_at(float(self._initial_ready[j]), "machine-ready", machine)
        sim.run()
        if len(trace) != mapping.num_assigned:
            raise SimulationError(
                f"executed {len(trace)} tasks but the mapping holds "
                f"{mapping.num_assigned}"
            )
        return trace

    def measured_finish_times(self, mapping: Mapping) -> dict[str, float]:
        """Per-machine measured finishing times (idle machines keep
        their initial ready time, matching ``Mapping`` semantics)."""
        trace = self.execute(mapping)
        base = dict(zip(self.etc.machines, self._initial_ready.tolist()))
        return trace.machine_finish_times(initial_ready=base)


# ----------------------------------------------------------------------
# Fault-tolerant execution
# ----------------------------------------------------------------------
#: Recovery policies for tasks interrupted by a machine failure.
RECOVERY_POLICIES = ("requeue", "remap")


@dataclass(frozen=True)
class FaultyExecution:
    """Outcome of one fault-injected run of a static mapping.

    ``trace`` records the *successful* execution of every task (the
    final attempt only); ``aborted`` counts attempts killed mid-run by a
    machine failure; ``dropped`` lists tasks whose retry budget ran out
    (empty when the system recovered everything).
    """

    trace: ExecutionTrace
    plan: FaultPlan
    policy: str
    failures: int
    recoveries: int
    slowdowns: int
    aborted: int
    retries: int
    requeues: int
    dropped: tuple[str, ...]

    @property
    def completed(self) -> int:
        return len(self.trace)

    @property
    def makespan(self) -> float:
        return self.trace.makespan()

    def finish_times(self, initial_ready=None) -> dict[str, float]:
        return self.trace.machine_finish_times(initial_ready=initial_ready)


class FaultTolerantHCSystem:
    """Executes a static mapping under an injected :class:`FaultPlan`.

    Failure semantics: when a machine fails, the task it is running is
    aborted (all partial progress lost) and its queued tasks stall until
    the machine recovers.  The aborted task re-enters service through
    bounded exponential backoff — attempt ``a`` waits
    ``min(backoff_base * 2**(a-1), backoff_cap)`` — until its per-task
    ``retry_budget`` is exhausted, after which it is dropped (and
    reported, never silently lost).  Where the retried task lands is the
    ``policy``:

    * ``"requeue"`` — back at the *head* of its mapped machine's queue,
      so it resumes first once the machine recovers;
    * ``"remap"`` — onto the live machine with the earliest expected
      completion time (the MCT rule, recomputed from actual queue
      state); queued tasks of the failed machine are re-mapped
      immediately, without backoff, since they themselves never failed.

    Slowdown events multiply the ETC of tasks *started* while the
    machine is degraded; a running task's duration is fixed at start.

    Runs are deterministic: the plan is data, the engine is
    deterministic, and remap ties break to the lowest machine index.
    Fault counters (``sim.failures``, ``sim.retries``, ...) and the
    ``sim.requeue_latency`` histogram flow through the current
    :mod:`repro.obs` tracer.
    """

    def __init__(
        self,
        etc: ETCMatrix,
        plan: FaultPlan,
        policy: str = "requeue",
        retry_budget: int = 3,
        backoff_base: float = 1.0,
        backoff_cap: float | None = None,
        initial_ready: MappingABC[str, float] | Sequence[float] | None = None,
    ) -> None:
        if policy not in RECOVERY_POLICIES:
            raise ConfigurationError(
                f"unknown recovery policy {policy!r}; choose from {RECOVERY_POLICIES}"
            )
        if retry_budget < 0:
            raise ConfigurationError(
                f"retry_budget must be >= 0, got {retry_budget}"
            )
        if backoff_base <= 0:
            raise ConfigurationError(
                f"backoff_base must be positive, got {backoff_base}"
            )
        if backoff_cap is None:
            backoff_cap = 32.0 * backoff_base
        if backoff_cap < backoff_base:
            raise ConfigurationError(
                f"backoff_cap {backoff_cap} must be >= backoff_base {backoff_base}"
            )
        if set(plan.machines) != set(etc.machines):
            raise ConfigurationError(
                "fault plan machine set does not match the ETC matrix"
            )
        self.etc = etc
        self.plan = plan
        self.policy = policy
        self.retry_budget = int(retry_budget)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self._initial_ready = ready_time_vector(etc, initial_ready)

    # ------------------------------------------------------------------
    def backoff_delay(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based): bounded doubling."""
        return min(self.backoff_base * 2.0 ** (attempt - 1), self.backoff_cap)

    def execute(self, mapping: Mapping) -> FaultyExecution:
        """Run ``mapping`` to completion under the fault plan."""
        if mapping.etc is not self.etc and mapping.etc != self.etc:
            raise SimulationError("mapping was built for a different ETC matrix")
        etc = self.etc
        tracer = get_tracer()
        sim = Simulator()
        trace = ExecutionTrace(etc.machines)
        queues: dict[str, deque[str]] = {
            m: deque(mapping.machine_tasks(m)) for m in etc.machines
        }
        up: dict[str, bool] = dict.fromkeys(etc.machines, True)
        factor: dict[str, float] = dict.fromkeys(etc.machines, 1.0)
        epoch: dict[str, int] = dict.fromkeys(etc.machines, 0)
        #: (task, start, expected finish) of the task each machine runs.
        current: dict[str, tuple[str, float, float] | None] = dict.fromkeys(
            etc.machines
        )
        mapped_machine = {a.task: a.machine for a in mapping.assignments}
        #: Sorted recovery times from the plan, so an all-machines-down
        #: retry can jump straight to the next known recovery instead of
        #: polling every backoff_base (which exhausts max_events across
        #: a long outage).
        recovery_times = sorted(
            event.time for event in self.plan.events if event.kind == "recover"
        )
        attempts: dict[str, int] = {}
        last_failure: dict[str, float] = {}
        stats = {
            "failures": 0, "recoveries": 0, "slowdowns": 0,
            "aborted": 0, "retries": 0, "requeues": 0,
        }
        dropped: list[str] = []

        def try_start(machine: str) -> None:
            if not up[machine] or current[machine] is not None:
                return
            queue = queues[machine]
            if not queue:
                return
            task = queue.popleft()
            start = sim.now
            duration = etc.etc(task, machine) * factor[machine]
            current[machine] = (task, start, start + duration)
            if task in last_failure and tracer.enabled:
                tracer.observe(
                    "sim.requeue_latency", start - last_failure[task]
                )
            last_failure.pop(task, None)
            sim.schedule(
                duration, "task-finish", payload=(task, machine, start, epoch[machine])
            )

        def expected_completion(task: str, machine: str) -> float:
            """Expected completion of ``task`` appended to ``machine``
            now, from the machine's actual run/queue state."""
            load = sim.now
            run = current[machine]
            if run is not None:
                load = max(load, run[2])
            for queued in queues[machine]:
                load += etc.etc(queued, machine) * factor[machine]
            return load + etc.etc(task, machine) * factor[machine]

        def remap_target(task: str) -> str | None:
            """Live machine with the earliest expected completion for
            ``task`` (lowest index on ties); ``None`` if all are down."""
            best: str | None = None
            best_completion = np.inf
            for machine in etc.machines:
                if not up[machine]:
                    continue
                completion = expected_completion(task, machine)
                if completion < best_completion:
                    best, best_completion = machine, completion
            return best

        def enqueue(task: str, machine: str, *, front: bool = False) -> None:
            stats["requeues"] += 1
            if tracer.enabled:
                tracer.count("sim.requeues")
            if front:
                queues[machine].appendleft(task)
            else:
                queues[machine].append(task)
            try_start(machine)

        def retry_or_drop(task: str, failed_at: float) -> None:
            attempts[task] = attempts.get(task, 0) + 1
            last_failure[task] = failed_at
            if attempts[task] > self.retry_budget:
                dropped.append(task)
                if tracer.enabled:
                    tracer.count("sim.dropped")
                    tracer.event("sim.fault.drop", task=task, time=failed_at)
                return
            stats["retries"] += 1
            delay = self.backoff_delay(attempts[task])
            if tracer.enabled:
                tracer.count("sim.retries")
                tracer.event(
                    "sim.fault.retry", task=task, attempt=attempts[task],
                    delay=delay,
                )
            sim.schedule(delay, "task-retry", payload=task)

        def on_machine_ready(event) -> None:
            try_start(event.payload)

        def on_task_finish(event) -> None:
            task, machine, start, start_epoch = event.payload
            if start_epoch != epoch[machine]:
                return  # stale: the machine failed after this was scheduled
            trace.add(
                TaskExecution(task=task, machine=machine, start=start, finish=sim.now)
            )
            current[machine] = None
            try_start(machine)

        def on_machine_fail(event) -> None:
            machine = event.payload.machine
            if not up[machine]:
                return
            up[machine] = False
            epoch[machine] += 1
            stats["failures"] += 1
            victim = current[machine]
            current[machine] = None
            if tracer.enabled:
                tracer.count("sim.failures")
                tracer.event(
                    "sim.fault.fail", machine=machine, time=sim.now,
                    running=victim[0] if victim else None,
                    queued=len(queues[machine]),
                )
            if self.policy == "remap" and queues[machine]:
                # Queued tasks never failed themselves: move them to live
                # machines right away (they keep their retry budgets).
                stranded = list(queues[machine])
                queues[machine].clear()
                for task in stranded:
                    target = remap_target(task)
                    if target is None:
                        queues[machine].append(task)  # everyone is down; wait
                    else:
                        enqueue(task, target)
            if victim is not None:
                stats["aborted"] += 1
                retry_or_drop(victim[0], sim.now)

        def on_machine_recover(event) -> None:
            machine = event.payload.machine
            if up[machine]:
                return
            up[machine] = True
            stats["recoveries"] += 1
            if tracer.enabled:
                tracer.count("sim.recoveries")
                tracer.event("sim.fault.recover", machine=machine, time=sim.now)
            try_start(machine)

        def on_machine_slow(event) -> None:
            machine = event.payload.machine
            factor[machine] = event.payload.factor
            stats["slowdowns"] += 1
            if tracer.enabled:
                tracer.count("sim.slowdowns")
                tracer.event(
                    "sim.fault.slow", machine=machine, time=sim.now,
                    factor=event.payload.factor,
                )

        def on_machine_restore(event) -> None:
            factor[event.payload.machine] = 1.0

        def on_task_retry(event) -> None:
            task = event.payload
            if self.policy == "requeue":
                enqueue(task, mapped_machine[task], front=True)
                return
            target = remap_target(task)
            if target is None:
                # Every machine is down.  Jump straight to the next known
                # recovery in the plan (no budget charge — the task did
                # not fail again).  Priority 20 puts the retry *after*
                # the recover event (priority 10) at that same instant,
                # so the machine is back up when the retry dispatches.
                index = bisect_right(recovery_times, sim.now)
                if index < len(recovery_times):
                    sim.schedule_at(
                        recovery_times[index], "task-retry",
                        payload=task, priority=20,
                    )
                else:
                    # No recovery on the books (degenerate plan): fall
                    # back to the old base-delay poll.
                    sim.schedule(self.backoff_base, "task-retry", payload=task)
                return
            enqueue(task, target)

        sim.on("machine-ready", on_machine_ready)
        sim.on("task-finish", on_task_finish)
        sim.on("task-retry", on_task_retry)
        sim.on("machine-fail", on_machine_fail)
        sim.on("machine-recover", on_machine_recover)
        sim.on("machine-slow", on_machine_slow)
        sim.on("machine-restore", on_machine_restore)
        for j, machine in enumerate(etc.machines):
            sim.schedule_at(float(self._initial_ready[j]), "machine-ready", machine)
        # Faults run at a lower priority than same-instant task finishes:
        # a task completing exactly when its machine dies still counts.
        for fault in self.plan.events:
            sim.schedule_at(
                fault.time, f"machine-{fault.kind}", payload=fault, priority=10
            )
        sim.run(
            max_events=20 * (mapping.num_assigned + 1) * (self.retry_budget + 2)
            + 4 * len(self.plan.events)
            + 10_000
        )
        if len(trace) + len(dropped) != mapping.num_assigned:
            raise SimulationError(
                f"executed {len(trace)} + dropped {len(dropped)} tasks but the "
                f"mapping holds {mapping.num_assigned}"
            )
        return FaultyExecution(
            trace=trace,
            plan=self.plan,
            policy=self.policy,
            failures=stats["failures"],
            recoveries=stats["recoveries"],
            slowdowns=stats["slowdowns"],
            aborted=stats["aborted"],
            retries=stats["retries"],
            requeues=stats["requeues"],
            dropped=tuple(dropped),
        )


# ----------------------------------------------------------------------
# Dynamic workloads
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ArrivalWorkload:
    """Tasks with arrival times over an ETC matrix.

    ``arrivals[i]`` is the arrival time of ``etc.tasks[i]``; arrivals
    need not be sorted (the simulator orders them).
    """

    etc: ETCMatrix
    arrivals: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.arrivals) != self.etc.num_tasks:
            raise ConfigurationError(
                f"{len(self.arrivals)} arrival times for {self.etc.num_tasks} tasks"
            )
        if any(a < 0 or a != a for a in self.arrivals):
            raise ConfigurationError("arrival times must be finite and non-negative")

    def arrival_of(self, task: str) -> float:
        return self.arrivals[self.etc.task_index(task)]


def poisson_workload(
    etc: ETCMatrix,
    rate: float,
    rng: np.random.Generator | int | None = None,
) -> ArrivalWorkload:
    """Poisson arrivals: exponential inter-arrival times with ``rate``."""
    if rate <= 0:
        raise ConfigurationError(f"arrival rate must be positive, got {rate}")
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    gaps = gen.exponential(1.0 / rate, size=etc.num_tasks)
    return ArrivalWorkload(etc=etc, arrivals=tuple(np.cumsum(gaps).tolist()))


def workload_from_process(
    etc: ETCMatrix,
    process: ArrivalProcess,
    rng: np.random.Generator | int | None = None,
) -> ArrivalWorkload:
    """Arrivals drawn from any :mod:`repro.sim.arrivals` process."""
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    process.reset()
    gaps = process.gaps(etc.num_tasks, gen)
    return ArrivalWorkload(etc=etc, arrivals=tuple(np.cumsum(gaps).tolist()))


def bursty_workload(
    etc: ETCMatrix,
    rate: float,
    rng: np.random.Generator | int | None = None,
    *,
    burst_factor: float = 8.0,
    burst_fraction: float = 0.5,
    mean_burst: float = 16.0,
) -> ArrivalWorkload:
    """Bursty arrivals with an unchanged overall mean ``rate``
    (see :class:`repro.sim.arrivals.BurstyArrivals`)."""
    process = BurstyArrivals(
        rate,
        burst_factor=burst_factor,
        burst_fraction=burst_fraction,
        mean_burst=mean_burst,
    )
    return workload_from_process(etc, process, rng)


def trace_replay_workload(
    etc: ETCMatrix,
    trace_gaps: Sequence[float],
) -> ArrivalWorkload:
    """Replay recorded inter-arrival gaps (cycling if the workload
    outlives the trace; see :class:`repro.sim.arrivals.TraceArrivals`)."""
    process = TraceArrivals(trace_gaps)
    return workload_from_process(etc, process, rng=0)


# ----------------------------------------------------------------------
# Immediate-mode policies (Maheswaran et al. on-line heuristics)
# ----------------------------------------------------------------------
class OnlinePolicy:
    """Chooses a machine for one task the moment it arrives.

    ``expected_free[j]`` is when machine ``j`` will have drained its
    current queue (the on-line analogue of the ready time).
    """

    name: str = ""

    def __init__(self, tie_breaker: TieBreaker | None = None) -> None:
        self.tie_breaker = tie_breaker or DeterministicTieBreaker()

    def choose(self, etc_row: np.ndarray, expected_free: np.ndarray, now: float) -> int:
        raise NotImplementedError

    def reset(self) -> None:
        """Clear per-run state.  :meth:`DynamicHCSimulation.run` calls
        this at the start of every run so one policy instance can be
        reused across runs (paired comparisons) without state leaking
        from the previous workload.  Stateless policies inherit this
        no-op."""


class MCTOnline(OnlinePolicy):
    """On-line MCT: minimise expected completion time."""

    name = "mct-online"

    def choose(self, etc_row: np.ndarray, expected_free: np.ndarray, now: float) -> int:
        completion = np.maximum(expected_free, now) + etc_row
        return self.tie_breaker.choose(tied_argmin(completion))


class METOnline(OnlinePolicy):
    """On-line MET: fastest machine regardless of load."""

    name = "met-online"

    def choose(self, etc_row: np.ndarray, expected_free: np.ndarray, now: float) -> int:
        return self.tie_breaker.choose(tied_argmin(etc_row))


class OLBOnline(OnlinePolicy):
    """On-line OLB: machine expected free soonest."""

    name = "olb-online"

    def choose(self, etc_row: np.ndarray, expected_free: np.ndarray, now: float) -> int:
        return self.tie_breaker.choose(tied_argmin(np.maximum(expected_free, now)))


class KPBOnline(OnlinePolicy):
    """On-line K-percent Best: MCT within the k% fastest machines."""

    name = "kpb-online"

    def __init__(
        self, percent: float = 50.0, tie_breaker: TieBreaker | None = None
    ) -> None:
        super().__init__(tie_breaker)
        if not 0.0 < percent <= 100.0:
            raise ConfigurationError(f"percent must be in (0, 100], got {percent}")
        self.percent = float(percent)

    def choose(self, etc_row: np.ndarray, expected_free: np.ndarray, now: float) -> int:
        size = kpb_subset_size(etc_row.size, self.percent)
        subset = np.sort(np.argsort(etc_row, kind="stable")[:size])
        completion = np.maximum(expected_free[subset], now) + etc_row[subset]
        pick = self.tie_breaker.choose(tied_argmin(completion))
        return int(subset[pick])


class SWAOnline(OnlinePolicy):
    """On-line Switching Algorithm: MCT/MET toggled by the balance index."""

    name = "swa-online"

    def __init__(
        self,
        low: float = 0.40,
        high: float = 0.49,
        tie_breaker: TieBreaker | None = None,
    ) -> None:
        super().__init__(tie_breaker)
        if not 0.0 <= low < high <= 1.0:
            raise ConfigurationError(
                f"thresholds must satisfy 0 <= low < high <= 1, got {low}, {high}"
            )
        self.low = float(low)
        self.high = float(high)
        self._current = "mct"

    def reset(self) -> None:
        # The MCT/MET toggle is per-run state: without this reset a
        # reused instance would start run N+1 in whatever mode run N
        # ended in, breaking paired comparisons.
        self._current = "mct"

    def choose(self, etc_row: np.ndarray, expected_free: np.ndarray, now: float) -> int:
        load = np.maximum(expected_free, now)
        bi = balance_index(load)
        if bi == bi:  # not NaN
            if bi > self.high:
                self._current = "met"
            elif bi < self.low:
                self._current = "mct"
        if self._current == "met":
            return self.tie_breaker.choose(tied_argmin(etc_row))
        return self.tie_breaker.choose(tied_argmin(load + etc_row))


# ----------------------------------------------------------------------
# Dynamic simulation
# ----------------------------------------------------------------------
class DynamicHCSimulation:
    """Simulates a dynamic HC system under an on-line or batch policy.

    Exactly one of ``policy`` (immediate mode) or ``batch_heuristic``
    (batch mode) must be given.  In batch mode a *mapping event* fires
    at the interval boundary ``last_batch + batch_interval`` once a task
    is pending — immediately for the first arrival of a cycle past the
    boundary, on a timer otherwise (Maheswaran et al.'s interval-based
    batch mode); any tasks still pending once arrivals stop are mapped
    in a final flush.
    """

    def __init__(
        self,
        workload: ArrivalWorkload,
        policy: OnlinePolicy | None = None,
        batch_heuristic: Heuristic | None = None,
        batch_interval: float = 1.0,
        tie_breaker: TieBreaker | None = None,
    ) -> None:
        if (policy is None) == (batch_heuristic is None):
            raise ConfigurationError(
                "provide exactly one of policy (immediate) or batch_heuristic"
            )
        if batch_heuristic is not None and batch_interval <= 0:
            raise ConfigurationError(
                f"batch_interval must be positive, got {batch_interval}"
            )
        self.workload = workload
        self.policy = policy
        self.batch_heuristic = batch_heuristic
        self.batch_interval = float(batch_interval)
        self.tie_breaker = tie_breaker or DeterministicTieBreaker()

    # ------------------------------------------------------------------
    def run(self, progress=None, progress_every: int = 1000) -> ExecutionTrace:
        """Execute the workload; ``progress`` is forwarded to the engine
        (see :meth:`repro.sim.engine.Simulator.run`)."""
        etc = self.workload.etc
        if self.policy is not None:
            self.policy.reset()
        sim = Simulator()
        trace = ExecutionTrace(etc.machines)
        queues: dict[str, deque[str]] = {m: deque() for m in etc.machines}
        busy: dict[str, bool] = dict.fromkeys(etc.machines, False)
        expected_free = np.zeros(etc.num_machines, dtype=np.float64)
        pending: list[str] = []  # batch mode: arrived but unassigned
        remaining = etc.num_tasks
        last_batch = -np.inf
        batch_scheduled = False

        def try_start(machine: str) -> None:
            if busy[machine] or not queues[machine]:
                return
            task = queues[machine].popleft()
            busy[machine] = True
            duration = etc.etc(task, machine)
            sim.schedule(duration, "task-finish", payload=(task, machine, sim.now))

        def dispatch(task: str, machine_idx: int) -> None:
            machine = etc.machines[machine_idx]
            queues[machine].append(task)
            expected_free[machine_idx] = (
                max(expected_free[machine_idx], sim.now) + etc.values[
                    etc.task_index(task), machine_idx
                ]
            )
            try_start(machine)

        def on_arrival(event) -> None:
            nonlocal batch_scheduled
            task = event.payload
            if self.policy is not None:
                row = etc.task_row(task)
                machine_idx = self.policy.choose(row, expected_free, sim.now)
                dispatch(task, int(machine_idx))
                return
            pending.append(task)
            # Mapping events run at a lower priority than arrivals so a
            # burst of simultaneous arrivals is mapped as one batch.
            # The event is timer-based: it fires at the interval boundary
            # ``last_batch + batch_interval`` even if no further arrival
            # lands by then, so a task arriving just after a mapping
            # event waits at most one interval, not until the next
            # arrival (Maheswaran et al.'s interval cadence).
            if not batch_scheduled:
                due = max(sim.now, last_batch + self.batch_interval)
                sim.schedule_at(due, "batch-event", priority=10)
                batch_scheduled = True

        def on_batch_event(event) -> None:
            nonlocal batch_scheduled, last_batch
            batch_scheduled = False
            last_batch = sim.now
            run_batch()

        def run_batch() -> None:
            if not pending:
                return
            sub = etc.submatrix(tasks=list(pending))
            ready = np.maximum(expected_free, sim.now)
            assert self.batch_heuristic is not None
            mapping = self.batch_heuristic.map_tasks(
                sub, ready.tolist(), self.tie_breaker
            )
            pending.clear()
            for a in mapping.assignments:
                dispatch(a.task, etc.machine_index(a.machine))

        def on_task_finish(event) -> None:
            nonlocal remaining
            task, machine, start = event.payload
            arrival = self.workload.arrival_of(task)
            trace.add(
                TaskExecution(
                    task=task,
                    machine=machine,
                    start=start,
                    finish=sim.now,
                    arrival=arrival,
                )
            )
            busy[machine] = False
            remaining -= 1
            try_start(machine)

        sim.on("task-arrival", on_arrival)
        sim.on("task-finish", on_task_finish)
        sim.on("batch-event", on_batch_event)
        for task in etc.tasks:
            sim.schedule_at(self.workload.arrival_of(task), "task-arrival", task)
        sim.run(
            max_events=20 * etc.num_tasks + 10_000,
            progress=progress,
            progress_every=progress_every,
        )
        # Flush any stragglers left pending if the last tick fired early.
        while len(trace) < etc.num_tasks:
            run_batch()
            for m in etc.machines:
                try_start(m)
            before = sim.processed_events
            sim.run(max_events=before + 20 * etc.num_tasks + 10_000)
            if sim.processed_events == before and len(trace) < etc.num_tasks:
                raise SimulationError("dynamic simulation stalled with pending tasks")
        return trace

"""Generic discrete-event simulation engine.

The engine owns the clock and the event queue; domain logic registers
per-kind handlers.  Time only moves forward — scheduling an event in the
past raises :class:`SimulationError`, which is how schedule bugs in the
HC system model surface immediately instead of silently corrupting
finishing times.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.exceptions import SimulationError
from repro.obs.tracer import get_tracer
from repro.sim.events import Event, EventQueue

__all__ = ["Simulator"]


class Simulator:
    """Single-threaded deterministic discrete-event engine."""

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._handlers: dict[str, list[Callable[[Event], None]]] = {}
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events dispatched so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    def on(self, kind: str, handler: Callable[[Event], None]) -> None:
        """Register ``handler`` for events of ``kind`` (multiple allowed,
        dispatched in registration order)."""
        self._handlers.setdefault(kind, []).append(handler)

    def schedule(
        self, delay: float, kind: str, payload=None, priority: int = 0
    ) -> Event:
        """Schedule an event ``delay`` time units from now (``delay >= 0``)."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self._queue.push(
            Event(time=self._now + delay, kind=kind, payload=payload, priority=priority)
        )

    def schedule_at(
        self, time: float, kind: str, payload=None, priority: int = 0
    ) -> Event:
        """Schedule an event at absolute ``time`` (``time >= now``)."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        return self._queue.push(
            Event(time=time, kind=kind, payload=payload, priority=priority)
        )

    def run(
        self,
        until: float | None = None,
        max_events: int | None = None,
        progress=None,
        progress_every: int = 1000,
    ) -> float:
        """Dispatch events in order; returns the final simulation time.

        Stops when the queue empties, when the next event lies beyond
        ``until`` (clock advances to ``until``), or after ``max_events``
        dispatches (a runaway-model guard).

        ``progress`` is an optional
        :class:`~repro.obs.progress.ProgressReporter` advanced every
        ``progress_every`` dispatches of *this* call with the current
        simulation time; the final partial batch is flushed before
        ``finish()``, so the reported total always equals the number of
        events this call dispatched.  It writes only to its own stream —
        never to the tracer — so enabling it cannot perturb the
        ``sim.dispatch`` event stream.
        """
        if progress_every < 1:
            raise SimulationError(
                f"progress_every must be >= 1, got {progress_every}"
            )
        tracer = get_tracer()
        dispatched = 0
        try:
            # Span-only phase (no event emitted), so the ``sim.dispatch``
            # event stream stays byte-identical to pre-span releases
            # while the timeline shows one bar per ``run`` call.
            with tracer.phase("sim.run"):
                while self._queue:
                    next_time = self._queue.peek_time()
                    assert next_time is not None
                    if until is not None and next_time > until:
                        self._now = until
                        return self._now
                    if max_events is not None and self._processed >= max_events:
                        raise SimulationError(
                            f"exceeded max_events={max_events}; "
                            "runaway event loop?"
                        )
                    event = self._queue.pop()
                    self._now = event.time
                    self._processed += 1
                    dispatched += 1
                    handlers = self._handlers.get(event.kind)
                    if not handlers:
                        raise SimulationError(
                            f"no handler registered for event {event.kind!r}"
                        )
                    if tracer.enabled:
                        tracer.event(
                            "sim.dispatch",
                            kind=event.kind,
                            time=event.time,
                            handlers=len(handlers),
                        )
                        tracer.count("sim.events")
                        tracer.count(f"sim.events.{event.kind}")
                    for handler in handlers:
                        handler(event)
                    if progress is not None and dispatched % progress_every == 0:
                        progress.advance(f"t={self._now:g}", n=progress_every)
        finally:
            if progress is not None:
                remainder = dispatched % progress_every
                if remainder:
                    progress.advance(f"t={self._now:g}", n=remainder)
                progress.finish()
        if until is not None and until > self._now:
            self._now = until
        return self._now

"""Rolling-horizon online serving simulation.

This is the layer that turns the reproduction into a *serving system*:
tasks arrive continuously (Poisson, bursty, or trace-replay gaps from
:mod:`repro.sim.arrivals`), and every ``horizon`` time units the batch
of tasks that arrived since the previous mapping event is mapped by a
pluggable heuristic and then **refined by the paper's iterative
technique** (:class:`~repro.core.iterative.IterativeScheduler`) before
being dispatched to per-machine FIFO queues.  A seeded
:class:`~repro.sim.faults.FaultPlan` may inject failures, recoveries
and slowdowns live during the run; interrupted tasks are recovered
across horizon boundaries (``remap`` sends them to the next batch,
``requeue`` back to the head of their machine's queue) under a bounded
retry budget, and exhausted tasks are *reported dropped, never lost* —
the run raises if the accounting does not close.

Task definitions stream in bounded windows from a
:class:`TaskSource` — either generated on the fly
(:class:`EnsembleTaskSource`, wrapping PR 7's ``stream_ensemble``) or
memory-mapped out of an :class:`~repro.etc.store.ETCStore`
(:class:`StoreTaskSource`) — so a million-task run holds one window of
definitions plus the live backlog, never the whole workload.

Observability: ``rolling.horizon`` spans (one per mapping event, with
batch size and live-machine count) nest under a ``rolling.run`` phase
for ``repro obs timeline``, and an optional :class:`RollingSampler`
writes a ``repro-timeseries/1`` throughput log (``tasks_scheduled`` /
``tasks_per_s`` headline, backlog, RSS).  See docs/rolling.md.
"""

from __future__ import annotations

import time
from bisect import bisect_right
from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from repro.core.iterative import IterativeScheduler
from repro.core.ties import DeterministicTieBreaker, TieBreaker
from repro.etc.generation import (
    DEFAULT_STREAM_WINDOW,
    Consistency,
    Heterogeneity,
    stream_ensemble,
)
from repro.etc.matrix import ETCMatrix
from repro.exceptions import ConfigurationError, SimulationError
from repro.heuristics.base import Heuristic
from repro.obs.timeseries import TIMESERIES_SCHEMA, TimeSeriesLog, rss_bytes
from repro.obs.tracer import get_tracer
from repro.sim.arrivals import ArrivalProcess, PoissonArrivals
from repro.sim.engine import Simulator
from repro.sim.faults import FaultPlan
from repro.sim.hcsystem import RECOVERY_POLICIES

__all__ = [
    "TaskSource",
    "EnsembleTaskSource",
    "StoreTaskSource",
    "calibrate_rate",
    "RollingResult",
    "RollingSampler",
    "RollingSimulation",
    "DEFAULT_UTILIZATION",
]

#: Target fraction of aggregate machine capacity consumed by arrivals
#: when the rate is calibrated from the workload instead of given.
DEFAULT_UTILIZATION = 0.7


# ----------------------------------------------------------------------
# Task sources (windowed, out-of-core)
# ----------------------------------------------------------------------
class TaskSource:
    """Streams task ETC rows in bounded windows.

    ``chunks()`` yields C-ordered float64 arrays of shape
    ``(B, num_machines)`` — one row per task, in arrival order — whose
    row counts sum to ``num_tasks``.  Implementations must keep peak
    memory at one window regardless of the total.
    """

    num_tasks: int
    num_machines: int

    def chunks(self) -> Iterator[np.ndarray]:
        raise NotImplementedError


class EnsembleTaskSource(TaskSource):
    """Generates task rows on the fly via ``stream_ensemble``.

    Instances of shape ``(tasks_per_instance, num_machines)`` are drawn
    from the seeded RNG stream in :func:`~repro.etc.generation.generate_ensemble`
    order, flattened row-major into the arrival sequence, and trimmed
    to ``num_tasks`` (the last instance may be partially consumed).
    """

    def __init__(
        self,
        num_tasks: int,
        num_machines: int,
        *,
        tasks_per_instance: int = 64,
        heterogeneity: Heterogeneity = Heterogeneity.HIHI,
        consistency: Consistency = Consistency.INCONSISTENT,
        method: str = "range",
        rng: np.random.Generator | int | None = None,
        window: int = DEFAULT_STREAM_WINDOW,
    ) -> None:
        if num_tasks < 1:
            raise ConfigurationError(f"num_tasks must be >= 1, got {num_tasks}")
        if num_machines < 1:
            raise ConfigurationError(
                f"num_machines must be >= 1, got {num_machines}"
            )
        if tasks_per_instance < 1:
            raise ConfigurationError(
                f"tasks_per_instance must be >= 1, got {tasks_per_instance}"
            )
        self.num_tasks = int(num_tasks)
        self.num_machines = int(num_machines)
        self.tasks_per_instance = int(tasks_per_instance)
        self.heterogeneity = heterogeneity
        self.consistency = consistency
        self.method = method
        self._rng = rng
        self.window = int(window)

    def chunks(self) -> Iterator[np.ndarray]:
        count = -(-self.num_tasks // self.tasks_per_instance)
        emitted = 0
        for block in stream_ensemble(
            count,
            self.tasks_per_instance,
            self.num_machines,
            heterogeneity=self.heterogeneity,
            consistency=self.consistency,
            method=self.method,
            rng=self._rng,
            window=self.window,
        ):
            rows = block.reshape(-1, self.num_machines)
            take = min(rows.shape[0], self.num_tasks - emitted)
            if take <= 0:
                return
            yield np.ascontiguousarray(rows[:take])
            emitted += take


class StoreTaskSource(TaskSource):
    """Streams task rows out of a committed :class:`~repro.etc.store.ETCStore`
    entry, one instance-window at a time (memory-mapped reads, copied a
    window at a time so resident memory stays bounded)."""

    def __init__(
        self,
        store,
        key: str,
        *,
        num_tasks: int | None = None,
        window: int = DEFAULT_STREAM_WINDOW,
    ) -> None:
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        batch = store.batch(key)
        count, tasks_per_instance, num_machines = batch.values.shape
        available = count * tasks_per_instance
        if num_tasks is None:
            num_tasks = available
        if not 1 <= num_tasks <= available:
            raise ConfigurationError(
                f"num_tasks must be in [1, {available}] for entry {key!r}, "
                f"got {num_tasks}"
            )
        self._batch = batch
        self.num_tasks = int(num_tasks)
        self.num_machines = int(num_machines)
        self.tasks_per_instance = int(tasks_per_instance)
        self.window = int(window)

    def chunks(self) -> Iterator[np.ndarray]:
        values = self._batch.values
        count = values.shape[0]
        emitted = 0
        for start in range(0, count, self.window):
            block = np.array(values[start : start + self.window], dtype=np.float64)
            rows = block.reshape(-1, self.num_machines)
            take = min(rows.shape[0], self.num_tasks - emitted)
            if take <= 0:
                return
            yield np.ascontiguousarray(rows[:take])
            emitted += take


def calibrate_rate(
    chunk: np.ndarray, utilization: float = DEFAULT_UTILIZATION
) -> float:
    """Arrival rate that loads the system to ``utilization``.

    A task's best-case service time is its row minimum; with ``M``
    machines draining in parallel the saturation rate is roughly
    ``M / mean(row minima)``, so the calibrated rate is that times the
    requested utilization — computed from the first streamed window so
    no extra randomness is consumed.
    """
    if not 0.0 < utilization:
        raise ConfigurationError(
            f"utilization must be positive, got {utilization}"
        )
    mean_min = float(np.mean(np.min(chunk, axis=1)))
    if mean_min <= 0:
        raise ConfigurationError("task rows must have positive service times")
    return utilization * chunk.shape[1] / mean_min


# ----------------------------------------------------------------------
# Result / sampler
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RollingResult:
    """Aggregate outcome of one rolling-horizon run.

    Only aggregates are kept — a million-task run must not hold a
    per-task trace.  Accounting closes by construction:
    ``completed + len(dropped) == total_tasks`` (enforced with a
    :class:`~repro.exceptions.SimulationError` otherwise).
    """

    total_tasks: int
    completed: int
    dropped: tuple[str, ...]
    arrival_rate: float
    horizon: float
    refine_iterations: int | None
    horizons: int
    dispatches: int
    batch_max: int
    makespan: float
    sim_end: float
    mean_queue_wait: float
    max_queue_wait: float
    mean_flow: float
    peak_backlog: int
    failures: int
    recoveries: int
    slowdowns: int
    aborted: int
    retries: int

    @property
    def mean_batch(self) -> float:
        return self.dispatches / self.horizons if self.horizons else 0.0


class RollingSampler:
    """Throttled throughput sampler for rolling runs.

    Mirrors :class:`~repro.obs.timeseries.GridSampler`: fed from the
    simulation's event handlers, writes a ``repro-timeseries/1`` line
    at most every ``interval_s`` wall-clock seconds plus one forced
    final sample on :meth:`close`.  ``tasks_scheduled`` counts
    *dispatches* (tasks handed to a machine queue, the serving-loop
    headline) and ``tasks_per_s`` is its wall-clock rate.
    """

    def __init__(
        self,
        path,
        *,
        total_tasks: int,
        label: str = "",
        interval_s: float = 0.5,
        clock=time.perf_counter,
        rss_fn=rss_bytes,
    ) -> None:
        if interval_s < 0:
            raise ConfigurationError(
                f"sample interval must be >= 0, got {interval_s}"
            )
        self.log = TimeSeriesLog(path, label=label, clock=clock)
        self.total_tasks = total_tasks
        self.interval_s = interval_s
        self._clock = clock
        self._rss_fn = rss_fn
        self._last_sample: float | None = None
        self.tasks_arrived = 0
        self.tasks_scheduled = 0
        self.tasks_completed = 0
        self.tasks_dropped = 0
        self.failures = 0
        self.pending = 0
        self.backlog = 0
        self.sim_time = 0.0

    def metrics(self) -> dict:
        elapsed = self.log.elapsed()
        rate = 1.0 / elapsed if elapsed > 0 else 0.0
        return {
            "tasks_arrived": self.tasks_arrived,
            "tasks_scheduled": self.tasks_scheduled,
            "tasks_completed": self.tasks_completed,
            "tasks_dropped": self.tasks_dropped,
            "tasks_total": self.total_tasks,
            "tasks_per_s": self.tasks_scheduled * rate,
            "pending": self.pending,
            "backlog": self.backlog,
            "failures": self.failures,
            "rss_bytes": self._rss_fn(),
            "sim_time": self.sim_time,
        }

    def note(self) -> None:
        """Consider writing a sample (throttled by ``interval_s``)."""
        now = self._clock()
        if (
            self._last_sample is not None
            and now - self._last_sample < self.interval_s
        ):
            return
        self._last_sample = now
        self.log.sample(self.metrics())

    def summary(self) -> dict:
        """Headline numbers for the run ledger entry."""
        metrics = self.metrics()
        return {
            "schema": TIMESERIES_SCHEMA,
            "path": str(self.log.path),
            "samples": self.log.samples_written,
            "duration_s": self.log.elapsed(),
            "tasks_scheduled": metrics["tasks_scheduled"],
            "tasks_per_s": metrics["tasks_per_s"],
            "peak_rss_bytes": metrics["rss_bytes"],
        }

    def close(self) -> None:
        """Force a final sample and close the file (idempotent)."""
        if self.log._handle is not None:
            self._last_sample = None
            self.note()
            self.log.close()


# ----------------------------------------------------------------------
# The rolling-horizon simulation
# ----------------------------------------------------------------------
class RollingSimulation:
    """Serves a streamed workload with periodic refine-then-dispatch.

    Parameters
    ----------
    source:
        Windowed :class:`TaskSource` for task ETC rows.
    heuristic:
        Batch heuristic that maps each horizon's pending tasks.
    horizon:
        Mapping-event cadence in simulation time units.  Each event
        maps every task that arrived since the previous one.
    arrival:
        An :class:`~repro.sim.arrivals.ArrivalProcess`, a callable
        ``rate -> ArrivalProcess`` (built with the calibrated rate), or
        ``None`` for Poisson arrivals at the calibrated rate.
    utilization:
        Target load for rate calibration (ignored when ``arrival`` is
        a ready process); see :func:`calibrate_rate`.
    refine_iterations:
        Cap forwarded to :meth:`IterativeScheduler.run` —
        ``1`` dispatches the plain heuristic mapping, ``None`` runs the
        paper's technique to completion, ``k`` stops after ``k``
        iterations (original mapping included).
    plan / recovery / retry_budget / backoff_base / backoff_cap:
        Live fault injection, with the same recovery semantics as
        :class:`~repro.sim.hcsystem.FaultTolerantHCSystem` adapted to
        the rolling loop: ``remap`` sends interrupted and stranded
        tasks to the *next horizon batch*; ``requeue`` pins the victim
        to the head of its machine's queue.
    """

    def __init__(
        self,
        source: TaskSource,
        heuristic: Heuristic,
        *,
        horizon: float = 1.0,
        arrival: ArrivalProcess | Callable[[float], ArrivalProcess] | None = None,
        utilization: float = DEFAULT_UTILIZATION,
        refine_iterations: int | None = 2,
        rng: np.random.Generator | int | None = None,
        plan: FaultPlan | None = None,
        recovery: str = "remap",
        retry_budget: int = 3,
        backoff_base: float = 1.0,
        backoff_cap: float | None = None,
        tie_breaker: TieBreaker | None = None,
    ) -> None:
        if horizon <= 0:
            raise ConfigurationError(f"horizon must be positive, got {horizon}")
        if refine_iterations is not None and refine_iterations < 1:
            raise ConfigurationError(
                f"refine_iterations must be >= 1 or None, got {refine_iterations}"
            )
        if recovery not in RECOVERY_POLICIES:
            raise ConfigurationError(
                f"unknown recovery policy {recovery!r}; "
                f"choose from {RECOVERY_POLICIES}"
            )
        if retry_budget < 0:
            raise ConfigurationError(
                f"retry_budget must be >= 0, got {retry_budget}"
            )
        if backoff_base <= 0:
            raise ConfigurationError(
                f"backoff_base must be positive, got {backoff_base}"
            )
        if backoff_cap is None:
            backoff_cap = 32.0 * backoff_base
        if backoff_cap < backoff_base:
            raise ConfigurationError(
                f"backoff_cap {backoff_cap} must be >= backoff_base {backoff_base}"
            )
        self.source = source
        self.heuristic = heuristic
        self.horizon = float(horizon)
        self.arrival = arrival
        self.utilization = float(utilization)
        self.refine_iterations = refine_iterations
        self._rng = rng
        self.machines = [f"m{j}" for j in range(source.num_machines)]
        if plan is not None and set(plan.machines) != set(self.machines):
            raise ConfigurationError(
                "fault plan machine set does not match the task source "
                f"(expected {len(self.machines)} machines m0..)"
            )
        self.plan = plan
        self.recovery = recovery
        self.retry_budget = int(retry_budget)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self.tie_breaker = tie_breaker or DeterministicTieBreaker()

    # ------------------------------------------------------------------
    def backoff_delay(self, attempt: int) -> float:
        return min(self.backoff_base * 2.0 ** (attempt - 1), self.backoff_cap)

    def _make_process(self, first_chunk: np.ndarray) -> tuple[ArrivalProcess, float]:
        rate = calibrate_rate(first_chunk, self.utilization)
        if self.arrival is None:
            return PoissonArrivals(rate), rate
        if isinstance(self.arrival, ArrivalProcess):
            process = self.arrival
            return process, getattr(process, "rate", rate)
        process = self.arrival(rate)
        return process, getattr(process, "rate", rate)

    # ------------------------------------------------------------------
    def run(
        self,
        sampler: RollingSampler | None = None,
        progress=None,
        progress_every: int = 10_000,
    ) -> RollingResult:
        """Serve the whole workload; returns aggregate statistics."""
        source = self.source
        total = source.num_tasks
        num_machines = source.num_machines
        machines = self.machines
        tracer = get_tracer()
        gen = (
            self._rng
            if isinstance(self._rng, np.random.Generator)
            else np.random.default_rng(self._rng)
        )
        scheduler = IterativeScheduler(self.heuristic, tie_breaker=self.tie_breaker)

        sim = Simulator()
        chunk_iter = source.chunks()
        try:
            first_chunk = next(chunk_iter)
        except StopIteration:  # pragma: no cover - sources forbid 0 tasks
            raise SimulationError("task source yielded no chunks")
        process, arrival_rate = self._make_process(first_chunk)
        process.reset()

        # --- live state -------------------------------------------------
        rows: dict[int, np.ndarray] = {}  # task idx -> ETC row (alive until done)
        arrival_time: dict[int, float] = {}
        pending: list[int] = []  # awaiting the next mapping event
        queues: list[deque[int]] = [deque() for _ in range(num_machines)]
        running: list[tuple[int, float, float] | None] = [None] * num_machines
        expected_free = np.zeros(num_machines, dtype=np.float64)
        up = [True] * num_machines
        factor = [1.0] * num_machines
        epoch = [0] * num_machines
        attempts: dict[int, int] = {}
        mapped_machine: dict[int, int] = {}
        dropped: list[str] = []
        plan_events = self.plan.events if self.plan is not None else ()
        recovery_times = sorted(
            event.time for event in plan_events if event.kind == "recover"
        )

        # --- aggregates -------------------------------------------------
        stats = {
            "arrived": 0, "dispatches": 0, "completed": 0,
            "horizons": 0, "batch_max": 0,
            "failures": 0, "recoveries": 0, "slowdowns": 0,
            "aborted": 0, "retries": 0,
        }
        agg = {
            "sum_wait": 0.0, "max_wait": 0.0, "sum_flow": 0.0,
            "makespan": 0.0, "peak_backlog": 0,
        }
        horizon_scheduled = False
        last_batch = -np.inf
        chunk_last_idx = -1
        next_task_idx = 0

        # --- helpers ----------------------------------------------------
        def backlog_size() -> int:
            # Tasks in the system (pending + queued + in flight).
            return stats["arrived"] - stats["completed"] - len(dropped)

        def sample() -> None:
            if sampler is None:
                return
            sampler.tasks_arrived = stats["arrived"]
            sampler.tasks_scheduled = stats["dispatches"]
            sampler.tasks_completed = stats["completed"]
            sampler.tasks_dropped = len(dropped)
            sampler.failures = stats["failures"]
            sampler.pending = len(pending)
            sampler.backlog = backlog_size()
            sampler.sim_time = sim.now
            sampler.note()

        def schedule_chunk(chunk: np.ndarray) -> None:
            nonlocal next_task_idx, chunk_last_idx
            count = chunk.shape[0]
            gaps = process.gaps(count, gen)
            times = float(sim.now) + np.cumsum(gaps)
            base = next_task_idx
            for i in range(count):
                sim.schedule_at(
                    float(times[i]), "task-arrival", payload=(base + i, chunk, i)
                )
            next_task_idx = base + count
            chunk_last_idx = next_task_idx - 1

        def ensure_horizon() -> None:
            nonlocal horizon_scheduled
            if horizon_scheduled:
                return
            due = max(sim.now, last_batch + self.horizon)
            sim.schedule_at(due, "rolling-horizon", priority=10)
            horizon_scheduled = True

        def try_start(j: int) -> None:
            if not up[j] or running[j] is not None or not queues[j]:
                return
            idx = queues[j].popleft()
            start = sim.now
            duration = float(rows[idx][j]) * factor[j]
            running[j] = (idx, start, start + duration)
            sim.schedule(duration, "task-finish", payload=(idx, j, start, epoch[j]))

        def dispatch(idx: int, j: int) -> None:
            mapped_machine[idx] = j
            queues[j].append(idx)
            expected_free[j] = (
                max(expected_free[j], sim.now) + float(rows[idx][j]) * factor[j]
            )
            stats["dispatches"] += 1
            wait = sim.now - arrival_time[idx]
            agg["sum_wait"] += wait
            if wait > agg["max_wait"]:
                agg["max_wait"] = wait
            try_start(j)

        def retry_or_drop(idx: int) -> None:
            attempts[idx] = attempts.get(idx, 0) + 1
            if attempts[idx] > self.retry_budget:
                dropped.append(f"t{idx}")
                rows.pop(idx, None)
                arrival_time.pop(idx, None)
                mapped_machine.pop(idx, None)
                if tracer.enabled:
                    tracer.count("rolling.dropped")
                return
            stats["retries"] += 1
            if tracer.enabled:
                tracer.count("rolling.retries")
            sim.schedule(
                self.backoff_delay(attempts[idx]), "task-retry", payload=idx
            )

        def map_pending() -> None:
            nonlocal horizon_scheduled
            live = [j for j in range(num_machines) if up[j]]
            if not live:
                # Defer the whole batch to the next known recovery (the
                # retry-after-recover ordering trick: priority 20 puts
                # this event after the recover at the same instant).
                index = bisect_right(recovery_times, sim.now)
                due = (
                    recovery_times[index]
                    if index < len(recovery_times)
                    else sim.now + self.horizon
                )
                sim.schedule_at(due, "rolling-horizon", priority=20)
                horizon_scheduled = True
                return
            batch = list(pending)
            pending.clear()
            stats["horizons"] += 1
            if len(batch) > stats["batch_max"]:
                stats["batch_max"] = len(batch)
            with tracer.phase(
                "rolling.horizon",
                index=stats["horizons"],
                batch=len(batch),
                live=len(live),
            ):
                scale = np.array([factor[j] for j in live], dtype=np.float64)
                values = np.empty((len(batch), len(live)), dtype=np.float64)
                for row_i, idx in enumerate(batch):
                    values[row_i] = rows[idx][live]
                values *= scale
                labels = [f"t{idx}" for idx in batch]
                sub = ETCMatrix(
                    values, tasks=labels, machines=[machines[j] for j in live]
                )
                ready = [
                    max(float(expected_free[j]), sim.now) for j in live
                ]
                result = scheduler.run(
                    sub, ready_times=ready, max_iterations=self.refine_iterations
                )
                mapping = result.final_mapping()
                for assignment in mapping.assignments:
                    idx = int(assignment.task[1:])
                    j = int(assignment.machine[1:])
                    dispatch(idx, j)

        # --- handlers ---------------------------------------------------
        def on_arrival(event) -> None:
            idx, chunk, i = event.payload
            rows[idx] = np.array(chunk[i], dtype=np.float64)
            arrival_time[idx] = sim.now
            pending.append(idx)
            stats["arrived"] += 1
            backlog = backlog_size()
            if backlog > agg["peak_backlog"]:
                agg["peak_backlog"] = backlog
            ensure_horizon()
            if idx == chunk_last_idx:
                try:
                    schedule_chunk(next(chunk_iter))
                except StopIteration:
                    pass
            sample()

        def on_horizon(event) -> None:
            nonlocal horizon_scheduled, last_batch
            horizon_scheduled = False
            last_batch = sim.now
            if pending:
                map_pending()
            sample()

        def on_task_finish(event) -> None:
            idx, j, start, start_epoch = event.payload
            if start_epoch != epoch[j]:
                return  # stale: machine failed after this was scheduled
            running[j] = None
            stats["completed"] += 1
            finish = sim.now
            agg["sum_flow"] += finish - arrival_time[idx]
            if finish > agg["makespan"]:
                agg["makespan"] = finish
            rows.pop(idx, None)
            arrival_time.pop(idx, None)
            attempts.pop(idx, None)
            mapped_machine.pop(idx, None)
            try_start(j)
            sample()

        def on_task_retry(event) -> None:
            idx = event.payload
            if idx not in rows:
                return  # dropped meanwhile
            if self.recovery == "requeue":
                j = mapped_machine[idx]
                queues[j].appendleft(idx)
                try_start(j)
                return
            pending.append(idx)
            ensure_horizon()

        def on_machine_fail(event) -> None:
            j = machines.index(event.payload.machine)
            if not up[j]:
                return
            up[j] = False
            epoch[j] += 1
            stats["failures"] += 1
            if tracer.enabled:
                tracer.count("rolling.failures")
            victim = running[j]
            running[j] = None
            if self.recovery == "remap" and queues[j]:
                # Stranded queued tasks never failed: back to the next
                # batch without charging their retry budgets.
                stranded = list(queues[j])
                queues[j].clear()
                pending.extend(stranded)
                ensure_horizon()
            if victim is not None:
                stats["aborted"] += 1
                retry_or_drop(victim[0])
            sample()

        def on_machine_recover(event) -> None:
            j = machines.index(event.payload.machine)
            if up[j]:
                return
            up[j] = True
            stats["recoveries"] += 1
            try_start(j)

        def on_machine_slow(event) -> None:
            j = machines.index(event.payload.machine)
            factor[j] = event.payload.factor
            stats["slowdowns"] += 1

        def on_machine_restore(event) -> None:
            factor[machines.index(event.payload.machine)] = 1.0

        sim.on("task-arrival", on_arrival)
        sim.on("rolling-horizon", on_horizon)
        sim.on("task-finish", on_task_finish)
        sim.on("task-retry", on_task_retry)
        sim.on("machine-fail", on_machine_fail)
        sim.on("machine-recover", on_machine_recover)
        sim.on("machine-slow", on_machine_slow)
        sim.on("machine-restore", on_machine_restore)

        with tracer.phase(
            "rolling.run",
            tasks=total,
            machines=num_machines,
            horizon=self.horizon,
            heuristic=self.heuristic.name,
        ):
            schedule_chunk(first_chunk)
            # Faults run at a lower priority than same-instant finishes,
            # matching FaultTolerantHCSystem semantics.
            for fault in plan_events:
                sim.schedule_at(
                    fault.time, f"machine-{fault.kind}", payload=fault, priority=10
                )
            sim.run(
                max_events=12 * (total + 1) * (self.retry_budget + 2)
                + 6 * len(plan_events)
                + 50_000,
                progress=progress,
                progress_every=progress_every,
            )

        if stats["completed"] + len(dropped) != total or stats["arrived"] != total:
            raise SimulationError(
                f"rolling accounting failed: arrived {stats['arrived']}, "
                f"completed {stats['completed']}, dropped {len(dropped)} "
                f"of {total} tasks"
            )
        if sampler is not None:
            sample()
        return RollingResult(
            total_tasks=total,
            completed=stats["completed"],
            dropped=tuple(dropped),
            arrival_rate=float(arrival_rate),
            horizon=self.horizon,
            refine_iterations=self.refine_iterations,
            horizons=stats["horizons"],
            dispatches=stats["dispatches"],
            batch_max=stats["batch_max"],
            makespan=agg["makespan"],
            sim_end=sim.now,
            mean_queue_wait=(
                agg["sum_wait"] / stats["dispatches"] if stats["dispatches"] else 0.0
            ),
            max_queue_wait=agg["max_wait"],
            mean_flow=(
                agg["sum_flow"] / stats["completed"] if stats["completed"] else 0.0
            ),
            peak_backlog=agg["peak_backlog"],
            failures=stats["failures"],
            recoveries=stats["recoveries"],
            slowdowns=stats["slowdowns"],
            aborted=stats["aborted"],
            retries=stats["retries"],
        )

"""Execution traces produced by the HC system simulator."""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import SimulationError

__all__ = ["TaskExecution", "ExecutionTrace"]


@dataclass(frozen=True)
class TaskExecution:
    """One task's measured execution interval on a machine.

    The interval is validated on construction: a task cannot finish
    before it starts, nor start before it arrives (the latter would
    silently yield a *negative* :attr:`queue_wait` and corrupt every
    wait-time statistic downstream).
    """

    task: str
    machine: str
    start: float
    finish: float
    arrival: float = 0.0

    def __post_init__(self) -> None:
        if self.finish < self.start:
            raise SimulationError(
                f"task {self.task!r} finishes before it starts "
                f"({self.finish} < {self.start})"
            )
        if self.start < self.arrival:
            raise SimulationError(
                f"task {self.task!r} starts before it arrives "
                f"({self.start} < {self.arrival})"
            )

    @property
    def duration(self) -> float:
        return self.finish - self.start

    @property
    def queue_wait(self) -> float:
        """Time between arrival (or time 0 for static runs) and start."""
        return self.start - self.arrival


class ExecutionTrace:
    """Ordered record of everything the simulated HC suite executed."""

    def __init__(self, machines: tuple[str, ...]) -> None:
        self._machines = machines
        self._records: list[TaskExecution] = []
        self._by_task: dict[str, TaskExecution] = {}

    @property
    def machines(self) -> tuple[str, ...]:
        return self._machines

    @property
    def records(self) -> tuple[TaskExecution, ...]:
        return tuple(self._records)

    def add(self, record: TaskExecution) -> None:
        if record.task in self._by_task:
            raise SimulationError(f"task {record.task!r} executed twice")
        if record.machine not in self._machines:
            raise SimulationError(f"unknown machine {record.machine!r} in trace")
        if record.finish < record.start:
            raise SimulationError(
                f"task {record.task!r} finishes before it starts "
                f"({record.finish} < {record.start})"
            )
        self._records.append(record)
        self._by_task[record.task] = record

    def execution_of(self, task: str) -> TaskExecution:
        try:
            return self._by_task[task]
        except KeyError:
            raise SimulationError(f"task {task!r} never executed") from None

    def machine_records(self, machine: str) -> tuple[TaskExecution, ...]:
        """Executions on ``machine`` in start-time order."""
        recs = [r for r in self._records if r.machine == machine]
        recs.sort(key=lambda r: (r.start, r.task))
        return tuple(recs)

    def machine_finish_times(self, initial_ready=None) -> dict[str, float]:
        """Measured finishing time per machine.

        Machines that executed nothing report their initial ready time
        (0 when ``initial_ready`` is omitted).
        """
        base = dict.fromkeys(self._machines, 0.0)
        if initial_ready is not None:
            base.update({m: float(v) for m, v in initial_ready.items()})
        for record in self._records:
            base[record.machine] = max(base[record.machine], record.finish)
        return base

    def makespan(self) -> float:
        """Largest measured finishing time (0 for an empty trace)."""
        return max((r.finish for r in self._records), default=0.0)

    def machine_busy_time(self, machine: str) -> float:
        """Total busy (executing) time of ``machine``."""
        return sum(r.duration for r in self.machine_records(machine))

    def utilisation(self, machine: str) -> float:
        """Busy time over the trace makespan (0 for an empty trace)."""
        span = self.makespan()
        if span <= 0:
            return 0.0
        return self.machine_busy_time(machine) / span

    def mean_queue_wait(self) -> float:
        """Mean time tasks spent waiting to start (dynamic workloads)."""
        if not self._records:
            return 0.0
        return sum(r.queue_wait for r in self._records) / len(self._records)

    def __len__(self) -> int:
        return len(self._records)

"""Seeded fault injection for the HC simulator.

The paper's argument — freeing non-makespan machines early so they can
absorb subsequent work — only has teeth in an environment where
machines drop out, slow down, and come back.  This module generates
that environment as *data*: a :class:`FaultPlan` is a fully
materialised, seeded, immutable timeline of machine failure/recovery
and ETC-perturbation (slowdown) events, generated once up front and
then replayed by :class:`~repro.sim.hcsystem.FaultTolerantHCSystem`.

Determinism is the design constraint everything here serves: the plan
is drawn machine-by-machine in input order from one
``numpy.random.Generator``, so the same seed yields a byte-identical
event timeline (asserted via :meth:`FaultPlan.signature`), which in
turn makes every fault-injected simulation run — event trace, counters,
ledger metrics — reproducible.

Fault model
-----------
Each machine alternates between *up* and *down* states: up durations
are exponential with rate ``failure_rate``, down (repair) durations are
exponential with mean ``mean_downtime``.  Every failure always gets a
matching recovery event, even past the horizon, so no machine stays
down forever.  Independently, machines suffer transient *slowdowns*
(onsets exponential with rate ``slowdown_rate``, durations exponential
with mean ``mean_slowdown``) during which every task **started** on the
machine takes ``slowdown_factor`` times its ETC estimate — the
multiplicative ETC-perturbation model of the robustness literature
(see :mod:`repro.analysis.robustness`).
"""

from __future__ import annotations

import hashlib
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = [
    "FAULT_KINDS",
    "FaultConfig",
    "FaultEvent",
    "FaultPlan",
    "generate_fault_plan",
]

#: Event kinds a plan may contain, in their per-pair emission order.
FAULT_KINDS = ("fail", "recover", "slow", "restore")


@dataclass(frozen=True)
class FaultConfig:
    """Rates and magnitudes of the injected fault processes.

    ``failure_rate`` and ``slowdown_rate`` are per-machine Poisson rates
    (events per simulated time unit); a rate of 0 disables that process.
    """

    failure_rate: float = 0.0
    mean_downtime: float = 0.0
    slowdown_rate: float = 0.0
    slowdown_factor: float = 2.0
    mean_slowdown: float = 0.0

    def __post_init__(self) -> None:
        if self.failure_rate < 0 or self.slowdown_rate < 0:
            raise ConfigurationError(
                f"fault rates must be >= 0, got failure_rate={self.failure_rate}, "
                f"slowdown_rate={self.slowdown_rate}"
            )
        if self.failure_rate > 0 and self.mean_downtime <= 0:
            raise ConfigurationError(
                f"mean_downtime must be positive when failures are enabled, "
                f"got {self.mean_downtime}"
            )
        if self.slowdown_rate > 0:
            if self.mean_slowdown <= 0:
                raise ConfigurationError(
                    f"mean_slowdown must be positive when slowdowns are "
                    f"enabled, got {self.mean_slowdown}"
                )
            if self.slowdown_factor <= 1.0:
                raise ConfigurationError(
                    f"slowdown_factor must exceed 1, got {self.slowdown_factor}"
                )

    @property
    def enabled(self) -> bool:
        return self.failure_rate > 0 or self.slowdown_rate > 0


@dataclass(frozen=True)
class FaultEvent:
    """One injected event: a ``kind`` from :data:`FAULT_KINDS` hitting
    ``machine`` at ``time``; ``factor`` is the ETC multiplier carried by
    ``slow`` events (1.0 for every other kind)."""

    time: float
    kind: str
    machine: str
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.time < 0 or self.time != self.time:
            raise ConfigurationError(f"invalid fault time {self.time!r}")
        if self.factor <= 0:
            raise ConfigurationError(f"fault factor must be positive, got {self.factor}")


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, time-ordered fault timeline over a machine set."""

    machines: tuple[str, ...]
    horizon: float
    events: tuple[FaultEvent, ...]

    def __post_init__(self) -> None:
        known = set(self.machines)
        for event in self.events:
            if event.machine not in known:
                raise ConfigurationError(
                    f"fault event targets unknown machine {event.machine!r}"
                )

    @property
    def is_empty(self) -> bool:
        return not self.events

    @property
    def num_failures(self) -> int:
        return sum(1 for e in self.events if e.kind == "fail")

    @property
    def num_slowdowns(self) -> int:
        return sum(1 for e in self.events if e.kind == "slow")

    def events_for(self, machine: str) -> tuple[FaultEvent, ...]:
        return tuple(e for e in self.events if e.machine == machine)

    def signature(self) -> str:
        """SHA-256 over the canonical event timeline.

        Two plans with the same signature are byte-identical; the ledger
        records this so fault runs can be audited for determinism.
        """
        payload = "\n".join(
            f"{e.time!r}|{e.kind}|{e.machine}|{e.factor!r}" for e in self.events
        )
        head = f"{self.machines!r}|{self.horizon!r}\n"
        return hashlib.sha256((head + payload).encode("utf-8")).hexdigest()


def _alternating_times(
    gen: np.random.Generator,
    horizon: float,
    onset_rate: float,
    mean_duration: float,
) -> list[tuple[float, float]]:
    """(onset, end) pairs of an alternating renewal process on [0, horizon).

    Onsets beyond the horizon are discarded; the *end* of an episode
    that started inside the horizon is always kept, so every episode
    terminates (a failure is never left unrepaired).
    """
    episodes: list[tuple[float, float]] = []
    t = float(gen.exponential(1.0 / onset_rate))
    while t < horizon:
        duration = float(gen.exponential(mean_duration))
        episodes.append((t, t + duration))
        t = t + duration + float(gen.exponential(1.0 / onset_rate))
    return episodes


def generate_fault_plan(
    machines: Sequence[str],
    config: FaultConfig,
    horizon: float,
    rng: np.random.Generator | int | None = None,
) -> FaultPlan:
    """Draw one seeded :class:`FaultPlan` over ``machines``.

    Machines are processed in input order and each process draws a fixed
    sequence of exponentials, so a given ``(machines, config, horizon,
    seed)`` tuple always produces the identical plan.
    """
    machines = tuple(machines)
    if not machines:
        raise ConfigurationError("fault plan needs at least one machine")
    if len(set(machines)) != len(machines):
        raise ConfigurationError(f"duplicate machines in fault plan: {machines!r}")
    if horizon <= 0:
        raise ConfigurationError(f"horizon must be positive, got {horizon}")
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)

    events: list[FaultEvent] = []
    for machine in machines:
        if config.failure_rate > 0:
            for start, end in _alternating_times(
                gen, horizon, config.failure_rate, config.mean_downtime
            ):
                events.append(FaultEvent(start, "fail", machine))
                events.append(FaultEvent(end, "recover", machine))
        if config.slowdown_rate > 0:
            for start, end in _alternating_times(
                gen, horizon, config.slowdown_rate, config.mean_slowdown
            ):
                events.append(
                    FaultEvent(start, "slow", machine, factor=config.slowdown_factor)
                )
                events.append(FaultEvent(end, "restore", machine))

    order = {m: i for i, m in enumerate(machines)}
    kind_order = {k: i for i, k in enumerate(FAULT_KINDS)}
    events.sort(key=lambda e: (e.time, order[e.machine], kind_order[e.kind]))
    return FaultPlan(machines=machines, horizon=float(horizon), events=tuple(events))

"""Benchmark-regression harness for the scheduling hot paths.

The kernels in :mod:`repro.heuristics` keep *reference* implementations
alongside the optimised defaults (``incremental=False``), so every
tracked workload can time both variants in the same process and report
the speedup directly — the checked-in ``BENCH_baseline.json`` therefore
records pre- **and** post-optimisation numbers for the paper-scale
workloads.

Three entry points:

* :func:`run_bench` executes the workload registry and returns a
  machine-readable report (see ``SCHEMA``);
* :func:`compare_reports` checks a fresh report against a baseline and
  lists every tracked workload that regressed beyond the tolerance;
* the ``repro bench`` CLI subcommand (and ``make bench`` /
  ``make bench-smoke``) wraps both, exiting non-zero on regression.

Workloads use ``time.perf_counter`` around whole mapper runs; ``best_s``
(minimum over repeats) is the comparison statistic because it is the
least noise-sensitive on shared machines, with ``median_s`` recorded
alongside for context.  Smoke mode shrinks every workload (64×8 instead
of 512×32) so the harness itself can run inside the test suite; smoke
and full reports are never comparable (`compare_reports` refuses).
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import subprocess
import sys
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.exceptions import ConfigurationError

__all__ = [
    "SCHEMA",
    "DEFAULT_TOLERANCE",
    "DEFAULT_SPEEDUP_TOLERANCE",
    "TRACING_OVERHEAD_BUDGET",
    "BenchOptions",
    "Workload",
    "WORKLOADS",
    "workload_names",
    "run_bench",
    "compare_reports",
    "compare_speedups",
    "load_report",
    "write_report",
    "format_report",
]

#: Report format identifier; bump when the JSON layout changes.
SCHEMA = "repro-bench/1"

#: Default allowed slowdown before ``compare_reports`` flags a workload
#: (0.5 = 50%, generous because wall-clock timing on shared hardware is
#: noisy; the optimisations being guarded are 2–10x, not 1.1x).
DEFAULT_TOLERANCE = 0.5

#: Default allowed *speedup-ratio* shrink before ``compare_speedups``
#: flags a workload (0.25 = the optimised-vs-reference ratio may lose a
#: quarter).  Ratios divide out absolute machine speed, so this gate is
#: usable on shared CI runners where raw ``best_s`` comparisons are not.
DEFAULT_SPEEDUP_TOLERANCE = 0.25

DEFAULT_REPEATS = 5

_FULL_SHAPE = (512, 32)
_SMOKE_SHAPE = (64, 8)
_BATCH_SHAPE = (128, 16)
_BATCH_SMOKE_SHAPE = (32, 8)
_SMOKE_BATCH = 8
DEFAULT_BATCH = 64
_ETC_SEED = 20070612  # fixed: every run times the same instance


@dataclass(frozen=True)
class BenchOptions:
    """Knobs a :class:`Workload` build receives.

    ``backend=None`` means each workload's historical default (the
    batched workload uses the ``batched`` backend, the mapper workloads
    the incremental kernels), so reports stay comparable run to run
    unless a backend is chosen deliberately.
    """

    smoke: bool = False
    backend: str | None = None
    batch_size: int = DEFAULT_BATCH


def _bench_etc(smoke: bool):
    from repro.etc.generation import (
        Consistency,
        Heterogeneity,
        generate_range_based,
    )

    tasks, machines = _SMOKE_SHAPE if smoke else _FULL_SHAPE
    return generate_range_based(
        tasks,
        machines,
        Heterogeneity.HIHI,
        Consistency.INCONSISTENT,
        rng=_ETC_SEED,
    )


@dataclass(frozen=True)
class Workload:
    """One tracked timing target.

    ``build(options)`` returns ``(run, run_reference)`` thunks — the
    optimised path and the retained pre-optimisation path (``None``
    when the workload has no reference variant).
    """

    name: str
    description: str
    build: Callable[
        [BenchOptions], tuple[Callable[[], object], Callable[[], object] | None]
    ]


def _mapper_workload(heuristic_factory) -> Callable:
    def build(options: BenchOptions):
        from repro.core.ties import DeterministicTieBreaker

        etc = _bench_etc(options.smoke)
        # These workloads time a *fixed* kernel pair (incremental vs
        # reference) so their speedup column stays meaningful; the
        # backend knob drives the experiment/batched workloads instead.
        def run():
            return heuristic_factory(incremental=True).map_tasks(
                etc, tie_breaker=DeterministicTieBreaker()
            )

        def run_reference():
            return heuristic_factory(incremental=False).map_tasks(
                etc, tie_breaker=DeterministicTieBreaker()
            )

        return run, run_reference

    return build


def _iterative_workload(options: BenchOptions):
    from repro.core.iterative import IterativeScheduler
    from repro.heuristics.minmin import MinMin

    etc = _bench_etc(options.smoke)

    def run():
        return IterativeScheduler(MinMin(incremental=True)).run(etc)

    def run_reference():
        return IterativeScheduler(MinMin(incremental=False)).run(etc)

    return run, run_reference


def _experiment_workload(options: BenchOptions):
    from repro.analysis.experiments import ExperimentConfig, run_experiment

    smoke = options.smoke
    config = ExperimentConfig(
        heuristics=("min-min", "mct", "sufferage"),
        num_tasks=16 if smoke else 48,
        num_machines=4 if smoke else 8,
        instances_per_cell=1 if smoke else 3,
        seed=_ETC_SEED,
        backend=options.backend or "incremental",
    )

    def run():
        return run_experiment(config)

    return run, None


def _cached_grid_workload(options: BenchOptions):
    """Cached re-run through the resumable runner vs full recompute.

    ``build`` pre-populates a throwaway cell cache once; the optimised
    thunk then resumes from it (every cell a cache hit), while the
    reference thunk recomputes the same grid uncached.  The speedup
    column is the direct measure of the runner's near-zero recompute
    cost on a warm cache.
    """
    import atexit
    import shutil
    import tempfile

    from repro.analysis.experiments import ExperimentConfig
    from repro.analysis.runner import run_grid
    from repro.etc.generation import Heterogeneity

    smoke = options.smoke
    config = ExperimentConfig(
        heuristics=("min-min", "mct"),
        num_tasks=12 if smoke else 32,
        num_machines=4 if smoke else 8,
        heterogeneities=(Heterogeneity.HIHI, Heterogeneity.LOLO),
        instances_per_cell=1 if smoke else 2,
        seed=_ETC_SEED,
    )
    cache_dir = tempfile.mkdtemp(prefix="repro-bench-cells-")
    run_grid(config, max_workers=1, cache_dir=cache_dir)
    atexit.register(shutil.rmtree, cache_dir, ignore_errors=True)

    def run():
        return run_grid(
            config, max_workers=1, cache_dir=cache_dir, resume=True
        )

    def run_reference():
        return run_grid(config, max_workers=1, cache_dir=None)

    return run, run_reference


def _batched_greedy_workload(options: BenchOptions):
    """Stacked batched Min-Min vs looping the single-instance kernel.

    The optimised thunk maps one :class:`~repro.etc.batch.ETCBatch`
    (``batch_size`` instances, 128×16 full / 32×8 smoke) through the
    batched backend's 3-D kernel; the reference thunk loops the
    incremental single-instance kernel over the same matrices.  The
    speedup column is the direct measure of the batch-axis
    vectorisation (the two paths are decision-identical, enforced by
    the equivalence battery).
    """
    from repro.etc.batch import ETCBatch
    from repro.etc.generation import (
        Consistency,
        Heterogeneity,
        generate_range_based,
    )
    from repro.heuristics.backends import get_backend
    from repro.heuristics.minmin import MinMin

    tasks, machines = _BATCH_SMOKE_SHAPE if options.smoke else _BATCH_SHAPE
    size = min(options.batch_size, _SMOKE_BATCH) if options.smoke else options.batch_size
    matrices = [
        generate_range_based(
            tasks,
            machines,
            Heterogeneity.HIHI,
            Consistency.INCONSISTENT,
            rng=_ETC_SEED + i,
        )
        for i in range(size)
    ]
    batch = ETCBatch.from_matrices(matrices)
    backend = get_backend(options.backend or "batched")

    def run():
        return backend.map_batch("min-min", batch, nominal_size=size).makespans()

    def run_reference():
        mapper = MinMin(incremental=True)
        return [mapper.map_tasks(etc).makespan() for etc in matrices]

    return run, run_reference


def _cell_cost(values) -> float:
    """Cheap whole-payload reduction standing in for cell compute.

    Touches every element exactly once (per-task best completion time,
    summed), so both transport variants pay identical compute and the
    measured gap is transport alone.
    """
    return float(values.min(axis=2).sum())


def _shm_cell_cost(descriptor) -> float:
    """Pool worker for the shm variant: attach by name, reduce."""
    from repro.analysis.parallel import attach_shared

    return _cell_cost(attach_shared(descriptor))


def _pickled_cell_cost(values) -> float:
    """Pool worker for the reference variant: the array itself crossed
    the pipe (pickled on submit, unpickled here)."""
    return _cell_cost(values)


def _shm_grid_workload(options: BenchOptions):
    """Zero-copy shm fan-out vs pickling the same payloads to the pool.

    ``build`` generates one ETC-scale stack per grid cell (64 cells of
    24×256×32 full, 8 cells of 4×32×8 smoke), publishes every stack
    into POSIX shared memory once (:class:`SharedMemoryArena`), and
    starts a process pool shared by both thunks.  The optimised thunk
    fans out :class:`ShmDescriptor` handles (tens of bytes each;
    workers attach the published pages and cache the attachment); the
    reference thunk submits the arrays themselves, paying
    pickle + pipe + unpickle per cell.  Same pool, same worker count,
    same reduction — the speedup column isolates the transport.
    """
    import atexit
    from concurrent.futures import ProcessPoolExecutor

    import numpy as np

    from repro.analysis.parallel import SharedMemoryArena

    # Per-cell payloads are sized so transport (pickle + pipe vs a
    # descriptor handoff) dominates the worker's reduction even in
    # smoke mode — 1 MiB/cell smoke, 1.5 MiB/cell full.
    if options.smoke:
        cells, workers, shape = 8, 2, (16, 256, 32)
    else:
        cells, workers, shape = 64, 8, (24, 256, 32)
    rng = np.random.default_rng(_ETC_SEED)
    payloads = [
        rng.uniform(1.0, 3000.0, size=shape) for _ in range(cells)
    ]
    arena = SharedMemoryArena()
    atexit.register(arena.close)
    descriptors = [arena.publish(values) for values in payloads]
    pool = ProcessPoolExecutor(max_workers=workers)
    atexit.register(pool.shutdown)

    def run():
        return [r for r in pool.map(_shm_cell_cost, descriptors)]

    def run_reference():
        return [r for r in pool.map(_pickled_cell_cost, payloads)]

    return run, run_reference


#: Streamed-generation memory budget: the streamed path must stay under
#: ``baseline + payload/2`` while the payload itself exceeds that budget
#: — so finishing under budget is impossible for a path that
#: materialises the whole ensemble.
_STREAM_CHILD = r"""
import json, resource, shutil, sys

mode, root, count, tasks, machines, window, seed = sys.argv[1:8]
from repro.etc.generation import generate_ensemble, generate_ensemble_into
from repro.etc.store import ETCStore

store = ETCStore(root)
try:
    if mode == "streamed":
        generate_ensemble_into(
            store, "bench", int(count), int(tasks), int(machines),
            rng=int(seed), window=int(window),
        )
    else:
        store.put_matrices(
            "bench",
            generate_ensemble(int(count), int(tasks), int(machines), rng=int(seed)),
        )
finally:
    store.close()
    shutil.rmtree(root, ignore_errors=True)
print(json.dumps(
    {"maxrss_bytes": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024}
))
"""

_STREAM_BASELINE_CHILD = (
    "import json, resource; import numpy; import repro.etc.store; "
    "print(json.dumps({'maxrss_bytes': "
    "resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024}))"
)


def _child_env() -> dict:
    import repro

    env = dict(os.environ)
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else os.pathsep.join([src, existing])
    return env


def _child_maxrss(argv: list[str], env: dict) -> int:
    out = subprocess.run(
        [sys.executable, *argv], env=env, capture_output=True, text=True
    )
    if out.returncode != 0:
        raise ConfigurationError(
            f"bench child process failed (rc={out.returncode}): "
            f"{out.stderr.strip()[-500:]}"
        )
    return int(json.loads(out.stdout.strip().splitlines()[-1])["maxrss_bytes"])


def _streamed_generation_workload(options: BenchOptions):
    """Out-of-core ensemble generation under a hard peak-RSS budget.

    Each repeat spawns a *fresh* interpreter (fork would inherit the
    parent's RSS high-water mark) that pours one ensemble — sized to
    exceed the memory budget — into a throwaway ETC store.  The
    optimised thunk streams it in bounded windows
    (:func:`~repro.etc.generation.generate_ensemble_into`) and **fails
    the bench** if the child's ``ru_maxrss`` reaches the budget; the
    reference thunk materialises the full ensemble first
    (``generate_ensemble`` + ``put_matrices``), demonstrating the peak
    the streamed path avoids.  Budget: interpreter baseline (measured
    per run) + half the payload.
    """
    import atexit
    import shutil
    import tempfile

    tasks, machines = (256, 32) if options.smoke else _FULL_SHAPE
    instance_bytes = tasks * machines * 8
    env = _child_env()
    baseline = _child_maxrss(["-c", _STREAM_BASELINE_CHILD], env)
    # Payload > budget by at least 32 MiB by construction, and the
    # streamed child's peak (baseline + a few windows' worth of copies,
    # ~32 MiB over baseline in practice) clears the budget with the
    # same margin however fat the interpreter baseline is.
    floor = (128 if options.smoke else 256) << 20
    payload = max(floor, 2 * baseline + (64 << 20))
    count = -(-payload // instance_bytes)
    payload = count * instance_bytes
    budget = baseline + payload // 2
    window = max(1, (8 << 20) // instance_bytes)
    base = tempfile.mkdtemp(prefix="repro-bench-stream-")
    atexit.register(shutil.rmtree, base, ignore_errors=True)
    counter = iter(range(10**9))

    def child(mode: str) -> int:
        root = os.path.join(base, f"{mode}-{next(counter)}")
        return _child_maxrss(
            [
                "-c",
                _STREAM_CHILD,
                mode,
                root,
                str(count),
                str(tasks),
                str(machines),
                str(window),
                str(_ETC_SEED),
            ],
            env,
        )

    def run():
        maxrss = child("streamed")
        if maxrss >= budget:
            raise ConfigurationError(
                f"streamed generation peaked at {maxrss >> 20} MiB, over the "
                f"{budget >> 20} MiB budget ({payload >> 20} MiB payload, "
                f"{baseline >> 20} MiB interpreter baseline)"
            )
        return maxrss

    def run_reference():
        return child("eager")

    return run, run_reference


#: Hard ceiling on the instrumented-vs-null-tracer wall-clock ratio of
#: the iterative workload.  Tracing a 512x32 iterative run measures
#: ~1.7x (the event stream dominates); the budget is deliberately loose
#: so shared-runner noise never trips it while a pathological tracer
#: regression (accidental per-event quadratic work, spans on the null
#: path) still fails the bench loudly.
TRACING_OVERHEAD_BUDGET = 3.0


def _tracing_overhead_workload(options: BenchOptions):
    """Instrumented-vs-null-tracer cost of the full iterative run.

    The optimised thunk runs the 512x32 (64x8 smoke) iterative
    technique under a fresh :class:`~repro.obs.tracer.CollectingTracer`
    (events, counters, histograms, spans all live); the reference thunk
    runs the identical schedule under the default null tracer, so the
    ``speedup`` column is *null / instrumented* — the fraction of null
    throughput the instrumentation retains.  ``build`` additionally
    measures a best-of-3 pair up front and **fails the bench** when the
    ratio exceeds :data:`TRACING_OVERHEAD_BUDGET`, making the gate
    self-contained (no baseline file needed) for CI smoke runs.
    """
    from repro.core.iterative import IterativeScheduler
    from repro.heuristics.minmin import MinMin
    from repro.obs.tracer import CollectingTracer, use_tracer

    etc = _bench_etc(options.smoke)
    scheduler = IterativeScheduler(MinMin(incremental=True))

    def run():
        with use_tracer(CollectingTracer()):
            return scheduler.run(etc)

    def run_reference():
        return scheduler.run(etc)

    def best_of(thunk, n=3):
        return min(_time_thunk(thunk, n)["samples"])

    null_s = best_of(run_reference)
    instrumented_s = best_of(run)
    ratio = instrumented_s / null_s if null_s > 0 else float("inf")
    if ratio > TRACING_OVERHEAD_BUDGET:
        raise ConfigurationError(
            f"tracing overhead {ratio:.2f}x exceeds the "
            f"{TRACING_OVERHEAD_BUDGET:.1f}x budget "
            f"(instrumented {instrumented_s * 1e3:.2f} ms vs null "
            f"{null_s * 1e3:.2f} ms on "
            f"{etc.num_tasks}x{etc.num_machines})"
        )
    return run, run_reference


def _rolling_serving_workload(options: BenchOptions):
    """Horizon-batched rolling serve vs per-task mapping cadence.

    Both thunks serve the identical streamed workload through
    :class:`~repro.sim.rolling.RollingSimulation` (map + 2-iteration
    refine per mapping event).  The optimised thunk batches ~64 tasks
    per horizon; the reference thunk shrinks the horizon to one mean
    inter-arrival gap so every mapping event holds ~1 task, paying the
    per-event mapping overhead once per task.  The ``speedup`` column is
    the direct measure of what horizon batching buys the serving loop.
    """
    from repro.heuristics.minmin import MinMin
    from repro.sim.rolling import (
        EnsembleTaskSource,
        RollingSimulation,
        calibrate_rate,
    )

    tasks, machines = (400, 4) if options.smoke else (4000, 8)

    def make_source():
        return EnsembleTaskSource(
            tasks, machines, tasks_per_instance=64, rng=_ETC_SEED
        )

    rate = calibrate_rate(next(make_source().chunks()))

    def serve(horizon: float):
        return RollingSimulation(
            make_source(),
            MinMin(incremental=True),
            horizon=horizon,
            refine_iterations=2,
            rng=_ETC_SEED,
        ).run()

    def run():
        return serve(64.0 / rate)

    def run_reference():
        return serve(1.0 / rate)

    return run, run_reference


def _serve_load_workload(options: BenchOptions):
    """Warm-cache scheduling service vs a no-cache twin, same traffic.

    ``build`` starts two in-process :class:`~repro.serve.service.
    SchedulingService` instances behind one event loop on a daemon
    thread: the optimised variant with a pre-warmed content-addressed
    response cache, the reference with caching disabled.  Both thunks
    replay identical synthetic traffic (a compute-dominated study-kind
    payload) through :func:`~repro.serve.load.run_load` over real HTTP,
    so the ``speedup`` column is the end-to-end value of serving repeat
    requests from the response cache instead of recomputing — with the
    request/latency headline recorded in the entry's ``extra`` field.
    """
    import asyncio
    import atexit
    import shutil
    import tempfile
    import threading

    from repro.serve.http import start_server
    from repro.serve.load import post_json, run_load
    from repro.serve.service import SchedulingService

    smoke = options.smoke
    payload = {
        "kind": "study",
        "ensemble": {
            "tasks": 24 if smoke else 48,
            "machines": 6 if smoke else 8,
            "instances": 4 if smoke else 10,
        },
        "heuristic": "min-min",
        "seed": _ETC_SEED,
    }
    requests = 32 if smoke else 160
    concurrency = 8

    cache_dir = tempfile.mkdtemp(prefix="repro-bench-serve-")
    atexit.register(shutil.rmtree, cache_dir, ignore_errors=True)
    cached_service = SchedulingService(cache_dir, max_workers=4)
    nocache_service = SchedulingService(None, max_workers=4)

    loop = asyncio.new_event_loop()
    thread = threading.Thread(
        target=loop.run_forever, name="repro-bench-serve", daemon=True
    )
    thread.start()

    def _start(service):
        return asyncio.run_coroutine_threadsafe(
            start_server(service), loop
        ).result(timeout=30)

    cached_server = _start(cached_service)
    nocache_server = _start(nocache_service)

    def _url(server) -> str:
        port = server.sockets[0].getsockname()[1]
        return f"http://127.0.0.1:{port}/v1/schedule"

    cached_url, nocache_url = _url(cached_server), _url(nocache_server)

    def _shutdown():
        async def _close():
            for server in (cached_server, nocache_server):
                server.close()
                await server.wait_closed()
            # 3.11's wait_closed() does not wait for in-flight
            # connection handlers; cancel stragglers so the loop stops
            # clean instead of warning about destroyed pending tasks.
            for task in asyncio.all_tasks():
                if task is not asyncio.current_task():
                    task.cancel()

        asyncio.run_coroutine_threadsafe(_close(), loop).result(timeout=10)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=5)
        cached_service.close()
        nocache_service.close()

    atexit.register(_shutdown)

    # Warm the cache so the optimised thunk times pure cache serving.
    status, _body = post_json(cached_url, payload)
    if status != 200:
        raise ConfigurationError(
            f"serve-load warmup request failed with HTTP {status}"
        )

    last_report: dict = {}

    def _load(url: str) -> dict:
        report = run_load(
            url, payload, requests=requests, concurrency=concurrency
        )
        if report["errors"]:
            raise ConfigurationError(
                f"serve-load saw {report['errors']} failed request(s)"
            )
        return report

    def run():
        report = _load(cached_url)
        last_report.clear()
        last_report.update(report)
        return report

    def run_reference():
        return _load(nocache_url)

    def bench_extra() -> dict:
        return {
            "requests": last_report.get("requests"),
            "requests_per_s": last_report.get("requests_per_s"),
            "latency_ms": dict(last_report.get("latency_ms", {})),
            "cached": last_report.get("cached"),
        }

    run.bench_extra = bench_extra
    return run, run_reference


def _make_minmin(**kwargs):
    from repro.heuristics.minmin import MinMin

    return MinMin(**kwargs)


def _make_mct(**kwargs):
    from repro.heuristics.mct import MCT

    return MCT(**kwargs)


def _make_sufferage(**kwargs):
    from repro.heuristics.sufferage import Sufferage

    return Sufferage(**kwargs)


def _make_kpb(**kwargs):
    from repro.heuristics.kpb import KPercentBest

    return KPercentBest(70.0, **kwargs)


WORKLOADS: tuple[Workload, ...] = (
    Workload(
        "minmin-512x32",
        "Min-Min mapper, 512 tasks x 32 machines (64x8 in smoke mode)",
        _mapper_workload(_make_minmin),
    ),
    Workload(
        "mct-512x32",
        "MCT mapper, 512 tasks x 32 machines",
        _mapper_workload(_make_mct),
    ),
    Workload(
        "sufferage-512x32",
        "Sufferage mapper, 512 tasks x 32 machines",
        _mapper_workload(_make_sufferage),
    ),
    Workload(
        "kpb-512x32",
        "K-Percent Best (70%) mapper, 512 tasks x 32 machines",
        _mapper_workload(_make_kpb),
    ),
    Workload(
        "iterative-minmin-512x32",
        "Full iterative technique with Min-Min, 512 tasks x 32 machines",
        _iterative_workload,
    ),
    Workload(
        "experiment-grid-small",
        "Serial experiment grid (3 heuristics, no reference variant)",
        _experiment_workload,
    ),
    Workload(
        "runner-cached-grid",
        "Warm-cache resume via run_grid vs uncached recompute (the "
        "reference variant)",
        _cached_grid_workload,
    ),
    Workload(
        "batched-greedy",
        "Min-Min over a stacked batch of 64 ETC instances, 128 tasks x "
        "16 machines (8 of 32x8 in smoke mode), vs looping the "
        "single-instance kernel (the reference variant)",
        _batched_greedy_workload,
    ),
    Workload(
        "shm-grid",
        "Shared-memory descriptor fan-out of 64 grid-cell payloads to an "
        "8-worker pool (8 cells / 2 workers in smoke mode) vs pickling "
        "the same arrays through the pool pipes (the reference variant)",
        _shm_grid_workload,
    ),
    Workload(
        "tracing-overhead",
        "Iterative 512x32 run under a live CollectingTracer vs the null "
        "tracer (the reference variant); fails the bench when the "
        "overhead ratio exceeds the checked-in budget",
        _tracing_overhead_workload,
    ),
    Workload(
        "streamed-generation",
        "Out-of-core ensemble streaming into an ETC store in a fresh "
        "subprocess, asserted under a peak-RSS budget the payload "
        "exceeds, vs materialising the whole ensemble first (the "
        "reference variant)",
        _streamed_generation_workload,
    ),
    Workload(
        "rolling-horizon",
        "Rolling-horizon serve of 4000 streamed tasks x 8 machines "
        "(400x4 in smoke mode), ~64 tasks mapped+refined per horizon, "
        "vs a per-task mapping cadence (the reference variant)",
        _rolling_serving_workload,
    ),
    Workload(
        "serve-load",
        "Synthetic HTTP traffic against the scheduling service with a "
        "warm content-addressed response cache (160 study requests at "
        "concurrency 8; 32 in smoke mode), vs an identical no-cache "
        "service that recomputes every request (the reference variant)",
        _serve_load_workload,
    ),
)


def workload_names() -> tuple[str, ...]:
    return tuple(w.name for w in WORKLOADS)


def _time_thunk(thunk: Callable[[], object], repeats: int) -> dict:
    samples: list[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        thunk()
        samples.append(time.perf_counter() - start)
    return {
        "best_s": min(samples),
        "median_s": statistics.median(samples),
        "samples": [round(s, 6) for s in samples],
    }


def _profile_thunk(thunk: Callable[[], object], top_n: int) -> list[str]:
    """One profiled invocation; top ``top_n`` cumulative-time entries.

    Runs *after* the timing loop so the profiler's overhead never
    contaminates the recorded samples.
    """
    import cProfile
    import io
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        thunk()
    finally:
        profiler.disable()
    buffer = io.StringIO()
    pstats.Stats(profiler, stream=buffer).sort_stats("cumulative").print_stats(
        top_n
    )
    return [line.rstrip() for line in buffer.getvalue().splitlines() if line.strip()]


def run_bench(
    *,
    smoke: bool = False,
    repeats: int = DEFAULT_REPEATS,
    with_reference: bool = True,
    only: Sequence[str] | None = None,
    backend: str | None = None,
    batch_size: int = DEFAULT_BATCH,
    profile: int | None = None,
    progress: Callable[[str], None] | None = None,
) -> dict:
    """Time every registered workload and return the report dict.

    ``only`` restricts the run to a subset of workload names;
    ``with_reference=False`` skips the pre-optimisation variants (halves
    runtime, but the report then carries no speedup figures);
    ``backend`` / ``batch_size`` reach the workload builds as
    :class:`BenchOptions`; ``profile=N`` additionally runs each
    optimised thunk once under :mod:`cProfile` after timing and stores
    the top-``N`` cumulative entries in the workload's ``profile``
    field; ``progress`` receives one line per finished workload.
    """
    if repeats < 1:
        raise ConfigurationError(f"repeats must be >= 1, got {repeats}")
    if batch_size < 1:
        raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
    if profile is not None and profile < 1:
        raise ConfigurationError(f"profile must be >= 1, got {profile}")
    options = BenchOptions(smoke=smoke, backend=backend, batch_size=batch_size)
    selected = WORKLOADS
    if only is not None:
        known = {w.name: w for w in WORKLOADS}
        missing = [name for name in only if name not in known]
        if missing:
            raise ConfigurationError(
                f"unknown bench workloads {missing!r}; "
                f"choose from {sorted(known)}"
            )
        selected = tuple(known[name] for name in only)

    import numpy as np

    results: dict[str, dict] = {}
    for workload in selected:
        run, run_reference = workload.build(options)
        entry = dict(_time_thunk(run, repeats))
        entry["description"] = workload.description
        if with_reference and run_reference is not None:
            reference = _time_thunk(run_reference, repeats)
            entry["reference_best_s"] = reference["best_s"]
            entry["reference_median_s"] = reference["median_s"]
            entry["speedup"] = reference["best_s"] / entry["best_s"]
        if profile is not None:
            entry["profile"] = _profile_thunk(run, profile)
        # Workloads may attach a ``bench_extra`` callable to the run
        # thunk to publish headline figures beyond wall-clock (the
        # serve-load workload records its requests/s and latency
        # percentiles this way).
        extra_fn = getattr(run, "bench_extra", None)
        if callable(extra_fn):
            entry["extra"] = extra_fn()
        results[workload.name] = entry
        if progress is not None:
            speedup = entry.get("speedup")
            note = f"  ({speedup:.2f}x vs reference)" if speedup else ""
            progress(
                f"{workload.name:<28} best {entry['best_s'] * 1e3:9.3f} ms"
                f"{note}"
            )

    return {
        "schema": SCHEMA,
        "smoke": smoke,
        "repeats": repeats,
        "env": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
            "machine": platform.machine(),
        },
        "results": results,
    }


def load_report(path: str) -> dict:
    with open(path, encoding="utf-8") as handle:
        report = json.load(handle)
    if report.get("schema") != SCHEMA:
        raise ConfigurationError(
            f"{path}: not a {SCHEMA} report "
            f"(schema={report.get('schema')!r})"
        )
    return report


def write_report(report: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def compare_reports(
    current: dict, baseline: dict, tolerance: float = DEFAULT_TOLERANCE
) -> list[str]:
    """Regression messages for every tracked workload that got slower.

    A workload regresses when ``current best_s > baseline best_s *
    (1 + tolerance)``; workloads present in the baseline but missing
    from the current run are regressions too (a deleted workload must
    be removed from the baseline deliberately).  Comparing a smoke
    report against a full one (or vice versa) is a configuration error.
    """
    if tolerance < 0:
        raise ConfigurationError(f"tolerance must be >= 0, got {tolerance}")
    if bool(current.get("smoke")) != bool(baseline.get("smoke")):
        raise ConfigurationError(
            "cannot compare reports with different smoke flags "
            f"(current smoke={bool(current.get('smoke'))}, "
            f"baseline smoke={bool(baseline.get('smoke'))})"
        )
    regressions: list[str] = []
    current_results = current.get("results", {})
    for name, base in baseline.get("results", {}).items():
        entry = current_results.get(name)
        if entry is None:
            regressions.append(f"{name}: missing from current run")
            continue
        limit = base["best_s"] * (1.0 + tolerance)
        if entry["best_s"] > limit:
            regressions.append(
                f"{name}: best {entry['best_s'] * 1e3:.3f} ms exceeds "
                f"baseline {base['best_s'] * 1e3:.3f} ms "
                f"x {1.0 + tolerance:.2f} = {limit * 1e3:.3f} ms"
            )
    return regressions


def compare_speedups(
    current: dict, baseline: dict, tolerance: float = DEFAULT_SPEEDUP_TOLERANCE
) -> list[str]:
    """Regression messages for shrunken optimised-vs-reference ratios.

    Only workloads carrying a ``speedup`` figure in the baseline are
    gated: a workload regresses when its current ratio drops below
    ``baseline speedup * (1 - tolerance)`` — or when its current run
    lost the reference timing entirely.  Because both variants run on
    the same machine in the same process, the ratio divides out
    absolute hardware speed, making this gate stable on heterogeneous
    CI runners where :func:`compare_reports`' wall-clock bound is not.
    Smoke/full reports remain incomparable, as with
    :func:`compare_reports`.
    """
    if not 0 <= tolerance < 1:
        raise ConfigurationError(
            f"tolerance must be in [0, 1), got {tolerance}"
        )
    if bool(current.get("smoke")) != bool(baseline.get("smoke")):
        raise ConfigurationError(
            "cannot compare reports with different smoke flags "
            f"(current smoke={bool(current.get('smoke'))}, "
            f"baseline smoke={bool(baseline.get('smoke'))})"
        )
    regressions: list[str] = []
    current_results = current.get("results", {})
    for name, base in baseline.get("results", {}).items():
        base_speedup = base.get("speedup")
        if base_speedup is None:
            continue
        entry = current_results.get(name)
        if entry is None:
            regressions.append(f"{name}: missing from current run")
            continue
        speedup = entry.get("speedup")
        if speedup is None:
            regressions.append(
                f"{name}: current run carries no reference timing "
                f"(baseline speedup {base_speedup:.2f}x)"
            )
            continue
        floor = base_speedup * (1.0 - tolerance)
        if speedup < floor:
            regressions.append(
                f"{name}: speedup {speedup:.2f}x fell below baseline "
                f"{base_speedup:.2f}x x {1.0 - tolerance:.2f} = {floor:.2f}x"
            )
    return regressions


def format_report(report: dict) -> str:
    """Human-readable table of one report."""
    lines = [
        f"bench report  (smoke={report['smoke']}, repeats={report['repeats']}, "
        f"python {report['env']['python']}, numpy {report['env']['numpy']})",
        f"{'workload':<28} {'best':>12} {'median':>12} "
        f"{'reference':>12} {'speedup':>8}",
    ]
    for name, entry in sorted(report["results"].items()):
        reference = entry.get("reference_best_s")
        lines.append(
            f"{name:<28} {entry['best_s'] * 1e3:>9.3f} ms "
            f"{entry['median_s'] * 1e3:>9.3f} ms "
            + (
                f"{reference * 1e3:>9.3f} ms {entry['speedup']:>7.2f}x"
                if reference is not None
                else f"{'-':>12} {'-':>8}"
            )
        )
    for name, entry in sorted(report["results"].items()):
        extra = entry.get("extra") or {}
        if extra.get("requests_per_s") is not None:
            latency = extra.get("latency_ms", {})
            lines.append(
                f"{name}: {extra['requests_per_s']:.1f} requests/s "
                f"(p50 {latency.get('p50', 0):.3f} ms, "
                f"p95 {latency.get('p95', 0):.3f} ms, "
                f"{extra.get('cached', 0)} cached)"
            )
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:  # pragma: no cover
    """Allow ``python -m repro.bench`` as a thin alias of ``repro bench``."""
    from repro.cli import main as cli_main

    return cli_main(["bench", *(argv if argv is not None else sys.argv[1:])])


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

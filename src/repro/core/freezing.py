"""Freeze policies — which machine the iterative technique locks in.

The paper always freezes the *makespan machine* (Section 2).  Because
it also notes that "there are different ways to capture the concept of
minimizing the finishing times of a set of heterogeneous machines"
(average finishing time, largest finishing time, ...), this module
makes the freezing decision pluggable so those design alternatives can
be evaluated as ablations (see ``benchmarks/test_bench_ablations`` and
``test_bench_freeze_policies``):

* :func:`makespan_machine_policy` — the paper's rule (default);
* :func:`earliest_finish_policy` — the dual: lock in the *best*
  machine each round, keeping the heavy machines in play for
  re-balancing;
* :func:`most_loaded_policy` — freeze the machine with the most
  *assigned work* (finish minus initial ready); identical to the
  makespan rule at zero ready times, different otherwise.

A freeze policy is any callable ``(mapping, tie_breaker) -> machine
label``; ties inside a policy go through the supplied tie breaker so
deterministic runs stay deterministic.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.core.schedule import Mapping
from repro.core.ties import TieBreaker, tied_argmax, tied_argmin

__all__ = [
    "FreezePolicy",
    "makespan_machine_policy",
    "earliest_finish_policy",
    "most_loaded_policy",
    "FREEZE_POLICIES",
]

FreezePolicy = Callable[[Mapping, TieBreaker], str]


def makespan_machine_policy(mapping: Mapping, tie_breaker: TieBreaker) -> str:
    """The paper's rule: freeze the machine with the largest finish."""
    return mapping.makespan_machine(tie_breaker)


def earliest_finish_policy(mapping: Mapping, tie_breaker: TieBreaker) -> str:
    """Freeze the machine with the *smallest* finishing time."""
    finish = mapping.finish_time_vector()
    idx = tie_breaker.choose(tied_argmin(finish))
    return mapping.machines[idx]


def most_loaded_policy(mapping: Mapping, tie_breaker: TieBreaker) -> str:
    """Freeze the machine carrying the most assigned work."""
    load = mapping.finish_time_vector() - mapping.initial_ready_times()
    idx = tie_breaker.choose(tied_argmax(load))
    return mapping.machines[idx]


#: Named registry for CLI/bench parameterisation.
FREEZE_POLICIES: dict[str, FreezePolicy] = {
    "makespan": makespan_machine_policy,
    "earliest-finish": earliest_finish_policy,
    "most-loaded": most_loaded_policy,
}

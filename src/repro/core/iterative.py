"""The paper's contribution: the iterative non-makespan minimisation technique.

From Section 2:

    "For each heuristic, the mapping it produces when all tasks and
    machines are available is called the *original mapping*.  After each
    iteration, the makespan machine and the tasks assigned to it are
    removed from consideration, and the ready times for all other
    machines are reset to their initial ready times.  The tasks that are
    available for mapping are mapped again, using the same heuristic to
    minimise makespan among the remaining machines; this mapping is
    called the *iterative mapping*.  This iterative process is repeated
    until only one machine remains."

Each machine's *final finishing time* under the technique is the
completion time it had in the iteration in which it was frozen (i.e.
was the makespan machine), or — for machines never frozen because the
task pool emptied — its initial ready time once no tasks remain.
"""

from __future__ import annotations

from collections.abc import Mapping as MappingABC
from collections.abc import Sequence
from dataclasses import dataclass, field


from repro.core.schedule import Mapping, ready_time_vector
from repro.core.ties import DeterministicTieBreaker, TieBreaker
from repro.etc.matrix import ETCMatrix
from repro.exceptions import ConfigurationError
from repro.heuristics.base import Heuristic
from repro.obs.tracer import get_tracer

__all__ = ["IterationRecord", "IterativeResult", "IterativeScheduler"]


@dataclass(frozen=True)
class IterationRecord:
    """One iteration of the technique.

    ``index`` 0 is the original mapping.  ``frozen_machine`` is the
    makespan machine of this iteration's mapping (removed before the
    next iteration, together with ``frozen_tasks``).
    """

    index: int
    etc: ETCMatrix
    mapping: Mapping
    makespan: float
    frozen_machine: str
    frozen_tasks: tuple[str, ...]
    #: Snapshot of the heuristic's decision trace for this iteration
    #: (``last_trace`` of SWA/KPB/Sufferage; ``None`` for others).
    trace: object | None = None

    @property
    def machines(self) -> tuple[str, ...]:
        """Machines considered in this iteration."""
        return self.etc.machines

    def finish_times(self) -> dict[str, float]:
        """Finishing times of the machines considered in this iteration."""
        return self.mapping.machine_finish_times()


@dataclass(frozen=True)
class IterativeResult:
    """Full trace of an iterative run.

    ``final_finish_times`` maps every machine of the input ETC matrix to
    its finishing time under the technique (see module docstring).

    ``removal_order`` lists machines in the order they were frozen —
    exactly one per iteration record, so
    ``removal_order[i] == iterations[i].frozen_machine`` and
    ``len(removal_order) == num_iterations`` always hold.

    ``unfrozen`` lists the machines that were *never* frozen, in input
    machine order: survivors of a run that stopped because the task pool
    emptied or because ``max_iterations`` capped it.  Together the two
    partition the machine set —
    ``set(removal_order) | set(unfrozen) == set(etc.machines)`` and the
    two are disjoint.  (Runs that freeze every machine have an empty
    ``unfrozen``.)
    """

    etc: ETCMatrix
    heuristic_name: str
    iterations: tuple[IterationRecord, ...]
    final_finish_times: dict[str, float]
    removal_order: tuple[str, ...]
    initial_ready_times: dict[str, float] = field(default_factory=dict)
    unfrozen: tuple[str, ...] = ()

    @property
    def original(self) -> IterationRecord:
        """Iteration 0 — the original mapping."""
        return self.iterations[0]

    @property
    def num_iterations(self) -> int:
        return len(self.iterations)

    def finish_time(self, machine: str) -> float:
        return self.final_finish_times[machine]

    def makespans(self) -> tuple[float, ...]:
        """Makespan of each iteration's mapping, in iteration order."""
        return tuple(rec.makespan for rec in self.iterations)

    def makespan_increased(self, tol: float = 1e-9) -> bool:
        """True when some iteration's makespan exceeds its predecessor's.

        This is the phenomenon of the paper's examples: the first
        iterative mapping's makespan (over the remaining machines)
        exceeding the original mapping's makespan.
        """
        spans = self.makespans()
        return any(b > a + tol for a, b in zip(spans, spans[1:]))

    def original_finish_times(self) -> dict[str, float]:
        """Per-machine finishing times of the original mapping alone."""
        return self.original.finish_times()

    def improvements(self) -> dict[str, float]:
        """Per-machine improvement: original finish − iterative finish.

        Positive values mean the iterative technique made the machine
        available earlier (the paper's goal); negative values mean it
        got worse.
        """
        original = self.original_finish_times()
        return {
            m: original[m] - self.final_finish_times[m] for m in self.etc.machines
        }

    def final_mapping(self) -> Mapping:
        """The technique's outcome as one executable :class:`Mapping`.

        Each frozen machine runs exactly the tasks it was frozen with
        (from its initial ready time — iterations reset ready times, so
        the composite's per-machine finishing times reproduce
        ``final_finish_times``); tasks still held by never-frozen
        survivors of a ``max_iterations``-capped run keep their
        last-iteration assignment.  Exhausted-pool survivors run nothing.
        """
        assigned: dict[str, str] = {}
        for rec in self.iterations:
            for task in rec.frozen_tasks:
                assigned[task] = rec.frozen_machine
        last = self.iterations[-1]
        for a in last.mapping.assignments:
            assigned.setdefault(a.task, a.machine)
        ready = [self.initial_ready_times.get(m, 0.0) for m in self.etc.machines]
        mapping = Mapping(self.etc, ready)
        for task in self.etc.tasks:
            mapping.assign(task, assigned[task])
        return mapping

    def mapping_changed(self) -> bool:
        """Whether any iteration re-mapped a task differently.

        Compares each iteration's assignments against the original
        mapping restricted to that iteration's task set — false for
        every deterministic run of Min-Min/MCT/MET per the paper's
        theorems.
        """
        original = self.original.mapping.to_dict()
        for rec in self.iterations[1:]:
            for assignment in rec.mapping.assignments:
                if original[assignment.task] != assignment.machine:
                    return True
        return False


class IterativeScheduler:
    """Runs a heuristic under the iterative technique.

    Parameters
    ----------
    heuristic:
        Any :class:`~repro.heuristics.base.Heuristic`.
    tie_breaker:
        Tie policy forwarded to the heuristic at every iteration.
    makespan_tie_breaker:
        Policy for choosing the makespan machine itself when finishing
        times tie (default deterministic lowest index, so runs are
        reproducible; the paper never exercises this tie).
    freeze_policy:
        Which machine to freeze each iteration — a callable
        ``(mapping, tie_breaker) -> machine`` (see
        :mod:`repro.core.freezing`).  Default: the paper's makespan
        machine rule.
    seed_across_iterations:
        When true (default) and the heuristic supports seeding
        (Genitor), each iteration's population is seeded with the
        previous mapping restricted to the surviving tasks/machines —
        the mechanism behind the paper's "improvement or no change"
        guarantee for Genitor (Section 3.1).
    """

    def __init__(
        self,
        heuristic: Heuristic,
        tie_breaker: TieBreaker | None = None,
        makespan_tie_breaker: TieBreaker | None = None,
        seed_across_iterations: bool = True,
        freeze_policy=None,
    ) -> None:
        self.heuristic = heuristic
        self.tie_breaker = tie_breaker or DeterministicTieBreaker()
        self.makespan_tie_breaker = makespan_tie_breaker or DeterministicTieBreaker()
        self.seed_across_iterations = bool(seed_across_iterations)
        self.freeze_policy = freeze_policy

    def run(
        self,
        etc: ETCMatrix,
        ready_times: MappingABC[str, float] | Sequence[float] | None = None,
        max_iterations: int | None = None,
    ) -> IterativeResult:
        """Execute the technique until one machine remains (or no tasks).

        ``max_iterations`` optionally caps the number of iterations
        (including the original mapping); ``None`` runs to completion.
        """
        if max_iterations is not None and max_iterations < 1:
            raise ConfigurationError(
                f"max_iterations must be >= 1, got {max_iterations}"
            )
        initial_ready = ready_time_vector(etc, ready_times)
        ready_by_machine = dict(zip(etc.machines, initial_ready.tolist()))

        tracer = get_tracer()
        with tracer.span(
            "iterative.run",
            heuristic=self.heuristic.name,
            tasks=etc.num_tasks,
            machines=etc.num_machines,
        ):
            final_finish, removal_order, unfrozen, records = self._iterate(
                tracer, etc, ready_by_machine, max_iterations
            )

        return IterativeResult(
            etc=etc,
            heuristic_name=self.heuristic.name,
            iterations=tuple(records),
            final_finish_times=final_finish,
            removal_order=tuple(removal_order),
            initial_ready_times=dict(ready_by_machine),
            unfrozen=tuple(unfrozen),
        )

    def _iterate(
        self,
        tracer,
        current_etc: ETCMatrix,
        ready_by_machine: dict[str, float],
        max_iterations: int | None,
    ) -> tuple[dict[str, float], list[str], list[str], list[IterationRecord]]:
        """The freeze/remap loop of :meth:`run` (one call per run).

        Returns ``(final_finish, removal_order, unfrozen, records)``.
        ``removal_order`` holds exactly the frozen machines (one per
        record); never-frozen survivors land in ``unfrozen`` instead —
        see :class:`IterativeResult` for the contract.
        """
        records: list[IterationRecord] = []
        final_finish: dict[str, float] = {}
        removal_order: list[str] = []
        unfrozen: list[str] = []
        previous_mapping: Mapping | None = None

        while True:
            ready_vec = [ready_by_machine[m] for m in current_etc.machines]
            # Span-only phase: one timeline row per freeze/remap pass,
            # without adding events (the freeze event below is the
            # byte-identity-tested record of this iteration).
            with tracer.phase(
                "iterative.map",
                iteration=len(records),
                machines=current_etc.num_machines,
            ):
                mapping = self._map_iteration(
                    current_etc, ready_vec, previous_mapping
                )
            if self.freeze_policy is None:
                frozen_machine = mapping.makespan_machine(self.makespan_tie_breaker)
            else:
                frozen_machine = self.freeze_policy(
                    mapping, self.makespan_tie_breaker
                )
                current_etc.machine_index(frozen_machine)  # validate
            frozen_tasks = mapping.machine_tasks(frozen_machine)
            records.append(
                IterationRecord(
                    index=len(records),
                    etc=current_etc,
                    mapping=mapping,
                    makespan=mapping.makespan(),
                    frozen_machine=frozen_machine,
                    frozen_tasks=frozen_tasks,
                    trace=getattr(self.heuristic, "last_trace", None),
                )
            )
            final_finish[frozen_machine] = mapping.ready_time(frozen_machine)
            removal_order.append(frozen_machine)
            if tracer.enabled:
                tracer.event(
                    "iterative.freeze",
                    iteration=len(records) - 1,
                    frozen_machine=frozen_machine,
                    frozen_tasks=frozen_tasks,
                    makespan=records[-1].makespan,
                    machines_remaining=current_etc.num_machines - 1,
                )
                tracer.count("iterations")
                tracer.observe("iterative.freeze_depth", len(records) - 1)
                tracer.observe("iterative.frozen_tasks", len(frozen_tasks))

            survivors = tuple(
                m for m in current_etc.machines if m != frozen_machine
            )
            last_allowed = (
                max_iterations is not None and len(records) >= max_iterations
            )
            if current_etc.num_machines == 1 or last_allowed:
                # Never-frozen survivors keep this iteration's finishing
                # times; they were not frozen, so they do not join the
                # removal order.
                for m in survivors:
                    final_finish[m] = mapping.ready_time(m)
                unfrozen.extend(survivors)
                break

            # Build the membership set once per iteration, not once per
            # element — frozen_tasks grows every round, so the inline
            # ``set(...)`` made this comprehension O(T^2) per iteration.
            frozen = set(frozen_tasks)
            surviving_tasks = [t for t in current_etc.tasks if t not in frozen]
            if not surviving_tasks:
                # Task pool exhausted: survivors never run anything and
                # finish at their initial ready times.
                for m in survivors:
                    final_finish[m] = ready_by_machine[m]
                unfrozen.extend(survivors)
                if tracer.enabled and survivors:
                    tracer.event(
                        "iterative.exhausted",
                        iteration=len(records) - 1,
                        survivors=survivors,
                    )
                break

            previous_mapping = mapping
            # One trusted restriction per freeze step: drops the frozen
            # machine and its tasks in a single pass over the validated
            # parent buffer (no re-validation, no intermediate matrix).
            current_etc = current_etc.without_machine(frozen_machine, frozen_tasks)

        return final_finish, removal_order, unfrozen, records

    # ------------------------------------------------------------------
    def _map_iteration(
        self,
        current_etc: ETCMatrix,
        ready_vec: Sequence[float],
        previous_mapping: Mapping | None,
    ) -> Mapping:
        """Produce one iteration's mapping (hook for seeded variants)."""
        seed = self._seed_for(previous_mapping, current_etc)
        return self.heuristic.map_tasks(
            current_etc,
            ready_vec,
            self.tie_breaker,
            seed_mapping=seed,
        )

    def _seed_for(
        self, previous: Mapping | None, current_etc: ETCMatrix
    ) -> dict[str, str] | None:
        """Previous mapping restricted to surviving tasks, if applicable."""
        if (
            previous is None
            or not self.seed_across_iterations
            or not self.heuristic.supports_seeding
        ):
            return None
        return {
            a.task: a.machine
            for a in previous.assignments
            if current_etc.has_task(a.task) and current_etc.has_machine(a.machine)
        }

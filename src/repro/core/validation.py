"""Structural validation of mappings and iterative results.

Beyond the cheap invariants :class:`~repro.core.schedule.Mapping`
enforces during construction, these checks *recompute* everything from
the raw ETC matrix and fail loudly on any inconsistency — the tests and
the property-based suites run every heuristic's output through them.
"""

from __future__ import annotations

import math

from repro.core.iterative import IterativeResult
from repro.core.schedule import Mapping
from repro.exceptions import MappingError

__all__ = ["validate_mapping", "validate_iterative_result"]

_TOL = 1e-9


def validate_mapping(mapping: Mapping) -> None:
    """Recompute the full schedule and check every Mapping invariant.

    Raises :class:`MappingError` when: a task is missing or duplicated,
    an assignment's start time does not equal the machine's ready time
    at that point, a completion time violates Eq. (1), or the stored
    finishing times disagree with the recomputation.
    """
    etc = mapping.etc
    seen: set[str] = set()
    ready = {m: t for m, t in zip(etc.machines, mapping.initial_ready_times())}
    for a in mapping.assignments:
        if a.task in seen:
            raise MappingError(f"task {a.task!r} assigned more than once")
        seen.add(a.task)
        if not etc.has_task(a.task):
            raise MappingError(f"assignment references unknown task {a.task!r}")
        if not etc.has_machine(a.machine):
            raise MappingError(f"assignment references unknown machine {a.machine!r}")
        if not math.isclose(a.start, ready[a.machine], rel_tol=_TOL, abs_tol=_TOL):
            raise MappingError(
                f"task {a.task!r} starts at {a.start}, but machine "
                f"{a.machine!r} is ready at {ready[a.machine]}"
            )
        expected = a.start + etc.etc(a.task, a.machine)
        if not math.isclose(a.completion, expected, rel_tol=_TOL, abs_tol=_TOL):
            raise MappingError(
                f"task {a.task!r} completion {a.completion} != Eq.(1) value {expected}"
            )
        ready[a.machine] = a.completion
    if mapping.is_complete() and seen != set(etc.tasks):
        raise MappingError("complete mapping does not cover the task set")
    finish = mapping.machine_finish_times()
    for m in etc.machines:
        if not math.isclose(finish[m], ready[m], rel_tol=_TOL, abs_tol=_TOL):
            raise MappingError(
                f"machine {m!r} finish time {finish[m]} != recomputed {ready[m]}"
            )


def validate_iterative_result(result: IterativeResult) -> None:
    """Check the cross-iteration invariants of an iterative run.

    * each iteration's mapping validates on its own;
    * each iteration's machine set is the previous one minus the frozen
      machine, and its task set is the previous one minus the frozen
      tasks;
    * every machine of the instance has exactly one final finishing
      time, equal to its finishing time in the iteration that froze it;
    * the removal order matches the iteration records exactly (one
      frozen machine per record), and the never-frozen survivors in
      ``unfrozen`` partition the machine set together with it.
    """
    etc = result.etc
    if set(result.final_finish_times) != set(etc.machines):
        raise MappingError("final finishing times do not cover the machine set")

    previous = None
    for rec in result.iterations:
        validate_mapping(rec.mapping)
        if not rec.mapping.is_complete():
            raise MappingError(f"iteration {rec.index} left tasks unmapped")
        if previous is not None:
            expected_machines = tuple(
                m for m in previous.etc.machines if m != previous.frozen_machine
            )
            if rec.etc.machines != expected_machines:
                raise MappingError(
                    f"iteration {rec.index} machine set {rec.etc.machines} != "
                    f"expected {expected_machines}"
                )
            expected_tasks = tuple(
                t for t in previous.etc.tasks if t not in set(previous.frozen_tasks)
            )
            if rec.etc.tasks != expected_tasks:
                raise MappingError(
                    f"iteration {rec.index} task set mismatch: {rec.etc.tasks} != "
                    f"{expected_tasks}"
                )
            if not math.isclose(rec.makespan, rec.mapping.makespan(), rel_tol=_TOL):
                raise MappingError(f"iteration {rec.index} stored stale makespan")
        frozen_finish = rec.mapping.ready_time(rec.frozen_machine)
        stored = result.final_finish_times[rec.frozen_machine]
        if not math.isclose(stored, frozen_finish, rel_tol=_TOL, abs_tol=_TOL):
            raise MappingError(
                f"frozen machine {rec.frozen_machine!r} final finish {stored} != "
                f"its iteration finish {frozen_finish}"
            )
        previous = rec

    if len(result.removal_order) != len(result.iterations):
        raise MappingError(
            f"removal order has {len(result.removal_order)} machines for "
            f"{len(result.iterations)} iterations (must be one per record)"
        )
    for machine, rec_machine in zip(result.removal_order, result.iterations):
        if rec_machine.frozen_machine != machine:
            raise MappingError(
                f"removal order {result.removal_order} disagrees with records"
            )
    frozen_set = set(result.removal_order)
    unfrozen_set = set(result.unfrozen)
    if frozen_set & unfrozen_set:
        raise MappingError(
            f"machines {sorted(frozen_set & unfrozen_set)} appear both "
            "frozen and unfrozen"
        )
    if frozen_set | unfrozen_set != set(etc.machines):
        raise MappingError(
            "removal order and unfrozen survivors do not partition the "
            f"machine set: {result.removal_order} + {result.unfrozen} vs "
            f"{etc.machines}"
        )

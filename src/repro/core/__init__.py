"""Scheduling core: mappings, tie-breaking, the iterative technique."""

from repro.core.freezing import (
    FREEZE_POLICIES,
    FreezePolicy,
    earliest_finish_policy,
    makespan_machine_policy,
    most_loaded_policy,
)
from repro.core.iterative import IterationRecord, IterativeResult, IterativeScheduler
from repro.core.metrics import (
    IterativeComparison,
    MachineComparison,
    average_finish_time,
    compare_iterative,
    finish_time_vector,
    makespan,
    total_finish_time,
)
from repro.core.schedule import (
    Assignment,
    Mapping,
    finish_times_for_vector,
    ready_time_vector,
)
from repro.core.seeding import SeededIterativeScheduler, replay_mapping
from repro.core.ties import (
    DeterministicTieBreaker,
    RandomTieBreaker,
    ScriptedTieBreaker,
    TieBreaker,
    make_tie_breaker,
    tied_argmax,
    tied_argmin,
    tied_indices,
)
from repro.core.validation import validate_iterative_result, validate_mapping

__all__ = [
    "Assignment",
    "Mapping",
    "ready_time_vector",
    "finish_times_for_vector",
    "TieBreaker",
    "DeterministicTieBreaker",
    "RandomTieBreaker",
    "ScriptedTieBreaker",
    "make_tie_breaker",
    "tied_indices",
    "tied_argmin",
    "tied_argmax",
    "IterativeScheduler",
    "IterationRecord",
    "IterativeResult",
    "FreezePolicy",
    "FREEZE_POLICIES",
    "makespan_machine_policy",
    "earliest_finish_policy",
    "most_loaded_policy",
    "SeededIterativeScheduler",
    "replay_mapping",
    "makespan",
    "average_finish_time",
    "total_finish_time",
    "finish_time_vector",
    "MachineComparison",
    "IterativeComparison",
    "compare_iterative",
    "validate_mapping",
    "validate_iterative_result",
]

"""Metrics over mappings and iterative results (paper Sections 1–2).

The paper names several ways to "capture the concept of minimising the
finishing times of a set of heterogeneous machines": the makespan, the
average finishing time, and the full per-machine finishing-time vector.
All are provided here, together with comparison helpers used by the
statistical study.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.iterative import IterativeResult
from repro.core.schedule import Mapping

__all__ = [
    "makespan",
    "average_finish_time",
    "total_finish_time",
    "finish_time_vector",
    "MachineComparison",
    "IterativeComparison",
    "compare_iterative",
]


def makespan(mapping: Mapping) -> float:
    """Largest machine finishing time of a mapping."""
    return mapping.makespan()


def average_finish_time(mapping: Mapping) -> float:
    """Mean machine finishing time — one of the paper's alternative
    objectives for the non-makespan machines."""
    return float(mapping.finish_time_vector().mean())


def total_finish_time(mapping: Mapping) -> float:
    """Sum of machine finishing times."""
    return float(mapping.finish_time_vector().sum())


def finish_time_vector(mapping: Mapping) -> np.ndarray:
    """Finishing times in machine order (copy)."""
    return mapping.finish_time_vector()


@dataclass(frozen=True)
class MachineComparison:
    """Original vs iterative finishing time of one machine."""

    machine: str
    original: float
    iterative: float

    @property
    def delta(self) -> float:
        """original − iterative; positive = the machine finishes earlier."""
        return self.original - self.iterative

    @property
    def improved(self) -> bool:
        return self.delta > 1e-9

    @property
    def worsened(self) -> bool:
        return self.delta < -1e-9


@dataclass(frozen=True)
class IterativeComparison:
    """Aggregate original-vs-iterative comparison for one run.

    ``machines`` covers every machine of the instance; the makespan
    machine of the original mapping always has ``delta == 0`` (it is
    frozen with its original completion time).
    """

    heuristic: str
    machines: tuple[MachineComparison, ...]
    original_makespan: float
    final_makespan: float
    makespan_increased: bool
    mapping_changed: bool

    @property
    def num_improved(self) -> int:
        return sum(1 for m in self.machines if m.improved)

    @property
    def num_worsened(self) -> int:
        return sum(1 for m in self.machines if m.worsened)

    @property
    def num_unchanged(self) -> int:
        return len(self.machines) - self.num_improved - self.num_worsened

    @property
    def mean_delta(self) -> float:
        """Mean finishing-time improvement across machines."""
        return float(np.mean([m.delta for m in self.machines]))

    @property
    def average_finish_original(self) -> float:
        return float(np.mean([m.original for m in self.machines]))

    @property
    def average_finish_iterative(self) -> float:
        return float(np.mean([m.iterative for m in self.machines]))


def compare_iterative(result: IterativeResult) -> IterativeComparison:
    """Summarise an :class:`IterativeResult` against its original mapping."""
    original = result.original_finish_times()
    machines = tuple(
        MachineComparison(
            machine=m,
            original=original[m],
            iterative=result.final_finish_times[m],
        )
        for m in result.etc.machines
    )
    return IterativeComparison(
        heuristic=result.heuristic_name,
        machines=machines,
        original_makespan=result.original.makespan,
        final_makespan=max(result.final_finish_times.values()),
        makespan_increased=result.makespan_increased(),
        mapping_changed=result.mapping_changed(),
    )

"""Seeded iterative scheduling — the paper's proposed extension.

From the conclusions (Section 5):

    "Implementing a form of seeding similar to Genitor's seeding to
    other heuristics would guarantee that a heuristic can never increase
    makespan from one iteration to the next.  This would cause the best
    solutions to be preserved across iterations, thus changing the
    mapping only if a better mapping is found."

:class:`SeededIterativeScheduler` grafts exactly that onto *any*
heuristic: at every iteration it runs the heuristic fresh, then compares
the fresh mapping's makespan against the previous iteration's mapping
restricted to the surviving tasks/machines; the restriction is kept
unless the fresh mapping is strictly better.  Makespans across
iterations are therefore monotone non-increasing by construction (the
restriction of a mapping after removing its makespan machine can only
have a smaller-or-equal makespan).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.iterative import IterativeScheduler
from repro.core.schedule import Mapping
from repro.etc.matrix import ETCMatrix

__all__ = ["SeededIterativeScheduler", "replay_mapping"]


def replay_mapping(
    etc: ETCMatrix,
    ready_times: Sequence[float] | None,
    assignments: dict[str, str],
) -> Mapping:
    """Build a :class:`Mapping` over ``etc`` from a ``{task: machine}`` dict.

    Tasks are committed in ETC row order (per-machine finishing times do
    not depend on intra-machine order, so the restriction keeps the same
    finishing-time vector as the mapping it was derived from).
    """
    mapping = Mapping(etc, ready_times)
    for task in etc.tasks:
        mapping.assign(task, assignments[task])
    return mapping


class SeededIterativeScheduler(IterativeScheduler):
    """Iterative scheduler that never lets an iteration's makespan grow.

    Works with every heuristic (not just Genitor): the previous
    iteration's restricted mapping acts as the incumbent, and the
    heuristic's fresh proposal replaces it only on strict improvement.
    Ties keep the incumbent, so deterministic heuristics whose mappings
    are iteration-invariant (Min-Min/MCT/MET) behave identically with
    and without seeding.
    """

    def _map_iteration(
        self,
        current_etc: ETCMatrix,
        ready_vec: Sequence[float],
        previous_mapping: Mapping | None,
    ) -> Mapping:
        fresh = super()._map_iteration(current_etc, ready_vec, previous_mapping)
        if previous_mapping is None:
            return fresh
        incumbent_assignments = {
            a.task: a.machine
            for a in previous_mapping.assignments
            if current_etc.has_task(a.task)
        }
        # The previous makespan machine is gone, so every surviving task
        # still has its machine; replay the restriction as the incumbent.
        if set(incumbent_assignments) != set(current_etc.tasks) or not all(
            current_etc.has_machine(m) for m in incumbent_assignments.values()
        ):
            # Defensive: incumbent not replayable (should not occur in
            # the standard protocol) — fall back to the fresh mapping.
            return fresh
        incumbent = replay_mapping(current_etc, ready_vec, incumbent_assignments)
        return fresh if fresh.makespan() < incumbent.makespan() else incumbent

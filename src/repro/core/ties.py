"""Tie-breaking policies.

Whether the iterative approach changes a mapping "often depends on how
ties are broken within a heuristic" (paper Section 2).  The paper studies
two families, both implemented here:

* **deterministic** — e.g. always the lowest-index (oldest) candidate,
  so re-running a heuristic on identical state reproduces the decision;
* **random** — each tied candidate is equally likely; decisions are
  drawn from a seeded :class:`numpy.random.Generator` so experiments
  stay reproducible.

Ties between floating-point completion times are detected with a
combined relative/absolute tolerance, matching the exact-decimal
arithmetic of the paper's examples while staying robust on generated
instances.
"""

from __future__ import annotations

import abc
from collections.abc import Sequence

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = [
    "DEFAULT_REL_TOL",
    "DEFAULT_ABS_TOL",
    "tied_indices",
    "tied_argmin",
    "tied_argmax",
    "TieBreaker",
    "DeterministicTieBreaker",
    "RandomTieBreaker",
    "make_tie_breaker",
]

#: Default relative tolerance for declaring two times tied.
DEFAULT_REL_TOL = 1e-9
#: Default absolute tolerance for declaring two times tied.
DEFAULT_ABS_TOL = 1e-12


def tied_indices(
    values: np.ndarray | Sequence[float],
    target: float,
    rel_tol: float = DEFAULT_REL_TOL,
    abs_tol: float = DEFAULT_ABS_TOL,
) -> np.ndarray:
    """Indices of ``values`` tied with ``target`` under the tolerance."""
    arr = np.asarray(values, dtype=np.float64)
    tol = np.maximum(abs_tol, rel_tol * np.maximum(np.abs(arr), abs(target)))
    return np.flatnonzero(np.abs(arr - target) <= tol)


def tied_argmin(
    values: np.ndarray | Sequence[float],
    rel_tol: float = DEFAULT_REL_TOL,
    abs_tol: float = DEFAULT_ABS_TOL,
) -> np.ndarray:
    """All indices attaining (within tolerance) the minimum of ``values``."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ConfigurationError("tied_argmin of empty array")
    return tied_indices(arr, float(arr.min()), rel_tol, abs_tol)


def tied_argmax(
    values: np.ndarray | Sequence[float],
    rel_tol: float = DEFAULT_REL_TOL,
    abs_tol: float = DEFAULT_ABS_TOL,
) -> np.ndarray:
    """All indices attaining (within tolerance) the maximum of ``values``."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ConfigurationError("tied_argmax of empty array")
    return tied_indices(arr, float(arr.max()), rel_tol, abs_tol)


class TieBreaker(abc.ABC):
    """Strategy object selecting one index from a tied candidate set."""

    #: True when the policy always returns the same choice for the same
    #: candidate set — the property the paper's invariance theorems need.
    deterministic: bool = True

    @abc.abstractmethod
    def choose(self, candidates: np.ndarray | Sequence[int]) -> int:
        """Select one element from a non-empty candidate index set."""

    def argmin(
        self,
        values: np.ndarray | Sequence[float],
        rel_tol: float = DEFAULT_REL_TOL,
        abs_tol: float = DEFAULT_ABS_TOL,
    ) -> int:
        """Index of the minimum of ``values``, ties resolved by policy."""
        return self.choose(tied_argmin(values, rel_tol, abs_tol))

    def argmax(
        self,
        values: np.ndarray | Sequence[float],
        rel_tol: float = DEFAULT_REL_TOL,
        abs_tol: float = DEFAULT_ABS_TOL,
    ) -> int:
        """Index of the maximum of ``values``, ties resolved by policy."""
        return self.choose(tied_argmax(values, rel_tol, abs_tol))


class DeterministicTieBreaker(TieBreaker):
    """Always pick the lowest-index candidate ("the oldest is chosen").

    This is the paper's deterministic policy: with a fixed task list and
    fixed machine ordering, the lowest index is the oldest task / the
    machine with the lowest reference number.
    """

    deterministic = True

    def choose(self, candidates: np.ndarray | Sequence[int]) -> int:
        arr = np.asarray(candidates)
        if arr.size == 0:
            raise ConfigurationError("cannot break a tie among zero candidates")
        return int(arr.min())

    def __repr__(self) -> str:
        return "DeterministicTieBreaker()"


class RandomTieBreaker(TieBreaker):
    """Pick uniformly at random among tied candidates (seeded).

    With two tied machines "each will have a 0.5 probability of being
    chosen" (paper Section 2).
    """

    deterministic = False

    def __init__(self, rng: np.random.Generator | int | None = None) -> None:
        self._rng = (
            rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        )

    @property
    def rng(self) -> np.random.Generator:
        return self._rng

    def choose(self, candidates: np.ndarray | Sequence[int]) -> int:
        arr = np.asarray(candidates)
        if arr.size == 0:
            raise ConfigurationError("cannot break a tie among zero candidates")
        if arr.size == 1:
            return int(arr[0])
        return int(self._rng.choice(arr))

    def __repr__(self) -> str:
        return "RandomTieBreaker()"


class ScriptedTieBreaker(TieBreaker):
    """Replay a fixed script of choices (testing/paper-example helper).

    Each time a *genuine* tie (two or more candidates) is met, the next
    scripted value is consumed; it may be an absolute index (must be
    among the candidates) and is validated loudly.  Singleton candidate
    sets do not consume script entries.  Once the script is exhausted,
    the lowest index is used.
    """

    deterministic = True

    def __init__(self, choices: Sequence[int]) -> None:
        self._choices = list(choices)
        self._cursor = 0

    def choose(self, candidates: np.ndarray | Sequence[int]) -> int:
        arr = np.asarray(candidates)
        if arr.size == 0:
            raise ConfigurationError("cannot break a tie among zero candidates")
        if arr.size == 1:
            return int(arr[0])
        if self._cursor < len(self._choices):
            pick = self._choices[self._cursor]
            self._cursor += 1
            if pick not in arr:
                raise ConfigurationError(
                    f"scripted choice {pick} not among tied candidates {arr.tolist()}"
                )
            return int(pick)
        return int(arr.min())

    @property
    def consumed(self) -> int:
        """How many scripted choices have been used so far."""
        return self._cursor

    def __repr__(self) -> str:
        return f"ScriptedTieBreaker(choices={self._choices!r}, consumed={self._cursor})"


__all__.append("ScriptedTieBreaker")


def make_tie_breaker(
    spec: str | TieBreaker,
    rng: np.random.Generator | int | None = None,
) -> TieBreaker:
    """Build a tie breaker from a spec string (``"deterministic"`` /
    ``"random"``) or pass an existing instance through."""
    if isinstance(spec, TieBreaker):
        return spec
    if spec == "deterministic":
        return DeterministicTieBreaker()
    if spec == "random":
        return RandomTieBreaker(rng)
    raise ConfigurationError(f"unknown tie breaker spec {spec!r}")

"""Mappings, ready times and completion times (paper Section 2).

A *mapping* assigns each task to one machine.  Machines execute their
tasks one at a time in assignment order starting from their *initial
ready time*; the completion time of a new task ``t`` on machine ``m`` is

    CT(t, m) = ETC(t, m) + RT(m)                         (paper Eq. 1)

where ``RT(m)`` is the machine's current ready time given the tasks
already assigned to it.  A machine's *finishing time* is its ready time
after all of its tasks; the *makespan* is the largest finishing time and
the *makespan machine* is the machine attaining it.
"""

from __future__ import annotations

from collections.abc import Mapping as MappingABC
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.ties import DeterministicTieBreaker, TieBreaker, tied_argmax
from repro.etc.matrix import ETCMatrix
from repro.exceptions import MappingError, UnmappedTaskError

__all__ = [
    "Assignment",
    "Mapping",
    "ready_time_vector",
    "finish_times_for_vector",
]


@dataclass(frozen=True)
class Assignment:
    """One task-to-machine assignment with its timing.

    ``order`` is the global position in the heuristic's assignment
    sequence (0-based); ``start`` is the machine ready time at assignment
    and ``completion = start + ETC(task, machine)``.
    """

    task: str
    machine: str
    start: float
    completion: float
    order: int


def ready_time_vector(
    etc: ETCMatrix,
    ready_times: MappingABC[str, float] | Sequence[float] | None,
) -> np.ndarray:
    """Normalise initial ready times to a float vector over ``etc.machines``.

    ``None`` means all zeros (the common simplifying assumption used in
    the paper's proofs and examples).
    """
    if ready_times is None:
        return np.zeros(etc.num_machines, dtype=np.float64)
    if isinstance(ready_times, MappingABC):
        unknown = set(ready_times) - set(etc.machines)
        if unknown:
            raise MappingError(f"ready times reference unknown machines {sorted(unknown)}")
        vec = np.array(
            [float(ready_times.get(m, 0.0)) for m in etc.machines], dtype=np.float64
        )
    else:
        vec = np.asarray(ready_times, dtype=np.float64)
        if vec.shape != (etc.num_machines,):
            raise MappingError(
                f"ready time vector has shape {vec.shape}, "
                f"expected ({etc.num_machines},)"
            )
        vec = vec.copy()
    if np.any(vec < 0) or not np.all(np.isfinite(vec)):
        raise MappingError("ready times must be finite and non-negative")
    return vec


class Mapping:
    """A (possibly partial) resource allocation under construction.

    Heuristics create a ``Mapping`` over a (restricted) ETC matrix and
    call :meth:`assign` once per task; the object maintains machine ready
    times incrementally so each ``CT`` query is O(1).

    The class intentionally supports *only* append-style construction —
    the heuristics in the paper never migrate an already-committed task
    (Sufferage's within-pass preemption is tentative state inside the
    heuristic, committed per pass).
    """

    __slots__ = (
        "_etc",
        "_initial_ready",
        "_ready",
        "_assignments",
        "_by_task",
        "_by_machine",
    )

    def __init__(
        self,
        etc: ETCMatrix,
        ready_times: MappingABC[str, float] | Sequence[float] | None = None,
    ) -> None:
        self._etc = etc
        self._initial_ready = ready_time_vector(etc, ready_times)
        self._ready = self._initial_ready.copy()
        self._assignments: list[Assignment] = []
        self._by_task: dict[str, Assignment] = {}
        # Per-machine task lists in assignment order, maintained by
        # assign() so machine_tasks() is O(tasks on that machine), not a
        # full scan (the iterative freeze step calls it every iteration).
        self._by_machine: list[list[str]] = [[] for _ in range(etc.num_machines)]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def etc(self) -> ETCMatrix:
        return self._etc

    @property
    def machines(self) -> tuple[str, ...]:
        return self._etc.machines

    @property
    def tasks(self) -> tuple[str, ...]:
        """All tasks of the underlying ETC matrix (mapped or not)."""
        return self._etc.tasks

    @property
    def assignments(self) -> tuple[Assignment, ...]:
        """Assignments in the order they were made."""
        return tuple(self._assignments)

    @property
    def num_assigned(self) -> int:
        return len(self._assignments)

    def is_complete(self) -> bool:
        """True when every task of the ETC matrix has been assigned."""
        return len(self._assignments) == self._etc.num_tasks

    def is_assigned(self, task: str) -> bool:
        return task in self._by_task

    def unmapped_tasks(self) -> tuple[str, ...]:
        """Tasks not yet assigned, in ETC row order."""
        return tuple(t for t in self._etc.tasks if t not in self._by_task)

    def assignment_of(self, task: str) -> Assignment:
        try:
            return self._by_task[task]
        except KeyError:
            raise UnmappedTaskError(f"task {task!r} is not mapped") from None

    def machine_of(self, task: str) -> str:
        return self.assignment_of(task).machine

    def machine_tasks(self, machine: str) -> tuple[str, ...]:
        """Tasks on ``machine`` in execution (assignment) order."""
        return tuple(self._by_machine[self._etc.machine_index(machine)])

    # ------------------------------------------------------------------
    # Timing queries — Eq. (1)
    # ------------------------------------------------------------------
    def ready_time(self, machine: str) -> float:
        """Current ready time ``RT(m)`` given tasks assigned so far."""
        return float(self._ready[self._etc.machine_index(machine)])

    def ready_times(self) -> np.ndarray:
        """Copy of the current ready-time vector over ``self.machines``."""
        return self._ready.copy()

    def ready_times_view(self) -> np.ndarray:
        """The *live* internal ready-time vector (no copy).

        Fast path for heuristic kernels that read ready times every
        round: the array mutates as assignments are committed.  Callers
        must treat it as read-only and never hold it across mappings.
        """
        return self._ready

    def initial_ready_times(self) -> np.ndarray:
        """Copy of the initial ready-time vector."""
        return self._initial_ready.copy()

    def completion_time_if(self, task: str, machine: str) -> float:
        """``CT(t, m) = ETC(t, m) + RT(m)`` without committing (Eq. 1)."""
        return self._etc.etc(task, machine) + self.ready_time(machine)

    def completion_times_if(self, task: str) -> np.ndarray:
        """Vector of ``CT(task, m)`` over all machines (vectorised Eq. 1)."""
        return self._etc.task_row(task) + self._ready

    def completion_time(self, task: str) -> float:
        """Committed completion time of an assigned task."""
        return self.assignment_of(task).completion

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def assign(self, task: str, machine: str) -> Assignment:
        """Commit ``task`` to ``machine`` at the machine's ready time."""
        if task in self._by_task:
            raise MappingError(f"task {task!r} is already assigned")
        ti = self._etc.task_index(task)
        mi = self._etc.machine_index(machine)
        return self._commit(ti, mi, task, machine)

    def assign_index(self, task_index: int, machine_index: int) -> Assignment:
        """Index-space :meth:`assign` fast path for heuristic kernels.

        Skips the label→index dictionary lookups; indices refer to the
        ETC matrix's row/column order and must be in range (out-of-range
        indices raise ``IndexError``).  Timing arithmetic is identical
        to :meth:`assign`.
        """
        etc = self._etc
        task = etc.tasks[task_index]
        if task in self._by_task:
            raise MappingError(f"task {task!r} is already assigned")
        return self._commit(
            task_index, machine_index, task, etc.machines[machine_index]
        )

    def _commit(self, ti: int, mi: int, task: str, machine: str) -> Assignment:
        start = float(self._ready[mi])
        completion = start + float(self._etc.values[ti, mi])
        assignment = Assignment(
            task=task,
            machine=machine,
            start=start,
            completion=completion,
            order=len(self._assignments),
        )
        self._assignments.append(assignment)
        self._by_task[task] = assignment
        self._by_machine[mi].append(task)
        self._ready[mi] = completion
        return assignment

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def machine_finish_times(self) -> dict[str, float]:
        """Finishing time of every machine (its final ready time).

        A machine with no tasks finishes at its initial ready time.
        """
        return {m: float(self._ready[j]) for j, m in enumerate(self._etc.machines)}

    def finish_time_vector(self) -> np.ndarray:
        """Finishing times as a vector over ``self.machines``."""
        return self._ready.copy()

    def makespan(self) -> float:
        """Largest machine finishing time."""
        return float(self._ready.max())

    def makespan_machine(self, tie_breaker: TieBreaker | None = None) -> str:
        """The machine attaining the makespan.

        Finishing-time ties are resolved by ``tie_breaker`` (default:
        deterministic lowest index, so iterative runs are reproducible).
        """
        breaker = tie_breaker or DeterministicTieBreaker()
        idx = breaker.choose(tied_argmax(self._ready))
        return self._etc.machines[idx]

    def assignment_vector(self) -> np.ndarray:
        """Machine index per task row; ``-1`` for unmapped tasks."""
        vec = np.full(self._etc.num_tasks, -1, dtype=np.int64)
        for a in self._assignments:
            vec[self._etc.task_index(a.task)] = self._etc.machine_index(a.machine)
        return vec

    def to_dict(self) -> dict[str, str]:
        """``{task: machine}`` for all assigned tasks."""
        return {a.task: a.machine for a in self._assignments}

    def same_assignments(self, other: "Mapping") -> bool:
        """True when both mappings place every shared task identically.

        Compares only the task→machine relation (not assignment order),
        which is what the paper's invariance theorems quantify over.
        """
        return self.to_dict() == other.to_dict()

    def __repr__(self) -> str:
        return (
            f"Mapping(assigned={self.num_assigned}/{self._etc.num_tasks}, "
            f"makespan={self.makespan():.6g})"
        )


def finish_times_for_vector(
    etc: ETCMatrix,
    assignment: np.ndarray | Sequence[int],
    initial_ready: np.ndarray | None = None,
) -> np.ndarray:
    """Machine finishing times for a dense machine-index vector.

    ``assignment[i]`` is the machine (column) index of task row ``i``.
    This is the vectorised fitness kernel Genitor evaluates thousands of
    times per run: finishing time of machine ``j`` is its initial ready
    time plus the sum of ETCs of tasks assigned to it (order within a
    machine does not change its finishing time).
    """
    vec = np.asarray(assignment, dtype=np.int64)
    if vec.shape != (etc.num_tasks,):
        raise MappingError(
            f"assignment vector has shape {vec.shape}, expected ({etc.num_tasks},)"
        )
    if np.any(vec < 0) or np.any(vec >= etc.num_machines):
        raise MappingError("assignment vector contains out-of-range machine indices")
    task_etc = etc.values[np.arange(etc.num_tasks), vec]
    totals = np.bincount(vec, weights=task_etc, minlength=etc.num_machines)
    if initial_ready is None:
        return totals
    base = np.asarray(initial_ready, dtype=np.float64)
    if base.shape != (etc.num_machines,):
        raise MappingError(
            f"ready vector has shape {base.shape}, expected ({etc.num_machines},)"
        )
    return base + totals

"""Synthetic ETC matrix generation.

The paper's research group generated ETC matrices with two standard
methods, both reimplemented here:

* the **range-based method** of Braun et al. (JPDC 2001) — a baseline
  row value per task scaled by a per-entry machine factor, with the
  classic four heterogeneity classes (hihi / hilo / lohi / lolo);
* the **CVB (coefficient-of-variation-based) method** of Ali et al. —
  gamma-distributed values whose task/machine coefficients of variation
  are controlled directly.

Both support the three **consistency classes**: *consistent* (machine
speed ordering identical for every task), *inconsistent* (no structure),
and *semi-consistent* (a consistent sub-matrix embedded in an
inconsistent one — conventionally the even-indexed machine columns).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.etc.matrix import ETCMatrix
from repro.exceptions import ConfigurationError

__all__ = [
    "Consistency",
    "Heterogeneity",
    "RangeBasedParams",
    "CVBParams",
    "generate_range_based",
    "generate_cvb",
    "apply_consistency",
    "HETEROGENEITY_RANGES",
    "HETEROGENEITY_CVB",
    "generate_ensemble",
    "DEFAULT_STREAM_WINDOW",
    "stream_ensemble",
    "generate_ensemble_into",
]

#: Default instances per window for the streaming generators — bounds
#: transient memory at ``window * num_tasks * num_machines * 8`` bytes.
DEFAULT_STREAM_WINDOW = 32


class Consistency(enum.Enum):
    """ETC consistency class (Braun et al. Section 3.1)."""

    CONSISTENT = "consistent"
    SEMI_CONSISTENT = "semi-consistent"
    INCONSISTENT = "inconsistent"


class Heterogeneity(enum.Enum):
    """Task/machine heterogeneity class.

    The first word is task heterogeneity, the second machine
    heterogeneity; e.g. ``HILO`` = high task, low machine heterogeneity.
    """

    HIHI = "hihi"
    HILO = "hilo"
    LOHI = "lohi"
    LOLO = "lolo"


@dataclass(frozen=True)
class RangeBasedParams:
    """Parameters of the range-based method.

    ``task_range`` bounds the per-task baseline ``tau ~ U(1, task_range)``
    and ``machine_range`` bounds the per-entry factor
    ``U(1, machine_range)``; ``etc[i, j] = tau_i * U(1, machine_range)``.
    """

    task_range: float
    machine_range: float

    def __post_init__(self) -> None:
        if self.task_range <= 1.0 or self.machine_range <= 1.0:
            raise ConfigurationError(
                "range-based parameters must exceed 1 "
                f"(got task_range={self.task_range}, machine_range={self.machine_range})"
            )


#: Classic range-based parameters per heterogeneity class (Braun et al.).
HETEROGENEITY_RANGES: dict[Heterogeneity, RangeBasedParams] = {
    Heterogeneity.HIHI: RangeBasedParams(task_range=3000.0, machine_range=1000.0),
    Heterogeneity.HILO: RangeBasedParams(task_range=3000.0, machine_range=10.0),
    Heterogeneity.LOHI: RangeBasedParams(task_range=100.0, machine_range=1000.0),
    Heterogeneity.LOLO: RangeBasedParams(task_range=100.0, machine_range=10.0),
}


@dataclass(frozen=True)
class CVBParams:
    """Parameters of the CVB method (Ali et al.).

    ``mean_task`` is the mean task execution time; ``v_task`` and
    ``v_machine`` are the task and machine coefficients of variation.
    """

    mean_task: float = 1000.0
    v_task: float = 0.5
    v_machine: float = 0.5

    def __post_init__(self) -> None:
        if self.mean_task <= 0:
            raise ConfigurationError(f"mean_task must be positive, got {self.mean_task}")
        if self.v_task <= 0 or self.v_machine <= 0:
            raise ConfigurationError(
                "coefficients of variation must be positive "
                f"(got v_task={self.v_task}, v_machine={self.v_machine})"
            )


#: Conventional CVB parameters per heterogeneity class (V=0.6 high, 0.1 low).
HETEROGENEITY_CVB: dict[Heterogeneity, CVBParams] = {
    Heterogeneity.HIHI: CVBParams(v_task=0.6, v_machine=0.6),
    Heterogeneity.HILO: CVBParams(v_task=0.6, v_machine=0.1),
    Heterogeneity.LOHI: CVBParams(v_task=0.1, v_machine=0.6),
    Heterogeneity.LOLO: CVBParams(v_task=0.1, v_machine=0.1),
}


def _coerce_rng(rng: np.random.Generator | int | None) -> np.random.Generator:
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def apply_consistency(
    values: np.ndarray, consistency: Consistency
) -> np.ndarray:
    """Impose a consistency class on raw ETC values (returns a new array).

    * consistent — every row sorted ascending, so machine ``j`` is at
      least as fast as machine ``j+1`` for every task;
    * semi-consistent — the even-indexed columns of each row are sorted
      among themselves (a consistent sub-matrix), odd columns untouched;
    * inconsistent — values returned as generated.
    """
    out = np.array(values, dtype=np.float64, copy=True)
    if consistency is Consistency.CONSISTENT:
        out.sort(axis=1)
    elif consistency is Consistency.SEMI_CONSISTENT:
        even = out[:, 0::2]
        even.sort(axis=1)
        out[:, 0::2] = even
    elif consistency is Consistency.INCONSISTENT:
        pass
    else:  # pragma: no cover - enum exhaustiveness guard
        raise ConfigurationError(f"unknown consistency {consistency!r}")
    return out


def generate_range_based(
    num_tasks: int,
    num_machines: int,
    heterogeneity: Heterogeneity | RangeBasedParams = Heterogeneity.HIHI,
    consistency: Consistency = Consistency.INCONSISTENT,
    rng: np.random.Generator | int | None = None,
) -> ETCMatrix:
    """Generate an ETC matrix with the range-based method.

    Parameters
    ----------
    heterogeneity:
        Either a :class:`Heterogeneity` class (mapped through
        :data:`HETEROGENEITY_RANGES`) or explicit
        :class:`RangeBasedParams`.
    rng:
        ``numpy`` generator or seed; all randomness flows through it.
    """
    if num_tasks < 1 or num_machines < 1:
        raise ConfigurationError(
            f"need at least 1 task and machine, got {num_tasks}x{num_machines}"
        )
    params = (
        heterogeneity
        if isinstance(heterogeneity, RangeBasedParams)
        else HETEROGENEITY_RANGES[heterogeneity]
    )
    gen = _coerce_rng(rng)
    tau = gen.uniform(1.0, params.task_range, size=(num_tasks, 1))
    factors = gen.uniform(1.0, params.machine_range, size=(num_tasks, num_machines))
    values = apply_consistency(tau * factors, consistency)
    return ETCMatrix(values)


def generate_cvb(
    num_tasks: int,
    num_machines: int,
    params: CVBParams | Heterogeneity = Heterogeneity.HIHI,
    consistency: Consistency = Consistency.INCONSISTENT,
    rng: np.random.Generator | int | None = None,
) -> ETCMatrix:
    """Generate an ETC matrix with the CVB (gamma) method.

    A per-task mean ``q_i ~ Gamma(alpha_t, mean_task / alpha_t)`` is
    drawn with ``alpha_t = 1 / v_task**2``; each entry is then
    ``etc[i, j] ~ Gamma(alpha_m, q_i / alpha_m)`` with
    ``alpha_m = 1 / v_machine**2``, giving the requested coefficients of
    variation along both axes.
    """
    if num_tasks < 1 or num_machines < 1:
        raise ConfigurationError(
            f"need at least 1 task and machine, got {num_tasks}x{num_machines}"
        )
    p = params if isinstance(params, CVBParams) else HETEROGENEITY_CVB[params]
    gen = _coerce_rng(rng)
    alpha_task = 1.0 / (p.v_task**2)
    alpha_machine = 1.0 / (p.v_machine**2)
    q = gen.gamma(shape=alpha_task, scale=p.mean_task / alpha_task, size=num_tasks)
    values = gen.gamma(
        shape=alpha_machine,
        scale=q[:, None] / alpha_machine,
        size=(num_tasks, num_machines),
    )
    # Gamma draws can underflow to 0 for tiny shapes; clamp away from zero
    # so ETCMatrix's strict-positivity invariant holds.
    np.maximum(values, np.finfo(np.float64).tiny * 1e6, out=values)
    values = apply_consistency(values, consistency)
    return ETCMatrix(values)


def generate_ensemble(
    count: int,
    num_tasks: int,
    num_machines: int,
    heterogeneity: Heterogeneity = Heterogeneity.HIHI,
    consistency: Consistency = Consistency.INCONSISTENT,
    method: str = "range",
    rng: np.random.Generator | int | None = None,
) -> list[ETCMatrix]:
    """Generate ``count`` independent ETC matrices from one seeded stream.

    ``method`` is ``"range"`` or ``"cvb"``.  Used by the statistical
    study (experiment E23/E24 in DESIGN.md).
    """
    if count < 1:
        raise ConfigurationError(f"count must be >= 1, got {count}")
    gen = _coerce_rng(rng)
    if method == "range":
        return [
            generate_range_based(num_tasks, num_machines, heterogeneity, consistency, gen)
            for _ in range(count)
        ]
    if method == "cvb":
        return [
            generate_cvb(num_tasks, num_machines, heterogeneity, consistency, gen)
            for _ in range(count)
        ]
    raise ConfigurationError(f"unknown generation method {method!r}")


def _instance_generator(method: str):
    if method == "range":
        return generate_range_based
    if method == "cvb":
        return generate_cvb
    raise ConfigurationError(f"unknown generation method {method!r}")


def stream_ensemble(
    count: int,
    num_tasks: int,
    num_machines: int,
    heterogeneity: Heterogeneity = Heterogeneity.HIHI,
    consistency: Consistency = Consistency.INCONSISTENT,
    method: str = "range",
    rng: np.random.Generator | int | None = None,
    window: int = DEFAULT_STREAM_WINDOW,
):
    """Yield the :func:`generate_ensemble` instances in bounded windows.

    Each yielded chunk is a C-contiguous ``(B, num_tasks, num_machines)``
    float64 array with ``B <= window`` (the last window may be partial).
    The per-instance draws consume the RNG stream in exactly the order
    :func:`generate_ensemble` does, so concatenating every window
    reproduces the eager ensemble bit for bit — the property the
    store-backed grid transport relies on for byte-identical records.
    Peak memory is one window, independent of ``count``: this is the
    out-of-core entry point (instance volume bounded by disk, not RAM)
    that :func:`generate_ensemble_into` pours into an
    :class:`~repro.etc.store.ETCStore`.
    """
    if count < 1:
        raise ConfigurationError(f"count must be >= 1, got {count}")
    if window < 1:
        raise ConfigurationError(f"window must be >= 1, got {window}")
    make = _instance_generator(method)
    gen = _coerce_rng(rng)
    pending: list[np.ndarray] = []
    for _ in range(count):
        pending.append(
            make(num_tasks, num_machines, heterogeneity, consistency, gen).values
        )
        if len(pending) == window:
            yield np.stack(pending)
            pending.clear()
    if pending:
        yield np.stack(pending)


def generate_ensemble_into(
    store,
    key: str,
    count: int,
    num_tasks: int,
    num_machines: int,
    heterogeneity: Heterogeneity = Heterogeneity.HIHI,
    consistency: Consistency = Consistency.INCONSISTENT,
    method: str = "range",
    rng: np.random.Generator | int | None = None,
    window: int = DEFAULT_STREAM_WINDOW,
):
    """Stream one ensemble into ``store`` under ``key``; returns the entry.

    A key already committed is served as-is without consuming any
    randomness (the caller's idempotent-publish fast path); otherwise
    the windows of :func:`stream_ensemble` are appended one by one, so
    generating a grid far larger than RAM peaks at one window plus the
    writer's buffer.
    """
    if key in store:
        return store.entry(key)
    with store.writer(key, num_tasks, num_machines) as writer:
        for chunk in stream_ensemble(
            count,
            num_tasks,
            num_machines,
            heterogeneity=heterogeneity,
            consistency=consistency,
            method=method,
            rng=rng,
            window=window,
        ):
            writer.append(chunk)
    return store.entry(key)

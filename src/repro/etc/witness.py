"""Witness ETC matrices for the paper's worked examples.

The source text of the paper we reproduce from has the numerals inside
every table dropped (a transcription artefact), but the prose around
each example preserves the *complete behavioural specification*: the
per-machine completion-time vectors of the original and first iterative
mappings, the makespan machines, and the exact decision that diverges.
Each function below returns a matrix **derived** to satisfy that
specification; the derivations are spelled out in the docstrings and the
test suite replays every documented number.

All examples use initial ready times of zero, as the paper states.
"""

from __future__ import annotations

from repro.etc.matrix import ETCMatrix

__all__ = [
    "minmin_example_etc",
    "mct_met_example_etc",
    "swa_example_etc",
    "SWA_EXAMPLE_LOW_THRESHOLD",
    "SWA_EXAMPLE_HIGH_THRESHOLD",
    "kpb_example_etc",
    "KPB_EXAMPLE_PERCENT",
    "sufferage_example_etc",
]


def minmin_example_etc() -> ETCMatrix:
    """Table 1 — ETC matrix of the Min-Min example (Section 3.2).

    Documented behaviour reproduced by this matrix:

    * original mapping completion times ``m1: 5, m2: 2, m3: 4``;
      makespan machine ``m1``;
    * during the original mapping one task is *tied* between ``m2`` and
      ``m3`` (completion time 2) and the tie is broken to ``m2``;
    * the first iterative mapping (machines ``m2, m3``) breaks the same
      tie to ``m3`` instead, yielding ``m2: 1, m3: 6`` — the makespan
      *increases* from 5 to 6 and ``m3`` becomes the makespan machine.

    Derivation.  Original Min-Min trace with ready times 0:

    1. pair minimum is (t1, m2) at CT 1 → t1→m2 (rt m2 = 1);
    2. t2's best CT is 2 on both m2 (1 + 1) and m3 (0 + 2) — the
       documented tie; original breaks it to m2 (rt m2 = 2);
    3. t3 → m3 at CT 4;
    4. t4 → m1 at CT 5 (the makespan machine).

    First iterative mapping (m1 and t4 removed, ready times reset):

    1. t1 → m2 at CT 1;
    2. t2 again tied at CT 2 between m2 (1 + 1) and m3 (0 + 2); the
       random policy picks m3 this time (rt m3 = 2);
    3. t3: CT m2 = 1 + 6 = 7, m3 = 2 + 4 = 6 → m3 (rt m3 = 6).

    Final iterative finishing times: m2 = 1, m3 = 6.
    """
    return ETCMatrix(
        [
            [3.0, 1.0, 3.0],  # t1
            [4.0, 1.0, 2.0],  # t2
            [6.0, 6.0, 4.0],  # t3
            [5.0, 6.0, 6.0],  # t4
        ],
        tasks=("t1", "t2", "t3", "t4"),
        machines=("m1", "m2", "m3"),
    )


def mct_met_example_etc() -> ETCMatrix:
    """Table 4 — ETC matrix shared by the MCT and MET examples (3.3–3.4).

    Documented behaviour reproduced by this matrix (task list order
    t1, t2, t3, t4; both heuristics):

    * original mapping completion times ``m1: 4, m2: 3, m3: 3``;
      makespan machine ``m1``;
    * the example "relies on a tie in the mapping of t2 between m2 and
      m3"; the original breaks it to ``m2`` ("there are two MET machines
      for t2");
    * the first iterative mapping breaks the t2 tie to ``m3``, yielding
      ``m2: 1, m3: 5`` — makespan increases from 4 to 5; new makespan
      machine ``m3``.

    Derivation (MCT, original): t1→m1 (CT 4); t2: CT m1 = 10,
    m2 = 2, m3 = 2 → tie → m2; t3: CT m1 = 9, m2 = 8, m3 = 3 → m3;
    t4: CT m1 = 8, m2 = 3, m3 = 6 → m2 (CT 3).  Finishing times
    (4, 3, 3).  Iterative (m1, t1 removed): t2 tie (2, 2) → m3;
    t3: m2 = 6, m3 = 5 → m3; t4: m2 = 1, m3 = 8 → m2.  Finishing times
    m2 = 1, m3 = 5.

    MET reads the same matrix column-wise: t1's fastest machine is m1
    (4), t2 ties at 2 between m2/m3, t3's fastest is m3 (3), t4's
    fastest is m2 (1) — identical mappings and the identical
    makespan-increase behaviour, as in the paper.
    """
    return ETCMatrix(
        [
            [4.0, 5.0, 5.0],  # t1
            [6.0, 2.0, 2.0],  # t2
            [5.0, 6.0, 3.0],  # t3
            [4.0, 1.0, 3.0],  # t4
        ],
        tasks=("t1", "t2", "t3", "t4"),
        machines=("m1", "m2", "m3"),
    )


#: SWA thresholds of the example: the high threshold (0.49) is legible in
#: the source; the low threshold's digits are lost, but the documented BI
#: trace pins it to the open interval (4/13, 0.49) — any value there
#: reproduces the example verbatim.  We use 0.40.
SWA_EXAMPLE_LOW_THRESHOLD = 0.40
SWA_EXAMPLE_HIGH_THRESHOLD = 0.49


def swa_example_etc() -> ETCMatrix:
    """Table 9 — ETC matrix of the Switching Algorithm example (3.5).

    Documented behaviour reproduced (task order t1..t5, deterministic
    tie-breaking, thresholds above):

    * original mapping: balance-index trace ``x, 0, 0, 1/3, 2/3`` with
      heuristic trace ``MCT, MCT, MCT, MCT, MET``; completion times
      ``m1: 6, m2: 5, m3: 5``; makespan machine ``m1``;
    * first iterative mapping (m1 and t1 removed): BI trace
      ``x, 0, 1/2, 4/13`` with heuristics ``MCT, MCT, MET, MCT``;
      completion times ``m2: 4, m3: 6.5`` — makespan increases from 6
      to 6.5 *with deterministic tie-breaking*;
    * "t2 and t3 are assigned to the same machines in both mappings;
      t4 differs because the allocation of t3 leaves a different BI".

    Derivation (original): t1 by MCT → m1 (CT 6; rt 6,0,0; BI 0);
    t2 by MCT → m2 (CT 2; rt 6,2,0; BI 0); t3 by MCT → m3 (CT 4;
    rt 6,2,4; BI 1/3); t4 by MCT → m2 (CT 5; rt 6,5,4; BI 2/3 > 0.49 →
    switch to MET); t5 by MET → m3 (ETC 1; CT 5).  Iterative: t2 by
    MCT → m2 (CT 2; BI 0); t3 by MCT → m3 (CT 4; BI 2/4 = 1/2 > 0.49 →
    MET); t4 by MET → m3 (ETC 2.5; CT 6.5; BI 2/6.5 = 4/13 < low →
    MCT); t5 by MCT → m2 (CT 4).
    """
    return ETCMatrix(
        [
            [6.0, 7.0, 8.0],  # t1
            [4.0, 2.0, 3.0],  # t2
            [9.0, 5.0, 4.0],  # t3
            [7.0, 3.0, 2.5],  # t4
            [6.0, 2.0, 1.0],  # t5
        ],
        tasks=("t1", "t2", "t3", "t4", "t5"),
        machines=("m1", "m2", "m3"),
    )


#: K-percent value of the paper's KPB example: with 3 machines the best
#: two are used (floor(3 * 0.7) = 2); with 2 machines only one — MET.
KPB_EXAMPLE_PERCENT = 70.0


def kpb_example_etc() -> ETCMatrix:
    """Table 12 — ETC matrix of the K-Percent Best example (3.6).

    Documented behaviour reproduced (task order t1..t5, k = 70%,
    deterministic tie-breaking):

    * original mapping (subset = best 2 of 3 machines per task):
      completion times ``m1: 6, m2: 5, m3: 5.5``; makespan machine
      ``m1``;
    * first iterative mapping (m1 and t1 removed; subset shrinks to 1 of
      2 machines, "forcing K-percent Best to perform like MET"):
      completion times ``m2: 7, m3: 3`` — makespan increases from 6 to
      7 *with deterministic tie-breaking*; new makespan machine ``m2``.

    Derivation (original; subsets by smallest ETC): t1 subset {m1, m2}
    → m1 (CT 6); t2 subset {m2, m3} → m2 (CT 2); t3 subset {m3, m2} →
    m3 (CT 3); t4 subset {m2, m3} → m2 (CT 5); t5 subset {m2, m3} → m3
    (CT 5.5).  Iterative (machines m2, m3; subset = single fastest):
    t2 → m2 (CT 2); t3 → m3 (CT 3); t4 → m2 (CT 5); t5 → m2 (CT 7).
    """
    return ETCMatrix(
        [
            [6.0, 6.5, 9.0],  # t1
            [8.0, 2.0, 4.0],  # t2
            [7.0, 5.0, 3.0],  # t3
            [9.0, 3.0, 6.0],  # t4
            [8.0, 2.0, 2.5],  # t5
        ],
        tasks=("t1", "t2", "t3", "t4", "t5"),
        machines=("m1", "m2", "m3"),
    )


def sufferage_example_etc() -> ETCMatrix:
    """Table 15 — ETC matrix of the Sufferage example (Section 3.7).

    Documented behaviour reproduced (9 tasks t0..t8, deterministic
    tie-breaking):

    * original mapping completion times ``m1: 10, m2: 9.5, m3: 9.5``;
      makespan machine ``m1``;
    * first iterative mapping: ``m2: 10.5, m3: 8.5`` — the makespan
      increases from 10 to 10.5 with deterministic tie-breaking; new
      makespan machine ``m2``.

    Derivation.  The mechanism the paper describes is that removing the
    makespan machine changes *sufferage values* and hence the winners of
    machine contests across passes, re-shuffling the assignment until a
    surviving machine is overloaded.  The example "is considerably more
    complex than the examples provided for K-percent Best and SWA"
    (Section 3.7), so instead of a by-hand construction the exact values
    below were found with a randomised hill-climbing search over
    half-integer ETC grids (the method now packaged as
    :func:`repro.analysis.counterexamples.search_counterexample`)
    constrained to the precise completion-time vectors the paper's prose
    reports, then frozen here.  The resulting run uses 5 sufferage
    passes per mapping and re-maps two of the six surviving tasks in the
    first iterative mapping (t5: m2 -> m3 and t6: m3 -> m2, because
    removing m1 changes the sufferage values of t0 and t6 at their first
    examination); the unit tests replay the full per-pass trace and
    every documented number.
    """
    return ETCMatrix(
        _SUFFERAGE_VALUES,
        tasks=tuple(f"t{i}" for i in range(len(_SUFFERAGE_VALUES))),
        machines=("m1", "m2", "m3"),
    )


# Frozen output of the constrained witness search (see docstring above).
_SUFFERAGE_VALUES: list[list[float]] = [
    [2.0, 5.5, 1.5],  # t0
    [2.5, 10.0, 7.0],  # t1
    [2.0, 6.5, 9.0],  # t2
    [5.5, 7.5, 10.0],  # t3
    [9.5, 2.5, 1.0],  # t4
    [2.0, 5.0, 3.5],  # t5
    [4.0, 6.0, 4.5],  # t6
    [1.0, 4.0, 2.5],  # t7
    [8.5, 4.5, 8.5],  # t8
]

"""Labelled ETC (estimated time to compute) matrices.

The ETC matrix is the single input of every heuristic in the paper: entry
``(t, m)`` is the estimated time to compute task ``t`` on machine ``m``
(paper Section 2, citing Braun et al.).  The class below wraps a numpy
array with task/machine labels, validation, and the *restriction*
operation the iterative technique relies on (drop the makespan machine
and its tasks, keep everybody else's labels stable).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from repro.exceptions import ETCShapeError, ETCValueError, LabelError

__all__ = ["ETCMatrix", "default_task_labels", "default_machine_labels"]


def default_task_labels(count: int) -> tuple[str, ...]:
    """Return the default task labels ``("t0", "t1", ...)``."""
    return tuple(f"t{i}" for i in range(count))


def default_machine_labels(count: int) -> tuple[str, ...]:
    """Return the default machine labels ``("m0", "m1", ...)``."""
    return tuple(f"m{i}" for i in range(count))


def _contiguous_slice(indices: Sequence[int]) -> slice | None:
    """The equivalent slice for an ascending step-1 index run, else ``None``."""
    if isinstance(indices, range):
        if indices.step == 1:
            return slice(indices.start, indices.stop)
        return None
    first = indices[0]
    if indices[-1] - first + 1 != len(indices):
        return None
    for offset, idx in enumerate(indices):
        if idx != first + offset:
            return None
    return slice(first, first + len(indices))


def _check_labels(labels: Sequence[str], kind: str, expected: int) -> tuple[str, ...]:
    labels = tuple(str(x) for x in labels)
    if len(labels) != expected:
        raise ETCShapeError(
            f"{kind} labels have length {len(labels)}, expected {expected}"
        )
    if len(set(labels)) != len(labels):
        raise ETCShapeError(f"{kind} labels contain duplicates: {labels!r}")
    return labels


class ETCMatrix:
    """An immutable, labelled tasks-by-machines ETC matrix.

    Parameters
    ----------
    values:
        Array-like of shape ``(num_tasks, num_machines)``.  Values must be
        finite and strictly positive (a task always takes some time).
    tasks:
        Optional task labels; defaults to ``t0..t{T-1}``.
    machines:
        Optional machine labels; defaults to ``m0..m{M-1}``.

    Notes
    -----
    The backing array is copied once and marked read-only, so an
    ``ETCMatrix`` can be shared freely between heuristics, iterations and
    threads without defensive copies (hpc guide: prefer views over
    copies; the heuristics read rows/columns as views of this array).
    """

    __slots__ = (
        "_values",
        "_tasks",
        "_machines",
        "_task_index",
        "_machine_index",
        "_hash",
    )

    def __init__(
        self,
        values: Iterable[Iterable[float]] | np.ndarray,
        tasks: Sequence[str] | None = None,
        machines: Sequence[str] | None = None,
    ) -> None:
        arr = np.array(values, dtype=np.float64, copy=True)
        if arr.ndim != 2:
            raise ETCShapeError(f"ETC values must be 2-D, got ndim={arr.ndim}")
        if arr.shape[0] == 0 or arr.shape[1] == 0:
            raise ETCShapeError(f"ETC matrix must be non-empty, got shape {arr.shape}")
        if not np.all(np.isfinite(arr)):
            raise ETCValueError("ETC values must be finite (no NaN/inf)")
        if np.any(arr <= 0.0):
            raise ETCValueError("ETC values must be strictly positive")
        arr.setflags(write=False)
        self._values = arr
        num_tasks, num_machines = arr.shape
        self._tasks = (
            default_task_labels(num_tasks)
            if tasks is None
            else _check_labels(tasks, "task", num_tasks)
        )
        self._machines = (
            default_machine_labels(num_machines)
            if machines is None
            else _check_labels(machines, "machine", num_machines)
        )
        self._task_index = {label: i for i, label in enumerate(self._tasks)}
        self._machine_index = {label: j for j, label in enumerate(self._machines)}
        self._hash = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def _from_trusted(
        cls,
        values: np.ndarray,
        tasks: tuple[str, ...],
        machines: tuple[str, ...],
        *,
        allow_strided: bool = False,
    ) -> "ETCMatrix":
        """Fast-path constructor for restrictions of a validated matrix.

        Skips the finiteness/positivity scan and label checks (every
        value and label comes from an already-validated parent) and
        defers the label→index dictionaries until a label lookup needs
        them — hot iterative loops that work in index space never pay
        for them.  ``values`` may be a read-only *view* of the parent
        buffer (zero-copy restriction); callers must never pass a
        writable array they intend to mutate.

        The array must be 2-D and, unless ``allow_strided`` is set,
        C-contiguous: an arbitrary strided slice of a stacked batch
        could silently alias the wrong elements once kernels start
        assuming row-major layout, so such input is copied to C order
        instead of adopted.  ``allow_strided`` is reserved for
        :meth:`_restricted`, whose basic-slicing views carry audited
        strides derived from the validated parent.
        """
        if values.ndim != 2:
            raise ETCShapeError(
                f"trusted ETC values must be 2-D, got ndim={values.ndim}"
            )
        if not allow_strided and not values.flags.c_contiguous:
            values = np.ascontiguousarray(values)
        self = object.__new__(cls)
        if values.flags.writeable:
            values.setflags(write=False)
        self._values = values
        self._tasks = tasks
        self._machines = machines
        self._task_index = None
        self._machine_index = None
        self._hash = None
        return self

    @classmethod
    def stack(cls, matrices: "Sequence[ETCMatrix]") -> "ETCBatch":
        """Stack same-shape, same-label matrices into an :class:`ETCBatch`.

        The batch performs exactly one ``np.stack`` copy; the per-index
        :meth:`repro.etc.batch.ETCBatch.instance` accessor then hands
        back zero-copy views of the stacked buffer.
        """
        from repro.etc.batch import ETCBatch

        return ETCBatch.from_matrices(matrices)

    @classmethod
    def from_dict(
        cls, table: Mapping[str, Mapping[str, float]]
    ) -> "ETCMatrix":
        """Build from ``{task: {machine: etc}}`` nested mappings.

        Machine keys must be identical (same set) across tasks; the
        machine order of the first task is used.
        """
        if not table:
            raise ETCShapeError("empty ETC table")
        tasks = list(table)
        machines = list(next(iter(table.values())))
        rows = []
        for t in tasks:
            row = table[t]
            if set(row) != set(machines):
                raise ETCShapeError(
                    f"task {t!r} has machine set {sorted(row)} != {sorted(machines)}"
                )
            rows.append([row[m] for m in machines])
        return cls(rows, tasks=tasks, machines=machines)

    # ------------------------------------------------------------------
    # Basic introspection
    # ------------------------------------------------------------------
    @property
    def values(self) -> np.ndarray:
        """The read-only ``(num_tasks, num_machines)`` float64 array."""
        return self._values

    @property
    def tasks(self) -> tuple[str, ...]:
        """Task labels, in row order."""
        return self._tasks

    @property
    def machines(self) -> tuple[str, ...]:
        """Machine labels, in column order."""
        return self._machines

    @property
    def num_tasks(self) -> int:
        return self._values.shape[0]

    @property
    def num_machines(self) -> int:
        return self._values.shape[1]

    @property
    def shape(self) -> tuple[int, int]:
        return self._values.shape

    def _task_lookup(self) -> dict[str, int]:
        index = self._task_index
        if index is None:
            index = self._task_index = {
                label: i for i, label in enumerate(self._tasks)
            }
        return index

    def _machine_lookup(self) -> dict[str, int]:
        index = self._machine_index
        if index is None:
            index = self._machine_index = {
                label: j for j, label in enumerate(self._machines)
            }
        return index

    def task_index(self, task: str) -> int:
        """Row index of ``task``; raises :class:`LabelError` if unknown."""
        try:
            return self._task_lookup()[task]
        except KeyError:
            raise LabelError(f"unknown task label {task!r}") from None

    def machine_index(self, machine: str) -> int:
        """Column index of ``machine``; raises :class:`LabelError`."""
        try:
            return self._machine_lookup()[machine]
        except KeyError:
            raise LabelError(f"unknown machine label {machine!r}") from None

    def has_task(self, task: str) -> bool:
        return task in self._task_lookup()

    def has_machine(self, machine: str) -> bool:
        return machine in self._machine_lookup()

    # ------------------------------------------------------------------
    # Value access
    # ------------------------------------------------------------------
    def etc(self, task: str, machine: str) -> float:
        """ETC of ``task`` on ``machine`` (paper's ``ETC(t, m)``)."""
        return float(
            self._values[self.task_index(task), self.machine_index(machine)]
        )

    def task_row(self, task: str) -> np.ndarray:
        """Read-only view of the ETC of ``task`` on every machine."""
        return self._values[self.task_index(task)]

    def machine_column(self, machine: str) -> np.ndarray:
        """Read-only view of the ETC of every task on ``machine``."""
        return self._values[:, self.machine_index(machine)]

    # ------------------------------------------------------------------
    # Restriction — the operation the iterative technique needs
    # ------------------------------------------------------------------
    def _restricted(
        self, rows: Sequence[int], cols: Sequence[int]
    ) -> "ETCMatrix":
        """Build the restriction to ``rows`` × ``cols`` (trusted indices).

        Indices must already be validated (in range); labels are taken
        from the parent so the result shares its canonical label
        objects.  When a selection is a contiguous run the backing
        array is a read-only *view* of the parent buffer (no copy); the
        general case performs exactly one fancy-index copy and never
        re-validates values.
        """
        if not rows or not cols:
            raise ETCShapeError("submatrix must keep at least one task and machine")
        task_labels = tuple(self._tasks[i] for i in rows)
        machine_labels = tuple(self._machines[j] for j in cols)
        if len(set(rows)) != len(rows):
            raise ETCShapeError(f"task labels contain duplicates: {task_labels!r}")
        if len(set(cols)) != len(cols):
            raise ETCShapeError(
                f"machine labels contain duplicates: {machine_labels!r}"
            )
        if task_labels == self._tasks and machine_labels == self._machines:
            return self
        row_slice = _contiguous_slice(rows)
        col_slice = _contiguous_slice(cols)
        if row_slice is not None and col_slice is not None:
            sub = self._values[row_slice, col_slice]  # pure view, zero-copy
        elif row_slice is not None:
            sub = self._values[row_slice][:, list(cols)]
        elif col_slice is not None:
            sub = self._values[:, col_slice][list(rows)]
        else:
            sub = self._values[np.ix_(list(rows), list(cols))]
        return ETCMatrix._from_trusted(
            sub, task_labels, machine_labels, allow_strided=True
        )

    def submatrix(
        self,
        tasks: Sequence[str] | None = None,
        machines: Sequence[str] | None = None,
    ) -> "ETCMatrix":
        """Restrict to the given tasks and/or machines (labels preserved).

        ``None`` keeps the full axis.  Order follows the order given by
        the caller, enabling deterministic "arbitrary but fixed" task
        lists across iterations (paper Section 3.3).  The result reuses
        the parent's validated buffer: contiguous selections are
        read-only views, anything else is a single fancy-index copy,
        and values are never re-checked.
        """
        if tasks is None and machines is None:
            return self
        rows = (
            range(self.num_tasks)
            if tasks is None
            else [self.task_index(t) for t in tasks]
        )
        cols = (
            range(self.num_machines)
            if machines is None
            else [self.machine_index(m) for m in machines]
        )
        return self._restricted(rows, cols)

    def without_machine(self, machine: str, dropped_tasks: Iterable[str]) -> "ETCMatrix":
        """Drop ``machine`` and ``dropped_tasks`` — one iterative step."""
        dropped = set(dropped_tasks)
        # Validate every dropped label *before* doing any restriction
        # work, so a typo fails loudly without constructing anything.
        for t in dropped:
            self.task_index(t)
        mj = self.machine_index(machine)
        rows = [i for i, t in enumerate(self._tasks) if t not in dropped]
        cols = [j for j in range(self.num_machines) if j != mj]
        return self._restricted(rows, cols)

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ETCMatrix):
            return NotImplemented
        return (
            self._tasks == other._tasks
            and self._machines == other._machines
            and np.array_equal(self._values, other._values)
        )

    def __hash__(self) -> int:
        # The array is immutable, so the (expensive) byte serialisation
        # is memoized after the first call.
        h = self._hash
        if h is None:
            h = self._hash = hash(
                (self._tasks, self._machines, self._values.tobytes())
            )
        return h

    def __repr__(self) -> str:
        return (
            f"ETCMatrix(shape={self.shape}, tasks={list(self._tasks)!r}, "
            f"machines={list(self._machines)!r})"
        )

    def to_dict(self) -> dict[str, dict[str, float]]:
        """Nested ``{task: {machine: etc}}`` representation (JSON-ready)."""
        return {
            t: {m: float(self._values[i, j]) for j, m in enumerate(self._machines)}
            for i, t in enumerate(self._tasks)
        }

    def pretty(self, width: int = 8, precision: int = 3) -> str:
        """Human-readable fixed-width table (used by the bench harness)."""
        header = " " * width + "".join(f"{m:>{width}}" for m in self._machines)
        lines = [header]
        for i, t in enumerate(self._tasks):
            cells = "".join(
                f"{self._values[i, j]:>{width}.{precision}g}"
                for j in range(self.num_machines)
            )
            lines.append(f"{t:<{width}}" + cells)
        return "\n".join(lines)

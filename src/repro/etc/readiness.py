"""Initial-ready-time generators.

"The initial ready time for a machine is the time at which the machine
will become available to begin processing its first task from the set
of tasks T" (paper Section 2).  The paper's proofs take ready times of
zero "without loss of generality", but the machinery is fully general;
these generators produce non-trivial ready-time vectors for experiments
that model machines still draining earlier work.
"""

from __future__ import annotations

import numpy as np

from repro.etc.matrix import ETCMatrix
from repro.exceptions import ConfigurationError

__all__ = [
    "zero_ready_times",
    "uniform_ready_times",
    "busy_fraction_ready_times",
]


def _coerce_rng(rng: np.random.Generator | int | None) -> np.random.Generator:
    return rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)


def zero_ready_times(etc: ETCMatrix) -> dict[str, float]:
    """All machines immediately available (the paper's assumption)."""
    return dict.fromkeys(etc.machines, 0.0)


def uniform_ready_times(
    etc: ETCMatrix,
    high: float,
    low: float = 0.0,
    rng: np.random.Generator | int | None = None,
) -> dict[str, float]:
    """Ready times drawn uniformly from ``[low, high)`` per machine."""
    if low < 0 or high <= low:
        raise ConfigurationError(
            f"need 0 <= low < high, got low={low}, high={high}"
        )
    gen = _coerce_rng(rng)
    values = gen.uniform(low, high, size=etc.num_machines)
    return dict(zip(etc.machines, values.tolist()))


def busy_fraction_ready_times(
    etc: ETCMatrix,
    fraction: float = 0.25,
    rng: np.random.Generator | int | None = None,
) -> dict[str, float]:
    """Ready times scaled to the workload: each machine is busy for a
    uniform draw in ``[0, fraction * L]`` where ``L`` is the mean
    per-machine load of the instance (total mean ETC over machines).

    This keeps ready times commensurate with the batch regardless of
    the ETC heterogeneity class, so "machines are ~25% pre-loaded"
    means the same thing on lolo and hihi instances.
    """
    if fraction < 0:
        raise ConfigurationError(f"fraction must be >= 0, got {fraction}")
    gen = _coerce_rng(rng)
    mean_load = float(etc.values.mean(axis=1).sum()) / etc.num_machines
    values = gen.uniform(0.0, fraction * mean_load, size=etc.num_machines)
    return dict(zip(etc.machines, values.tolist()))

"""Stacked batches of same-shape ETC matrices.

The paper's evaluation — and any production deployment of the iterative
technique — maps *fleets* of independent ETC instances, not one matrix
at a time.  :class:`ETCBatch` stores N same-shape instances as one
C-contiguous ``(batch, tasks, machines)`` float64 block so the batched
kernels in :mod:`repro.heuristics.batched` can process every instance in
a single stacked 3-D numpy pass, while :meth:`ETCBatch.instance` hands
back zero-copy :class:`~repro.etc.matrix.ETCMatrix` views for any code
that still wants the single-instance API.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np

from repro.etc.matrix import (
    ETCMatrix,
    _check_labels,
    default_machine_labels,
    default_task_labels,
)
from repro.exceptions import ETCShapeError, ETCValueError

__all__ = ["ETCBatch"]


class ETCBatch:
    """An immutable stack of same-shape, same-label ETC matrices.

    Parameters
    ----------
    values:
        Array-like of shape ``(batch, num_tasks, num_machines)``.  All
        entries must be finite and strictly positive, exactly as for
        :class:`~repro.etc.matrix.ETCMatrix`.  A float64 C-contiguous
        ndarray is adopted without copying (and marked read-only);
        anything else is converted once.
    tasks / machines:
        Optional shared labels, identical for every instance in the
        batch; default to ``t0..`` / ``m0..``.
    """

    __slots__ = ("_values", "_tasks", "_machines")

    def __init__(
        self,
        values: np.ndarray,
        tasks: Sequence[str] | None = None,
        machines: Sequence[str] | None = None,
    ) -> None:
        arr = np.asarray(values, dtype=np.float64)
        if not arr.flags.c_contiguous:
            arr = np.ascontiguousarray(arr)
        if arr.ndim != 3:
            raise ETCShapeError(
                f"ETC batch values must be 3-D, got ndim={arr.ndim}"
            )
        if 0 in arr.shape:
            raise ETCShapeError(
                f"ETC batch must be non-empty, got shape {arr.shape}"
            )
        if not np.all(np.isfinite(arr)):
            raise ETCValueError("ETC values must be finite (no NaN/inf)")
        if np.any(arr <= 0.0):
            raise ETCValueError("ETC values must be strictly positive")
        arr.setflags(write=False)
        self._values = arr
        _, num_tasks, num_machines = arr.shape
        self._tasks = (
            default_task_labels(num_tasks)
            if tasks is None
            else _check_labels(tasks, "task", num_tasks)
        )
        self._machines = (
            default_machine_labels(num_machines)
            if machines is None
            else _check_labels(machines, "machine", num_machines)
        )

    @classmethod
    def from_matrices(cls, matrices: Sequence[ETCMatrix]) -> "ETCBatch":
        """Stack already-validated matrices (one ``np.stack`` copy).

        Every matrix must have the same shape *and* the same labels —
        a batch is a fleet of instances of one scheduling problem
        family, so decisions (task/machine indices) are comparable
        across the batch.
        """
        matrices = list(matrices)
        if not matrices:
            raise ETCShapeError("cannot build an ETC batch from zero matrices")
        first = matrices[0]
        for matrix in matrices[1:]:
            if matrix.shape != first.shape:
                raise ETCShapeError(
                    f"batch matrices disagree on shape: {matrix.shape} "
                    f"!= {first.shape}"
                )
            if (
                matrix.tasks != first.tasks
                or matrix.machines != first.machines
            ):
                raise ETCShapeError(
                    "batch matrices must share task/machine labels"
                )
        stacked = np.stack([m.values for m in matrices])
        self = object.__new__(cls)
        stacked.setflags(write=False)
        self._values = stacked
        self._tasks = first.tasks
        self._machines = first.machines
        return self

    @classmethod
    def _from_trusted(
        cls,
        values: np.ndarray,
        tasks: tuple[str, ...],
        machines: tuple[str, ...],
    ) -> "ETCBatch":
        """Adopt an already-validated C-contiguous float64 block (no copy).

        The batch-side twin of :meth:`ETCMatrix._from_trusted`: skips the
        finiteness/positivity scan and label checks.  Used by
        :class:`repro.etc.store.ETCStore` to wrap ``numpy.memmap``
        windows of validated on-disk entries — re-scanning there would
        fault in every page and defeat the out-of-core layout.  Callers
        must never pass a writable array they intend to mutate.
        """
        if values.ndim != 3:
            raise ETCShapeError(
                f"trusted ETC batch values must be 3-D, got ndim={values.ndim}"
            )
        if values.dtype != np.float64 or not values.flags.c_contiguous:
            values = np.ascontiguousarray(values, dtype=np.float64)
        self = object.__new__(cls)
        if values.flags.writeable:
            values.setflags(write=False)
        self._values = values
        self._tasks = tasks
        self._machines = machines
        return self

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def values(self) -> np.ndarray:
        """Read-only ``(batch, num_tasks, num_machines)`` float64 block."""
        return self._values

    @property
    def tasks(self) -> tuple[str, ...]:
        return self._tasks

    @property
    def machines(self) -> tuple[str, ...]:
        return self._machines

    @property
    def num_tasks(self) -> int:
        return self._values.shape[1]

    @property
    def num_machines(self) -> int:
        return self._values.shape[2]

    @property
    def shape(self) -> tuple[int, int, int]:
        return self._values.shape

    def __len__(self) -> int:
        return self._values.shape[0]

    # ------------------------------------------------------------------
    # Single-instance access
    # ------------------------------------------------------------------
    def instance(self, index: int) -> ETCMatrix:
        """Zero-copy :class:`ETCMatrix` view of instance ``index``.

        The view shares the stacked buffer (each leading-axis slice of
        a C-contiguous block is itself C-contiguous) and the canonical
        label tuples, so looping ``instance(b)`` over a batch allocates
        no matrix data.
        """
        batch = self._values.shape[0]
        if not -batch <= index < batch:
            raise IndexError(
                f"batch index {index} out of range for batch of {batch}"
            )
        return ETCMatrix._from_trusted(
            self._values[index], self._tasks, self._machines
        )

    def instances(self) -> Iterator[ETCMatrix]:
        """Iterate the batch as zero-copy single-instance matrices."""
        for index in range(self._values.shape[0]):
            yield self.instance(index)

    def __repr__(self) -> str:
        batch, tasks, machines = self._values.shape
        return (
            f"ETCBatch(batch={batch}, num_tasks={tasks}, "
            f"num_machines={machines})"
        )

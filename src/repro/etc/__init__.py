"""ETC (estimated time to compute) matrix substrate."""

from repro.etc.batch import ETCBatch
from repro.etc.generation import (
    Consistency,
    CVBParams,
    Heterogeneity,
    HETEROGENEITY_CVB,
    HETEROGENEITY_RANGES,
    RangeBasedParams,
    apply_consistency,
    generate_cvb,
    generate_ensemble,
    generate_range_based,
)
from repro.etc.io import (
    from_csv,
    from_json,
    load_csv,
    load_json,
    save_csv,
    save_json,
    to_csv,
    to_json,
)
from repro.etc.matrix import ETCMatrix, default_machine_labels, default_task_labels
from repro.etc.readiness import (
    busy_fraction_ready_times,
    uniform_ready_times,
    zero_ready_times,
)
from repro.etc.witness import (
    KPB_EXAMPLE_PERCENT,
    SWA_EXAMPLE_HIGH_THRESHOLD,
    SWA_EXAMPLE_LOW_THRESHOLD,
    kpb_example_etc,
    mct_met_example_etc,
    minmin_example_etc,
    sufferage_example_etc,
    swa_example_etc,
)

__all__ = [
    "ETCMatrix",
    "ETCBatch",
    "default_task_labels",
    "default_machine_labels",
    "Consistency",
    "Heterogeneity",
    "RangeBasedParams",
    "CVBParams",
    "HETEROGENEITY_RANGES",
    "HETEROGENEITY_CVB",
    "apply_consistency",
    "generate_range_based",
    "generate_cvb",
    "generate_ensemble",
    "to_csv",
    "from_csv",
    "save_csv",
    "load_csv",
    "to_json",
    "from_json",
    "save_json",
    "load_json",
    "zero_ready_times",
    "uniform_ready_times",
    "busy_fraction_ready_times",
    "minmin_example_etc",
    "mct_met_example_etc",
    "swa_example_etc",
    "kpb_example_etc",
    "sufferage_example_etc",
    "SWA_EXAMPLE_LOW_THRESHOLD",
    "SWA_EXAMPLE_HIGH_THRESHOLD",
    "KPB_EXAMPLE_PERCENT",
]

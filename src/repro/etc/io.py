"""Serialisation of ETC matrices (CSV and JSON).

Round-trip formats for sharing instances between experiments:

* **CSV** — first row is ``task`` followed by machine labels; each
  subsequent row is a task label followed by its ETC values.
* **JSON** — ``{"tasks": [...], "machines": [...], "values": [[...]]}``.
"""

from __future__ import annotations

import csv
import io as _io
import json
from pathlib import Path

from repro.etc.matrix import ETCMatrix
from repro.exceptions import ETCShapeError

__all__ = [
    "to_csv",
    "from_csv",
    "save_csv",
    "load_csv",
    "to_json",
    "from_json",
    "save_json",
    "load_json",
]


def _stripped_labels(labels, kind: str) -> tuple[str, ...]:
    """Strip surrounding whitespace and reject the duplicates that
    stripping can create (e.g. ``"m0"`` vs ``"m0 "``) with a clear
    error instead of a confusing downstream matrix failure."""
    stripped = tuple(str(label).strip() for label in labels)
    seen: set[str] = set()
    for label in stripped:
        if label in seen:
            raise ETCShapeError(
                f"duplicate {kind} label {label!r} in CSV "
                "(labels are compared after stripping whitespace)"
            )
        seen.add(label)
    return stripped


def to_csv(etc: ETCMatrix) -> str:
    """Serialise to CSV text (header row ``task,<machines...>``).

    Labels are stripped of surrounding whitespace on the way out — the
    same normalisation :func:`from_csv` applies — so ``to_csv`` →
    ``from_csv`` round-trips labels exactly.
    """
    machines = _stripped_labels(etc.machines, "machine")
    tasks = _stripped_labels(etc.tasks, "task")
    buf = _io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(["task", *machines])
    for i, task in enumerate(tasks):
        writer.writerow([task, *(repr(float(v)) for v in etc.values[i])])
    return buf.getvalue()


def from_csv(text: str) -> ETCMatrix:
    """Parse CSV text produced by :func:`to_csv` (or hand-written).

    Task and machine labels are stripped of surrounding whitespace;
    labels that collide after stripping raise :class:`ETCShapeError`.
    """
    rows = [r for r in csv.reader(_io.StringIO(text)) if r]
    if not rows:
        raise ETCShapeError("empty CSV")
    header = rows[0]
    if len(header) < 2 or header[0].strip().lower() != "task":
        raise ETCShapeError(
            f"CSV header must be 'task,<machine>...', got {header!r}"
        )
    machines = _stripped_labels(header[1:], "machine")
    raw_tasks: list[str] = []
    values: list[list[float]] = []
    for row in rows[1:]:
        if len(row) != len(header):
            raise ETCShapeError(
                f"CSV row {row!r} has {len(row)} cells, expected {len(header)}"
            )
        raw_tasks.append(row[0])
        values.append([float(cell) for cell in row[1:]])
    tasks = _stripped_labels(raw_tasks, "task")
    return ETCMatrix(values, tasks=tasks, machines=machines)


def save_csv(etc: ETCMatrix, path: str | Path) -> None:
    Path(path).write_text(to_csv(etc), encoding="utf-8")


def load_csv(path: str | Path) -> ETCMatrix:
    return from_csv(Path(path).read_text(encoding="utf-8"))


def to_json(etc: ETCMatrix, indent: int | None = 2) -> str:
    """Serialise to a JSON document."""
    doc = {
        "tasks": list(etc.tasks),
        "machines": list(etc.machines),
        "values": etc.values.tolist(),
    }
    return json.dumps(doc, indent=indent)


def from_json(text: str) -> ETCMatrix:
    """Parse the JSON document produced by :func:`to_json`."""
    doc = json.loads(text)
    try:
        return ETCMatrix(doc["values"], tasks=doc["tasks"], machines=doc["machines"])
    except KeyError as exc:
        raise ETCShapeError(f"JSON ETC document missing key {exc}") from None


def save_json(etc: ETCMatrix, path: str | Path) -> None:
    Path(path).write_text(to_json(etc), encoding="utf-8")


def load_json(path: str | Path) -> ETCMatrix:
    return from_json(Path(path).read_text(encoding="utf-8"))
